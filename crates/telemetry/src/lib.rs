//! # telemetry — the unified observability layer
//!
//! Every measurement claim this repository makes — zero-flush fast paths,
//! one-CAS fills, millisecond recovery — is only as good as the
//! instrumentation behind it. This crate is that instrumentation, shared
//! by the allocator core, the persistence substrate, the benches, and the
//! examples:
//!
//! * [`Counter`] / [`Gauge`] / [`Histogram`] — lock-free metric
//!   primitives. Counters are sharded over cache-line-padded relaxed
//!   atomics (no CAS, no contention between threads on different shards);
//!   histograms are log2-bucketed with p50/p99/p999 readout. All writes
//!   compile to no-ops under the `telemetry-off` feature.
//! * [`Registry`] — metrics registered by static name, so exporters can
//!   enumerate them without the owning struct's cooperation. One registry
//!   per heap (plus one per pmem pool): independent heaps never share
//!   counters.
//! * [`Journal`] — a bounded lock-free ring buffer of persistence-protocol
//!   events (grow commit/publish, shrink unpublish/decommit, recovery
//!   phases, fill/flush/steal) with monotonic timestamps, so a failed
//!   crash sweep or a latency spike can be replayed as an ordered trace.
//! * [`export`] — JSON snapshot and Prometheus text-format dumps over any
//!   set of registries.
//! * [`SamplerHandle`] — a background thread appending periodic snapshots
//!   to a JSONL file: the footprint / steal-rate / fill-flush time series
//!   a soak run produces as its proof artifact.
//! * [`json`] — a minimal JSON parser so exporter round-trips can be
//!   asserted without external dependencies.
//!
//! ## Synchronization contract
//!
//! No metric write path performs a compare-and-swap: counters and
//! histograms use relaxed `fetch_add` on a per-thread shard, gauges use
//! plain stores, and the journal claims slots with one relaxed
//! `fetch_add`. The only locks live in registration (once per metric) and
//! the sampler's file writer (off every allocator path). [`cas_ops`]
//! audits that claim: any future code that adds a CAS to this crate must
//! route it through [`note_cas`], and the fast-path test pins the count
//! at zero.

mod journal;
mod metrics;
mod registry;
mod sampler;

pub mod export;
pub mod json;

pub use journal::{Event, EventKind, Journal};
pub use metrics::{Counter, Gauge, HistSnapshot, Histogram};
pub use registry::{Metric, Registry};
pub use sampler::SamplerHandle;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Global audit counter of compare-and-swap operations performed *by this
/// crate*. The metric fast paths are CAS-free by design; every CAS a
/// future change introduces must call [`note_cas`], and the unit tests
/// assert the count stays at zero across counter/histogram/journal
/// storms.
static CAS_OPS: AtomicU64 = AtomicU64::new(0);

/// Record one compare-and-swap performed inside the telemetry crate.
/// Currently never called — kept as the mandatory audit hook for any
/// future CAS (see [`cas_ops`]).
#[allow(dead_code)]
pub(crate) fn note_cas() {
    CAS_OPS.fetch_add(1, Ordering::Relaxed);
}

/// Total compare-and-swap operations the telemetry crate has performed
/// since process start (see [`note_cas`]).
pub fn cas_ops() -> u64 {
    CAS_OPS.load(Ordering::Relaxed)
}

/// Monotonic nanoseconds since the process's telemetry clock origin (the
/// first call to this function). All journal timestamps and sampler
/// `t_ms` fields share this origin, so traces from different subsystems
/// of one process order correctly against each other.
pub fn now_ns() -> u64 {
    static ORIGIN: OnceLock<Instant> = OnceLock::new();
    ORIGIN.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// [`now_ns`] in milliseconds (sampler time-series resolution).
pub fn now_ms() -> u64 {
    now_ns() / 1_000_000
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic_and_shared() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
        assert!(now_ms() <= now_ns() / 1_000_000 + 1);
    }

    #[cfg(not(feature = "telemetry-off"))]
    #[test]
    fn metric_and_journal_writes_perform_zero_cas() {
        // The headline synchronization contract: a storm of concurrent
        // counter increments, histogram observations, and journal records
        // must not execute a single compare-and-swap inside this crate.
        let cas0 = cas_ops();
        let reg = Registry::new();
        let c = reg.counter("storm_counter");
        let h = reg.histogram("storm_hist");
        let j = Journal::with_capacity(256);
        std::thread::scope(|s| {
            for t in 0..4 {
                let (c, h, j) = (c.clone(), h.clone(), &j);
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        c.add(1);
                        h.observe(i + t);
                        j.record(EventKind::Fill, i, t);
                    }
                });
            }
        });
        assert_eq!(c.get(), 40_000);
        assert_eq!(h.snapshot().count, 40_000);
        assert_eq!(cas_ops() - cas0, 0, "telemetry write paths must be CAS-free");
    }
}
