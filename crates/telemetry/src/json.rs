//! A minimal JSON parser — just enough to validate exporter output and
//! sampler JSONL in tests and CI without an external dependency (the
//! build must stay offline).
//!
//! Numbers keep their source text so `u64` values round-trip exactly
//! (timestamps and bucket edges exceed `f64`'s 53-bit integer range).

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// A number, as its source text (see [`Value::as_u64`] etc.).
    Num(String),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup; `None` for non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The object's keys in source order; `None` for non-objects.
    pub fn keys(&self) -> Option<Vec<&str>> {
        match self {
            Value::Object(fields) => Some(fields.iter().map(|(k, _)| k.as_str()).collect()),
            _ => None,
        }
    }
}

/// Parse one JSON document. Errors carry the byte offset of the
/// offending input.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing input at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs are not needed for telemetry
                            // output; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // slicing at char boundaries is safe).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if text.is_empty() || text == "-" {
            return Err(format!("invalid number at byte {start}"));
        }
        // Validate via the float parser; keep the text for precision.
        text.parse::<f64>().map_err(|_| format!("invalid number at byte {start}"))?;
        Ok(Value::Num(text.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap().as_bool(), Some(true));
        assert_eq!(parse(" 42 ").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-7").unwrap().as_i64(), Some(-7));
        assert_eq!(parse("2.5").unwrap().as_f64(), Some(2.5));
        assert_eq!(parse("\"hi\\nthere\"").unwrap().as_str(), Some("hi\nthere"));
    }

    #[test]
    fn u64_precision_is_preserved() {
        let big = u64::MAX;
        let v = parse(&big.to_string()).unwrap();
        assert_eq!(v.as_u64(), Some(big), "u64::MAX must survive the round-trip");
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, 2, {"b": "c"}], "d": {"e": null}}"#).unwrap();
        assert_eq!(v.keys().unwrap(), ["a", "d"]);
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b").unwrap().as_str(), Some("c"));
        assert_eq!(v.get("d").unwrap().get("e"), Some(&Value::Null));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "\"abc", "{\"a\" 1}", "12 34", "nul", ""] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("{}").unwrap(), Value::Object(vec![]));
        assert_eq!(parse("[]").unwrap(), Value::Array(vec![]));
    }
}
