//! Metric primitives: sharded counters, gauges, log2 histograms.
//!
//! [`Counter`] deliberately mirrors the `AtomicU64` method surface
//! (`fetch_add`, `load`) so stats structs migrated onto the registry keep
//! their field-access API: existing callers of
//! `stats.cache_fills.load(Ordering::Relaxed)` compile unchanged against
//! a sharded counter.

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Shards per counter/histogram-total. Increments on different shards
/// never contend on a cache line; 8 covers typical thread pools without
/// bloating per-metric memory (8 × 64 B per counter).
const SHARDS: usize = 8;

/// A cache-line-padded atomic so neighboring shards never false-share.
#[repr(align(64))]
#[derive(Default)]
struct PadCell(AtomicU64);

/// The calling thread's stable shard index. Tokens are handed out by a
/// process-wide counter on first use, so thread pools spread across
/// shards round-robin.
#[cfg_attr(feature = "telemetry-off", allow(dead_code))]
#[inline]
fn my_shard() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: usize = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
    }
    SHARD.with(|s| *s)
}

#[derive(Default)]
struct CounterInner {
    shards: [PadCell; SHARDS],
}

/// A monotonic counter, sharded across cache-line-padded relaxed atomics.
/// Writes are one relaxed `fetch_add` on the calling thread's shard — no
/// CAS, no cross-thread cache-line traffic. Reads sum the shards (exact,
/// since shards only ever grow). Cheaply cloneable; clones share state.
#[derive(Clone, Default)]
pub struct Counter(Arc<CounterInner>);

impl Counter {
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add `n`. Compiled out under `telemetry-off`.
    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(not(feature = "telemetry-off"))]
        self.0.shards[my_shard()].0.fetch_add(n, Ordering::Relaxed);
        #[cfg(feature = "telemetry-off")]
        let _ = n;
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current total (sum over shards).
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.shards.iter().map(|s| s.0.load(Ordering::Relaxed)).sum()
    }

    /// `AtomicU64`-compatible write. The ordering argument is accepted
    /// for source compatibility; counter writes are always relaxed
    /// (they are statistics, not synchronization). Returns the running
    /// total *before* the add, like `AtomicU64::fetch_add`.
    #[inline]
    pub fn fetch_add(&self, n: u64, _order: Ordering) -> u64 {
        let before = self.get();
        self.add(n);
        before
    }

    /// `AtomicU64`-compatible read (sum over shards; ordering accepted
    /// for source compatibility).
    #[inline]
    pub fn load(&self, _order: Ordering) -> u64 {
        self.get()
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Counter({})", self.get())
    }
}

/// A point-in-time signed value (footprint, queue depth, thread count).
/// Plain store/load — gauges are set, not accumulated.
#[derive(Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Set the value. Compiled out under `telemetry-off`.
    #[inline]
    pub fn set(&self, v: i64) {
        #[cfg(not(feature = "telemetry-off"))]
        self.0.store(v, Ordering::Relaxed);
        #[cfg(feature = "telemetry-off")]
        let _ = v;
    }

    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Gauge({})", self.get())
    }
}

/// Bucket count: one per power of two of a `u64` value, plus bucket 0 for
/// the value zero.
const BUCKETS: usize = 65;

/// The bucket holding `v`: 0 for 0, else `floor(log2 v) + 1`, so bucket
/// `b ≥ 1` covers `[2^(b-1), 2^b)`.
#[cfg_attr(feature = "telemetry-off", allow(dead_code))]
#[inline]
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros()) as usize
    }
}

/// Inclusive upper edge of bucket `b` (the value percentile readout
/// reports for a hit in that bucket).
#[inline]
fn bucket_upper(b: usize) -> u64 {
    if b == 0 {
        0
    } else if b >= 64 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

struct HistogramInner {
    buckets: [AtomicU64; BUCKETS],
    sum: [PadCell; SHARDS],
}

impl Default for HistogramInner {
    fn default() -> Self {
        HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: Default::default(),
        }
    }
}

/// A log2-bucketed histogram of `u64` samples (latencies in
/// nanoseconds, sizes in bytes, …) with p50/p99/p999 readout. A record
/// is two relaxed `fetch_add`s (bucket count, sum shard) — no
/// CAS. The log2 buckets bound any percentile's error to one octave,
/// which is the right resolution for tail-latency regression tracking
/// (a p999 regression worth chasing is a bucket jump, not a few percent).
#[derive(Clone, Default)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one sample. Compiled out under `telemetry-off`.
    #[inline]
    pub fn observe(&self, v: u64) {
        #[cfg(not(feature = "telemetry-off"))]
        {
            self.0.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
            self.0.sum[my_shard()].0.fetch_add(v, Ordering::Relaxed);
        }
        #[cfg(feature = "telemetry-off")]
        let _ = v;
    }

    /// Record the nanoseconds elapsed since `t0`.
    #[inline]
    pub fn observe_since(&self, t0: Instant) {
        self.observe(t0.elapsed().as_nanos() as u64);
    }

    /// Time a closure and record its duration in nanoseconds.
    #[inline]
    pub fn time<R>(&self, f: impl FnOnce() -> R) -> R {
        let t0 = Instant::now();
        let r = f();
        self.observe_since(t0);
        r
    }

    /// A coherent point-in-time copy. Concurrent observes may land in
    /// either side of the snapshot; totals are re-derived from the bucket
    /// copy so `count` always equals the sum of bucket counts.
    pub fn snapshot(&self) -> HistSnapshot {
        let buckets: Vec<u64> =
            self.0.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let count = buckets.iter().sum();
        let sum = self.0.sum.iter().map(|s| s.0.load(Ordering::Relaxed)).sum();
        HistSnapshot { buckets, count, sum }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        write!(f, "Histogram(count={}, p50={}, p99={})", s.count, s.p50(), s.p99())
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone)]
pub struct HistSnapshot {
    /// Per-bucket hit counts; bucket `b ≥ 1` covers `[2^(b-1), 2^b)`.
    pub buckets: Vec<u64>,
    /// Total samples (sum of `buckets`).
    pub count: u64,
    /// Sum of all sample values (mean = `sum / count`).
    pub sum: u64,
}

impl HistSnapshot {
    /// The value at quantile `q ∈ [0, 1]`, reported as the inclusive
    /// upper edge of the bucket containing that rank (error bounded by
    /// one octave). 0 when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= rank {
                return bucket_upper(b);
            }
        }
        bucket_upper(BUCKETS - 1)
    }

    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    pub fn p999(&self) -> u64 {
        self.percentile(0.999)
    }

    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Non-empty buckets as `(inclusive upper edge, count)` pairs, in
    /// ascending order — the exporter form.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(b, &n)| (bucket_upper(b), n))
            .collect()
    }

    /// A compact JSON object with count/mean/percentiles — the
    /// `latency_ns` object the bench JSONs embed.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"count\": {}, \"mean\": {:.1}, \"p50\": {}, \"p99\": {}, \"p999\": {}, \"max_bucket\": {}}}",
            self.count,
            self.mean(),
            self.p50(),
            self.p99(),
            self.p999(),
            self.percentile(1.0),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Value-asserting tests only run on the instrumented build; under
    // `telemetry-off` every write is a no-op by design, and the one
    // off-build test below pins exactly that.
    #[cfg(feature = "telemetry-off")]
    #[test]
    fn telemetry_off_compiles_writes_to_no_ops() {
        let c = Counter::new();
        c.add(5);
        c.inc();
        assert_eq!(c.get(), 0);
        let g = Gauge::new();
        g.set(9);
        assert_eq!(g.get(), 0);
        let h = Histogram::new();
        h.observe(123);
        assert_eq!(h.snapshot().count, 0);
    }

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(10), 1023);
        assert_eq!(bucket_upper(64), u64::MAX);
        // Every value lies within its bucket's range.
        for v in [0u64, 1, 2, 3, 7, 8, 1000, 123_456_789] {
            let b = bucket_of(v);
            assert!(v <= bucket_upper(b));
            if b > 0 {
                assert!(v > bucket_upper(b - 1));
            }
        }
    }

    #[cfg(not(feature = "telemetry-off"))]
    #[test]
    fn histogram_percentiles_uniform_distribution() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.sum, 500_500);
        // Log2 buckets report the bucket's upper edge: the true
        // percentile is within one octave below the report.
        for (q, truth) in [(0.5, 500u64), (0.99, 990), (0.999, 999)] {
            let est = s.percentile(q);
            assert!(
                est >= truth && est < truth * 2,
                "q={q}: estimate {est} not within an octave above {truth}"
            );
        }
        assert_eq!(s.percentile(1.0), 1023, "max lands in the [512, 1024) bucket");
        assert!((s.mean() - 500.5).abs() < 1e-9);
    }

    #[cfg(not(feature = "telemetry-off"))]
    #[test]
    fn histogram_percentiles_point_mass_and_zero() {
        let h = Histogram::new();
        assert_eq!(h.snapshot().percentile(0.5), 0, "empty histogram reads 0");
        for _ in 0..100 {
            h.observe(0);
        }
        h.observe(1 << 20);
        let s = h.snapshot();
        assert_eq!(s.p50(), 0);
        assert_eq!(s.percentile(1.0), (1 << 21) - 1);
        assert_eq!(s.nonzero_buckets().len(), 2);
    }

    #[cfg(not(feature = "telemetry-off"))]
    #[test]
    fn concurrent_counter_is_exact() {
        let c = Counter::new();
        const THREADS: u64 = 8;
        const PER: u64 = 50_000;
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..PER {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), THREADS * PER, "sharded counter must lose no increments");
        assert_eq!(c.load(Ordering::Relaxed), THREADS * PER);
    }

    #[cfg(not(feature = "telemetry-off"))]
    #[test]
    fn counter_atomicu64_surface() {
        let c = Counter::new();
        assert_eq!(c.fetch_add(5, Ordering::Relaxed), 0);
        assert_eq!(c.fetch_add(2, Ordering::Relaxed), 5);
        assert_eq!(c.load(Ordering::Relaxed), 7);
    }

    #[cfg(not(feature = "telemetry-off"))]
    #[test]
    fn gauge_sets_and_reads() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0);
        g.set(42);
        assert_eq!(g.get(), 42);
        g.set(-7);
        assert_eq!(g.get(), -7);
    }

    #[cfg(not(feature = "telemetry-off"))]
    #[test]
    fn concurrent_histogram_counts_are_exact() {
        let h = Histogram::new();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..25_000u64 {
                        h.observe(t * 1000 + i % 1000);
                    }
                });
            }
        });
        let s = h.snapshot();
        assert_eq!(s.count, 100_000);
        assert_eq!(s.count, s.buckets.iter().sum::<u64>());
    }
}
