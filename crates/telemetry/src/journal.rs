//! Bounded lock-free event journal for persistence-protocol phases.
//!
//! The allocator's correctness story is a sequence of ordered steps —
//! grow is commit → publish, shrink is unpublish → decommit, recovery is
//! reconcile → sweep → splice. When a crash test fails or a latency
//! spike appears, the question is always "what order did the protocol
//! steps actually happen in?". The journal answers it: every protocol
//! site records one [`Event`] with a monotonic timestamp into a
//! fixed-size ring, and [`Journal::snapshot`] replays the last N events
//! in order.
//!
//! Writers claim a slot with one relaxed `fetch_add` (no CAS) and
//! publish the slot's contents with a per-slot sequence word
//! (seqlock-style): readers that race a writer simply skip the torn
//! slot. The ring never blocks, never allocates after construction, and
//! overwrites the oldest events when full — bounded memory is the
//! contract, not completeness.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// What happened. Covers every persistence-protocol phase plus the
/// cache-traffic events (fill/flush/steal) that dominate latency traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// Frontier grow: new segment committed (a = new committed_len).
    GrowCommit = 1,
    /// Frontier grow: committed_len published to the persistent root
    /// (a = published committed_len).
    GrowPublish = 2,
    /// Frontier shrink: persistent watermark lowered (a = new
    /// committed_len).
    ShrinkUnpublish = 3,
    /// Frontier shrink: tail pages decommitted (a = decommitted bytes).
    ShrinkDecommit = 4,
    /// Recovery: descriptor/anchor reconcile pass (a = superblocks seen).
    RecoveryReconcile = 5,
    /// Recovery: GC sweep (a = reachable blocks).
    RecoverySweep = 6,
    /// Recovery: rebuilt lists spliced into shards (a = partial
    /// superblocks, b = free superblocks).
    RecoverySplice = 7,
    /// Thread cache fill (a = blocks, b = size class).
    Fill = 8,
    /// Thread cache flush (a = blocks, b = size class, 0 when the bin's
    /// class is not known at the flush site).
    Flush = 9,
    /// Partial-list steal from a foreign shard (a = stolen superblock
    /// index, b = size class).
    Steal = 10,
    /// Superblocks carved from the frontier (a = first carved index,
    /// b = count).
    Carve = 11,
    /// A persistent root was published (a = root index, b = stored
    /// offset word; 0 = cleared).
    RootPublish = 12,
    /// A process attached to the heap (a = dirty flag at adoption).
    Open = 13,
    /// Clean close: dirty flag cleared and the pool synced.
    Close = 14,
    /// A remote-free ring push lapped an undrained slot, displacing its
    /// batch onto the direct grouped-CAS fallback (a = displaced batch's
    /// superblock, b = its block count). The heap keeps working, but the
    /// producer side is degraded from wait-free pushes to anchor CASes.
    RemoteRingOverflow = 15,
    /// Descriptor-region frontier grow: new descriptor span committed and
    /// its frontier word fenced (a = new descriptor frontier in bytes).
    GrowDescCommit = 16,
    /// Descriptor-region frontier grow: frontier published to carvers
    /// (a = published descriptor frontier in bytes).
    GrowDescPublish = 17,
    /// Descriptor-region frontier shrink: word lowered, fenced, and the
    /// region tail released (a = released bytes, b = new frontier).
    ShrinkDescDecommit = 18,
}

impl EventKind {
    /// Decode a persisted kind byte; `None` for unknown values (future
    /// versions, torn records). Public because the persistent flight
    /// recorder shares this schema with the volatile journal.
    pub fn from_u8(v: u8) -> Option<EventKind> {
        Some(match v {
            1 => EventKind::GrowCommit,
            2 => EventKind::GrowPublish,
            3 => EventKind::ShrinkUnpublish,
            4 => EventKind::ShrinkDecommit,
            5 => EventKind::RecoveryReconcile,
            6 => EventKind::RecoverySweep,
            7 => EventKind::RecoverySplice,
            8 => EventKind::Fill,
            9 => EventKind::Flush,
            10 => EventKind::Steal,
            11 => EventKind::Carve,
            12 => EventKind::RootPublish,
            13 => EventKind::Open,
            14 => EventKind::Close,
            15 => EventKind::RemoteRingOverflow,
            16 => EventKind::GrowDescCommit,
            17 => EventKind::GrowDescPublish,
            18 => EventKind::ShrinkDescDecommit,
            _ => return None,
        })
    }

    /// The event's name as it appears in JSON dumps.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::GrowCommit => "grow_commit",
            EventKind::GrowPublish => "grow_publish",
            EventKind::ShrinkUnpublish => "shrink_unpublish",
            EventKind::ShrinkDecommit => "shrink_decommit",
            EventKind::RecoveryReconcile => "recovery_reconcile",
            EventKind::RecoverySweep => "recovery_sweep",
            EventKind::RecoverySplice => "recovery_splice",
            EventKind::Fill => "fill",
            EventKind::Flush => "flush",
            EventKind::Steal => "steal",
            EventKind::Carve => "carve",
            EventKind::RootPublish => "root_publish",
            EventKind::Open => "open",
            EventKind::Close => "close",
            EventKind::RemoteRingOverflow => "remote_ring_overflow",
            EventKind::GrowDescCommit => "grow_desc_commit",
            EventKind::GrowDescPublish => "grow_desc_publish",
            EventKind::ShrinkDescDecommit => "shrink_desc_decommit",
        }
    }
}

/// One journal entry: a protocol step with its payload words. The
/// meaning of `a`/`b` is per-kind (documented on [`EventKind`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Global record order (0-based). Gaps in a snapshot mean the ring
    /// wrapped past those events.
    pub seq: u64,
    /// Monotonic nanoseconds from [`crate::now_ns`]'s shared origin.
    pub t_ns: u64,
    pub kind: EventKind,
    pub a: u64,
    pub b: u64,
}

/// A journal slot. `seq` is the seqlock word: odd while a writer fills
/// the slot, even (== 2·ticket + 2) once published. Readers load it
/// before and after copying the payload and discard the copy on any
/// change.
#[derive(Default)]
struct Slot {
    seq: AtomicU64,
    t_ns: AtomicU64,
    kind: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

struct Inner {
    slots: Box<[Slot]>,
    mask: usize,
    head: AtomicU64,
}

/// Bounded lock-free ring buffer of protocol [`Event`]s. Cheaply
/// cloneable; clones share the ring.
#[derive(Clone)]
pub struct Journal(Arc<Inner>);

impl Journal {
    /// A journal holding the most recent `capacity` events (rounded up
    /// to a power of two, min 8).
    pub fn with_capacity(capacity: usize) -> Journal {
        let cap = capacity.max(8).next_power_of_two();
        Journal(Arc::new(Inner {
            slots: (0..cap).map(|_| Slot::default()).collect(),
            mask: cap - 1,
            head: AtomicU64::new(0),
        }))
    }

    pub fn capacity(&self) -> usize {
        self.0.slots.len()
    }

    /// Record one event, timestamped now. One relaxed `fetch_add` to
    /// claim the slot, plain stores to fill it, one release store to
    /// publish — no CAS. Compiled out under `telemetry-off`.
    #[inline]
    pub fn record(&self, kind: EventKind, a: u64, b: u64) {
        #[cfg(not(feature = "telemetry-off"))]
        {
            let ticket = self.0.head.fetch_add(1, Ordering::Relaxed);
            let slot = &self.0.slots[(ticket as usize) & self.0.mask];
            // Mark the slot torn (odd) while writing. A lapped writer's
            // ticket always exceeds the resident one's, so the final
            // release store below wins any race for the slot's identity;
            // a reader that observed either odd value discards the slot.
            slot.seq.store(2 * ticket + 1, Ordering::Release);
            slot.t_ns.store(crate::now_ns(), Ordering::Relaxed);
            slot.kind.store(kind as u8 as u64, Ordering::Relaxed);
            slot.a.store(a, Ordering::Relaxed);
            slot.b.store(b, Ordering::Relaxed);
            slot.seq.store(2 * ticket + 2, Ordering::Release);
        }
        #[cfg(feature = "telemetry-off")]
        let _ = (kind, a, b);
    }

    /// Total events ever recorded (recorded − capacity have been
    /// overwritten once this exceeds [`Self::capacity`]).
    pub fn recorded(&self) -> u64 {
        self.0.head.load(Ordering::Relaxed)
    }

    /// The resident events, oldest first. Slots torn by a concurrent
    /// writer are skipped, so a snapshot taken under write load returns
    /// a consistent (possibly gappy) trace.
    pub fn snapshot(&self) -> Vec<Event> {
        let head = self.0.head.load(Ordering::Acquire);
        let cap = self.0.slots.len() as u64;
        let start = head.saturating_sub(cap);
        let mut out = Vec::with_capacity((head - start) as usize);
        for ticket in start..head {
            let slot = &self.0.slots[(ticket as usize) & self.0.mask];
            let seq0 = slot.seq.load(Ordering::Acquire);
            if seq0 != 2 * ticket + 2 {
                continue; // torn, overwritten, or not yet published
            }
            let t_ns = slot.t_ns.load(Ordering::Relaxed);
            let kind = slot.kind.load(Ordering::Relaxed);
            let a = slot.a.load(Ordering::Relaxed);
            let b = slot.b.load(Ordering::Relaxed);
            if slot.seq.load(Ordering::Acquire) != seq0 {
                continue; // overwritten while copying
            }
            let Some(kind) = EventKind::from_u8(kind as u8) else {
                continue;
            };
            out.push(Event { seq: ticket, t_ns, kind, a, b });
        }
        out
    }

    /// The resident events as a JSON array (one object per event), for
    /// embedding in [`crate::export::to_json`] dumps.
    pub fn to_json(&self) -> String {
        let events = self.snapshot();
        let mut s = String::from("[");
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "{{\"seq\": {}, \"t_ns\": {}, \"kind\": \"{}\", \"a\": {}, \"b\": {}}}",
                e.seq,
                e.t_ns,
                e.kind.name(),
                e.a,
                e.b
            ));
        }
        s.push(']');
        s
    }
}

#[cfg(test)]
#[cfg(not(feature = "telemetry-off"))]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_with_monotonic_timestamps() {
        let j = Journal::with_capacity(64);
        j.record(EventKind::GrowCommit, 10, 0);
        j.record(EventKind::GrowPublish, 10, 0);
        j.record(EventKind::Fill, 64, 3);
        let evs = j.snapshot();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].kind, EventKind::GrowCommit);
        assert_eq!(evs[1].kind, EventKind::GrowPublish);
        assert_eq!(evs[2].kind, EventKind::Fill);
        assert_eq!(evs[2].a, 64);
        assert!(evs.windows(2).all(|w| w[0].seq < w[1].seq));
        assert!(evs.windows(2).all(|w| w[0].t_ns <= w[1].t_ns));
    }

    #[test]
    fn wraparound_keeps_newest_capacity_events() {
        let j = Journal::with_capacity(8);
        assert_eq!(j.capacity(), 8);
        for i in 0..100u64 {
            j.record(EventKind::Flush, i, 0);
        }
        assert_eq!(j.recorded(), 100);
        let evs = j.snapshot();
        assert_eq!(evs.len(), 8, "ring retains exactly its capacity");
        let payloads: Vec<u64> = evs.iter().map(|e| e.a).collect();
        assert_eq!(payloads, (92..100).collect::<Vec<_>>());
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        assert_eq!(Journal::with_capacity(0).capacity(), 8);
        assert_eq!(Journal::with_capacity(100).capacity(), 128);
        assert_eq!(Journal::with_capacity(256).capacity(), 256);
    }

    #[test]
    fn concurrent_writers_never_produce_torn_events() {
        let j = Journal::with_capacity(64);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let j = j.clone();
                // Each writer tags events with a = t * 1_000_000 + i so a
                // torn slot (fields from two writers) is detectable.
                s.spawn(move || {
                    for i in 0..20_000u64 {
                        j.record(EventKind::Steal, t * 1_000_000 + i, t);
                    }
                });
            }
            // Snapshot continuously under write load.
            for _ in 0..200 {
                for e in j.snapshot() {
                    assert_eq!(
                        e.a / 1_000_000,
                        e.b,
                        "slot mixed fields from two writers"
                    );
                }
            }
        });
        assert_eq!(j.recorded(), 80_000);
        assert_eq!(j.snapshot().len(), 64);
    }

    #[test]
    fn json_dump_is_one_object_per_event() {
        let j = Journal::with_capacity(8);
        j.record(EventKind::RecoverySweep, 123, 0);
        let s = j.to_json();
        assert!(s.starts_with('[') && s.ends_with(']'));
        assert!(s.contains("\"kind\": \"recovery_sweep\""));
        assert!(s.contains("\"a\": 123"));
    }
}
