//! Metric registry: named counters/gauges/histograms, enumerable by
//! exporters.
//!
//! One [`Registry`] per instrumented component (a heap, a pmem pool):
//! independent instances never share counters, and a registry dies with
//! its owner. Registration takes a lock once per metric name; after
//! that, callers hold a cloned handle and never touch the registry on
//! the hot path.

use crate::metrics::{Counter, Gauge, Histogram};
use std::sync::{Arc, Mutex};

/// A registered metric, as enumerated by [`Registry::entries`].
#[derive(Clone)]
pub enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[derive(Default)]
struct Inner {
    // A Vec, not a map: registries hold tens of metrics and are scanned
    // only at registration and export time; insertion order is the
    // export order, which keeps dumps stable and diffable.
    entries: Mutex<Vec<(&'static str, Metric)>>,
    // Optional help text per metric name, emitted as Prometheus `# HELP`
    // lines. Kept separate so registration stays a single-argument call
    // at the dozens of existing sites.
    helps: Mutex<Vec<(&'static str, &'static str)>>,
}

/// A named collection of metrics. Cheaply cloneable; clones share state.
#[derive(Clone, Default)]
pub struct Registry(Arc<Inner>);

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    fn get_or_insert(&self, name: &'static str, make: impl FnOnce() -> Metric) -> Metric {
        let mut entries = self.0.entries.lock().unwrap();
        if let Some((_, m)) = entries.iter().find(|(n, _)| *n == name) {
            return m.clone();
        }
        let m = make();
        entries.push((name, m.clone()));
        m
    }

    /// The counter registered under `name`, creating it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &'static str) -> Counter {
        match self.get_or_insert(name, || Metric::Counter(Counter::new())) {
            Metric::Counter(c) => c,
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// The gauge registered under `name`, creating it on first use.
    pub fn gauge(&self, name: &'static str) -> Gauge {
        match self.get_or_insert(name, || Metric::Gauge(Gauge::new())) {
            Metric::Gauge(g) => g,
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// The histogram registered under `name`, creating it on first use.
    pub fn histogram(&self, name: &'static str) -> Histogram {
        match self.get_or_insert(name, || Metric::Histogram(Histogram::new())) {
            Metric::Histogram(h) => h,
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Attach help text to a metric name, shown as the Prometheus
    /// `# HELP` line. Last call per name wins; the metric need not be
    /// registered yet.
    pub fn describe(&self, name: &'static str, help: &'static str) {
        let mut helps = self.0.helps.lock().unwrap();
        if let Some(slot) = helps.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = help;
        } else {
            helps.push((name, help));
        }
    }

    /// The help text registered for `name`, if any.
    pub fn help_for(&self, name: &str) -> Option<&'static str> {
        self.0
            .helps
            .lock()
            .unwrap()
            .iter()
            .find_map(|(n, h)| (*n == name).then_some(*h))
    }

    /// All registered metrics in registration order.
    pub fn entries(&self) -> Vec<(&'static str, Metric)> {
        self.0.entries.lock().unwrap().clone()
    }

    /// Convenience: the current value of a registered counter, or `None`
    /// if `name` is unregistered or not a counter.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.0.entries.lock().unwrap().iter().find_map(|(n, m)| match m {
            Metric::Counter(c) if *n == name => Some(c.get()),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_returns_same_metric() {
        let reg = Registry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.add(3);
        let expect = if cfg!(feature = "telemetry-off") { 0 } else { 3 };
        assert_eq!(b.get(), expect, "handles for one name share state");
        assert_eq!(reg.entries().len(), 1);
        assert_eq!(reg.counter_value("x"), Some(expect));
        assert_eq!(reg.counter_value("y"), None);
    }

    #[test]
    fn registration_order_is_export_order() {
        let reg = Registry::new();
        reg.counter("b");
        reg.gauge("a");
        reg.histogram("c");
        let names: Vec<_> = reg.entries().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, ["b", "a", "c"]);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("x");
        reg.gauge("x");
    }

    #[test]
    fn independent_registries_do_not_share() {
        let r1 = Registry::new();
        let r2 = Registry::new();
        r1.counter("x").add(5);
        assert_eq!(r2.counter("x").get(), 0);
    }
}
