//! Exporters: JSON snapshot and Prometheus text format.
//!
//! Both take a list of `(scope, registry)` pairs so one dump can combine
//! the heap's registry with its pmem pool's; the scope becomes the JSON
//! object key / the Prometheus name prefix.

use crate::registry::{Metric, Registry};

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// A JSON object with one sub-object per scope; counters and gauges
/// export as numbers, histograms as `{count, sum, mean, p50, p99, p999,
/// buckets: [[upper, count], ...]}`.
pub fn to_json(scopes: &[(&str, &Registry)]) -> String {
    let mut s = String::from("{");
    for (si, (scope, reg)) in scopes.iter().enumerate() {
        if si > 0 {
            s.push_str(", ");
        }
        s.push_str(&format!("\"{}\": {{", json_escape(scope)));
        for (mi, (name, metric)) in reg.entries().iter().enumerate() {
            if mi > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{}\": ", json_escape(name)));
            match metric {
                Metric::Counter(c) => s.push_str(&c.get().to_string()),
                Metric::Gauge(g) => s.push_str(&g.get().to_string()),
                Metric::Histogram(h) => {
                    let snap = h.snapshot();
                    let buckets: Vec<String> = snap
                        .nonzero_buckets()
                        .iter()
                        .map(|(upper, n)| format!("[{upper}, {n}]"))
                        .collect();
                    s.push_str(&format!(
                        "{{\"count\": {}, \"sum\": {}, \"mean\": {:.1}, \"p50\": {}, \"p99\": {}, \"p999\": {}, \"buckets\": [{}]}}",
                        snap.count,
                        snap.sum,
                        snap.mean(),
                        snap.p50(),
                        snap.p99(),
                        snap.p999(),
                        buckets.join(", ")
                    ));
                }
            }
        }
        s.push('}');
    }
    s.push('}');
    s
}

fn prom_name(scope: &str, name: &str) -> String {
    let mut out = String::with_capacity(scope.len() + name.len() + 1);
    for c in scope.chars().chain(std::iter::once('_')).chain(name.chars()) {
        out.push(if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' });
    }
    out
}

/// Help text as exposed: registered via [`Registry::describe`], with a
/// generated `<scope> <name>` fallback so every series carries a line.
fn prom_help(scope: &str, name: &str, reg: &Registry) -> String {
    match reg.help_for(name) {
        Some(h) => h.replace('\\', "\\\\").replace('\n', "\\n"),
        None => format!("{scope} {}", name.replace('_', " ")),
    }
}

/// Prometheus text exposition format (`# HELP`/`# TYPE` lines,
/// `_bucket{le=...}` / `_sum` / `_count` series for histograms with
/// cumulative `le` edges).
pub fn to_prometheus(scopes: &[(&str, &Registry)]) -> String {
    let mut s = String::new();
    for (scope, reg) in scopes {
        for (name, metric) in reg.entries() {
            let full = prom_name(scope, name);
            s.push_str(&format!("# HELP {full} {}\n", prom_help(scope, name, reg)));
            match metric {
                Metric::Counter(c) => {
                    s.push_str(&format!("# TYPE {full} counter\n{full} {}\n", c.get()));
                }
                Metric::Gauge(g) => {
                    s.push_str(&format!("# TYPE {full} gauge\n{full} {}\n", g.get()));
                }
                Metric::Histogram(h) => {
                    let snap = h.snapshot();
                    s.push_str(&format!("# TYPE {full} histogram\n"));
                    let mut cum = 0u64;
                    for (upper, n) in snap.nonzero_buckets() {
                        cum += n;
                        s.push_str(&format!("{full}_bucket{{le=\"{upper}\"}} {cum}\n"));
                    }
                    s.push_str(&format!("{full}_bucket{{le=\"+Inf\"}} {}\n", snap.count));
                    s.push_str(&format!("{full}_sum {}\n", snap.sum));
                    s.push_str(&format!("{full}_count {}\n", snap.count));
                }
            }
        }
    }
    s
}

#[cfg(test)]
#[cfg(not(feature = "telemetry-off"))]
mod tests {
    use super::*;
    use crate::json;

    fn sample_registry() -> Registry {
        let reg = Registry::new();
        reg.counter("fills").add(42);
        reg.gauge("committed_len").set(1 << 20);
        let h = reg.histogram("malloc_ns");
        for v in [10u64, 20, 30, 1000, 5000] {
            h.observe(v);
        }
        reg
    }

    #[test]
    fn json_round_trips_through_parser() {
        let reg = sample_registry();
        let dump = to_json(&[("heap", &reg)]);
        let v = json::parse(&dump).expect("exporter output must be valid JSON");
        let heap = v.get("heap").expect("scope object");
        assert_eq!(heap.get("fills").and_then(|v| v.as_u64()), Some(42));
        assert_eq!(heap.get("committed_len").and_then(|v| v.as_i64()), Some(1 << 20));
        let hist = heap.get("malloc_ns").expect("histogram object");
        assert_eq!(hist.get("count").and_then(|v| v.as_u64()), Some(5));
        assert_eq!(hist.get("sum").and_then(|v| v.as_u64()), Some(6060));
        assert!(hist.get("p50").and_then(|v| v.as_u64()).unwrap() >= 20);
        assert!(hist.get("buckets").unwrap().as_array().unwrap().len() >= 3);
    }

    #[test]
    fn json_combines_scopes() {
        let r1 = sample_registry();
        let r2 = Registry::new();
        r2.counter("fences").add(7);
        let dump = to_json(&[("heap", &r1), ("pmem", &r2)]);
        let v = json::parse(&dump).unwrap();
        assert!(v.get("heap").is_some());
        assert_eq!(
            v.get("pmem").and_then(|p| p.get("fences")).and_then(|v| v.as_u64()),
            Some(7)
        );
    }

    #[test]
    fn prometheus_format_lines() {
        let reg = sample_registry();
        let dump = to_prometheus(&[("heap", &reg)]);
        assert!(dump.contains("# TYPE heap_fills counter\nheap_fills 42\n"));
        // Every series gets a HELP line, with a generated fallback text.
        assert!(dump.contains("# HELP heap_fills heap fills\n"));
        assert!(dump.contains("# HELP heap_malloc_ns heap malloc ns\n"));
        assert!(dump.contains("# TYPE heap_committed_len gauge\nheap_committed_len 1048576\n"));
        assert!(dump.contains("# TYPE heap_malloc_ns histogram\n"));
        assert!(dump.contains("heap_malloc_ns_bucket{le=\"+Inf\"} 5\n"));
        assert!(dump.contains("heap_malloc_ns_sum 6060\n"));
        assert!(dump.contains("heap_malloc_ns_count 5\n"));
        // Bucket counts are cumulative and non-decreasing.
        let counts: Vec<u64> = dump
            .lines()
            .filter(|l| l.starts_with("heap_malloc_ns_bucket{le=\"") && !l.contains("+Inf"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(!counts.is_empty());
        assert!(counts.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*counts.last().unwrap(), 5);
    }

    #[test]
    fn prometheus_sanitizes_names() {
        assert_eq!(prom_name("heap-0", "fill.rate"), "heap_0_fill_rate");
    }

    #[test]
    fn prometheus_uses_registered_help_text() {
        let reg = Registry::new();
        reg.counter("fills").add(1);
        reg.describe("fills", "cache bin fills since heap open");
        let dump = to_prometheus(&[("heap", &reg)]);
        assert!(dump.contains("# HELP heap_fills cache bin fills since heap open\n"));
        // HELP precedes TYPE precedes the sample, per exposition format.
        let help = dump.find("# HELP heap_fills").unwrap();
        let ty = dump.find("# TYPE heap_fills").unwrap();
        assert!(help < ty);
    }
}
