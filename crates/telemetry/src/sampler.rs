//! Background JSONL sampler: the soak-run time series.
//!
//! A sampler owns an output file and a closure producing one JSON object
//! per tick. In background mode a thread fires the closure every
//! interval; in manual mode the owner calls [`SamplerHandle::sample_now`]
//! at its own cadence (per churn round, per benchmark phase). Both
//! append one line per sample — the JSONL format CI and plotting scripts
//! consume.
//!
//! The closure returning `None` ends sampling: samplers hold a `Weak`
//! reference to their subject so a heap that closes underneath its
//! sampler retires the thread instead of keeping the heap alive or
//! crashing it.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// The per-tick sample producer. Returns one JSON object (without the
/// trailing newline), or `None` to end sampling.
pub type SampleFn = Box<dyn FnMut() -> Option<String> + Send>;

struct State {
    writer: BufWriter<File>,
    f: SampleFn,
    retired: bool,
}

struct Shared {
    state: Mutex<State>,
    stop: Mutex<bool>,
    wake: Condvar,
}

impl Shared {
    /// Run one tick: produce a sample, append it. Returns `false` once
    /// the producer has retired (now or previously).
    fn tick(&self) -> bool {
        let mut st = self.state.lock().unwrap();
        if st.retired {
            return false;
        }
        match (st.f)() {
            Some(line) => {
                // Telemetry must never take the process down; a full
                // disk loses samples, not the workload.
                let _ = writeln!(st.writer, "{line}");
                let _ = st.writer.flush();
                true
            }
            None => {
                st.retired = true;
                false
            }
        }
    }
}

/// Handle to a JSONL sampler (see module docs). Dropping the handle
/// signals the background thread to stop without joining it — safe even
/// when the drop happens *on* the sampler thread (the closure dropping
/// the last strong reference to its subject). Call [`SamplerHandle::stop`]
/// for a joined, flushed shutdown.
pub struct SamplerHandle {
    shared: Arc<Shared>,
    path: PathBuf,
    thread: Option<JoinHandle<()>>,
}

impl SamplerHandle {
    fn open(path: &Path, f: SampleFn) -> io::Result<(Arc<Shared>, PathBuf)> {
        let file = File::create(path)?;
        Ok((
            Arc::new(Shared {
                state: Mutex::new(State { writer: BufWriter::new(file), f, retired: false }),
                stop: Mutex::new(false),
                wake: Condvar::new(),
            }),
            path.to_path_buf(),
        ))
    }

    /// Start a background sampler appending to `path` every `interval`.
    /// The file is truncated; one sample is taken immediately so even a
    /// short-lived process leaves a first data point.
    pub fn start(
        path: impl AsRef<Path>,
        interval: Duration,
        f: impl FnMut() -> Option<String> + Send + 'static,
    ) -> io::Result<SamplerHandle> {
        let (shared, path) = Self::open(path.as_ref(), Box::new(f))?;
        shared.tick();
        let thread = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new().name("telemetry-sampler".into()).spawn(move || {
                let mut stopped = shared.stop.lock().unwrap();
                loop {
                    let (guard, _timeout) =
                        shared.wake.wait_timeout(stopped, interval).unwrap();
                    stopped = guard;
                    if *stopped {
                        return;
                    }
                    drop(stopped);
                    if !shared.tick() {
                        return; // producer retired (subject gone)
                    }
                    stopped = shared.stop.lock().unwrap();
                }
            })?
        };
        Ok(SamplerHandle { shared, path, thread: Some(thread) })
    }

    /// A manual sampler: no background thread, samples only on
    /// [`SamplerHandle::sample_now`]. The file is truncated.
    pub fn manual(
        path: impl AsRef<Path>,
        f: impl FnMut() -> Option<String> + Send + 'static,
    ) -> io::Result<SamplerHandle> {
        let (shared, path) = Self::open(path.as_ref(), Box::new(f))?;
        Ok(SamplerHandle { shared, path, thread: None })
    }

    /// Take one sample immediately (from the calling thread). Returns
    /// `false` once the producer has retired.
    pub fn sample_now(&self) -> bool {
        self.shared.tick()
    }

    /// The JSONL file this sampler appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Take a final sample, stop the background thread (if any), and
    /// join it. Idempotent.
    pub fn stop(&mut self) {
        if let Some(thread) = self.thread.take() {
            self.shared.tick();
            *self.shared.stop.lock().unwrap() = true;
            self.shared.wake.notify_all();
            let _ = thread.join();
        }
    }
}

impl Drop for SamplerHandle {
    fn drop(&mut self) {
        // Signal only — joining here would deadlock if the handle is
        // dropped on the sampler thread itself.
        *self.shared.stop.lock().unwrap() = true;
        self.shared.wake.notify_all();
        if let Some(thread) = self.thread.take() {
            drop(thread); // detach
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_path(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "telemetry_sampler_{}_{}_{}.jsonl",
            tag,
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ))
    }

    #[test]
    fn manual_sampler_appends_one_line_per_call() {
        let path = temp_path("manual");
        let mut n = 0u64;
        let sampler = SamplerHandle::manual(&path, move || {
            n += 1;
            Some(format!("{{\"tick\": {n}}}"))
        })
        .unwrap();
        for _ in 0..3 {
            assert!(sampler.sample_now());
        }
        let text = std::fs::read_to_string(sampler.path()).unwrap();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines, ["{\"tick\": 1}", "{\"tick\": 2}", "{\"tick\": 3}"]);
        for line in lines {
            crate::json::parse(line).expect("every sampler line must be valid JSON");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn background_sampler_ticks_and_stops() {
        let path = temp_path("bg");
        let mut n = 0u64;
        let mut sampler = SamplerHandle::start(&path, Duration::from_millis(5), move || {
            n += 1;
            Some(format!("{{\"tick\": {n}}}"))
        })
        .unwrap();
        std::thread::sleep(Duration::from_millis(60));
        sampler.stop();
        sampler.stop(); // idempotent
        let text = std::fs::read_to_string(&path).unwrap();
        let count = text.lines().count();
        assert!(count >= 3, "expected >= 3 samples in 60ms at 5ms cadence, got {count}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn retired_producer_ends_sampling() {
        let path = temp_path("retire");
        let mut left = 2u64;
        let sampler = SamplerHandle::manual(&path, move || {
            if left == 0 {
                return None;
            }
            left -= 1;
            Some("{}".into())
        })
        .unwrap();
        assert!(sampler.sample_now());
        assert!(sampler.sample_now());
        assert!(!sampler.sample_now());
        assert!(!sampler.sample_now(), "a retired producer stays retired");
        assert_eq!(std::fs::read_to_string(&path).unwrap().lines().count(), 2);
        std::fs::remove_file(&path).ok();
    }
}
