//! Cooperative crash sweep through the per-region frontier protocols.
//!
//! v5 gives the descriptor and superblock regions independent persisted
//! frontier words, each driven by its own instance of the grow protocol
//! (commit → CAS-max word → flush+fence → publish) and of the shrink
//! mirror. Recoverability must hold for a crash at *any* persistence
//! event inside either protocol, in every interleaving of the two. This
//! sweep arms a [`ralloc::CrashInjector`] at every event of a window
//! that crosses several grows of both regions plus an explicit shrink,
//! simulates the power failure, recovers, and does exact root-survival
//! accounting against the recovered heap.

use std::sync::Arc;

use nvm::{CrashInjector, CrashPoint};
use ralloc::{check_heap, Mode, Ralloc, RallocConfig};

const SENTINEL_WORDS: usize = 8;
const ROOT_SMALL: usize = 0;
const ROOT_LARGE: usize = 1;

fn victim_cfg(injector: Arc<CrashInjector>) -> RallocConfig {
    RallocConfig {
        mode: Mode::Tracked,
        // One committed superblock out of many reserved: the window
        // below must cross the grow path repeatedly, for both regions.
        initial_capacity: Some(1),
        injector: Some(injector),
        ..RallocConfig::default()
    }
}

/// Write a recognizable pattern and persist it (user data is persisted
/// by the user; the allocator only guarantees its own metadata).
fn plant(heap: &Ralloc, p: *mut u8, tag: u64) {
    let pool = heap.pool();
    let off = p as usize - pool.base() as usize;
    for w in 0..SENTINEL_WORDS {
        // SAFETY: block is at least SENTINEL_WORDS * 8 bytes, exclusively ours.
        unsafe { std::ptr::write((p as *mut u64).add(w), tag ^ w as u64) };
    }
    pool.persist(off, SENTINEL_WORDS * 8);
}

fn assert_planted(p: *const u64, tag: u64, what: &str) {
    for w in 0..SENTINEL_WORDS {
        // SAFETY: recovered root points at a live block of the planted size.
        let got = unsafe { std::ptr::read(p.add(w)) };
        assert_eq!(got, tag ^ w as u64, "{what}: word {w} corrupted after recovery");
    }
}

/// The crash window: grows both region frontiers several times (large
/// allocations double `used` past the initial single superblock again
/// and again, and every carve demands descriptor coverage too), roots
/// two survivors, then frees the ballast and shrinks both frontiers
/// back down.
fn window(heap: &Ralloc) {
    let small = heap.malloc(SENTINEL_WORDS * 8);
    assert!(!small.is_null());
    plant(heap, small, 0xA11CE);
    heap.set_root_raw(ROOT_SMALL, small);

    let mut ballast = Vec::new();
    for i in 0..8 {
        // ~1 superblock each: `used` climbs 1 -> ~9, crossing several
        // doublings of both the superblock and descriptor frontiers.
        let p = heap.malloc(60_000);
        assert!(!p.is_null());
        if i == 3 {
            plant(heap, p, 0xB16B10C);
            heap.set_root_raw(ROOT_LARGE, p);
        } else {
            ballast.push(p);
        }
    }
    for p in ballast {
        heap.free(p);
    }
    // Quiescent shrink: trailing free superblocks released, both
    // frontier words CAS-min'd and persisted, both regions decommitted.
    heap.shrink();
}

/// Recover a crash image and do the exact survival accounting: roots
/// that were durably set must come back with every planted word intact,
/// the invariant checker must pass, and the heap must still allocate.
fn recover_and_account(image: &[u8], budget: u64) {
    let (heap, dirty) = Ralloc::from_image(image, RallocConfig::default());
    assert!(dirty, "budget {budget}: a crashed image must demand recovery");
    heap.recover();

    let small = heap.get_root_raw(ROOT_SMALL) as *const u64;
    if !small.is_null() {
        assert_planted(small, 0xA11CE, "small root");
    }
    let large = heap.get_root_raw(ROOT_LARGE) as *const u64;
    if !large.is_null() {
        assert_planted(large, 0xB16B10C, "large root");
    }

    let report = check_heap(&heap);
    assert!(report.is_consistent(), "budget {budget}: invariants violated: {report:?}");

    // The recovered heap keeps working, including across a fresh grow.
    for _ in 0..4 {
        let p = heap.malloc(60_000);
        assert!(!p.is_null(), "budget {budget}: recovered heap cannot allocate");
    }
}

#[test]
fn crash_sweep_covers_both_region_frontier_protocols() {
    // Control run: learn the window's event count and prove the window
    // actually exercises every per-region protocol event kind.
    let inj = CrashInjector::new();
    let heap = Ralloc::create(32 << 20, victim_cfg(inj.clone()));
    let e0 = inj.observed();
    window(&heap);
    let events = inj.observed() - e0;
    assert!(events > 0, "window produced no persistence events");

    #[cfg(not(feature = "telemetry-off"))]
    {
        let seen: std::collections::HashSet<&'static str> =
            heap.journal().snapshot().iter().map(|e| e.kind.name()).collect();
        for kind in [
            "grow_commit",
            "grow_publish",
            "grow_desc_commit",
            "grow_desc_publish",
            "shrink_decommit",
            "shrink_desc_decommit",
        ] {
            assert!(seen.contains(kind), "window never crossed {kind}: {seen:?}");
        }
    }
    drop(heap);

    // The sweep: one victim per budget, crash at event `b`, recover,
    // account. Budget == events means the injector never fires (clean
    // control through the same code path).
    for b in 0..=events {
        let inj = CrashInjector::new();
        let heap = Ralloc::create(32 << 20, victim_cfg(inj.clone()));
        inj.arm(b);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| window(&heap)));
        inj.disarm();
        match r {
            Ok(()) => {
                // Ran clean (budget past the window's end): nothing to
                // recover; the heap must simply still be consistent.
                let report = check_heap(&heap);
                assert!(report.is_consistent(), "budget {b}: clean run violated invariants: {report:?}");
            }
            Err(payload) => {
                assert!(CrashPoint::is(&*payload), "budget {b}: non-injected panic");
                heap.pool().crash();
                let image = heap.pool().persistent_image();
                drop(heap);
                recover_and_account(&image, b);
            }
        }
    }
}
