//! # ralloc — a lock-free, *recoverable* persistent-memory allocator
//!
//! A from-scratch Rust implementation of **Ralloc** from Cai, Wen, Beadle,
//! Kjellqvist, Hedayati and Scott, *Understanding and Optimizing
//! Persistent Memory Allocation* (U. Rochester TR #1008 / PPoPP 2020).
//!
//! Ralloc is built on the transient LRMalloc design (thread-local caches
//! over lock-free superblock lists) and makes it **recoverable**: after a
//! full-system crash, a tracing garbage collection from a set of
//! persistent roots reconstructs the allocator metadata so that *all and
//! only* the in-use blocks are allocated. The headline property is that
//! normal-operation persistence costs almost nothing: `malloc`/`free`
//! fast paths issue **zero** flushes, and slow paths flush a single cache
//! line (a superblock's size identity, the `used` watermark, or a root).
//!
//! ```
//! use ralloc::{Ralloc, RallocConfig};
//!
//! let heap = Ralloc::create(4 << 20, RallocConfig::default());
//! let p = heap.malloc(64);
//! assert!(!p.is_null());
//! heap.free(p);
//! heap.close().unwrap();
//! ```
//!
//! Crash-recovery, filter functions ([`Trace`]), and position-independent
//! pointers are demonstrated in the `examples/` directory and exercised
//! heavily by the `tests/` suite.
//!
//! ## Module map
//!
//! | module | paper section | contents |
//! |---|---|---|
//! | [`size_class`] | §4.2 | 39 small classes + large class 0 |
//! | [`anchor`] | §4.2 | packed avail/count/state CAS word |
//! | [`layout`] | §4.2, Fig. 2 | metadata/descriptor/superblock regions |
//! | [`descriptor`] | §4.2 | per-superblock descriptors |
//! | [`lists`] | §4.2 | ABA-counted Treiber stacks of descriptors |
//! | [`shard`] | beyond §4.2 | sharded partial lists + work stealing |
//! | `tcache` | §4.2/§4.4 | transient thread-local caches |
//! | [`heap`] | §4.1–§4.4 | malloc/free/roots/init/close |
//! | [`gc`] | §4.5.1 | filter functions & tracing |
//! | [`recovery`] | §4.5 | offline GC + shard-aware reconstruction |

pub mod anchor;
pub mod checker;
pub mod descriptor;
pub mod flight;
pub mod gc;
pub mod heap;
pub mod layout;
pub mod lists;
pub mod recovery;
mod remote;
pub mod shard;
pub mod size_class;
mod tcache;

pub use flight::{FlightEvent, FlightLevel, FlightScan};
pub use gc::{Trace, TraceFn, Tracer};
pub use heap::{Ralloc, RallocConfig, ShrinkPolicy, SlowStats};
pub use checker::{check_heap, CheckReport, Violation};
pub use recovery::RecoveryStats;
pub use size_class::{MAX_SMALL, SB_SIZE};

// Re-export the substrate types callers need to configure a heap.
pub use nvm::{CrashInjector, CrashStyle, FlushModel, Mode};
pub use pptr::{AtomicPptr, Pptr};
// Re-export the whole observability layer: callers register their own
// metrics on `Ralloc::telemetry()` and read the journal/exporters
// without a separate dependency.
pub use telemetry;

/// The allocator interface shared by Ralloc and every baseline, used by
/// the data-structure and workload crates so a benchmark can swap
/// allocators (paper §6.1 compares five of them).
pub trait PersistentAllocator: Send + Sync {
    /// Allocate `size` bytes; null on exhaustion.
    fn malloc(&self, size: usize) -> *mut u8;
    /// Deallocate a block from this allocator.
    fn free(&self, ptr: *mut u8);
    /// Display name used in benchmark output.
    fn name(&self) -> &'static str;
    /// Write back `len` bytes at `ptr` (application-side durable
    /// linearizability, paper §2.2). Transient allocators make this a
    /// no-op, which is also why they cannot recover.
    fn persist(&self, ptr: *const u8, len: usize) {
        let _ = (ptr, len);
    }
}

impl<T: PersistentAllocator + ?Sized> PersistentAllocator for std::sync::Arc<T> {
    fn malloc(&self, size: usize) -> *mut u8 {
        (**self).malloc(size)
    }

    fn free(&self, ptr: *mut u8) {
        (**self).free(ptr)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn persist(&self, ptr: *const u8, len: usize) {
        (**self).persist(ptr, len)
    }
}

impl PersistentAllocator for Ralloc {
    fn malloc(&self, size: usize) -> *mut u8 {
        Ralloc::malloc(self, size)
    }

    fn free(&self, ptr: *mut u8) {
        Ralloc::free(self, ptr)
    }

    fn name(&self) -> &'static str {
        // A transient Ralloc *is* the paper's LRMalloc datapoint (§6.1).
        if self.is_transient() {
            "lrmalloc"
        } else {
            "ralloc"
        }
    }

    fn persist(&self, ptr: *const u8, len: usize) {
        let off = ptr as usize - self.pool().base() as usize;
        self.pool().persist(off, len);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn small_heap() -> Ralloc {
        Ralloc::create(8 << 20, RallocConfig::default())
    }

    #[test]
    fn malloc_free_roundtrip() {
        let heap = small_heap();
        let p = heap.malloc(100);
        assert!(!p.is_null());
        assert!(heap.contains(p));
        // 100 B rounds up to the 112 B class.
        assert_eq!(heap.usable_size(p), 112);
        unsafe { std::ptr::write_bytes(p, 0xCD, 100) };
        heap.free(p);
    }

    #[test]
    fn malloc_zero_gives_unique_blocks() {
        let heap = small_heap();
        let a = heap.malloc(0);
        let b = heap.malloc(0);
        assert!(!a.is_null() && !b.is_null());
        assert_ne!(a, b);
        heap.free(a);
        heap.free(b);
    }

    #[test]
    fn blocks_are_distinct_and_disjoint() {
        let heap = small_heap();
        let mut seen = HashSet::new();
        let mut ptrs = Vec::new();
        for _ in 0..10_000 {
            let p = heap.malloc(64);
            assert!(!p.is_null());
            assert!(seen.insert(p as usize), "duplicate block {p:p}");
            ptrs.push(p);
        }
        // Disjointness of [p, p+64): since all are 64-aligned within
        // superblocks and distinct, spacing >= 64 suffices.
        let mut sorted: Vec<usize> = seen.iter().copied().collect();
        sorted.sort_unstable();
        for w in sorted.windows(2) {
            assert!(w[1] - w[0] >= 64, "overlapping blocks");
        }
        for p in ptrs {
            heap.free(p);
        }
    }

    #[test]
    fn freed_memory_is_reused() {
        let heap = small_heap();
        // Allocate and free in a loop; the heap must not grow unboundedly.
        for _ in 0..50 {
            let ptrs: Vec<_> = (0..5000).map(|_| heap.malloc(128)).collect();
            for p in &ptrs {
                assert!(!p.is_null());
            }
            for p in ptrs {
                heap.free(p);
            }
        }
        // 5000 * 128B = 640 KB = ~10 superblocks; leave slack for caching.
        assert!(heap.used_superblocks() < 40, "heap grew to {}", heap.used_superblocks());
    }

    #[test]
    fn large_allocation_roundtrip() {
        let heap = small_heap();
        let p = heap.malloc(200_000); // 4 superblocks
        assert!(!p.is_null());
        assert_eq!(heap.usable_size(p), 200_000);
        unsafe { std::ptr::write_bytes(p, 0xEE, 200_000) };
        heap.free(p);
        // The span is reusable for small allocations afterwards.
        let q = heap.malloc(64);
        assert!(!q.is_null());
        heap.free(q);
    }

    #[test]
    fn large_blocks_do_not_overlap_small() {
        let heap = small_heap();
        let big = heap.malloc(100_000);
        let smalls: Vec<_> = (0..1000).map(|_| heap.malloc(64)).collect();
        let big_range = big as usize..big as usize + 100_000;
        for s in &smalls {
            assert!(!big_range.contains(&(*s as usize)));
        }
        heap.free(big);
        for s in smalls {
            heap.free(s);
        }
    }

    #[test]
    fn exhaustion_returns_null_not_panic() {
        let heap = Ralloc::create(256 * 1024, RallocConfig::default());
        let mut ptrs = Vec::new();
        loop {
            let p = heap.malloc(8192);
            if p.is_null() {
                break;
            }
            ptrs.push(p);
            assert!(ptrs.len() < 10_000, "never exhausted");
        }
        // Freeing restores service.
        for p in ptrs {
            heap.free(p);
        }
        assert!(!heap.malloc(8192).is_null());
    }

    #[test]
    fn fast_path_issues_no_flushes() {
        let heap = small_heap();
        // Warm the cache so the next ops are pure fast path.
        let warm = heap.malloc(64);
        let before = heap.pool().stats().snapshot();
        for _ in 0..100 {
            let p = heap.malloc(64);
            heap.free(p);
        }
        let after = heap.pool().stats().snapshot();
        assert_eq!(after.flush_calls, before.flush_calls, "fast path must not flush");
        assert_eq!(after.fences, before.fences, "fast path must not fence");
        heap.free(warm);
    }

    #[test]
    fn slow_path_flushes_once_per_superblock() {
        let heap = small_heap();
        let before = heap.pool().stats().snapshot();
        // 64 B class: 1024 blocks per superblock. Allocating 3000 blocks
        // takes 3 superblocks: 3 size-identity persists + 3 `used`
        // persists (6 fences), not 3000.
        let ptrs: Vec<_> = (0..3000).map(|_| heap.malloc(64)).collect();
        let after = heap.pool().stats().snapshot();
        let d = after.since(&before);
        assert!(d.fences <= 8, "too many fences on slow path: {}", d.fences);
        for p in ptrs {
            heap.free(p);
        }
    }

    #[test]
    fn transient_mode_never_flushes() {
        let heap = Ralloc::create(4 << 20, RallocConfig::transient());
        let ptrs: Vec<_> = (0..5000).map(|_| heap.malloc(64)).collect();
        for p in ptrs {
            heap.free(p);
        }
        let s = heap.pool().stats().snapshot();
        assert_eq!(s.flush_calls, 0);
        assert_eq!(s.fences, 0);
    }

    #[test]
    fn roots_round_trip() {
        let heap = small_heap();
        let p = heap.malloc(64);
        heap.set_root::<u64>(3, p as *const u64);
        assert_eq!(heap.get_root::<u64>(3) as *mut u8, p);
        assert!(heap.get_root_raw(0).is_null());
        heap.set_root::<u64>(3, std::ptr::null());
        assert!(heap.get_root::<u64>(3).is_null());
        heap.free(p);
    }

    #[test]
    #[should_panic(expected = "root index")]
    fn root_index_bounds_checked() {
        let heap = small_heap();
        heap.set_root::<u64>(1024, std::ptr::null());
    }

    #[test]
    fn multithreaded_malloc_free_disjoint() {
        let heap = Ralloc::create(64 << 20, RallocConfig::default());
        let n_threads = 8;
        let per = 2000;
        let all: Vec<Vec<usize>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..n_threads)
                .map(|_| {
                    let heap = heap.clone();
                    s.spawn(move || {
                        let mut mine = Vec::with_capacity(per);
                        for i in 0..per {
                            let sz = 8 + (i % 48) * 8;
                            let p = heap.malloc(sz);
                            assert!(!p.is_null());
                            // Write a signature to catch overlap.
                            unsafe { std::ptr::write(p as *mut u64, p as u64) };
                            mine.push(p as usize);
                        }
                        // Verify all signatures intact, then free half.
                        for &p in &mine {
                            assert_eq!(unsafe { std::ptr::read(p as *const u64) }, p as u64);
                        }
                        for &p in mine.iter().skip(per / 2) {
                            heap.free(p as *mut u8);
                        }
                        mine.truncate(per / 2);
                        mine
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // Addresses still live across all threads are distinct.
        let mut seen = HashSet::new();
        for v in &all {
            for &p in v {
                assert!(seen.insert(p), "cross-thread duplicate");
                heap.free(p as *mut u8);
            }
        }
    }

    #[test]
    fn producer_consumer_bleeding() {
        // Larson-style: blocks allocated in one thread, freed in another.
        let heap = Ralloc::create(32 << 20, RallocConfig::default());
        let (tx, rx) = std::sync::mpsc::channel::<usize>();
        std::thread::scope(|s| {
            let producer = heap.clone();
            s.spawn(move || {
                for _ in 0..20_000 {
                    let p = producer.malloc(64);
                    assert!(!p.is_null());
                    tx.send(p as usize).unwrap();
                }
            });
            let consumer = heap.clone();
            s.spawn(move || {
                let mut n = 0;
                while let Ok(p) = rx.recv() {
                    consumer.free(p as *mut u8);
                    n += 1;
                }
                assert_eq!(n, 20_000);
            });
        });
    }

    #[test]
    fn close_clears_dirty_flag() {
        let heap = small_heap();
        assert!(heap.is_dirty());
        heap.close().unwrap();
        assert!(!heap.is_dirty());
    }

    #[test]
    fn clean_restart_via_image_preserves_heap() {
        let heap = small_heap();
        let p = heap.malloc(64);
        unsafe { std::ptr::write(p as *mut u64, 0x1122334455667788) };
        heap.set_root::<u64>(0, p as *const u64);
        heap.close().unwrap();
        let image = heap.pool().persistent_image();
        drop(heap);

        let (heap2, dirty) = Ralloc::from_image(&image, RallocConfig::default());
        assert!(!dirty, "clean shutdown must not require recovery");
        let q = heap2.get_root::<u64>(0);
        assert!(!q.is_null());
        assert_eq!(unsafe { *q }, 0x1122334455667788);
        // The heap is immediately usable without recovery.
        let r = heap2.malloc(64);
        assert!(!r.is_null());
    }

    #[test]
    #[should_panic(expected = "metadata-format version")]
    fn downlevel_image_version_is_refused_not_erased() {
        let heap = small_heap();
        heap.close().unwrap();
        let mut image = heap.pool().persistent_image();
        image[0] = 1; // little-endian low byte of MAGIC = layout version
        let _ = Ralloc::from_image(&image, RallocConfig::default());
    }

    #[test]
    fn v3_clean_image_migrates_in_place_through_the_chain_to_v5() {
        let heap = small_heap();
        let p = heap.malloc(64);
        unsafe { std::ptr::write(p as *mut u64, 0xFEED) };
        heap.set_root::<u64>(0, p as *const u64);
        heap.close().unwrap();
        let mut image = heap.pool().persistent_image();
        // Fabricate the v3 on-disk format: identical geometry, version
        // byte 3, flight slack and descriptor-frontier word never written.
        image[0] = 3;
        image[layout::DESC_COMMITTED_LEN_OFF..layout::DESC_COMMITTED_LEN_OFF + 8].fill(0);
        image[layout::FLIGHT_OFF..layout::META_SIZE].fill(0);

        let (heap2, dirty) = Ralloc::from_image(&image, RallocConfig::default());
        assert!(!dirty, "clean v3 images migrate without recovery");
        let q = heap2.get_root::<u64>(0);
        assert_eq!(unsafe { *q }, 0xFEED, "migration must not disturb heap data");
        // The migrated heap has a live flight ring and persists as v5
        // (the v3→v4 and v4→v5 recipes chain in one open).
        #[cfg(not(feature = "telemetry-off"))]
        assert_eq!(heap2.flight_timeline().events.first().unwrap().kind_name(), "open");
        assert_eq!(heap2.pool().persistent_image()[0], 5);
    }

    #[test]
    fn v4_clean_image_migrates_in_place_to_v5() {
        let heap = small_heap();
        let p = heap.malloc(64);
        unsafe { std::ptr::write(p as *mut u64, 0xBEEF) };
        heap.set_root::<u64>(0, p as *const u64);
        heap.close().unwrap();
        let mut image = heap.pool().persistent_image();
        // Fabricate the v4 on-disk format: identical geometry and flight
        // ring, version byte 4, descriptor-frontier header slack zeroed.
        image[0] = 4;
        image[layout::DESC_COMMITTED_LEN_OFF..layout::DESC_COMMITTED_LEN_OFF + 8].fill(0);

        let (heap2, dirty) = Ralloc::from_image(&image, RallocConfig::default());
        assert!(!dirty, "clean v4 images migrate without recovery");
        let q = heap2.get_root::<u64>(0);
        assert_eq!(unsafe { *q }, 0xBEEF, "migration must not disturb heap data");
        assert_eq!(heap2.pool().persistent_image()[0], 5);
        // The migrated descriptor frontier is the v4 semantics: the whole
        // descriptor region committed.
        let word = u64::from_ne_bytes(
            heap2.pool().persistent_image()
                [layout::DESC_COMMITTED_LEN_OFF..layout::DESC_COMMITTED_LEN_OFF + 8]
                .try_into()
                .unwrap(),
        );
        let geo = layout::Geometry::from_pool_len(heap2.pool().len());
        assert_eq!(word as usize, geo.sb_off);
    }

    #[test]
    #[should_panic(expected = "version 3 and is dirty")]
    fn v3_dirty_image_is_refused_not_migrated() {
        let heap = small_heap();
        let _ = heap.malloc(64);
        let mut image = heap.pool().persistent_image(); // no close(): dirty
        image[0] = 3;
        image[layout::DESC_COMMITTED_LEN_OFF..layout::DESC_COMMITTED_LEN_OFF + 8].fill(0);
        image[layout::FLIGHT_OFF..layout::META_SIZE].fill(0);
        let _ = Ralloc::from_image(&image, RallocConfig::default());
    }

    #[test]
    #[should_panic(expected = "version 4 and is dirty")]
    fn v4_dirty_image_is_refused_not_migrated() {
        let heap = small_heap();
        let _ = heap.malloc(64);
        let mut image = heap.pool().persistent_image(); // no close(): dirty
        image[0] = 4;
        image[layout::DESC_COMMITTED_LEN_OFF..layout::DESC_COMMITTED_LEN_OFF + 8].fill(0);
        let _ = Ralloc::from_image(&image, RallocConfig::default());
    }

    #[test]
    fn non_ralloc_image_is_initialized_fresh() {
        let image = vec![0u8; 4 << 20];
        let (heap, dirty) = Ralloc::from_image(&image, RallocConfig::default());
        assert!(!dirty);
        assert!(!heap.malloc(64).is_null());
    }

    #[test]
    fn dirty_flag_set_on_reopen_without_close() {
        let heap = small_heap();
        let _ = heap.malloc(64);
        let image = heap.pool().persistent_image();
        let (_heap2, dirty) = Ralloc::from_image(&image, RallocConfig::default());
        assert!(dirty, "missing close() must flag a dirty restart");
    }

    #[test]
    #[cfg(not(feature = "telemetry-off"))]
    fn remote_ring_gauges_reach_every_export_surface() {
        let cfg = RallocConfig { partial_shards: 4, ..RallocConfig::default() };
        let heap = Ralloc::create(8 << 20, cfg);
        // Producer/consumer shape: every free is remote, so consumer-side
        // cache flushes push batches onto the rings.
        let (tx, rx) = std::sync::mpsc::channel::<usize>();
        std::thread::scope(|s| {
            {
                let heap = heap.clone();
                s.spawn(move || {
                    for p in rx {
                        heap.free(p as *mut u8);
                    }
                });
            }
            for _ in 0..4000 {
                let p = heap.malloc(64);
                assert!(!p.is_null());
                tx.send(p as usize).unwrap();
            }
            drop(tx);
        });
        let snapshot = heap.telemetry_snapshot();
        assert!(snapshot.contains("\"remote_ring_occupancy\""), "snapshot: {snapshot}");
        assert!(snapshot.contains("\"remote_ring_high_water\""), "snapshot: {snapshot}");
        let prom = heap.telemetry_prometheus();
        assert!(prom.contains("heap_remote_ring_occupancy"), "prometheus: {prom}");
        assert!(prom.contains("heap_remote_ring_high_water"), "prometheus: {prom}");
        // When the workload actually pushed batches, the high-water mark
        // must have registered them (per-ring gauges appear too).
        if heap.telemetry().counter_value("remote_ring_pushes").unwrap_or(0) > 0 {
            assert!(prom.contains("_s"), "per-ring gauge expected: {prom}");
        }
    }

    #[test]
    fn thread_exit_returns_cached_blocks() {
        let heap = small_heap();
        let handle = {
            let heap = heap.clone();
            std::thread::spawn(move || {
                let p = heap.malloc(64);
                heap.free(p); // lands in that thread's cache
            })
        };
        handle.join().unwrap();
        // After the thread exits, its cache was drained: a fresh fill can
        // obtain the block again. (Smoke check: allocation still works and
        // no superblock was lost.)
        let p = heap.malloc(64);
        assert!(!p.is_null());
        heap.free(p);
    }
}
