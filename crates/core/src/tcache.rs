//! Thread-local cache bins (paper §4.2, §4.4; LRMalloc's CacheBin).
//!
//! Most allocations and deallocations are served by per-thread,
//! per-size-class **cache bins** of free blocks with no synchronization
//! at all — the LRMalloc fast path that Ralloc inherits. A bin is a
//! fixed-capacity array of block addresses plus a length; its capacity is
//! one superblock's block population for the class
//! ([`crate::size_class::cache_capacity`]), so the bin's lifecycle follows
//! LRMalloc's Fill/Flush discipline:
//!
//! * **Fill** (bin empty on `malloc`): reserve a whole batch of blocks —
//!   every free block of a partial superblock, or all of a fresh one —
//!   with a *single* anchor CAS, then carve the batch into the bin
//!   locally. The slow path's cost (one CAS, and for fresh superblocks
//!   one flush+fence of the size identity) is amortized over the batch.
//! * **Flush** (bin full on `free`): return the *entire* bin (paper
//!   §4.4: "all of the blocks in the cache are pushed back"; contrast
//!   Makalu's return-half policy, §6.3). Blocks are grouped by
//!   superblock, pre-linked into a local chain, and each group is spliced
//!   into its anchor's free list with a single CAS — one CAS per
//!   superblock touched, not one per block. Groups whose superblock is
//!   owned by *another* partial-list shard don't even pay that CAS: the
//!   flush parks them on the owning shard's remote-free ring
//!   ([`crate::remote`]) with a wait-free push, and the owner reclaims
//!   them in bulk during its next Fill.
//!
//! In between, `malloc` is an array pop and `free` an array push.
//!
//! ## The single-heap fast slot
//!
//! Because a process may hold several heaps, the thread-local store keeps
//! a small vector of per-heap cache sets keyed by heap id. The
//! overwhelmingly common case is one heap, so a separate thread-local
//! **fast slot** memoizes `(heap id, pointer to that heap's cache set)`.
//! The malloc/free fast path is then: one fast-slot read, one id compare,
//! one generation compare, one bin pop/push. The linear scan over cache
//! sets only runs on a fast-slot miss (first touch, heap switch, or after
//! a crash). Entries are boxed so the memoized pointer stays valid when
//! the vector reallocates; every path that removes or replaces an entry
//! invalidates the slot first.
//!
//! ## Crash semantics
//!
//! The bins are **transient**: nothing about them is flushed, and after a
//! crash their contents are recovered by the tracing GC (blocks in a bin
//! are unreachable from the roots, so they are reclaimed). Each cache set
//! is stamped with the heap's *generation*, which is bumped by a
//! simulated crash: stale cached blocks from "before the crash" must be
//! forgotten, not reused, exactly as a real crash would forget DRAM. The
//! generation compare sits on the fast path so a crash invalidates the
//! fast slot, too. On clean thread exit the bins are flushed back to the
//! heap, so a clean shutdown leaves nothing cached.

use std::cell::{Cell, RefCell};
use std::sync::Weak;

use crate::heap::HeapInner;
use crate::size_class::NUM_CLASSES;

/// A fixed-capacity, array-backed bin of cached block addresses for one
/// size class (LRMalloc's CacheBin). Storage is allocated lazily on first
/// use, sized by [`crate::size_class::cache_capacity`], and never grows.
pub(crate) struct CacheBin {
    /// Slot array; empty until the class is first used.
    slots: Box<[usize]>,
    /// Number of live entries in `slots[..len]`.
    len: u32,
}

impl CacheBin {
    pub(crate) fn new() -> CacheBin {
        CacheBin { slots: Box::default(), len: 0 }
    }

    /// Pop the most recently cached block, if any.
    #[inline]
    pub fn pop(&mut self) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        self.len -= 1;
        // SAFETY: len was > 0 and is always <= slots.len().
        Some(unsafe { *self.slots.get_unchecked(self.len as usize) })
    }

    /// Push a block. Caller must have checked [`CacheBin::is_full`].
    #[inline]
    pub fn push(&mut self, addr: usize) {
        debug_assert!((self.len as usize) < self.slots.len(), "cache bin overflow");
        // SAFETY: guarded by the debug_assert contract above.
        unsafe { *self.slots.get_unchecked_mut(self.len as usize) = addr };
        self.len += 1;
    }

    /// True when a push would overflow. Also true for a never-used bin
    /// (capacity 0), so the slow path doubles as lazy allocation.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.len as usize == self.slots.len()
    }

    #[inline]
    pub fn len(&self) -> u32 {
        self.len
    }

    #[inline]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Allocate the slot array if this bin has never been used.
    pub fn ensure_capacity(&mut self, cap: usize) {
        if self.slots.is_empty() {
            self.slots = vec![0usize; cap].into_boxed_slice();
        }
        debug_assert_eq!(self.slots.len(), cap, "cache bin capacity changed");
    }

    /// The cached blocks, for a bulk flush. Call [`CacheBin::clear`]
    /// after the flush consumes them.
    #[inline]
    pub fn blocks_mut(&mut self) -> &mut [usize] {
        &mut self.slots[..self.len as usize]
    }

    /// Forget all cached blocks (after a bulk flush took ownership).
    #[inline]
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Drop the oldest `n` entries (after a partial flush took ownership
    /// of `slots[..n]`), sliding the kept LIFO tail down.
    pub fn drain_front(&mut self, n: usize) {
        debug_assert!(n <= self.len as usize);
        self.slots.copy_within(n..self.len as usize, 0);
        self.len -= n as u32;
    }
}

/// Per-heap, per-thread cache set.
pub(crate) struct HeapTls {
    pub heap_id: u64,
    pub generation: u64,
    pub weak: Weak<HeapInner>,
    /// One bin per size class (index 0 unused: large allocations bypass
    /// the cache).
    pub bins: [CacheBin; NUM_CLASSES],
}

impl HeapTls {
    fn new(heap_id: u64, generation: u64, weak: Weak<HeapInner>) -> HeapTls {
        HeapTls { heap_id, generation, weak, bins: std::array::from_fn(|_| CacheBin::new()) }
    }
}

/// Thread-local store of cache sets; flushed on thread exit.
struct TlsStore {
    /// Boxed so [`FAST`] can hold a stable pointer across Vec growth.
    #[allow(clippy::vec_box)]
    entries: Vec<Box<HeapTls>>,
}

impl Drop for TlsStore {
    fn drop(&mut self) {
        // The fast slot may point into an entry we are about to drop;
        // clear it first. FAST holds no destructor of its own, so this
        // set succeeds even during thread teardown.
        FAST.set((0, std::ptr::null_mut()));
        for entry in &mut self.entries {
            if let Some(heap) = entry.weak.upgrade() {
                // Return blocks only if the heap has not crashed, recovered,
                // or closed since they were cached. Thread exit parks the
                // bins for adoption by future threads (bounded retention).
                //
                // TLS destructors run during OS thread teardown — *after*
                // the thread looks finished to joiners (`thread::scope`
                // returns when the closure does), so this drain can race a
                // quiescent-point operation that the joining thread starts
                // next. The begin/end bracket is the rendezvous: recovery
                // bumps the generation and waits out announced drains, so
                // a flush here either completes before recovery resets the
                // lists or never starts.
                let (generation, closed) = heap.begin_exit_drain();
                if generation == entry.generation && !closed {
                    heap.drain_tls(entry, true);
                }
                heap.end_exit_drain();
            }
        }
    }
}

thread_local! {
    /// Single-heap fast slot: (heap id, pointer to its cache set in this
    /// thread's store). Heap ids start at 1, so id 0 never matches. The
    /// pointee is owned by `TLS`; every removal/replacement invalidates
    /// this slot before touching the entry.
    static FAST: Cell<(u64, *mut HeapTls)> = const { Cell::new((0, std::ptr::null_mut())) };

    static TLS: RefCell<TlsStore> = const { RefCell::new(TlsStore { entries: Vec::new() }) };
}

/// Run `f` with this thread's cache set for `heap`, creating or resetting
/// it as needed. `make_weak` is only invoked when a fresh cache set is
/// created, keeping `Arc` weak-count traffic off the malloc fast path.
#[inline]
pub(crate) fn with_heap_tls<R>(
    heap: &HeapInner,
    make_weak: impl FnOnce() -> Weak<HeapInner>,
    f: impl FnOnce(&mut HeapTls) -> R,
) -> R {
    let (fast_id, fast_ptr) = FAST.get();
    if fast_id == heap.id() {
        // SAFETY: the fast slot only ever holds a pointer to a live boxed
        // entry of this thread's store (invalidated before removal), so
        // the pointee is valid, and `f` has exclusive access: nothing in
        // the allocator re-enters the TLS machinery while `f` runs.
        let entry = unsafe { &mut *fast_ptr };
        if entry.generation == heap.generation() {
            return f(entry);
        }
    }
    with_heap_tls_miss(heap, make_weak, f)
}

/// Fast-slot miss: scan (or extend) the store, refresh the slot.
#[cold]
fn with_heap_tls_miss<R>(
    heap: &HeapInner,
    make_weak: impl FnOnce() -> Weak<HeapInner>,
    f: impl FnOnce(&mut HeapTls) -> R,
) -> R {
    // `f`/`make_weak` are FnOnce: park them in Options so whichever
    // branch runs (the store closure or the teardown fallback) can take
    // them exactly once.
    let mut f = Some(f);
    let mut make_weak = Some(make_weak);
    let attempt = TLS.try_with(|tls| {
        let mut store = tls.borrow_mut();
        let gen = heap.generation();
        let id = heap.id();
        let pos = store.entries.iter().position(|e| e.heap_id == id);
        let entry: &mut Box<HeapTls> = match pos {
            Some(p) => {
                let e = &mut store.entries[p];
                if e.generation != gen {
                    // The heap crashed since these blocks were cached:
                    // they are now owned by the recovered free lists (or
                    // the GC), so the cache must be discarded, not reused.
                    // Overwrite in place: the box (and any fast-slot
                    // pointer to it) stays valid.
                    **e = HeapTls::new(id, gen, make_weak.take().unwrap()());
                }
                e
            }
            None => {
                store
                    .entries
                    .push(Box::new(HeapTls::new(id, gen, make_weak.take().unwrap()())));
                store.entries.last_mut().unwrap()
            }
        };
        let ptr: *mut HeapTls = &mut **entry;
        FAST.set((id, ptr));
        f.take().unwrap()(entry)
    });
    match attempt {
        Ok(r) => r,
        // `TLS` has already been destroyed: this allocation is running
        // inside another TLS destructor (a `#[global_allocator]` built on
        // this heap makes that an everyday event — any thread-local with
        // a Drop that frees memory lands here). Serve it through a
        // transient one-shot cache set and flush the blocks straight back
        // so nothing leaks when the box dies at the end of this call.
        // `FAST` is left alone: it is const-initialized (no destructor,
        // always accessible) but must never point at this transient box.
        Err(_) => {
            let mut entry =
                Box::new(HeapTls::new(heap.id(), heap.generation(), make_weak.take().unwrap()()));
            let r = f.take().unwrap()(&mut entry);
            let (generation, closed) = heap.begin_exit_drain();
            if generation == entry.generation && !closed {
                heap.drain_tls(&mut entry, false);
            }
            heap.end_exit_drain();
            r
        }
    }
}

/// Drain and remove this thread's cache set for `heap` (used by `close`).
/// A no-op once this thread's store has been destroyed (e.g. `close`
/// driven from an `atexit` handler after TLS teardown): the store's own
/// destructor already drained everything.
pub(crate) fn drain_current_thread(heap: &HeapInner) {
    let _ = TLS.try_with(|tls| {
        let mut store = tls.borrow_mut();
        if let Some(p) = store.entries.iter().position(|e| e.heap_id == heap.id()) {
            FAST.set((0, std::ptr::null_mut()));
            let mut entry = store.entries.swap_remove(p);
            if entry.generation == heap.generation() {
                // Close-time drain: flush outright, never park — a clean
                // shutdown leaves nothing cached.
                heap.drain_tls(&mut entry, false);
            }
        }
    });
}

/// Discard (without draining) this thread's cache set for `heap`.
pub(crate) fn discard_current_thread(heap: &HeapInner) {
    let _ = TLS.try_with(|tls| {
        let mut store = tls.borrow_mut();
        FAST.set((0, std::ptr::null_mut()));
        store.entries.retain(|e| e.heap_id != heap.id());
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bin_starts_empty_and_full() {
        let mut bin = CacheBin::new();
        assert_eq!(bin.len(), 0);
        assert_eq!(bin.capacity(), 0);
        // Unallocated bin reports full so the slow path sizes it.
        assert!(bin.is_full());
        assert_eq!(bin.pop(), None);
    }

    #[test]
    fn bin_lifo_order() {
        let mut bin = CacheBin::new();
        bin.ensure_capacity(8);
        assert!(!bin.is_full());
        for a in [16usize, 32, 48] {
            bin.push(a);
        }
        assert_eq!(bin.len(), 3);
        assert_eq!(bin.pop(), Some(48));
        assert_eq!(bin.pop(), Some(32));
        assert_eq!(bin.pop(), Some(16));
        assert_eq!(bin.pop(), None);
    }

    #[test]
    fn bin_full_at_capacity() {
        let mut bin = CacheBin::new();
        bin.ensure_capacity(4);
        for a in 0..4usize {
            assert!(!bin.is_full());
            bin.push(a * 8);
        }
        assert!(bin.is_full());
        let blocks: Vec<usize> = bin.blocks_mut().to_vec();
        assert_eq!(blocks, vec![0, 8, 16, 24]);
        bin.clear();
        assert_eq!(bin.len(), 0);
        assert!(!bin.is_full());
    }

    #[test]
    fn drain_front_keeps_the_lifo_tail() {
        let mut bin = CacheBin::new();
        bin.ensure_capacity(4);
        for a in [8usize, 16, 24, 32] {
            bin.push(a);
        }
        bin.drain_front(2); // oldest two (8, 16) flushed away
        assert_eq!(bin.len(), 2);
        assert_eq!(bin.pop(), Some(32));
        assert_eq!(bin.pop(), Some(24));
        assert_eq!(bin.pop(), None);
        bin.push(40);
        bin.drain_front(0);
        assert_eq!(bin.pop(), Some(40));
    }

    #[test]
    fn ensure_capacity_is_idempotent() {
        let mut bin = CacheBin::new();
        bin.ensure_capacity(16);
        bin.push(8);
        bin.ensure_capacity(16);
        assert_eq!(bin.len(), 1);
        assert_eq!(bin.capacity(), 16);
    }
}
