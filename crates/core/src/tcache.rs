//! Thread-local block caches (paper §4.2, §4.4).
//!
//! Most allocations and deallocations are served by per-thread caches of
//! free blocks, one per size class, with no synchronization at all — the
//! LRMalloc fast path that Ralloc inherits. The caches are **transient**:
//! nothing about them is flushed, and after a crash their contents are
//! recovered by the tracing GC (blocks in a cache are unreachable from
//! the roots, so they are reclaimed). On clean thread exit, the cache is
//! drained back to the heap so a clean shutdown leaves nothing cached.
//!
//! Because a process may hold several heaps, the TLS slot stores a small
//! vector of per-heap cache sets keyed by heap id. Each cache set is
//! stamped with the heap's *generation*, which is bumped by a simulated
//! crash: stale cached blocks from "before the crash" must be forgotten,
//! not reused, exactly as a real crash would forget DRAM.

use std::cell::RefCell;
use std::sync::Weak;

use crate::heap::HeapInner;
use crate::size_class::NUM_CLASSES;

/// Per-heap, per-thread cache set.
pub(crate) struct HeapTls {
    pub heap_id: u64,
    pub generation: u64,
    pub weak: Weak<HeapInner>,
    /// Cached absolute block addresses per class (class 0 unused).
    pub caches: Vec<Vec<usize>>,
}

impl HeapTls {
    fn new(heap_id: u64, generation: u64, weak: Weak<HeapInner>) -> HeapTls {
        HeapTls {
            heap_id,
            generation,
            weak,
            caches: (0..NUM_CLASSES).map(|_| Vec::new()).collect(),
        }
    }
}

/// Thread-local store of cache sets; drained on thread exit.
struct TlsStore {
    entries: Vec<HeapTls>,
}

impl Drop for TlsStore {
    fn drop(&mut self) {
        for entry in &mut self.entries {
            if let Some(heap) = entry.weak.upgrade() {
                // Return blocks only if the heap has not crashed or closed
                // since they were cached.
                if heap.generation() == entry.generation && !heap.is_closed() {
                    heap.drain_tls(entry);
                }
            }
        }
    }
}

thread_local! {
    static TLS: RefCell<TlsStore> = const { RefCell::new(TlsStore { entries: Vec::new() }) };
}

/// Run `f` with this thread's cache set for `heap`, creating or resetting
/// it as needed. `make_weak` is only invoked when a fresh cache set is
/// created, keeping `Arc` weak-count traffic off the malloc fast path.
pub(crate) fn with_heap_tls<R>(
    heap: &HeapInner,
    make_weak: impl FnOnce() -> Weak<HeapInner>,
    f: impl FnOnce(&mut HeapTls) -> R,
) -> R {
    TLS.with(|tls| {
        let mut store = tls.borrow_mut();
        let gen = heap.generation();
        let id = heap.id();
        let pos = store.entries.iter().position(|e| e.heap_id == id);
        let entry = match pos {
            Some(p) => {
                let e = &mut store.entries[p];
                if e.generation != gen {
                    // The heap crashed since these blocks were cached:
                    // they are now owned by the recovered free lists (or
                    // the GC), so the cache must be discarded, not reused.
                    *e = HeapTls::new(id, gen, make_weak());
                }
                e
            }
            None => {
                store.entries.push(HeapTls::new(id, gen, make_weak()));
                store.entries.last_mut().unwrap()
            }
        };
        f(entry)
    })
}

/// Drain and remove this thread's cache set for `heap` (used by `close`).
pub(crate) fn drain_current_thread(heap: &HeapInner) {
    TLS.with(|tls| {
        let mut store = tls.borrow_mut();
        if let Some(p) = store.entries.iter().position(|e| e.heap_id == heap.id()) {
            let mut entry = store.entries.swap_remove(p);
            if entry.generation == heap.generation() {
                heap.drain_tls(&mut entry);
            }
        }
    })
}

/// Discard (without draining) this thread's cache set for `heap`.
pub(crate) fn discard_current_thread(heap: &HeapInner) {
    TLS.with(|tls| {
        let mut store = tls.borrow_mut();
        store.entries.retain(|e| e.heap_id != heap.id());
    })
}
