//! Filter functions and the tracing machinery (paper §4.5.1, Figure 3).
//!
//! Recovery must enumerate every block reachable from the persistent
//! roots. In a type-unsafe setting the fallback is Boehm-Weiser
//! conservative scanning — every properly tagged 64-bit word is treated as
//! a potential reference. *Filter functions* let the programmer supply
//! precise type information instead: the [`Trace`] trait is the Rust
//! rendering of the paper's `filter<T>()` template; implementing it for a
//! node type enumerates exactly the `Pptr` fields that the collector
//! should follow. Like the paper, function pointers are re-established in
//! each execution (they are registered transiently by `get_root<T>`), so
//! recompilation and ASLR are harmless.

use pptr::{AtomicPptr, Pptr};

use crate::descriptor::{Desc, DescKind};
use crate::layout::Geometry;
use crate::size_class::{class_block_size, class_max_count};
use nvm::PmemPool;

/// A type-erased filter function: given the absolute address of a block
/// known to hold a `T`, enumerate its outgoing references into `tracer`.
pub type TraceFn = unsafe fn(addr: usize, tracer: &mut Tracer<'_>);

/// Monomorphic thunk adapting a [`Trace`] impl to [`TraceFn`].
///
/// # Safety
/// `addr` must be the start of a live block containing a valid `T`.
pub unsafe fn trace_thunk<T: Trace>(addr: usize, tracer: &mut Tracer<'_>) {
    unsafe { (*(addr as *const T)).trace(tracer) }
}

/// A *filter function* (paper §4.5.1): enumerates the references inside a
/// value so the recovery GC can trace precisely instead of conservatively.
///
/// # Safety
/// An implementation must visit **every** `Pptr`/`AtomicPptr` through
/// which the structure can reach other heap blocks; missing one makes
/// recovery free a live block. Visiting too much is safe (at worst it
/// leaks, like conservative collection).
///
/// Typical implementations call [`Tracer::visit_pptr`] /
/// [`Tracer::visit_atomic_pptr`] per pointer field:
///
/// ```ignore
/// unsafe impl Trace for TreeNode {
///     fn trace(&self, t: &mut Tracer) {
///         t.visit_pptr(&self.left);
///         t.visit_pptr(&self.right);
///     }
/// }
/// ```
pub unsafe trait Trace {
    /// Enumerate outgoing references.
    fn trace(&self, tracer: &mut Tracer<'_>);
}

/// Leaf impls: plain data holds no references.
macro_rules! leaf_trace {
    ($($t:ty),* $(,)?) => {
        $(unsafe impl Trace for $t {
            #[inline]
            fn trace(&self, _tracer: &mut Tracer<'_>) {}
        })*
    };
}
leaf_trace!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool, char, f32, f64, ());

unsafe impl<T: Trace, const N: usize> Trace for [T; N] {
    fn trace(&self, tracer: &mut Tracer<'_>) {
        for x in self {
            x.trace(tracer);
        }
    }
}

unsafe impl<T: Trace> Trace for Pptr<T> {
    #[inline]
    fn trace(&self, tracer: &mut Tracer<'_>) {
        tracer.visit_pptr(self);
    }
}

unsafe impl<T: Trace> Trace for AtomicPptr<T> {
    #[inline]
    fn trace(&self, tracer: &mut Tracer<'_>) {
        tracer.visit_atomic_pptr(self);
    }
}

/// Per-superblock mark bitmaps (block granularity).
pub(crate) struct MarkSet {
    /// One lazily allocated bitmap per carved superblock.
    bitmaps: Vec<Option<Box<[u64]>>>,
    /// Marked blocks per superblock.
    pub counts: Vec<u32>,
    /// Total marked blocks.
    pub total: u64,
    /// Total marked bytes.
    pub bytes: u64,
}

impl MarkSet {
    pub fn new(used_sb: usize) -> MarkSet {
        MarkSet {
            bitmaps: (0..used_sb).map(|_| None).collect(),
            counts: vec![0; used_sb],
            total: 0,
            bytes: 0,
        }
    }

    /// Mark block `blk` of superblock `sb`; true if newly marked.
    pub fn mark(&mut self, sb: usize, blk: u32, max_count: u32, bytes: u64) -> bool {
        let bm = self.bitmaps[sb]
            .get_or_insert_with(|| vec![0u64; (max_count as usize).div_ceil(64)].into_boxed_slice());
        let (w, b) = ((blk / 64) as usize, blk % 64);
        if bm[w] & (1 << b) != 0 {
            return false;
        }
        bm[w] |= 1 << b;
        self.counts[sb] += 1;
        self.total += 1;
        self.bytes += bytes;
        true
    }

    /// Is block `blk` of superblock `sb` marked?
    pub fn is_marked(&self, sb: usize, blk: u32) -> bool {
        match &self.bitmaps[sb] {
            None => false,
            Some(bm) => bm[(blk / 64) as usize] & (1 << (blk % 64)) != 0,
        }
    }

    /// Union another mark set into this one (parallel recovery merges the
    /// per-thread mark sets produced by tracing disjoint root subsets;
    /// overlap is possible when roots share substructure and is handled
    /// by the idempotent OR). `counts`/`total` are recomputed; `bytes`
    /// is left to the caller, which re-derives it from descriptors.
    pub fn merge_from(&mut self, other: &MarkSet) {
        assert_eq!(self.bitmaps.len(), other.bitmaps.len());
        self.total = 0;
        for sb in 0..self.bitmaps.len() {
            match (&mut self.bitmaps[sb], &other.bitmaps[sb]) {
                (_, None) => {}
                (slot @ None, Some(b)) => *slot = Some(b.clone()),
                (Some(a), Some(b)) => {
                    for (aw, bw) in a.iter_mut().zip(b.iter()) {
                        *aw |= *bw;
                    }
                }
            }
            self.counts[sb] = self.bitmaps[sb]
                .as_ref()
                .map_or(0, |bm| bm.iter().map(|w| w.count_ones()).sum());
            self.total += self.counts[sb] as u64;
        }
    }
}

/// The tracing context handed to filter functions (the paper's `GC`
/// class: visited set + pending stacks of blocks and their functions).
pub struct Tracer<'h> {
    pool: &'h PmemPool,
    geo: &'h Geometry,
    used_sb: usize,
    pub(crate) marks: MarkSet,
    /// Pending blocks: (block address, filter fn or None = conservative).
    pending: Vec<(usize, Option<TraceFn>)>,
    /// Conservative candidate words examined (diagnostics/ablation).
    pub(crate) cons_words_scanned: u64,
    /// Conservative candidates accepted (potential false positives).
    pub(crate) cons_hits: u64,
}

impl<'h> Tracer<'h> {
    pub(crate) fn new(pool: &'h PmemPool, geo: &'h Geometry, used_sb: usize) -> Tracer<'h> {
        Tracer {
            pool,
            geo,
            used_sb,
            marks: MarkSet::new(used_sb),
            pending: Vec::new(),
            cons_words_scanned: 0,
            cons_hits: 0,
        }
    }

    /// Classify an absolute address as a block start; returns
    /// (superblock, block index, block bytes) if valid.
    fn classify_target(&self, addr: usize) -> Option<(usize, u32, u64, u32)> {
        let base = self.pool.base() as usize;
        let off = addr.checked_sub(base)?;
        let sb = self.geo.sb_index_of(off)?;
        if sb >= self.used_sb {
            return None;
        }
        let desc = Desc::new(self.pool, self.geo, sb as u32);
        match desc.classify(self.geo, self.used_sb) {
            DescKind::Small { class } => {
                let bsize = class_block_size(class) as usize;
                let inner = off - self.geo.sb(sb);
                // Pointers to block interiors are not supported (§4.5).
                if !inner.is_multiple_of(bsize) {
                    return None;
                }
                let blk = (inner / bsize) as u32;
                if blk >= class_max_count(class) {
                    return None; // in the tail waste of the superblock
                }
                Some((sb, blk, bsize as u64, class_max_count(class)))
            }
            DescKind::LargeHead { .. } => {
                if off == self.geo.sb(sb) {
                    Some((sb, 0, desc.block_size(), 1))
                } else {
                    None
                }
            }
            DescKind::Continuation | DescKind::Invalid => None,
        }
    }

    /// Visit a candidate target address with an optional filter function.
    /// Marks the block and queues it for scanning if newly reached.
    pub fn visit_addr(&mut self, addr: usize, filter: Option<TraceFn>) {
        if let Some((sb, blk, bytes, mc)) = self.classify_target(addr) {
            if self.marks.mark(sb, blk, mc, bytes) {
                self.pending.push((addr, filter));
            }
        }
    }

    /// Visit through a typed persistent pointer (the body of the paper's
    /// `visit<T>()`).
    #[inline]
    pub fn visit_pptr<T: Trace>(&mut self, p: &Pptr<T>) {
        let t = p.as_ptr();
        if !t.is_null() {
            self.visit_addr(t as usize, Some(trace_thunk::<T>));
        }
    }

    /// Visit through an atomic typed persistent pointer.
    #[inline]
    pub fn visit_atomic_pptr<T: Trace>(&mut self, p: &AtomicPptr<T>) {
        let t = p.load(std::sync::atomic::Ordering::Relaxed);
        if !t.is_null() {
            self.visit_addr(t as usize, Some(trace_thunk::<T>));
        }
    }

    /// Visit a target conservatively: the block is marked and its contents
    /// will be scanned word-by-word for tagged candidate pointers.
    #[inline]
    pub fn visit_conservative(&mut self, addr: usize) {
        self.visit_addr(addr, None);
    }

    /// Absolute address of the superblock region's first byte. Structures
    /// that store region-relative offsets (e.g. ABA-counted heads, which
    /// cannot carry the self-relative tag) use this in their filters.
    #[inline]
    pub fn region_base(&self) -> usize {
        self.pool.base() as usize + self.geo.sb(0)
    }

    /// Visit a typed target given as a superblock-region offset (for
    /// packed pointer representations that store offsets, not
    /// self-relative `Pptr`s).
    #[inline]
    pub fn visit_region_offset<T: Trace>(&mut self, off: u64) {
        let addr = self.region_base() + off as usize;
        self.visit_addr(addr, Some(trace_thunk::<T>));
    }

    /// Mark a target without scanning its contents (for blocks known to
    /// hold no pointers, e.g. string payloads).
    #[inline]
    pub fn visit_leaf(&mut self, addr: usize) {
        if let Some((sb, blk, bytes, mc)) = self.classify_target(addr) {
            self.marks.mark(sb, blk, mc, bytes);
        }
    }

    /// The default conservative filter (paper Figure 3, `filter<T>`
    /// default): scan every 64-bit-aligned word of the block; words
    /// carrying the off-holder tag are candidate references.
    fn conservative_scan(&mut self, addr: usize) {
        let (bytes, _) = match self.classify_target(addr) {
            Some((_, _, b, _)) => (b, ()),
            None => return,
        };
        let words = (bytes / 8) as usize;
        for i in 0..words {
            let waddr = addr + i * 8;
            // SAFETY: within a classified block, 8-aligned; offline.
            let v = unsafe { std::ptr::read(waddr as *const u64) };
            self.cons_words_scanned += 1;
            if let Some(target) = pptr::decode_candidate(waddr, v) {
                self.cons_hits += 1;
                self.visit_conservative(target);
            }
        }
    }

    /// Consume the tracer, yielding its mark set and conservative-scan
    /// counters (words scanned, candidates accepted).
    pub(crate) fn into_parts(self) -> (MarkSet, u64, u64) {
        (self.marks, self.cons_words_scanned, self.cons_hits)
    }

    /// Drain the pending stack to a fixpoint (the paper's `collect()`).
    pub(crate) fn drain(&mut self) {
        while let Some((addr, filter)) = self.pending.pop() {
            match filter {
                // SAFETY: addr was classified as a block start and the
                // filter was registered for this block's type by
                // `get_root`/`visit_pptr`.
                Some(f) => unsafe { f(addr, self) },
                None => self.conservative_scan(addr),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anchor::{Anchor, SbState};
    use crate::size_class::SB_SIZE;
    use nvm::Mode;
    use std::sync::atomic::Ordering;

    fn setup() -> (PmemPool, Geometry) {
        let len = Geometry::pool_len_for_capacity(4 << 20);
        let pool = PmemPool::new(len, Mode::Direct);
        let geo = Geometry::from_pool_len(pool.len());
        (pool, geo)
    }

    /// Prepare superblock `i` as a small-class superblock.
    fn make_small(pool: &PmemPool, geo: &Geometry, i: u32, class: u32) {
        let d = Desc::new(pool, geo, i);
        d.set_size(class, class_block_size(class) as u64, class_max_count(class), true);
        d.set_anchor(Anchor { avail: 0, count: 0, state: SbState::Full }, Ordering::Release);
    }

    #[test]
    fn classify_rejects_interior_and_foreign() {
        let (pool, geo) = setup();
        make_small(&pool, &geo, 0, 8); // 64 B blocks
        let t = Tracer::new(&pool, &geo, 1);
        let base = pool.base() as usize;
        let sb0 = base + geo.sb(0);
        assert!(t.classify_target(sb0).is_some());
        assert!(t.classify_target(sb0 + 64).is_some());
        assert!(t.classify_target(sb0 + 32).is_none(), "interior pointer");
        assert!(t.classify_target(base).is_none(), "metadata region");
        assert!(t.classify_target(0x1000).is_none(), "outside pool");
        // Superblock 1 is beyond used_sb = 1.
        assert!(t.classify_target(sb0 + SB_SIZE).is_none());
    }

    #[test]
    fn mark_set_dedupes() {
        let mut m = MarkSet::new(2);
        assert!(m.mark(0, 5, 1024, 64));
        assert!(!m.mark(0, 5, 1024, 64));
        assert!(m.mark(1, 5, 1024, 64));
        assert_eq!(m.total, 2);
        assert_eq!(m.bytes, 128);
        assert!(m.is_marked(0, 5));
        assert!(!m.is_marked(0, 6));
    }

    #[test]
    fn conservative_scan_follows_tagged_words() {
        let (pool, geo) = setup();
        make_small(&pool, &geo, 0, 8);
        let base = pool.base() as usize;
        let b0 = base + geo.sb(0); // block 0
        let b3 = b0 + 3 * 64; // block 3
        // Block 0 holds a tagged self-relative pointer to block 3 plus noise.
        unsafe {
            let raw = Pptr::<u64>::encode(b0, b3);
            std::ptr::write(b0 as *mut u64, raw);
            std::ptr::write((b0 + 8) as *mut u64, 12345); // not a pointer
            std::ptr::write((b0 + 16) as *mut u64, b3 as u64); // untagged abs addr: ignored
        }
        let mut t = Tracer::new(&pool, &geo, 1);
        t.visit_conservative(b0);
        t.drain();
        assert!(t.marks.is_marked(0, 0));
        assert!(t.marks.is_marked(0, 3));
        assert_eq!(t.marks.total, 2, "untagged words must not mark");
    }

    #[test]
    fn typed_trace_follows_only_declared_fields() {
        let (pool, geo) = setup();
        make_small(&pool, &geo, 0, 8);
        let base = pool.base() as usize;
        let b0 = base + geo.sb(0);
        let b1 = b0 + 64;
        let b2 = b0 + 128;

        struct Node {
            next: Pptr<Node>,
            _decoy: u64,
        }
        unsafe impl Trace for Node {
            fn trace(&self, t: &mut Tracer<'_>) {
                t.visit_pptr(&self.next);
            }
        }
        unsafe {
            // b0.next -> b1; decoy holds a *tagged* pointer to b2 that a
            // conservative scan would chase but the filter must not.
            let n0 = &mut *(b0 as *mut Node);
            n0.next.set(b1 as *const Node);
            let decoy_addr = b0 + std::mem::offset_of!(Node, _decoy);
            std::ptr::write(decoy_addr as *mut u64, Pptr::<u64>::encode(decoy_addr, b2));
            let n1 = &mut *(b1 as *mut Node);
            n1.next.set(std::ptr::null());
            std::ptr::write((b1 + 8) as *mut u64, 0);
        }
        let mut t = Tracer::new(&pool, &geo, 1);
        t.visit_addr(b0, Some(trace_thunk::<Node>));
        t.drain();
        assert!(t.marks.is_marked(0, 0));
        assert!(t.marks.is_marked(0, 1));
        assert!(!t.marks.is_marked(0, 2), "filter fn must ignore decoy field");
    }

    #[test]
    fn visit_leaf_marks_without_scanning() {
        let (pool, geo) = setup();
        make_small(&pool, &geo, 0, 8);
        let base = pool.base() as usize;
        let b0 = base + geo.sb(0);
        let b1 = b0 + 64;
        unsafe {
            // b0 holds a tagged pointer to b1 but is visited as a leaf.
            std::ptr::write(b0 as *mut u64, Pptr::<u64>::encode(b0, b1));
        }
        let mut t = Tracer::new(&pool, &geo, 1);
        t.visit_leaf(b0);
        t.drain();
        assert!(t.marks.is_marked(0, 0));
        assert!(!t.marks.is_marked(0, 1));
    }
}
