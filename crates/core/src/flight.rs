//! Persistent flight recorder: a crash-surviving event ring carved from
//! the metadata region's tail slack.
//!
//! The volatile [`telemetry::Journal`] answers "what order did the
//! protocol steps happen in?" — but only while the process is alive. The
//! one time the answer really matters is after a SIGKILL, when the
//! journal died with the victim. The flight recorder closes that gap: a
//! small ring of fixed-size records lives *inside the pool itself*
//! (offsets [`FLIGHT_OFF`]`..`[`META_SIZE`], slack that every v3 image
//! provably never wrote), so the victim's last protocol steps are
//! readable from the heap file by whoever picks up the pieces — the
//! recovering process, the crash-test harness, or the `rinspect` CLI.
//!
//! # Record framing
//!
//! Each record is one 32-byte slot, two per cache line, never straddling
//! a line:
//!
//! ```text
//! +0   seq   u32  (ticket + 1; 0 = slot never written)
//! +4   crc   u32  (FNV-1a over seq and the three payload words)
//! +8   kind  u16  (telemetry::EventKind discriminant)
//! +10  tid   u16  (per-process thread token)
//! +12  t_ms  u32  (milliseconds since the process's clock origin)
//! +16  a     u64  (per-kind payload, as in the journal)
//! +24  b     u64
//! ```
//!
//! The writer stores the payload words first (Relaxed) and the seq+crc
//! word last (Release). A crash between those stores leaves a slot whose
//! checksum does not cover its payload; the scan counts it as *torn* and
//! drops it instead of fabricating history. A slot that was never
//! written is all-zero and is silently skipped — the distinction feeds
//! the `flight_torn_records` counter.
//!
//! # Persistence ordering
//!
//! Protocol events (grow/shrink/recovery phases, root publishes,
//! open/close) flush their cache line immediately but do **not** fence:
//! every such site sits next to an existing flush+fence of the protocol
//! itself, so the record rides the same fence and costs no extra
//! ordering. Traffic samples (fill/flush/steal/carve, recorded only at
//! [`FlightLevel::All`]) batch instead: a line is flushed when its
//! second slot fills, halving flush traffic at the price of possibly
//! losing the last sample — samples are best-effort by contract.
//!
//! Slot claims use one relaxed `fetch_add` on a volatile counter — no
//! CAS anywhere, mirroring the journal's design. The counter resumes
//! from the highest sequence found at adoption, so a pool's timeline
//! keeps a single monotonic order across crashes and reopens.

use crate::layout::{FLIGHT_CAP, FLIGHT_HDR_SIZE, FLIGHT_MAGIC, FLIGHT_OFF, FLIGHT_RECORDS_OFF, FLIGHT_REC_SIZE, META_SIZE};
use nvm::PmemPool;
use std::sync::atomic::{AtomicU64, Ordering};
use telemetry::EventKind;

/// How much the flight recorder writes. Env knob: `RALLOC_FLIGHT`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FlightLevel {
    /// Record nothing (the ring is still initialized and scannable).
    Off,
    /// Protocol events only: grow/shrink/recovery phases, root
    /// publishes, open/close. Off the malloc/free paths entirely.
    #[default]
    Proto,
    /// Protocol events plus slow-path traffic samples
    /// (fill/flush/steal/carve).
    All,
}

impl FlightLevel {
    /// Parse an env-style level name (`RALLOC_FLIGHT=off|proto|all`).
    pub fn parse(s: &str) -> Option<FlightLevel> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "none" | "0" => Some(FlightLevel::Off),
            "proto" | "protocol" | "1" => Some(FlightLevel::Proto),
            "all" | "2" => Some(FlightLevel::All),
            _ => None,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            FlightLevel::Off => "off",
            FlightLevel::Proto => "proto",
            FlightLevel::All => "all",
        }
    }
}

/// Is `kind` a protocol step (recorded at [`FlightLevel::Proto`]) rather
/// than a traffic sample (recorded only at [`FlightLevel::All`])?
fn is_proto(kind: EventKind) -> bool {
    !matches!(
        kind,
        EventKind::Fill | EventKind::Flush | EventKind::Steal | EventKind::Carve
    )
}

/// FNV-1a over the record's sequence number and payload words, folded to
/// 32 bits. Not cryptographic — it only needs to distinguish "this slot
/// was published whole" from "a crash interleaved two records here".
fn record_crc(seq: u32, w1: u64, a: u64, b: u64) -> u32 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in [seq as u64, w1, a, b] {
        for byte in w.to_le_bytes() {
            h = (h ^ byte as u64).wrapping_mul(0x100_0000_01b3);
        }
    }
    ((h >> 32) ^ h) as u32
}

/// A small per-thread token for record attribution. Distinct per live
/// thread within a process; reuses wrap after 65535 threads (diagnostic
/// labels, not identity).
pub fn thread_token() -> u16 {
    use std::sync::atomic::AtomicU16;
    static NEXT: AtomicU16 = AtomicU16::new(1);
    thread_local! {
        static TOKEN: u16 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TOKEN.with(|t| *t)
}

/// Initialize (or re-initialize) the ring region of a pool: zero every
/// slot, then write the ring header. The caller persists the header
/// (fresh heaps fold it into the metadata persist; the v3→v4 migration
/// flushes and fences it before republishing the magic).
pub fn init_ring(pool: &PmemPool) {
    // SAFETY: the flight region lies inside the metadata region, which
    // is always committed; the caller holds exclusive access (fresh
    // pool or single-threaded adoption).
    unsafe {
        for off in (FLIGHT_OFF..META_SIZE).step_by(8) {
            pool.write_u64(off, 0);
        }
        pool.write_u64(FLIGHT_OFF, FLIGHT_MAGIC);
        pool.write_u64(FLIGHT_OFF + 8, FLIGHT_CAP as u64);
    }
}

/// The crash-surviving event recorder. One per heap; writes land
/// directly in the pool's flight ring.
pub struct FlightRecorder {
    level: FlightLevel,
    /// Next ticket (volatile; durable order lives in the slots' seq
    /// words). Resumed from the adoption scan so sequence numbers stay
    /// monotonic across reopens.
    head: AtomicU64,
}

impl FlightRecorder {
    pub fn new(level: FlightLevel, resume_ticket: u64) -> FlightRecorder {
        FlightRecorder { level, head: AtomicU64::new(resume_ticket) }
    }

    pub fn level(&self) -> FlightLevel {
        self.level
    }

    /// Record one event into the pool's ring. Zero CAS: one relaxed
    /// `fetch_add` claims a slot, plain stores fill it, a release store
    /// of the seq+crc word publishes it. Compiled out under
    /// `telemetry-off`.
    #[inline]
    pub fn record(&self, pool: &PmemPool, kind: EventKind, a: u64, b: u64) {
        #[cfg(not(feature = "telemetry-off"))]
        {
            let proto = is_proto(kind);
            match self.level {
                FlightLevel::Off => return,
                FlightLevel::Proto if !proto => return,
                _ => {}
            }
            let ticket = self.head.fetch_add(1, Ordering::Relaxed);
            let idx = (ticket % FLIGHT_CAP as u64) as usize;
            let off = FLIGHT_RECORDS_OFF + idx * FLIGHT_REC_SIZE;
            let seq = (ticket as u32).wrapping_add(1);
            let t_ms = (telemetry::now_ns() / 1_000_000) as u32;
            let w1 = kind as u8 as u64
                | (thread_token() as u64) << 16
                | (t_ms as u64) << 32;
            let crc = record_crc(seq, w1, a, b);
            // SAFETY: slot offsets lie inside the always-committed
            // metadata region and are 8-aligned by construction.
            unsafe {
                pool.atomic_u64(off + 8).store(w1, Ordering::Relaxed);
                pool.atomic_u64(off + 16).store(a, Ordering::Relaxed);
                pool.atomic_u64(off + 24).store(b, Ordering::Relaxed);
                pool.atomic_u64(off).store(seq as u64 | (crc as u64) << 32, Ordering::Release);
            }
            // Protocol events flush now and ride the protocol's own
            // fence; samples flush when the second slot completes the
            // line (see module docs).
            if proto || idx & 1 == 1 {
                pool.flush(FLIGHT_RECORDS_OFF + (idx & !1) * FLIGHT_REC_SIZE, 64);
            }
        }
        #[cfg(feature = "telemetry-off")]
        let _ = (pool, kind, a, b);
    }
}

/// One decoded flight record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Monotonic sequence (1-based; gaps mean the ring wrapped).
    pub seq: u32,
    /// Raw kind discriminant (decoded by [`FlightEvent::kind`]; kept raw
    /// so future-version records survive a scan instead of vanishing).
    pub kind: u16,
    /// Writer's per-process thread token.
    pub tid: u16,
    /// Writer's clock, milliseconds. Origins differ across processes, so
    /// compare within one process's run only.
    pub t_ms: u32,
    pub a: u64,
    pub b: u64,
}

impl FlightEvent {
    pub fn kind(&self) -> Option<EventKind> {
        u8::try_from(self.kind).ok().and_then(EventKind::from_u8)
    }

    pub fn kind_name(&self) -> &'static str {
        self.kind().map_or("unknown", EventKind::name)
    }

    fn to_json(self) -> String {
        format!(
            "{{\"seq\": {}, \"t_ms\": {}, \"tid\": {}, \"kind\": \"{}\", \"a\": {}, \"b\": {}}}",
            self.seq, self.t_ms, self.tid, self.kind_name(), self.a, self.b
        )
    }
}

/// The result of scanning a pool's flight ring: the surviving records in
/// sequence order plus the count of torn (checksum-failed) slots.
#[derive(Debug, Default, Clone)]
pub struct FlightScan {
    /// Valid records, ascending by `seq`.
    pub events: Vec<FlightEvent>,
    /// Slots that were written but failed their checksum — a record torn
    /// by the crash (or by a racing writer, for live scans).
    pub torn: u64,
}

impl FlightScan {
    /// The ticket a recorder should resume from so new records extend
    /// this timeline monotonically. (Stored seq is ticket+1, so the next
    /// unclaimed ticket equals the highest stored seq.)
    pub fn resume_ticket(&self) -> u64 {
        self.events.last().map_or(0, |e| e.seq as u64)
    }

    /// `{"torn": N, "events": [{seq, t_ms, tid, kind, a, b}, ...]}`.
    pub fn to_json(&self) -> String {
        let mut s = format!("{{\"torn\": {}, \"events\": [", self.torn);
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&e.to_json());
        }
        s.push_str("]}");
        s
    }

    /// One line per event, oldest first, for human-facing reports.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        if self.torn > 0 {
            s.push_str(&format!("({} torn record(s) dropped)\n", self.torn));
        }
        for e in &self.events {
            s.push_str(&format!(
                "#{:<6} +{:>8}ms tid={:<3} {:<17} a={} b={}\n",
                e.seq, e.t_ms, e.tid, e.kind_name(), e.a, e.b
            ));
        }
        s
    }
}

enum SlotState {
    Empty,
    Torn,
    Valid(FlightEvent),
}

fn decode_slot(words: [u64; 4]) -> SlotState {
    if words == [0; 4] {
        return SlotState::Empty;
    }
    let seq = words[0] as u32;
    let crc = (words[0] >> 32) as u32;
    if seq == 0 || crc != record_crc(seq, words[1], words[2], words[3]) {
        return SlotState::Torn;
    }
    SlotState::Valid(FlightEvent {
        seq,
        kind: words[1] as u16,
        tid: (words[1] >> 16) as u16,
        t_ms: (words[1] >> 32) as u32,
        a: words[2],
        b: words[3],
    })
}

fn scan_words(read: impl Fn(usize) -> u64) -> FlightScan {
    if read(FLIGHT_OFF) != FLIGHT_MAGIC {
        return FlightScan::default();
    }
    let mut scan = FlightScan::default();
    for idx in 0..FLIGHT_CAP {
        let off = FLIGHT_RECORDS_OFF + idx * FLIGHT_REC_SIZE;
        match decode_slot([read(off), read(off + 8), read(off + 16), read(off + 24)]) {
            SlotState::Empty => {}
            SlotState::Torn => scan.torn += 1,
            SlotState::Valid(e) => scan.events.push(e),
        }
    }
    // Sequence order == timeline order. Sorting by the 32-bit seq
    // assumes fewer than 2^32 recorded events over the pool's lifetime;
    // at protocol-event rates that is decades of reopens.
    scan.events.sort_by_key(|e| e.seq);
    scan
}

/// Scan the flight ring of a live pool. Reads are atomic, so racing a
/// writer yields at worst a torn slot (counted, not fabricated).
pub fn scan_pool(pool: &PmemPool) -> FlightScan {
    // SAFETY: metadata region offsets, 8-aligned, always committed.
    scan_words(|off| unsafe { pool.atomic_u64(off).load(Ordering::Acquire) })
}

/// Scan the flight ring of a raw pool image (a heap file read from disk,
/// a crash image). Images shorter than the metadata region — or whose
/// ring header does not carry [`FLIGHT_MAGIC`], e.g. pre-v4 pools —
/// yield an empty scan.
pub fn scan_image(image: &[u8]) -> FlightScan {
    if image.len() < META_SIZE {
        return FlightScan::default();
    }
    scan_words(|off| u64::from_ne_bytes(image[off..off + 8].try_into().unwrap()))
}

const _: () = assert!(FLIGHT_HDR_SIZE >= 16, "ring header holds magic + capacity");

#[cfg(test)]
mod tests {
    use super::*;
    use nvm::{FlushModel, Mode};

    fn pool() -> PmemPool {
        let p = PmemPool::with_reserve(1 << 20, 1 << 20, Mode::Direct, FlushModel::free(), None);
        init_ring(&p);
        p
    }

    #[test]
    fn uninitialized_ring_scans_empty() {
        let p = PmemPool::with_reserve(1 << 20, 1 << 20, Mode::Direct, FlushModel::free(), None);
        let scan = scan_pool(&p);
        assert!(scan.events.is_empty());
        assert_eq!(scan.torn, 0);
        assert_eq!(scan.resume_ticket(), 0);
    }

    #[cfg(not(feature = "telemetry-off"))]
    #[test]
    fn records_survive_an_image_round_trip() {
        let p = pool();
        let rec = FlightRecorder::new(FlightLevel::Proto, 0);
        rec.record(&p, EventKind::GrowCommit, 4096, 0);
        rec.record(&p, EventKind::GrowPublish, 4096, 0);
        rec.record(&p, EventKind::RootPublish, 3, 17);
        let scan = scan_image(&p.persistent_image());
        assert_eq!(scan.torn, 0);
        let kinds: Vec<_> = scan.events.iter().map(|e| e.kind_name()).collect();
        assert_eq!(kinds, ["grow_commit", "grow_publish", "root_publish"]);
        assert_eq!(scan.events[2].a, 3);
        assert_eq!(scan.events[2].b, 17);
        assert_eq!(scan.resume_ticket(), 3);
        assert!(scan.events.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[cfg(not(feature = "telemetry-off"))]
    #[test]
    fn proto_level_skips_traffic_samples() {
        let p = pool();
        let rec = FlightRecorder::new(FlightLevel::Proto, 0);
        rec.record(&p, EventKind::Fill, 64, 3);
        rec.record(&p, EventKind::Steal, 1, 3);
        rec.record(&p, EventKind::GrowCommit, 4096, 0);
        let scan = scan_pool(&p);
        assert_eq!(scan.events.len(), 1);
        assert_eq!(scan.events[0].kind_name(), "grow_commit");
        let all = FlightRecorder::new(FlightLevel::All, scan.resume_ticket());
        all.record(&p, EventKind::Fill, 64, 3);
        assert_eq!(scan_pool(&p).events.len(), 2);
        let off = FlightRecorder::new(FlightLevel::Off, 0);
        off.record(&p, EventKind::GrowCommit, 1, 0);
        assert_eq!(scan_pool(&p).events.len(), 2, "Off records nothing");
    }

    #[cfg(not(feature = "telemetry-off"))]
    #[test]
    fn wraparound_keeps_newest_cap_records() {
        let p = pool();
        let rec = FlightRecorder::new(FlightLevel::Proto, 0);
        let total = FLIGHT_CAP as u64 + 25;
        for i in 0..total {
            rec.record(&p, EventKind::GrowCommit, i, 0);
        }
        let scan = scan_pool(&p);
        assert_eq!(scan.torn, 0);
        assert_eq!(scan.events.len(), FLIGHT_CAP);
        let seqs: Vec<u64> = scan.events.iter().map(|e| e.seq as u64).collect();
        let expect: Vec<u64> = (26..=total).collect();
        assert_eq!(seqs, expect, "scan keeps the newest FLIGHT_CAP seqs, contiguous");
        assert_eq!(scan.resume_ticket(), total);
    }

    #[cfg(not(feature = "telemetry-off"))]
    #[test]
    fn corrupted_payload_is_torn_not_history() {
        let p = pool();
        let rec = FlightRecorder::new(FlightLevel::Proto, 0);
        rec.record(&p, EventKind::GrowCommit, 100, 0);
        rec.record(&p, EventKind::GrowPublish, 100, 0);
        let mut image = p.persistent_image();
        // Flip one payload byte of the newest record (slot 1's `a`).
        image[FLIGHT_RECORDS_OFF + FLIGHT_REC_SIZE + 16] ^= 0xFF;
        let scan = scan_image(&image);
        assert_eq!(scan.torn, 1, "corrupted record is counted");
        assert_eq!(scan.events.len(), 1, "...and dropped, not decoded");
        assert_eq!(scan.events[0].kind_name(), "grow_commit");
    }

    #[cfg(not(feature = "telemetry-off"))]
    #[test]
    fn resume_extends_the_timeline_monotonically() {
        let p = pool();
        let rec = FlightRecorder::new(FlightLevel::Proto, 0);
        for _ in 0..5 {
            rec.record(&p, EventKind::GrowCommit, 0, 0);
        }
        let first = scan_pool(&p);
        let rec2 = FlightRecorder::new(FlightLevel::Proto, first.resume_ticket());
        rec2.record(&p, EventKind::Open, 1, 0);
        let scan = scan_pool(&p);
        assert_eq!(scan.events.last().unwrap().seq, 6);
        assert_eq!(scan.events.last().unwrap().kind_name(), "open");
    }

    #[test]
    fn level_parsing_matches_env_grammar() {
        assert_eq!(FlightLevel::parse("off"), Some(FlightLevel::Off));
        assert_eq!(FlightLevel::parse("Proto"), Some(FlightLevel::Proto));
        assert_eq!(FlightLevel::parse(" all "), Some(FlightLevel::All));
        assert_eq!(FlightLevel::parse("0"), Some(FlightLevel::Off));
        assert_eq!(FlightLevel::parse("bogus"), None);
    }

    #[cfg(not(feature = "telemetry-off"))]
    #[test]
    fn ring_overflow_is_a_proto_event() {
        // A remote-ring overflow means the producer side degraded from
        // wait-free pushes to anchor CASes — a protocol-level state change
        // that must survive into the post-mortem timeline even at the
        // default `proto` recording level.
        let p = pool();
        let rec = FlightRecorder::new(FlightLevel::Proto, 0);
        rec.record(&p, EventKind::Fill, 64, 8); // traffic: dropped at proto
        rec.record(&p, EventKind::RemoteRingOverflow, 3, 1024);
        let scan = scan_pool(&p);
        assert_eq!(scan.events.len(), 1);
        let e = &scan.events[0];
        assert_eq!(e.kind_name(), "remote_ring_overflow");
        assert_eq!((e.a, e.b), (3, 1024));
    }

    #[cfg(not(feature = "telemetry-off"))]
    #[test]
    fn json_and_text_formats_carry_the_events() {
        let p = pool();
        let rec = FlightRecorder::new(FlightLevel::Proto, 0);
        rec.record(&p, EventKind::Close, 0, 0);
        let scan = scan_pool(&p);
        let json = scan.to_json();
        assert!(json.contains("\"torn\": 0"));
        assert!(json.contains("\"kind\": \"close\""));
        assert!(scan.to_text().contains("close"));
    }
}
