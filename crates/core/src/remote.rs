//! Bounded MPSC remote-free rings: the wait-free producer half of the
//! deferred remote-free protocol (mimalloc-style, adapted to Ralloc's
//! sharded heap).
//!
//! A thread freeing blocks whose superblock it does not *own* (the
//! superblock's partial-list shard, `sb % S`, is not the freeing
//! thread's home shard) used to pay one anchor CAS per touched
//! superblock group at flush time — the producer/consumer bleeding cost
//! the `flush_blocks_grouped` escalation machinery exists for. With the
//! rings, the freeing thread instead parks the group (one
//! superblock-coherent [`RemoteBatch`]) on the owning shard's ring:
//!
//! * **Producer (any thread, wait-free, zero CAS)**: one relaxed
//!   `fetch_add` claims a slot ticket, one `swap` publishes the batch
//!   pointer. No compare-exchange, no retry loop — the push cannot lose
//!   a race, so its cost is two uncontended RMWs regardless of how many
//!   threads bleed into the same shard.
//! * **Overflow (ring lapped)**: the publishing `swap` returns the batch
//!   the slot still held — the producer now owns *that* batch and must
//!   return it through the direct grouped-CAS path. Nothing is ever
//!   dropped; a full ring degrades to exactly the pre-ring protocol.
//! * **Owner drain (zero CAS per block)**: fills `swap(0)` each slot and
//!   move the claimed batches straight into the filling thread's cache
//!   bin, stopping the sweep as soon as the bin is full — unclaimed
//!   batches stay parked for the next fill, so a small bin never forces
//!   claimed-but-homeless batches back through the anchor. Because every
//!   claim is a `swap`, concurrent drainers (the pre-carve steal drain)
//!   split the ring safely: each batch is claimed exactly once.
//!
//! The `pushed`/`drained` counters gate the drain probe: a fill whose
//! home ring shows no pending batches skips the slot scan entirely, so
//! the single-threaded fast path pays two relaxed loads per fill.
//!
//! **Rings are volatile by design.** They live in DRAM beside the thread
//! caches and are never flushed: a crash loses only in-flight remote
//! frees, whose blocks are unreachable from the persistent roots and are
//! therefore reclaimed by recovery's reachability sweep — the same
//! argument that covers cache bins. Clean close and explicit shrink
//! drain the rings back to their superblocks first
//! (`HeapInner::drain_rings_to_heap`); crash simulation and recovery
//! discard them (`HeapInner::discard_rings`).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// One superblock-coherent batch of remotely-freed block addresses. The
/// batch owns its blocks from the moment the flusher partitions them
/// until a drainer (or displacing producer) returns them — the anchor
/// still counts them as allocated, so the superblock can never reach
/// EMPTY (and thus never be retired or re-typed) while any of its blocks
/// sit in a ring.
pub(crate) struct RemoteBatch {
    /// Superblock index every block in the batch belongs to.
    pub sb: u32,
    /// Absolute block addresses, all inside `sb`.
    pub blocks: Vec<usize>,
}

/// One shard's bounded MPSC ring of [`RemoteBatch`] pointers. Slots hold
/// `Box::into_raw` pointers (0 = empty); every non-zero word is owned by
/// exactly one party — the slot until a `swap` claims it, the claimant
/// after.
pub(crate) struct RemoteRing {
    slots: Box<[AtomicUsize]>,
    mask: usize,
    /// Producer slot-claim ticket (monotonic; slot = ticket & mask).
    tail: AtomicU64,
    /// Batches pushed. Bumped *before* the publishing swap, so a drain
    /// probe that reads `pushed == drained` can have missed only batches
    /// whose push had not yet started.
    pushed: AtomicU64,
    /// Batches that left the ring (drained or displaced).
    drained: AtomicU64,
    /// Highest in-flight batch count ever observed by a push (a gauge
    /// for capacity tuning: a high-water near the slot count means the
    /// ring is displacing and its capacity is the bottleneck).
    high_water: AtomicU64,
}

impl RemoteRing {
    /// A ring with at least `cap` slots (rounded up to a power of two).
    pub fn new(cap: usize) -> RemoteRing {
        let cap = cap.max(2).next_power_of_two();
        RemoteRing {
            slots: (0..cap).map(|_| AtomicUsize::new(0)).collect(),
            mask: cap - 1,
            tail: AtomicU64::new(0),
            pushed: AtomicU64::new(0),
            drained: AtomicU64::new(0),
            high_water: AtomicU64::new(0),
        }
    }

    /// Slot count (diagnostics).
    #[allow(dead_code)]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Cheap drain gate: false only when every started push has been
    /// matched by a drain. May transiently report pending for a batch
    /// another drainer is about to claim — the slot scan then finds
    /// nothing, which is correct.
    #[inline]
    pub fn maybe_pending(&self) -> bool {
        self.pushed.load(Ordering::Acquire) != self.drained.load(Ordering::Acquire)
    }

    /// Batches currently in flight (pushed, not yet drained). Racy by
    /// nature — a telemetry read, not a synchronization primitive.
    pub fn occupancy(&self) -> u64 {
        self.pushed
            .load(Ordering::Acquire)
            .saturating_sub(self.drained.load(Ordering::Acquire))
    }

    /// Highest occupancy any push has observed over the ring's lifetime.
    pub fn high_water(&self) -> u64 {
        self.high_water.load(Ordering::Acquire)
    }

    /// Producer push: one relaxed `fetch_add` + one `swap`, zero CAS,
    /// wait-free. When the ring has lapped an undrained slot, the
    /// displaced batch is returned and the **caller owns it**: it must
    /// be flushed through the direct anchor-CAS path so no block is ever
    /// lost to overflow.
    pub fn push(&self, batch: Box<RemoteBatch>) -> Option<Box<RemoteBatch>> {
        debug_assert!(!batch.blocks.is_empty());
        let pushed = self.pushed.fetch_add(1, Ordering::Release) + 1;
        // High-water from the producer side only: one relaxed read plus a
        // fetch_max that loses nothing the fast path depends on.
        let occ = pushed.saturating_sub(self.drained.load(Ordering::Relaxed));
        self.high_water.fetch_max(occ, Ordering::Relaxed);
        let t = self.tail.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(t as usize) & self.mask];
        let prev = slot.swap(Box::into_raw(batch) as usize, Ordering::AcqRel);
        if prev == 0 {
            return None;
        }
        // The displaced batch left the ring through us, not a drainer.
        self.drained.fetch_add(1, Ordering::Release);
        // SAFETY: non-zero slot words are exclusively `Box::into_raw`
        // pointers published by `push`; the swap above transferred this
        // one to us and zero other parties can observe it again.
        Some(unsafe { Box::from_raw(prev as *mut RemoteBatch) })
    }

    /// Claim published batches and hand each to `f` until `f` returns
    /// `false` (or the sweep completes). Each slot is claimed with a
    /// `swap(0)`, so concurrent drainers partition the ring without
    /// coordination and every batch is seen exactly once; batches past
    /// an early stop simply stay parked for the next drain. Returns the
    /// number of batches claimed.
    pub fn drain(&self, mut f: impl FnMut(Box<RemoteBatch>) -> bool) -> usize {
        let mut claimed = 0usize;
        let mut keep_going = true;
        for slot in self.slots.iter() {
            if !keep_going {
                break;
            }
            // Cheap empty-slot skip before the RMW.
            if slot.load(Ordering::Relaxed) == 0 {
                continue;
            }
            let p = slot.swap(0, Ordering::AcqRel);
            if p != 0 {
                claimed += 1;
                // SAFETY: see `push` — the swap made us the unique owner.
                keep_going = f(unsafe { Box::from_raw(p as *mut RemoteBatch) });
            }
        }
        if claimed > 0 {
            self.drained.fetch_add(claimed as u64, Ordering::Release);
        }
        claimed
    }
}

impl Drop for RemoteRing {
    fn drop(&mut self) {
        for slot in self.slots.iter_mut() {
            let p = *slot.get_mut();
            if p != 0 {
                // SAFETY: exclusive access (`&mut self`); the word is a
                // unique `Box::into_raw` pointer nothing else can claim.
                drop(unsafe { Box::from_raw(p as *mut RemoteBatch) });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(sb: u32, blocks: &[usize]) -> Box<RemoteBatch> {
        Box::new(RemoteBatch { sb, blocks: blocks.to_vec() })
    }

    #[test]
    fn push_then_drain_roundtrips_batches() {
        let ring = RemoteRing::new(8);
        assert!(!ring.maybe_pending());
        assert!(ring.push(batch(3, &[16, 32])).is_none());
        assert!(ring.push(batch(7, &[64])).is_none());
        assert!(ring.maybe_pending());
        let mut got: Vec<(u32, usize)> = Vec::new();
        let n = ring.drain(|b| {
            got.push((b.sb, b.blocks.len()));
            true
        });
        assert_eq!(n, 2);
        got.sort_unstable();
        assert_eq!(got, vec![(3, 2), (7, 1)]);
        assert!(!ring.maybe_pending());
        assert_eq!(ring.drain(|_| -> bool { panic!("ring must be empty") }), 0);
    }

    #[test]
    fn occupancy_and_high_water_track_traffic() {
        let ring = RemoteRing::new(8);
        assert_eq!((ring.occupancy(), ring.high_water()), (0, 0));
        let _ = ring.push(batch(0, &[8]));
        let _ = ring.push(batch(1, &[8]));
        assert_eq!((ring.occupancy(), ring.high_water()), (2, 2));
        ring.drain(|_| true);
        // Occupancy falls with the drain; the high-water mark does not.
        assert_eq!((ring.occupancy(), ring.high_water()), (0, 2));
        let _ = ring.push(batch(2, &[8]));
        assert_eq!((ring.occupancy(), ring.high_water()), (1, 2));
    }

    #[test]
    fn high_water_saturates_at_capacity_under_displacement() {
        let ring = RemoteRing::new(2);
        for sb in 0..6u32 {
            let _ = ring.push(batch(sb, &[8]));
        }
        // Displacement returns a batch per lapped push, so in-flight
        // never exceeds capacity + 1 (the instant between the push
        // count bump and the displacing swap).
        assert!(ring.high_water() <= ring.capacity() as u64 + 1);
        assert_eq!(ring.occupancy(), 2);
    }

    #[test]
    fn capacity_rounds_up_and_floors() {
        assert_eq!(RemoteRing::new(0).capacity(), 2);
        assert_eq!(RemoteRing::new(5).capacity(), 8);
        assert_eq!(RemoteRing::new(64).capacity(), 64);
    }

    #[test]
    fn overflow_returns_the_displaced_batch_losing_nothing() {
        let ring = RemoteRing::new(2);
        let mut out: Vec<u32> = Vec::new();
        for sb in 0..5u32 {
            if let Some(displaced) = ring.push(batch(sb, &[8])) {
                out.push(displaced.sb);
            }
        }
        // Slots hold the 2 newest batches; the 3 oldest were displaced
        // back to the pushers in FIFO-lap order.
        assert_eq!(out, vec![0, 1, 2]);
        ring.drain(|b| {
            out.push(b.sb);
            true
        });
        out.sort_unstable();
        assert_eq!(out, vec![0, 1, 2, 3, 4], "every batch accounted for");
        assert!(!ring.maybe_pending());
    }

    #[test]
    fn pending_gate_tracks_displacement() {
        let ring = RemoteRing::new(2);
        for sb in 0..6u32 {
            let _ = ring.push(batch(sb, &[8]));
        }
        // 6 pushed, 4 displaced: exactly 2 remain pending.
        assert!(ring.maybe_pending());
        assert_eq!(ring.drain(|_| true), 2);
        assert!(!ring.maybe_pending());
    }

    #[test]
    fn early_stop_leaves_the_rest_parked() {
        let ring = RemoteRing::new(8);
        for sb in 0..4u32 {
            assert!(ring.push(batch(sb, &[8])).is_none());
        }
        // Stop after two: the other two stay claimed by nobody.
        let mut got = 0;
        let n = ring.drain(|_| {
            got += 1;
            got < 2
        });
        assert_eq!((n, got), (2, 2));
        assert!(ring.maybe_pending(), "two batches must still be parked");
        assert_eq!(ring.drain(|_| true), 2, "a later drain claims the remainder");
        assert!(!ring.maybe_pending());
    }

    #[test]
    fn concurrent_producers_and_drainers_lose_no_blocks() {
        let ring = RemoteRing::new(16);
        let producers = 8usize;
        let per = 200usize;
        let total: usize = std::thread::scope(|s| {
            let handles: Vec<_> = (0..producers)
                .map(|t| {
                    let ring = &ring;
                    s.spawn(move || {
                        // Displaced batches come back to the producer;
                        // count their blocks as "returned the slow way".
                        let mut returned = 0usize;
                        for i in 0..per {
                            let b = batch((t * per + i) as u32, &[t * per + i]);
                            if let Some(d) = ring.push(b) {
                                returned += d.blocks.len();
                            }
                        }
                        returned
                    })
                })
                .collect();
            // One concurrent drainer racing the producers.
            let drainer = s.spawn(|| {
                let mut drained = 0usize;
                for _ in 0..2000 {
                    ring.drain(|b| {
                        drained += b.blocks.len();
                        true
                    });
                    std::hint::spin_loop();
                }
                drained
            });
            let mut sum: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
            sum += drainer.join().unwrap();
            sum
        });
        // Whatever is still parked drains now; the grand total must be
        // every block ever pushed, each exactly once.
        let mut rest = 0usize;
        ring.drain(|b| {
            rest += b.blocks.len();
            true
        });
        assert_eq!(total + rest, producers * per);
        assert!(!ring.maybe_pending());
    }

    #[test]
    fn drop_frees_parked_batches() {
        // Leak-checked only under sanitizers/miri, but must not crash;
        // the Drop impl walks the slots and boxes each leftover back.
        let ring = RemoteRing::new(4);
        for sb in 0..3u32 {
            assert!(ring.push(batch(sb, &[8, 16])).is_none());
        }
        drop(ring);
    }
}
