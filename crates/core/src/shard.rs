//! Sharded per-size-class partial lists with work-stealing.
//!
//! The paper keeps **one** global lock-free partial list per size class
//! (§4.2). Under high thread counts that single `Counted` head becomes
//! the contention point of both slow paths: every Fill pops it and every
//! FULL→PARTIAL flush transition pushes it, so the head's cache line
//! ping-pongs and CAS retries pile up. This module splits each class's
//! partial list into `S` independent Treiber shards:
//!
//! * **Placement**: each thread owns a *home shard*, derived by hashing a
//!   process-unique thread token (Fibonacci multiplicative hash, so
//!   consecutive threads land on well-spread shards even when `S` is a
//!   power of two). Pushes always go to the pusher's home shard, which
//!   keeps a thread's recently-flushed superblocks on the shard it will
//!   pop next — the same locality argument as the thread cache, one
//!   level down.
//! * **Work-stealing pops**: a Fill pops its home shard first; if that
//!   shard is empty it probes the remaining shards in ring order before
//!   giving up and letting the caller fall back to the superblock free
//!   list or a fresh carve. A steal is a plain pop of a neighbor shard —
//!   descriptor ownership transfers exactly as on the home path, so no
//!   new synchronization is needed; the cost is bounded by `S - 1` extra
//!   head loads when everything is empty.
//!
//! The shard count `S` is a *runtime* configuration
//! ([`crate::heap::RallocConfig::partial_shards`], env-overridable via
//! `RALLOC_SHARDS`), clamped to [`MAX_SHARDS`]; the metadata region
//! reserves `MAX_SHARDS` head slots per class so the same pool image can
//! be reopened under any shard count. The shards are transient like the
//! global list they replace: recovery resets every head and rebuilds the
//! lists *born sharded* — each superblock is placed on shard
//! `sb_index % S` ([`place_superblock`]), a pure function of the index so
//! 1-worker and N-worker rebuilds agree on per-shard membership.

use std::sync::atomic::{AtomicU64, Ordering};

use nvm::PmemPool;

use crate::layout::Geometry;
pub use crate::layout::MAX_SHARDS;
use crate::lists::DescList;

/// Process-wide thread-token source. Tokens only ever increase, so two
/// live threads never share one; the hash spreads them over shards.
static NEXT_THREAD_TOKEN: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_TOKEN: u64 = NEXT_THREAD_TOKEN.fetch_add(1, Ordering::Relaxed);
}

/// This thread's shard-placement token (stable for the thread's life).
#[inline]
pub fn thread_token() -> u64 {
    THREAD_TOKEN.with(|t| *t)
}

/// Hash a thread token onto `0..shards` (Fibonacci multiplicative hash).
#[inline]
pub fn home_shard(token: u64, shards: u32) -> u32 {
    debug_assert!(shards >= 1);
    let h = token.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (h >> 32) as u32 % shards
}

/// Recovery-time placement: the shard that superblock `sb` is rebuilt
/// onto. A pure function of the index so parallel sweep workers (and
/// reruns with different worker counts) agree on per-shard membership.
#[inline]
pub fn place_superblock(sb: usize, shards: u32) -> u32 {
    (sb % shards as usize) as u32
}

/// Clamp a requested shard count to the valid range, honoring the
/// `RALLOC_SHARDS` environment override (benchmarks use it to sweep shard
/// counts in one binary).
pub fn effective_shards(requested: usize) -> u32 {
    let req = std::env::var("RALLOC_SHARDS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(requested);
    req.clamp(1, MAX_SHARDS) as u32
}

/// Read a boolean env knob: `Some(true)` for `1`/`true`/`yes`/`on`,
/// `Some(false)` for `0`/`false`/`no`/`off`, `None` when unset or
/// unparsable.
pub(crate) fn env_flag(name: &str) -> Option<bool> {
    match std::env::var(name).ok()?.to_ascii_lowercase().as_str() {
        "1" | "true" | "yes" | "on" => Some(true),
        "0" | "false" | "no" | "off" => Some(false),
        _ => None,
    }
}

/// Read a byte-size env knob: a plain integer, optionally suffixed with
/// `K`/`M`/`G` (case-insensitive, powers of 1024). `None` when unset or
/// unparsable. Used by `RALLOC_INIT_CAP`/`RALLOC_MAX_CAP`.
pub(crate) fn env_size(name: &str) -> Option<usize> {
    parse_size(&std::env::var(name).ok()?)
}

/// The pure parser behind [`env_size`] (separately testable: unit tests
/// must not mutate the process environment — concurrent `setenv` and
/// `getenv` across test threads is UB on glibc).
fn parse_size(raw: &str) -> Option<usize> {
    let s = raw.trim().to_ascii_uppercase();
    let (digits, shift) = match s.strip_suffix(['K', 'M', 'G']) {
        Some(d) => (d, match s.as_bytes()[s.len() - 1] {
            b'K' => 10,
            b'M' => 20,
            _ => 30,
        }),
        None => (s.as_str(), 0),
    };
    digits.trim().parse::<usize>().ok().map(|n| n << shift)
}

/// Outcome of a sharded pop, so callers can account steals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPop {
    /// The popped descriptor index.
    pub idx: u32,
    /// True when the descriptor came from a neighbor shard, not home.
    pub stolen: bool,
}

/// The `S` partial-list shards of one size class.
#[derive(Debug, Clone, Copy)]
pub struct ShardedPartial {
    class: u32,
    shards: u32,
}

impl ShardedPartial {
    /// View the shards of `class` under a live shard count of `shards`.
    #[inline]
    pub fn new(class: u32, shards: u32) -> ShardedPartial {
        debug_assert!((1..=MAX_SHARDS as u32).contains(&shards));
        ShardedPartial { class, shards }
    }

    /// The live shard count.
    #[inline]
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// Push `idx` onto shard `home` (callers pass their home shard; the
    /// recovery sweep passes [`place_superblock`]).
    #[inline]
    pub fn push(&self, pool: &PmemPool, geo: &Geometry, idx: u32, home: u32) {
        debug_assert!(home < self.shards);
        DescList::partial_shard(geo, self.class, home).push(pool, geo, idx);
    }

    /// Pop from shard `home`, stealing from neighbors in ring order when
    /// home is empty. `None` only when every shard is empty.
    pub fn pop(&self, pool: &PmemPool, geo: &Geometry, home: u32) -> Option<ShardPop> {
        debug_assert!(home < self.shards);
        for probe in 0..self.shards {
            let s = (home + probe) % self.shards;
            if let Some(idx) = DescList::partial_shard(geo, self.class, s).pop(pool, geo) {
                return Some(ShardPop { idx, stolen: probe != 0 });
            }
        }
        None
    }

    /// Reset every reserved head slot — not just the live shards, since a
    /// previous run may have used more (offline use: recovery step 3).
    pub fn reset_all(&self, pool: &PmemPool, geo: &Geometry) {
        for s in 0..MAX_SHARDS as u32 {
            DescList::partial_shard(geo, self.class, s).reset(pool);
        }
    }

    /// Snapshot the contents of every live shard (offline: tests,
    /// checker, diagnostics). Index `s` of the result is shard `s`.
    pub fn collect_all(&self, pool: &PmemPool, geo: &Geometry) -> Vec<Vec<u32>> {
        (0..self.shards)
            .map(|s| DescList::partial_shard(geo, self.class, s).collect(pool, geo))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::Geometry;
    use nvm::Mode;

    fn test_heap() -> (PmemPool, Geometry) {
        // 64 MiB capacity = 1024 superblocks: enough descriptors for the
        // churn test's 8 threads × 128 indices.
        let len = Geometry::pool_len_for_capacity(64 << 20);
        let pool = PmemPool::new(len, Mode::Direct);
        let geo = Geometry::from_pool_len(pool.len());
        (pool, geo)
    }

    #[test]
    fn size_knob_parses_suffixes() {
        // Pure-parser test on purpose: mutating the environment from a
        // multithreaded test binary races glibc setenv/getenv (UB). The
        // env plumbing itself is covered by tests/growable_env.rs, which
        // owns its process.
        for (raw, want) in [
            ("4194304", Some(4194304usize)),
            ("4m", Some(4 << 20)),
            ("64K", Some(64 << 10)),
            ("2G", Some(2 << 30)),
            (" 8M ", Some(8 << 20)),
            ("garbage", None),
            ("", None),
        ] {
            assert_eq!(parse_size(raw), want, "{raw:?}");
        }
        assert_eq!(env_size("RALLOC_ENV_SIZE_TEST_UNSET"), None);
    }

    #[test]
    fn tokens_are_unique_per_thread() {
        let mine = thread_token();
        let theirs = std::thread::spawn(thread_token).join().unwrap();
        assert_ne!(mine, theirs);
        assert_eq!(mine, thread_token(), "token stable within a thread");
    }

    #[test]
    fn home_shard_in_range_and_spread() {
        for shards in [1u32, 2, 3, 4, 8, 16] {
            let mut hit = vec![false; shards as usize];
            for token in 0..shards as u64 * 8 {
                let s = home_shard(token, shards);
                assert!(s < shards);
                hit[s as usize] = true;
            }
            assert!(hit.iter().all(|&h| h), "{shards} shards: some shard never chosen");
        }
    }

    #[test]
    fn pop_prefers_home_then_steals() {
        let (pool, geo) = test_heap();
        let sp = ShardedPartial::new(8, 4);
        sp.push(&pool, &geo, 10, 1);
        sp.push(&pool, &geo, 11, 3);
        // Home hit: no steal flag.
        assert_eq!(sp.pop(&pool, &geo, 1), Some(ShardPop { idx: 10, stolen: false }));
        // Home (1) now empty: ring probe finds shard 3's element.
        assert_eq!(sp.pop(&pool, &geo, 1), Some(ShardPop { idx: 11, stolen: true }));
        assert_eq!(sp.pop(&pool, &geo, 1), None);
    }

    #[test]
    fn shards_do_not_bleed_across_classes() {
        let (pool, geo) = test_heap();
        let a = ShardedPartial::new(5, 4);
        let b = ShardedPartial::new(6, 4);
        a.push(&pool, &geo, 7, 2);
        assert_eq!(b.pop(&pool, &geo, 2), None);
        assert_eq!(a.pop(&pool, &geo, 2), Some(ShardPop { idx: 7, stolen: false }));
    }

    #[test]
    fn reset_all_clears_even_stale_high_shards() {
        let (pool, geo) = test_heap();
        // A "previous run" with 16 shards parked something on shard 13.
        let wide = ShardedPartial::new(9, 16);
        wide.push(&pool, &geo, 42, 13);
        // This run uses 2 shards; reset must still clear shard 13.
        let narrow = ShardedPartial::new(9, 2);
        narrow.reset_all(&pool, &geo);
        assert_eq!(wide.pop(&pool, &geo, 13), None);
    }

    #[test]
    fn placement_is_deterministic_partition() {
        for shards in [1u32, 3, 8] {
            let mut per_shard = vec![0usize; shards as usize];
            for sb in 0..1000 {
                per_shard[place_superblock(sb, shards) as usize] += 1;
            }
            assert_eq!(per_shard.iter().sum::<usize>(), 1000);
            let (min, max) =
                (per_shard.iter().min().unwrap(), per_shard.iter().max().unwrap());
            assert!(max - min <= 1, "modulo placement must balance: {per_shard:?}");
        }
    }

    #[test]
    fn concurrent_shard_churn_loses_nothing() {
        let (pool, geo) = test_heap();
        let sp = ShardedPartial::new(8, 4);
        let n_threads = 8u32;
        let per = 128u32;
        std::thread::scope(|s| {
            for t in 0..n_threads {
                let pool = &pool;
                let geo = &geo;
                let sp = &sp;
                s.spawn(move || {
                    let home = home_shard(t as u64, sp.shards());
                    for i in 0..per {
                        sp.push(pool, geo, t * per + i, home);
                    }
                });
            }
        });
        let mut seen = vec![false; (n_threads * per) as usize];
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..n_threads)
                .map(|t| {
                    let pool = &pool;
                    let geo = &geo;
                    let sp = &sp;
                    s.spawn(move || {
                        let home = home_shard(t as u64, sp.shards());
                        let mut got = Vec::new();
                        while let Some(p) = sp.pop(pool, geo, home) {
                            got.push(p.idx);
                        }
                        got
                    })
                })
                .collect();
            for h in handles {
                for idx in h.join().unwrap() {
                    assert!(!seen[idx as usize], "descriptor {idx} popped twice");
                    seen[idx as usize] = true;
                }
            }
        });
        assert!(seen.iter().all(|&b| b), "descriptor lost in sharded churn");
    }
}
