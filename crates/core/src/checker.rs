//! Offline heap-invariant checker.
//!
//! A quiescent Ralloc heap must satisfy a precise set of structural
//! invariants (the state recovery promises to re-establish, §4.5, and
//! that normal operation preserves, Theorems 5.1–5.2). The checker walks
//! every descriptor, list, and block free chain and verifies:
//!
//! 1. **Geometry**: header magic/length/capacity are self-consistent.
//! 2. **Descriptor sanity**: every carved descriptor classifies as a
//!    valid small class, large head, continuation, or free superblock.
//! 3. **Anchor consistency**: `count` free blocks are actually chained
//!    from `avail`, all indices in range, no cycles, no duplicates.
//! 4. **List membership**: every EMPTY superblock reachable from the free
//!    list, every PARTIAL one from exactly one partial list of its own
//!    class, no descriptor on two lists, counters monotone.
//! 5. **Span integrity**: live large blocks own contiguous
//!    `CONTINUATION`-tagged spans that never overlap other spans.
//!
//! The checker is used by the crash-recovery test suite after every
//! simulated crash + recovery, turning "recovery completed" into
//! "recovery re-established the full allocator invariant".

use std::collections::HashSet;
use std::sync::atomic::Ordering;

use crate::anchor::SbState;
use crate::descriptor::{Desc, DescKind};
use crate::heap::Ralloc;
use crate::layout::MAX_SHARDS;
use crate::lists::DescList;
use crate::size_class::{class_max_count, NUM_CLASSES, SB_SIZE};

/// A violated invariant, with enough context to debug it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which invariant failed.
    pub rule: &'static str,
    /// Human-readable details.
    pub detail: String,
}

/// Summary of a heap check.
#[derive(Debug, Clone, Default)]
pub struct CheckReport {
    /// Superblocks inspected.
    pub superblocks: usize,
    /// Free blocks found on superblock-internal chains.
    pub free_blocks: u64,
    /// Superblocks on the global free list.
    pub free_list_len: usize,
    /// Descriptors on partial lists, per class.
    pub partial_list_len: usize,
    /// All violations found (empty = heap is consistent).
    pub violations: Vec<Violation>,
}

impl CheckReport {
    /// True if no invariant was violated.
    pub fn is_consistent(&self) -> bool {
        self.violations.is_empty()
    }

    fn violate(&mut self, rule: &'static str, detail: String) {
        self.violations.push(Violation { rule, detail });
    }
}

/// Check every structural invariant of a **quiescent** heap.
///
/// Must not run concurrently with allocation, deallocation, or recovery;
/// results would be spurious. (Thread caches are invisible to the
/// checker: cached blocks look allocated, which is exactly how the
/// allocator itself accounts for them.)
pub fn check_heap(heap: &Ralloc) -> CheckReport {
    let inner = &heap.inner;
    let pool = inner.pool();
    let geo = inner.geo();
    let used = inner.used_sb();
    let mut report = CheckReport { superblocks: used, ..Default::default() };

    // Rule 1: geometry, including the reserve/commit frontier: the
    // persisted frontier word must lie between the descriptor region's
    // end and the reserved span, never exceed what the pool actually has
    // committed, and must cover every carved superblock (the grow
    // protocol persists the frontier before any `used` bump into it).
    // SAFETY: header words.
    let committed_word = unsafe {
        if pool.read_u64(crate::layout::MAGIC_OFF) != crate::layout::MAGIC {
            report.violate("geometry", "bad magic".into());
        }
        if pool.read_u64(crate::layout::POOL_LEN_OFF) != pool.len() as u64 {
            report.violate("geometry", "pool length mismatch".into());
        }
        if pool.read_u64(crate::layout::MAX_SB_OFF) != geo.max_sb as u64 {
            report.violate("geometry", "capacity mismatch".into());
        }
        pool.read_u64(crate::layout::COMMITTED_LEN_OFF) as usize
    };
    if used > geo.max_sb {
        report.violate("geometry", format!("used {used} exceeds capacity {}", geo.max_sb));
    }
    if committed_word < geo.min_committed() || committed_word > pool.len() {
        report.violate(
            "geometry",
            format!(
                "committed frontier {committed_word} outside [{}, {}]",
                geo.min_committed(),
                pool.len()
            ),
        );
    } else {
        if committed_word > pool.committed_len() {
            report.violate(
                "geometry",
                format!(
                    "persisted frontier {committed_word} exceeds the pool's committed \
                     prefix ({})",
                    pool.committed_len()
                ),
            );
        }
        if used > geo.committed_sb(committed_word) {
            report.violate(
                "geometry",
                format!(
                    "used {used} superblocks but the persisted frontier covers only {}",
                    geo.committed_sb(committed_word)
                ),
            );
        }
    }
    // The descriptor region's frontier word (v5) obeys the same protocol
    // against its own region: within [desc_off, sb_off], and covering
    // every carved superblock's descriptor.
    // SAFETY: header word.
    let desc_word = unsafe { pool.read_u64(crate::layout::DESC_COMMITTED_LEN_OFF) } as usize;
    if desc_word < geo.min_desc_committed() || desc_word > geo.sb_off {
        report.violate(
            "geometry",
            format!(
                "descriptor frontier {desc_word} outside [{}, {}]",
                geo.min_desc_committed(),
                geo.sb_off
            ),
        );
    } else if used > geo.desc_committed_sb(desc_word) {
        report.violate(
            "geometry",
            format!(
                "used {used} superblocks but the descriptor frontier covers only {}",
                geo.desc_committed_sb(desc_word)
            ),
        );
    }

    // Collect list membership first.
    let free_list: Vec<u32> = DescList::free_list(geo).collect(pool, geo);
    report.free_list_len = free_list.len();
    let mut on_free: HashSet<u32> = HashSet::new();
    for idx in &free_list {
        if !on_free.insert(*idx) {
            report.violate("list-membership", format!("descriptor {idx} twice on free list"));
        }
        if *idx as usize >= used {
            report.violate("list-membership", format!("free list holds uncarved desc {idx}"));
        }
    }
    let mut on_partial: HashSet<u32> = HashSet::new();
    let mut partial_class: Vec<(u32, u32)> = Vec::new();
    // Walk every *reserved* shard head, not just the live shard count:
    // a descriptor stranded on a stale high shard is a bug the checker
    // must see, and live shards are a prefix of the reserved ones.
    for class in 1..NUM_CLASSES as u32 {
        for shard in 0..MAX_SHARDS as u32 {
            for idx in DescList::partial_shard(geo, class, shard).collect(pool, geo) {
                if !on_partial.insert(idx) {
                    report.violate(
                        "list-membership",
                        format!("descriptor {idx} on more than one partial list/shard"),
                    );
                }
                if on_free.contains(&idx) {
                    report.violate(
                        "list-membership",
                        format!("descriptor {idx} on both free and partial lists"),
                    );
                }
                // Descriptors past `used` must be absent from every list:
                // after a shrink lowers `used`, the released trailing run
                // is unlinked before the lowered word is persisted.
                if idx as usize >= used {
                    report.violate(
                        "list-membership",
                        format!("partial list holds uncarved/released desc {idx} (used {used})"),
                    );
                }
                partial_class.push((idx, class));
            }
        }
    }
    report.partial_list_len = on_partial.len();
    for (idx, class) in &partial_class {
        let d = Desc::new(pool, geo, *idx);
        if d.size_class() != *class {
            report.violate(
                "list-membership",
                format!("desc {idx} on partial list of class {class} but has class {}", d.size_class()),
            );
        }
    }

    // Rule 5 precompute: spans claimed by live large heads.
    let mut claimed = vec![false; used];
    for i in 0..used {
        let d = Desc::new(pool, geo, i as u32);
        if let DescKind::LargeHead { span } = d.classify(geo, used) {
            if d.anchor(Ordering::Relaxed).state == SbState::Full && !on_free.contains(&(i as u32))
            {
                for k in 0..span {
                    if claimed[i + k] {
                        report.violate(
                            "span-integrity",
                            format!("superblock {} claimed by two live large spans", i + k),
                        );
                    }
                    claimed[i + k] = true;
                }
                for k in 1..span {
                    let dk = Desc::new(pool, geo, (i + k) as u32);
                    if dk.classify(geo, used) != DescKind::Continuation {
                        report.violate(
                            "span-integrity",
                            format!(
                                "live large head {i} spans {span} but desc {} is {:?}",
                                i + k,
                                dk.classify(geo, used)
                            ),
                        );
                    }
                }
            }
        }
    }

    // Rules 2-4 per descriptor.
    for i in 0..used as u32 {
        if claimed[i as usize] {
            continue; // validated via its span above
        }
        let d = Desc::new(pool, geo, i);
        let listed_free = on_free.contains(&i);
        match d.classify(geo, used) {
            DescKind::Small { class } => {
                let mc = class_max_count(class);
                let a = d.anchor(Ordering::Relaxed);
                if listed_free && a.state != SbState::Empty {
                    report.violate(
                        "list-membership",
                        format!("desc {i} on free list with state {:?}", a.state),
                    );
                }
                if a.count > mc {
                    report.violate("anchor", format!("desc {i}: count {} > max {mc}", a.count));
                    continue;
                }
                match a.state {
                    SbState::Full => {
                        if a.count != 0 {
                            report.violate(
                                "anchor",
                                format!("desc {i}: FULL but count {}", a.count),
                            );
                        }
                    }
                    SbState::Empty => {
                        // A freshly reserved-then-spilled superblock may be
                        // EMPTY pending lazy retirement; count must be mc.
                        if a.count != mc {
                            report.violate(
                                "anchor",
                                format!("desc {i}: EMPTY but count {}/{mc}", a.count),
                            );
                        }
                    }
                    SbState::Partial => {
                        if a.count == 0 || a.count == mc {
                            report.violate(
                                "anchor",
                                format!("desc {i}: PARTIAL with count {}/{mc}", a.count),
                            );
                        }
                    }
                }
                // Rule 3: walk the chain.
                let sb_addr = pool.base() as usize + geo.sb(i as usize);
                let bsize = d.block_size() as usize;
                let mut seen = HashSet::new();
                let mut blk = a.avail;
                for step in 0..a.count {
                    if blk >= mc {
                        report.violate(
                            "free-chain",
                            format!("desc {i}: chain index {blk} out of range at step {step}"),
                        );
                        break;
                    }
                    if !seen.insert(blk) {
                        report.violate(
                            "free-chain",
                            format!("desc {i}: chain revisits block {blk} (cycle)"),
                        );
                        break;
                    }
                    report.free_blocks += 1;
                    // SAFETY: free-block first word, quiescent heap.
                    blk = unsafe {
                        std::ptr::read((sb_addr + blk as usize * bsize) as *const u64) as u32
                    };
                }
            }
            DescKind::LargeHead { .. } => {
                // Unclaimed large head: must be retired (free list) or
                // stale-free; never PARTIAL.
                let a = d.anchor(Ordering::Relaxed);
                if a.state == SbState::Partial {
                    report.violate("descriptor", format!("large head {i} in PARTIAL state"));
                }
            }
            DescKind::Continuation | DescKind::Invalid => {
                // Acceptable only as free superblocks (stale identity).
                if on_partial.contains(&i) {
                    report.violate(
                        "descriptor",
                        format!("stale/continuation desc {i} on a partial list"),
                    );
                }
            }
        }
    }
    report
}

/// Total bytes of the superblock region still carveable (diagnostics).
pub fn remaining_capacity(heap: &Ralloc) -> usize {
    let inner = &heap.inner;
    (inner.geo().max_sb - inner.used_sb()) * SB_SIZE
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::RallocConfig;

    #[test]
    fn fresh_heap_is_consistent() {
        let heap = Ralloc::create(8 << 20, RallocConfig::default());
        let r = check_heap(&heap);
        assert!(r.is_consistent(), "{:?}", r.violations);
        assert_eq!(r.superblocks, 0);
    }

    #[test]
    fn active_heap_is_consistent() {
        let heap = Ralloc::create(16 << 20, RallocConfig::default());
        let mut held = Vec::new();
        for i in 0..5_000usize {
            held.push(heap.malloc(8 + (i % 40) * 8));
        }
        for p in held.drain(..).step_by(2) {
            heap.free(p);
        }
        let big = heap.malloc(300_000);
        let r = check_heap(&heap);
        assert!(r.is_consistent(), "{:?}", r.violations);
        assert!(r.superblocks > 0);
        heap.free(big);
        let r = check_heap(&heap);
        assert!(r.is_consistent(), "{:?}", r.violations);
    }

    #[test]
    fn consistent_after_crash_and_recovery() {
        let heap = Ralloc::create(16 << 20, RallocConfig::tracked());
        for i in 0..3_000usize {
            let p = heap.malloc(8 + (i % 40) * 8);
            if i % 3 == 0 {
                heap.free(p);
            }
        }
        heap.crash_simulated();
        heap.recover();
        let r = check_heap(&heap);
        assert!(r.is_consistent(), "{:?}", r.violations);
        // Everything is free again (nothing was rooted).
        assert_eq!(r.free_list_len + r.partial_list_len, r.superblocks);
    }

    #[test]
    fn checker_detects_corruption() {
        let heap = Ralloc::create(8 << 20, RallocConfig::default());
        let p = heap.malloc(64);
        heap.free(p);
        // Corrupt descriptor 0's anchor behind the allocator's back:
        // an impossible free count for any class.
        let geo = heap.geometry();
        let bogus = crate::anchor::Anchor {
            avail: 0,
            count: 60_000,
            state: crate::anchor::SbState::Partial,
        };
        // SAFETY: test-only sabotage of descriptor 0's anchor word.
        unsafe {
            heap.pool().atomic_u64(geo.desc(0)).store(bogus.pack(), Ordering::Relaxed);
        }
        let r = check_heap(&heap);
        assert!(!r.is_consistent(), "checker must flag the sabotage");
        assert!(r.violations.iter().any(|v| v.rule == "anchor"), "{:?}", r.violations);
    }

    #[test]
    fn free_block_accounting_adds_up() {
        let heap = Ralloc::create(8 << 20, RallocConfig::default());
        // One full superblock of 64 B blocks, half freed back.
        let ptrs: Vec<_> = (0..1024).map(|_| heap.malloc(64)).collect();
        for p in ptrs.iter().take(512) {
            heap.free(*p);
        }
        // Spill the thread cache so the frees are globally visible.
        drop(heap.clone());
        let r = check_heap(&heap);
        assert!(r.is_consistent(), "{:?}", r.violations);
        // 512 blocks live in the thread cache or on chains; the checker
        // cannot see caches, so free_blocks <= 512.
        assert!(r.free_blocks <= 512);
    }
}
