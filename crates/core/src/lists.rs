//! Lock-free LIFO lists of descriptors (Treiber stacks, paper §4.2).
//!
//! The superblock free list and the per-size-class partial lists are all
//! instances of the same structure: a stack whose head lives in the
//! metadata region as a [`Counted`] word (34-bit ABA counter + descriptor
//! index) and whose links are per-descriptor index words (`next_free` or
//! `next_partial`). Everything is index-based, hence position-independent;
//! everything is transient, hence never flushed — recovery rebuilds the
//! lists from scratch (paper §4.5, steps 8–9).

use std::sync::atomic::{AtomicU64, Ordering};

use nvm::PmemPool;
use pptr::Counted;

use crate::descriptor::Desc;
use crate::layout::Geometry;

/// Which per-descriptor link field a list threads through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkField {
    /// `next_free`: the superblock free list.
    Free,
    /// `next_partial`: a size class's partial list.
    Partial,
}

/// A Treiber stack of descriptors with its head at `head_off` in the pool.
#[derive(Debug, Clone, Copy)]
pub struct DescList {
    head_off: usize,
    link: LinkField,
}

impl DescList {
    /// The superblock free list of a heap.
    pub fn free_list(geo: &Geometry) -> DescList {
        let _ = geo;
        DescList { head_off: crate::layout::FREE_LIST_OFF, link: LinkField::Free }
    }

    /// The partial list for shard `shard` of `class`. Shard placement
    /// policy (which shard a thread pushes to or steals from) lives in
    /// [`crate::shard`]; this is just the raw per-shard stack.
    pub fn partial_shard(geo: &Geometry, class: u32, shard: u32) -> DescList {
        DescList { head_off: geo.partial_head(class, shard), link: LinkField::Partial }
    }

    #[inline]
    fn head<'a>(&self, pool: &'a PmemPool) -> &'a AtomicU64 {
        // SAFETY: metadata offsets are in bounds and 8-aligned.
        unsafe { pool.atomic_u64(self.head_off) }
    }

    #[inline]
    fn link_of<'a>(&self, d: &Desc<'a>) -> &'a AtomicU64 {
        match self.link {
            LinkField::Free => d.next_free(),
            LinkField::Partial => d.next_partial(),
        }
    }

    /// Push descriptor `idx`.
    pub fn push(&self, pool: &PmemPool, geo: &Geometry, idx: u32) {
        let head = self.head(pool);
        let desc = Desc::new(pool, geo, idx);
        let link = self.link_of(&desc);
        loop {
            let h = Counted(head.load(Ordering::Acquire));
            // Our descriptor is unlisted, so we own its link word.
            link.store(h.idx().map_or(0, |i| i as u64 + 1), Ordering::Relaxed);
            let nh = h.advance(Some(idx));
            if head
                .compare_exchange_weak(h.0, nh.0, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return;
            }
        }
    }

    /// Pop the most recently pushed descriptor, if any.
    pub fn pop(&self, pool: &PmemPool, geo: &Geometry) -> Option<u32> {
        let head = self.head(pool);
        loop {
            let h = Counted(head.load(Ordering::Acquire));
            let idx = h.idx()?;
            let desc = Desc::new(pool, geo, idx);
            let next_raw = self.link_of(&desc).load(Ordering::Acquire);
            let next = next_raw.checked_sub(1).map(|i| i as u32);
            let nh = h.advance(next);
            if head
                .compare_exchange_weak(h.0, nh.0, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return Some(idx);
            }
        }
    }

    /// Reset to empty, preserving the ABA counter. Only for offline use
    /// (recovery step 3).
    pub fn reset(&self, pool: &PmemPool) {
        let head = self.head(pool);
        let h = Counted(head.load(Ordering::Relaxed));
        head.store(h.advance(None).0, Ordering::Relaxed);
    }

    /// Splice a pre-linked chain of descriptors onto the list with a
    /// single CAS. The chain must already be threaded through this list's
    /// link field (`chain[i]` links to `chain[i+1]`), its tail link is
    /// rewritten here, and the caller must own every element (none may be
    /// concurrently popped). Recovery's sweep uses this to publish a whole
    /// worker-local batch per (class, shard) at O(workers) CAS cost
    /// instead of one CAS per descriptor.
    pub fn splice(&self, pool: &PmemPool, geo: &Geometry, first: u32, last: u32) {
        let head = self.head(pool);
        let tail_link = self.link_of(&Desc::new(pool, geo, last));
        loop {
            let h = Counted(head.load(Ordering::Acquire));
            tail_link.store(h.idx().map_or(0, |i| i as u64 + 1), Ordering::Relaxed);
            let nh = h.advance(Some(first));
            if head
                .compare_exchange_weak(h.0, nh.0, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return;
            }
        }
    }

    /// Link `chain[i] -> chain[i+1]` through this list's link field, then
    /// splice the whole chain in one CAS. No-op on an empty slice.
    pub fn splice_slice(&self, pool: &PmemPool, geo: &Geometry, chain: &[u32]) {
        let (&first, &last) = match (chain.first(), chain.last()) {
            (Some(f), Some(l)) => (f, l),
            _ => return,
        };
        for w in chain.windows(2) {
            self.link_of(&Desc::new(pool, geo, w[0])).store(w[1] as u64 + 1, Ordering::Relaxed);
        }
        self.splice(pool, geo, first, last);
    }

    /// Snapshot the list contents (offline use: diagnostics, tests).
    pub fn collect(&self, pool: &PmemPool, geo: &Geometry) -> Vec<u32> {
        let mut out = Vec::new();
        let mut cur = Counted(self.head(pool).load(Ordering::Acquire)).idx();
        while let Some(idx) = cur {
            out.push(idx);
            let desc = Desc::new(pool, geo, idx);
            cur = self
                .link_of(&desc)
                .load(Ordering::Acquire)
                .checked_sub(1)
                .map(|i| i as u32);
            if out.len() > geo.max_sb {
                // Diagnose rather than loop forever: name the first
                // revisited descriptor, since a cycle here means a link
                // word was overwritten while the list was live.
                let mut seen = std::collections::HashSet::new();
                let first_dup = out.iter().find(|&&i| !seen.insert(i)).copied();
                panic!(
                    "descriptor list cycle detected: head_word={:#x} len={} first_dup={:?}",
                    self.head(pool).load(Ordering::Relaxed),
                    out.len(),
                    first_dup,
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm::Mode;

    fn test_heap() -> (PmemPool, Geometry) {
        let len = Geometry::pool_len_for_capacity(64 << 20);
        let pool = PmemPool::new(len, Mode::Direct);
        let geo = Geometry::from_pool_len(pool.len());
        (pool, geo)
    }

    #[test]
    fn lifo_order() {
        let (pool, geo) = test_heap();
        let l = DescList::free_list(&geo);
        assert_eq!(l.pop(&pool, &geo), None);
        l.push(&pool, &geo, 1);
        l.push(&pool, &geo, 2);
        l.push(&pool, &geo, 3);
        assert_eq!(l.collect(&pool, &geo), vec![3, 2, 1]);
        assert_eq!(l.pop(&pool, &geo), Some(3));
        assert_eq!(l.pop(&pool, &geo), Some(2));
        assert_eq!(l.pop(&pool, &geo), Some(1));
        assert_eq!(l.pop(&pool, &geo), None);
    }

    #[test]
    fn descriptor_zero_is_representable() {
        // Index 0 must be distinguishable from "empty" (hence idx+1
        // encodings everywhere).
        let (pool, geo) = test_heap();
        let l = DescList::free_list(&geo);
        l.push(&pool, &geo, 0);
        assert_eq!(l.pop(&pool, &geo), Some(0));
        assert_eq!(l.pop(&pool, &geo), None);
    }

    #[test]
    fn free_and_partial_lists_are_independent() {
        let (pool, geo) = test_heap();
        let free = DescList::free_list(&geo);
        let p1 = DescList::partial_shard(&geo, 1, 0);
        let p2 = DescList::partial_shard(&geo, 2, 0);
        let p1s = DescList::partial_shard(&geo, 1, 3);
        free.push(&pool, &geo, 10);
        p1.push(&pool, &geo, 11);
        p2.push(&pool, &geo, 12);
        p1s.push(&pool, &geo, 13);
        assert_eq!(free.pop(&pool, &geo), Some(10));
        assert_eq!(p1.pop(&pool, &geo), Some(11));
        assert_eq!(p2.pop(&pool, &geo), Some(12));
        assert_eq!(p1s.pop(&pool, &geo), Some(13));
        assert_eq!(p1.pop(&pool, &geo), None, "shards of one class are independent");
    }

    #[test]
    fn splice_publishes_chain_in_one_cas() {
        let (pool, geo) = test_heap();
        let l = DescList::partial_shard(&geo, 3, 1);
        l.push(&pool, &geo, 99);
        let head = unsafe { pool.atomic_u64(geo.partial_head(3, 1)) };
        let c0 = Counted(head.load(Ordering::Relaxed)).counter();
        l.splice_slice(&pool, &geo, &[5, 6, 7]);
        let c1 = Counted(head.load(Ordering::Relaxed)).counter();
        assert_eq!(c1, c0 + 1, "splice of 3 elements must cost one CAS");
        assert_eq!(l.collect(&pool, &geo), vec![5, 6, 7, 99]);
        l.splice_slice(&pool, &geo, &[]);
        assert_eq!(l.collect(&pool, &geo), vec![5, 6, 7, 99]);
    }

    #[test]
    fn aba_counter_advances() {
        let (pool, geo) = test_heap();
        let l = DescList::free_list(&geo);
        let head = unsafe { pool.atomic_u64(crate::layout::FREE_LIST_OFF) };
        let c0 = Counted(head.load(Ordering::Relaxed)).counter();
        l.push(&pool, &geo, 4);
        l.pop(&pool, &geo);
        l.push(&pool, &geo, 4);
        let c1 = Counted(head.load(Ordering::Relaxed)).counter();
        assert_eq!(c1, c0 + 3, "every successful CAS bumps the counter");
    }

    #[test]
    fn reset_empties() {
        let (pool, geo) = test_heap();
        let l = DescList::partial_shard(&geo, 5, 2);
        l.push(&pool, &geo, 7);
        l.push(&pool, &geo, 8);
        l.reset(&pool);
        assert_eq!(l.pop(&pool, &geo), None);
    }

    #[test]
    fn concurrent_push_pop_preserves_elements() {
        let (pool, geo) = test_heap();
        let l = DescList::free_list(&geo);
        let n_threads = 8u32;
        let per = 64u32;
        // Each thread pushes a disjoint range, then everyone pops.
        std::thread::scope(|s| {
            for t in 0..n_threads {
                let pool = &pool;
                let geo = &geo;
                s.spawn(move || {
                    for i in 0..per {
                        l.push(pool, geo, t * per + i);
                    }
                });
            }
        });
        let mut seen = vec![false; (n_threads * per) as usize];
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..n_threads)
                .map(|_| {
                    let pool = &pool;
                    let geo = &geo;
                    s.spawn(move || {
                        let mut got = Vec::new();
                        while let Some(idx) = l.pop(pool, geo) {
                            got.push(idx);
                        }
                        got
                    })
                })
                .collect();
            for h in handles {
                for idx in h.join().unwrap() {
                    assert!(!seen[idx as usize], "popped twice: {idx}");
                    seen[idx as usize] = true;
                }
            }
        });
        assert!(seen.iter().all(|&b| b), "lost elements");
    }
}
