//! The Ralloc heap: initialization, allocation, deallocation, roots,
//! shutdown, and crash simulation (paper §4.1–§4.4).
//!
//! ## Persistence discipline (what gets flushed online)
//!
//! Normal-operation flushes are limited to the **bold** fields of the
//! paper's Figure 2:
//!
//! * the heap header (`magic`, length, **dirty flag**) at init/close,
//! * the `used` superblock count, once per region expansion,
//! * a descriptor's `size_class`/`block_size`, once per superblock (re)use,
//! * a root slot, on `set_root`.
//!
//! The malloc/free fast paths flush *nothing*; the slow paths flush one
//! cache line. Everything else — anchors, free lists, partial lists,
//! thread caches — is transient and reconstructed by [`crate::recovery`].

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use nvm::{CrashInjector, FlushModel, Mode, PmemPool, PoolGuard, RegionSpec};
use telemetry::{Counter, EventKind, Gauge, Histogram, Journal, Registry, SamplerHandle};

use crate::anchor::{Anchor, SbState};
use crate::descriptor::{Desc, DescKind};
use crate::flight::{self, FlightLevel, FlightRecorder, FlightScan};
use crate::gc::{trace_thunk, Trace, TraceFn};
use crate::layout::{
    Geometry, COMMITTED_LEN_OFF, DESC_COMMITTED_LEN_OFF, DIRTY_OFF, FLIGHT_HDR_SIZE, FLIGHT_OFF,
    MAGIC, MAGIC_OFF, MAGIC_V3, MAGIC_V4, MAX_SB_OFF, META_SIZE, NUM_ROOTS, POOL_LEN_OFF,
    USED_SB_OFF,
};
use crate::lists::DescList;
use crate::remote::{RemoteBatch, RemoteRing};
use crate::shard::{self, ShardedPartial};
use crate::size_class::{
    cache_capacity, class_block_size, class_max_count, is_small_class, size_class_of,
    CLASS_CONTINUATION, NUM_CLASSES, SB_SIZE,
};
use crate::tcache::{self, CacheBin, HeapTls};

/// Best-effort read prefetch of the cache line at `addr`. The fill and
/// flush slow paths walk/link free chains whose next element is a
/// dependent load; issuing the prefetch as soon as an address is known
/// hides most of that latency on large batches. No-op on architectures
/// without a portable prefetch intrinsic.
#[inline(always)]
fn prefetch_read(addr: usize) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch is a hint; any address is permitted.
    unsafe {
        core::arch::x86_64::_mm_prefetch(addr as *const i8, core::arch::x86_64::_MM_HINT_T0)
    };
    #[cfg(not(target_arch = "x86_64"))]
    let _ = addr;
}

static NEXT_HEAP_ID: AtomicU64 = AtomicU64::new(1);

/// When the heap releases its fully-free committed tail back to the OS
/// (the shrink half of the reserve/commit model). Shrink is only legal at
/// quiescent points — `used` never decreases online — so the two hooks
/// are clean [`Ralloc::close`] and the end of recovery. Env override:
/// `RALLOC_SHRINK=off|close|recovery|both`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShrinkPolicy {
    /// Never shrink automatically (PR-4 monotone-frontier behavior).
    /// [`Ralloc::shrink`] still works when called explicitly.
    Off,
    /// Shrink on clean close only.
    Close,
    /// Shrink at the end of recovery only.
    Recovery,
    /// Shrink at both quiescent points (the default).
    Both,
}

impl ShrinkPolicy {
    #[inline]
    pub(crate) fn at_close(self) -> bool {
        matches!(self, ShrinkPolicy::Close | ShrinkPolicy::Both)
    }

    #[inline]
    pub(crate) fn at_recovery(self) -> bool {
        matches!(self, ShrinkPolicy::Recovery | ShrinkPolicy::Both)
    }

    /// Parse an `RALLOC_SHRINK` value (pure, separately testable — unit
    /// tests must not mutate the process environment).
    fn parse(raw: &str) -> Option<ShrinkPolicy> {
        match raw.trim().to_ascii_lowercase().as_str() {
            "off" | "none" | "0" => Some(ShrinkPolicy::Off),
            "close" => Some(ShrinkPolicy::Close),
            "recovery" => Some(ShrinkPolicy::Recovery),
            "both" | "on" | "1" => Some(ShrinkPolicy::Both),
            _ => None,
        }
    }
}

/// Cache bins a heap retains across thread exits, per size class. An
/// exiting thread *parks* its non-empty bins here (up to this bound)
/// instead of flushing them block-by-batch back to superblocks; the next
/// thread's first fill of the class adopts a parked bin wholesale — zero
/// anchor CASes, zero carves. This is the churn-fixpoint "bound per-class
/// cache retention" lever: thread-pool-style workloads that cycle worker
/// threads stop paying a fresh superblock per (thread × class) per
/// generation.
///
/// The bound is deliberately **one** bin per class: a parked bin is
/// visible only to the single future fill that adopts it, while a
/// *flushed* bin's blocks land on superblock free chains visible to every
/// thread (partial lists + work stealing). Retaining more than one bin
/// starves concurrent fills into carving fresh superblocks exactly when
/// thread overlap deepens — the churn workload's quantized
/// one-superblock-per-class demand spike. One parked bin keeps the
/// warm-handoff win for the common exit→spawn cycle; everything beyond it
/// goes back where every thread can see it.
const MAX_PARKED_BINS: usize = 1;

/// Extra partial-list candidates a fill inspects when the first one it
/// pops is mostly empty (more than half its blocks free). Claiming a
/// mostly-empty superblock hands one thread a huge chain while
/// concurrent fills find the list empty and carve; preferring the
/// *fullest* (smallest-free-count) candidate packs allocations into
/// nearly-full superblocks and leaves the emptier ones visible — the
/// churn-fixpoint "warm-start under memory pressure" lever.
const FILL_BESTFIT_PROBES: usize = 2;

/// Under the churn policy ([`RallocConfig::flush_half`]), a fill retains
/// at most `max_count / CHURN_FILL_RETAIN_DIV` blocks (min
/// [`CHURN_FILL_RETAIN_MIN`]) and returns the rest of its claimed chain
/// to the superblock, re-enlisted where every thread can see it. An
/// unbounded fill moves a whole superblock population into one thread's
/// private bin, so each additional *concurrently runnable* thread costs
/// one fresh superblock per class — the churn test's quantized +19
/// demand spike, and a footprint that depends on OS scheduling rather
/// than on the live set. Bounded retention makes one circulating
/// superblock feed `DIV` concurrent threads; the batch (≥ 128 blocks for
/// the 64 B class) still amortizes the anchor CAS three orders of
/// magnitude. Off by default: the paper's whole-superblock Fill maximizes
/// amortization when footprint convergence is not a goal.
const CHURN_FILL_RETAIN_DIV: u32 = 8;
/// Floor for the churn-policy fill-retention bound, so tiny-`max_count`
/// classes keep a useful batch.
const CHURN_FILL_RETAIN_MIN: u32 = 8;

/// Configuration for creating or opening a heap.
#[derive(Clone)]
pub struct RallocConfig {
    /// Persistence simulation mode of the underlying pool.
    pub mode: Mode,
    /// Latency charged per flush/fence (benchmarks use
    /// [`FlushModel::optane`]).
    pub flush_model: FlushModel,
    /// Optional crash-point injector shared with the test harness.
    pub injector: Option<Arc<CrashInjector>>,
    /// LRMalloc mode: skip every flush and fence. This is exactly how the
    /// paper produced its LRMalloc baseline ("Ralloc without flush and
    /// fence", §6.1). A transient heap cannot be recovered.
    pub transient: bool,
    /// Partial-list shards per size class (see [`crate::shard`]). Clamped
    /// to `1..=MAX_SHARDS` at heap construction; the `RALLOC_SHARDS`
    /// environment variable overrides it (benchmarks sweep shard counts
    /// through one binary that way). Shards are transient metadata, so the
    /// same pool image can be reopened under any shard count.
    pub partial_shards: usize,
    /// Makalu-style churn policy (paper §6.3): when a full cache bin
    /// overflows, return only the *older* half to the heap instead of the
    /// whole bin. Halves the flush batch size but keeps recently-freed
    /// blocks cached, damping the refill/flush oscillation that inflates
    /// the footprint under churn. Env override: `RALLOC_FLUSH_HALF=1`/`0`.
    pub flush_half: bool,
    /// Superblock-region bytes committed at creation. `None` (default)
    /// commits the full reserved capacity upfront — the historical
    /// one-fixed-pool behavior. A smaller value makes the heap start
    /// small and grow its committed frontier on demand (cold path only).
    /// Env override: `RALLOC_INIT_CAP` (bytes, `K`/`M`/`G` suffixes ok).
    pub initial_capacity: Option<usize>,
    /// Ceiling on the superblock-region capacity: the *reserved* virtual
    /// span, fixed for the heap's life (geometry is computed from it
    /// once). `None` reserves exactly the `create` capacity argument.
    /// Env override: `RALLOC_MAX_CAP`.
    pub max_capacity: Option<usize>,
    /// Frontier doubling policy: each grow multiplies the committed
    /// superblock count by this factor (clamped to at least one fresh
    /// superblock of progress and to the reserved ceiling). Values are
    /// clamped to `1.0..=8.0`; the default 2.0 gives O(log n) grows.
    pub growth_factor: f64,
    /// When the committed frontier shrinks back (release of the trailing
    /// fully-free superblock run at quiescent points). Env override:
    /// `RALLOC_SHRINK=off|close|recovery|both`.
    pub shrink_policy: ShrinkPolicy,
    /// What the persistent flight recorder writes into the pool's
    /// crash-surviving event ring (see [`crate::flight`]). Forced to
    /// [`FlightLevel::Off`] on transient heaps (nothing persists there
    /// by definition). Env override: `RALLOC_FLIGHT=off|proto|all`.
    pub flight_level: FlightLevel,
    /// Per-(class, shard) bounded MPSC remote-free rings (see
    /// [`crate::remote`]): a flush routes superblock groups the freeing
    /// thread does not own onto the owning shard's ring with a wait-free
    /// zero-CAS push; the owner drains them into its cache bins during
    /// fills. Rings are volatile — a crash loses only in-flight remote
    /// frees, which recovery's reachability sweep reclaims. Inert when
    /// the heap runs a single shard (every free is then local). Env
    /// override: `RALLOC_REMOTE_RING=on|off`.
    pub remote_ring: bool,
    /// Slots per remote-free ring (one superblock-coherent batch each;
    /// rounded up to a power of two and clamped to `2..=4096`). A full
    /// ring displaces its oldest batch back onto the direct grouped-CAS
    /// path, so capacity trades producer-side CAS savings against DRAM.
    /// Env override: `RALLOC_REMOTE_RING_CAP`.
    pub remote_ring_cap: usize,
}

impl Default for RallocConfig {
    fn default() -> Self {
        RallocConfig {
            mode: Mode::Direct,
            flush_model: FlushModel::default(),
            injector: None,
            transient: false,
            partial_shards: DEFAULT_SHARDS,
            flush_half: false,
            initial_capacity: None,
            max_capacity: None,
            growth_factor: 2.0,
            shrink_policy: ShrinkPolicy::Both,
            flight_level: FlightLevel::Proto,
            remote_ring: true,
            remote_ring_cap: DEFAULT_REMOTE_RING_CAP,
        }
    }
}

/// Default remote-free ring capacity (slots per (class, shard) ring;
/// each slot parks one superblock-coherent batch). 64 batches absorb a
/// deep producer/consumer bleed burst while keeping the slot array at
/// 512 bytes per ring.
pub const DEFAULT_REMOTE_RING_CAP: usize = 64;

/// Default shard count: enough to spread the slow paths of a typical
/// thread pool without bloating the probe ring for single-thread runs.
pub const DEFAULT_SHARDS: usize = 4;

/// Default event-journal capacity (events; override with
/// `RALLOC_JOURNAL_CAP`). 4096 covers minutes of slow-path traffic —
/// the journal records protocol phases, not per-malloc events.
pub const DEFAULT_JOURNAL_CAP: usize = 4096;

impl RallocConfig {
    /// Config for crash-semantics testing: tracked pool, free flushes.
    pub fn tracked() -> Self {
        RallocConfig { mode: Mode::Tracked, ..Default::default() }
    }

    /// Config for the LRMalloc baseline.
    pub fn transient() -> Self {
        RallocConfig { transient: true, ..Default::default() }
    }
}

/// Slow-path event counters (diagnostics; the fast path counts nothing).
///
/// The fill/flush pairs make the batching observable: `cache_fills` /
/// `cache_fill_blocks` say how many refills ran and how many blocks they
/// moved in bulk; `fill_anchor_cas` says how many anchor CASes that cost
/// (one per superblock reserved, *not* one per block). Symmetrically for
/// flushes. [`SlowStats::avg_fill_batch`] and
/// [`SlowStats::avg_flush_batch`] report the amortization factor.
///
/// Every field is a [`telemetry::Counter`] registered by its field name
/// in the heap's metric [`telemetry::Registry`] (see
/// [`Ralloc::telemetry`]), so exporters and the soak sampler enumerate
/// these counters without going through this struct. The `Counter` API
/// mirrors `AtomicU64` (`fetch_add`/`load`), so existing readers are
/// unaffected by the migration.
#[derive(Debug, Default)]
pub struct SlowStats {
    /// Thread-cache refills from a partial or fresh superblock.
    pub cache_fills: Counter,
    /// Blocks moved into bins by those refills.
    pub cache_fill_blocks: Counter,
    /// Whole-bin flushes back to superblocks.
    pub cache_flushes: Counter,
    /// Blocks returned by those flushes.
    pub cache_flushes_blocks: Counter,
    /// Successful anchor CASes performed by fills (batch reservations).
    pub fill_anchor_cas: Counter,
    /// Successful anchor CASes performed by flushes (batch returns).
    pub flush_anchor_cas: Counter,
    /// Superblocks carved by expanding `used`.
    pub sb_carved: Counter,
    /// Committed-frontier growths (cold path: each one is a commit + one
    /// persisted metadata word).
    pub heap_grows: Counter,
    /// Descriptor-region frontier growths (v5: the descriptor region has
    /// its own frontier word and its own instances of the grow protocol).
    pub desc_grows: Counter,
    /// Committed-frontier shrinks that released at least one superblock
    /// (quiescent points only: clean close, end of recovery, explicit
    /// [`Ralloc::shrink`]).
    pub heap_shrinks: Counter,
    /// Superblocks released back to the OS by those shrinks.
    pub sb_released: Counter,
    /// Extra partial-list candidates popped by best-fit fills (each probe
    /// also re-pushes its loser, so the CAS cost is 2× this).
    pub fill_bestfit_probes: Counter,
    /// Blocks a churn-policy fill claimed but immediately returned to
    /// their superblock (bounded fill retention; 0 unless
    /// [`RallocConfig::flush_half`]).
    pub fill_bounded_returns: Counter,
    /// Cache bins parked whole at thread exit instead of being flushed.
    pub bin_parks: Counter,
    /// Fills served by adopting a parked bin (zero CASes, zero carves).
    pub bin_adopts: Counter,
    /// Fully-empty superblocks reclaimed from partial lists instead of
    /// carving fresh space.
    pub sb_scavenged: Counter,
    /// Fills served by the free-list re-check that follows a failed
    /// scavenge (a concurrent flush/scavenge replenished the list while
    /// our scan was holding descriptors invisible).
    pub free_recheck_hits: Counter,
    /// Open-addressing probes performed by bulk-flush partitioning.
    /// Small batches use the in-place linear scan and count nothing;
    /// for table-partitioned batches this stays O(batch len) no matter
    /// how many superblocks the bin spans.
    pub flush_partition_probes: Counter,
    /// Large allocations served.
    pub large_allocs: Counter,
    /// Fills served by popping the calling thread's *home* shard.
    pub partial_pops_home: Counter,
    /// Fills served by stealing from a neighbor shard (home was empty).
    pub partial_steals: Counter,
    /// FULL→PARTIAL transitions enlisting a superblock on the pusher's
    /// home shard.
    pub partial_shard_pushes: Counter,
    /// Bin overflows resolved by the flush-half policy (0 unless
    /// [`RallocConfig::flush_half`] is set).
    pub half_flushes: Counter,
    /// Blocks a flush classified as *remote* (superblock owned by a shard
    /// other than the freeing thread's home). Counted in both ring modes,
    /// so `remote_anchor_cas / remote_free_blocks` is the comparable
    /// remote-free CAS cost.
    pub remote_free_blocks: Counter,
    /// Anchor CASes spent returning remote groups: every remote group
    /// with rings off; only ring-overflow displacements and teardown
    /// drains with rings on.
    pub remote_anchor_cas: Counter,
    /// Batches pushed onto remote-free rings (wait-free producer side).
    pub remote_ring_pushes: Counter,
    /// Blocks carried by those pushes.
    pub remote_ring_push_blocks: Counter,
    /// Batches claimed by fill-side ring drains (owner + steal drains).
    pub remote_ring_drain_batches: Counter,
    /// Blocks those drains moved straight into cache bins (zero CAS).
    pub remote_ring_drain_blocks: Counter,
    /// Ring pushes that lapped an undrained slot, displacing its batch
    /// back onto the direct grouped-CAS fallback (also flight-recorded,
    /// so `rinspect timeline` shows a pool running degraded).
    pub remote_ring_overflows: Counter,
    /// Blocks-per-drain distribution of fill-side ring drains.
    pub remote_drain_batch: Histogram,
}

impl SlowStats {
    /// Build the stats with every counter registered (by field name) in
    /// `reg`, so the registry and this struct are two views of the same
    /// sharded counters.
    fn registered(reg: &Registry) -> SlowStats {
        SlowStats {
            cache_fills: reg.counter("cache_fills"),
            cache_fill_blocks: reg.counter("cache_fill_blocks"),
            cache_flushes: reg.counter("cache_flushes"),
            cache_flushes_blocks: reg.counter("cache_flushes_blocks"),
            fill_anchor_cas: reg.counter("fill_anchor_cas"),
            flush_anchor_cas: reg.counter("flush_anchor_cas"),
            sb_carved: reg.counter("sb_carved"),
            heap_grows: reg.counter("heap_grows"),
            desc_grows: reg.counter("desc_grows"),
            heap_shrinks: reg.counter("heap_shrinks"),
            sb_released: reg.counter("sb_released"),
            fill_bestfit_probes: reg.counter("fill_bestfit_probes"),
            fill_bounded_returns: reg.counter("fill_bounded_returns"),
            bin_parks: reg.counter("bin_parks"),
            bin_adopts: reg.counter("bin_adopts"),
            sb_scavenged: reg.counter("sb_scavenged"),
            free_recheck_hits: reg.counter("free_recheck_hits"),
            flush_partition_probes: reg.counter("flush_partition_probes"),
            large_allocs: reg.counter("large_allocs"),
            partial_pops_home: reg.counter("partial_pops_home"),
            partial_steals: reg.counter("partial_steals"),
            partial_shard_pushes: reg.counter("partial_shard_pushes"),
            half_flushes: reg.counter("half_flushes"),
            remote_free_blocks: reg.counter("remote_free_blocks"),
            remote_anchor_cas: reg.counter("remote_anchor_cas"),
            remote_ring_pushes: reg.counter("remote_ring_pushes"),
            remote_ring_push_blocks: reg.counter("remote_ring_push_blocks"),
            remote_ring_drain_batches: reg.counter("remote_ring_drain_batches"),
            remote_ring_drain_blocks: reg.counter("remote_ring_drain_blocks"),
            remote_ring_overflows: reg.counter("remote_ring_overflows"),
            remote_drain_batch: reg.histogram("remote_drain_batch_blocks"),
        }
    }

    /// Average blocks obtained per cache fill (0.0 before the first fill).
    pub fn avg_fill_batch(&self) -> f64 {
        let fills = self.cache_fills.load(Ordering::Relaxed);
        if fills == 0 {
            return 0.0;
        }
        self.cache_fill_blocks.load(Ordering::Relaxed) as f64 / fills as f64
    }

    /// Average blocks returned per cache flush (0.0 before the first).
    pub fn avg_flush_batch(&self) -> f64 {
        let flushes = self.cache_flushes.load(Ordering::Relaxed);
        if flushes == 0 {
            return 0.0;
        }
        self.cache_flushes_blocks.load(Ordering::Relaxed) as f64 / flushes as f64
    }

    /// Fraction of partial-list pops that had to steal from a neighbor
    /// shard (0.0 before the first pop). High values mean the shard
    /// placement is imbalanced for this workload.
    pub fn steal_rate(&self) -> f64 {
        let home = self.partial_pops_home.load(Ordering::Relaxed);
        let stolen = self.partial_steals.load(Ordering::Relaxed);
        if home + stolen == 0 {
            return 0.0;
        }
        stolen as f64 / (home + stolen) as f64
    }
}

/// Pool region indices for the v5 multi-region partition, in
/// [`PmemPool::define_regions`] order: metadata, descriptors,
/// superblocks.
pub(crate) const REGION_DESC: usize = 1;
pub(crate) const REGION_SB: usize = 2;

/// Shared heap state. Public API lives on [`Ralloc`].
pub struct HeapInner {
    pool: PmemPool,
    geo: Geometry,
    id: u64,
    transient: bool,
    /// Live partial-list shard count (transient config; see `shard`).
    shards: u32,
    /// Return only half of an overflowing cache bin (Makalu-style).
    flush_half: bool,
    /// Committed-frontier doubling factor (clamped at construction).
    growth_factor: f64,
    /// When the frontier shrinks back (close/recovery hooks).
    shrink_policy: ShrinkPolicy,
    /// Bins parked by exited threads, adopted whole by future fills
    /// (bounded retention: at most [`MAX_PARKED_BINS`] per class).
    /// Transient like the thread caches they came from: discarded on
    /// crash, flushed on clean close.
    parked: [Mutex<Vec<CacheBin>>; NUM_CLASSES],
    /// Bounded MPSC remote-free rings, indexed `[class][shard]` (flat,
    /// `class * shards + shard`). `None` when disabled by config/env or
    /// when the heap runs a single shard (every free is local then).
    /// Volatile by design — see [`crate::remote`]: drained to the heap at
    /// clean close and explicit shrink, discarded by crash simulation
    /// and recovery (the reachability sweep reclaims their blocks).
    rings: Option<Box<[RemoteRing]>>,
    /// Rotating start shard for the pre-carve ring steal-drain. Without
    /// rotation a fixed scan order starves the highest-indexed rings —
    /// early-stopping drains keep skimming the first pending ring and
    /// the rest sit full, displacing every subsequent push.
    ring_cursor: AtomicU64,
    /// Per-ring (occupancy, high-water) gauge handles, keyed by flat ring
    /// index. A ring enters the registry only once it has seen traffic —
    /// idle rings would otherwise flood exports with `classes x shards`
    /// zero entries — and its `'static` names are leaked exactly once
    /// here, not per export.
    ring_gauges: Mutex<HashMap<usize, (Gauge, Gauge)>>,
    /// The superblock-region frontier (bytes) that is both committed in
    /// the pool *and* whose metadata word has been flushed and fenced.
    /// Carving reads this, never the raw pool frontier: a grow publishes
    /// here only after the frontier word's fence, so a persisted `used`
    /// can never outrun a persisted frontier (the crash-recoverable
    /// ordering of the grow protocol).
    committed_safe: AtomicU64,
    /// The descriptor-region frontier (bytes), same publish discipline as
    /// `committed_safe` against `DESC_COMMITTED_LEN_OFF`: a carve may
    /// only use descriptors under this frontier, and it only rises after
    /// the descriptor frontier word's fence — the same instance of the
    /// grow protocol run independently for the descriptor region (v5).
    desc_safe: AtomicU64,
    /// Bumped by crash simulation so stale thread caches are discarded.
    generation: AtomicU64,
    /// Thread-exit cache drains in flight. A thread's TLS destructor runs
    /// *after* the thread is observably finished (e.g. after
    /// `thread::scope` returns, which only waits for the closure), so its
    /// cache flush can land in the middle of a quiescent-point operation
    /// on another thread. Destructors bracket their drain with
    /// `begin/end_exit_drain`; recovery retires pre-recovery caches and
    /// waits this count out (`quiesce_caches`), close and explicit shrink
    /// wait it out (`await_exit_drains`).
    exit_drains: AtomicUsize,
    closed: AtomicBool,
    file: Option<PathBuf>,
    /// Transient per-root filter functions (paper's `rootsFunc`),
    /// re-registered each run by `get_root<T>`.
    pub(crate) root_fns: Mutex<HashMap<usize, TraceFn>>,
    pub(crate) slow: SlowStats,
    /// The heap's metric registry ([`SlowStats`] plus recovery gauges
    /// and any histograms callers hang off it); `heap` scope in exports.
    pub(crate) telemetry: Registry,
    /// Ring buffer of persistence-protocol events (grow/shrink phases,
    /// recovery phases, fill/flush/steal/carve).
    pub(crate) journal: Journal,
    /// Crash-surviving protocol-event ring living inside the pool's
    /// metadata region (see [`crate::flight`]). The volatile journal's
    /// durable sibling: same event schema, survives SIGKILL.
    pub(crate) flight: FlightRecorder,
    /// The pool's flight timeline as found at adoption, *before* this
    /// process wrote anything — the previous run's last recorded steps
    /// (the victim's, after a crash). Empty for fresh heaps.
    preopen_flight: FlightScan,
    /// Background JSONL sampler, when started (env knob or API).
    sampler: Mutex<Option<SamplerHandle>>,
}

impl HeapInner {
    #[inline]
    pub(crate) fn id(&self) -> u64 {
        self.id
    }

    #[inline]
    pub(crate) fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    #[inline]
    pub(crate) fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    /// Announce a thread-exit cache drain and read the state that decides
    /// whether it may flush: `(generation, closed)`. SeqCst pairs this
    /// with [`HeapInner::quiesce_caches`]: a destructor either reads the
    /// old generation — and then its increment is visible to the waiter,
    /// which blocks until [`HeapInner::end_exit_drain`] — or reads the new
    /// one and flushes nothing.
    pub(crate) fn begin_exit_drain(&self) -> (u64, bool) {
        self.exit_drains.fetch_add(1, Ordering::SeqCst);
        (self.generation.load(Ordering::SeqCst), self.closed.load(Ordering::SeqCst))
    }

    pub(crate) fn end_exit_drain(&self) {
        self.exit_drains.fetch_sub(1, Ordering::SeqCst);
    }

    /// Retire every thread cache stamped before this point (their blocks
    /// are about to be re-derived from the roots, exactly as after a
    /// crash) and wait out exit drains that passed the generation check
    /// first. Recovery's entry step.
    pub(crate) fn quiesce_caches(&self) {
        self.generation.fetch_add(1, Ordering::SeqCst);
        self.await_exit_drains();
    }

    /// Wait for in-flight thread-exit drains without invalidating caches
    /// (close and explicit shrink *want* exiting threads' blocks flushed
    /// — just not concurrently with their own list scan).
    pub(crate) fn await_exit_drains(&self) {
        while self.exit_drains.load(Ordering::SeqCst) != 0 {
            std::thread::yield_now();
        }
    }

    #[inline]
    pub(crate) fn pool(&self) -> &PmemPool {
        &self.pool
    }

    #[inline]
    pub(crate) fn geo(&self) -> &Geometry {
        &self.geo
    }

    #[inline]
    pub(crate) fn is_transient(&self) -> bool {
        self.transient
    }

    /// Live partial-list shard count.
    #[inline]
    pub(crate) fn shards(&self) -> u32 {
        self.shards
    }

    /// The sharded partial list of `class` under this heap's shard count.
    #[inline]
    pub(crate) fn partial(&self, class: u32) -> ShardedPartial {
        ShardedPartial::new(class, self.shards)
    }

    /// The calling thread's home shard on this heap.
    #[inline]
    pub(crate) fn home_shard(&self) -> u32 {
        shard::home_shard(shard::thread_token(), self.shards)
    }

    /// Fold descriptors parked on reserved-but-stale shard heads
    /// (`live..MAX_SHARDS`) into the live shards. A *clean* reopen under
    /// a smaller shard count inherits the previous run's heads verbatim,
    /// and nothing online ever probes past the live count (pops and
    /// scavenges stop there) — without this, those superblocks' free
    /// blocks would be stranded until the next dirty restart's rebuild.
    fn fold_stale_shards(&self) {
        for class in 1..NUM_CLASSES as u32 {
            for s in self.shards..shard::MAX_SHARDS as u32 {
                let stale = DescList::partial_shard(&self.geo, class, s);
                let mut popped = 0;
                while let Some(idx) = stale.pop(&self.pool, &self.geo) {
                    popped += 1;
                    assert!(
                        popped <= self.geo.max_sb,
                        "stale shard head cycles: corrupt clean image"
                    );
                    self.partial(class).push(
                        &self.pool,
                        &self.geo,
                        idx,
                        shard::place_superblock(idx as usize, self.shards),
                    );
                }
            }
        }
    }

    /// Absolute address of pool offset `off`.
    #[inline]
    pub(crate) fn addr_of(&self, off: usize) -> usize {
        self.pool.base() as usize + off
    }

    /// Flush+fence unless in transient (LRMalloc) mode.
    #[inline]
    pub(crate) fn persist(&self, off: usize, len: usize) {
        if !self.transient {
            self.pool.persist(off, len);
        }
    }

    /// Record an event in the persistent flight ring (level-gated; see
    /// [`crate::flight`]).
    #[inline]
    pub(crate) fn flight_record(&self, kind: EventKind, a: u64, b: u64) {
        self.flight.record(&self.pool, kind, a, b);
    }

    /// Number of superblocks carved so far (the paper's `used`).
    pub(crate) fn used_sb(&self) -> usize {
        // SAFETY: metadata offset, 8-aligned.
        unsafe { self.pool.atomic_u64(USED_SB_OFF) }.load(Ordering::Acquire) as usize
    }

    /// Superblocks the heap may carve without growing: the durable
    /// committed frontier's coverage.
    pub(crate) fn committed_sb(&self) -> usize {
        self.geo.committed_sb(self.committed_safe.load(Ordering::Acquire) as usize)
    }

    /// Descriptors the heap may use without growing the descriptor
    /// region: the durable descriptor frontier's coverage.
    pub(crate) fn desc_committed_sb(&self) -> usize {
        self.geo.desc_committed_sb(self.desc_safe.load(Ordering::Acquire) as usize)
    }

    /// One flat JSON time-series line for the sampler (JSONL schema; see
    /// the README's Observability section). Key names are stable — CI
    /// asserts `committed_len`, `fills`, `flushes`, `steals` exist and
    /// behave (present every line, monotone where monotone).
    pub(crate) fn sample_line(&self) -> String {
        let s = &self.slow;
        let pm = self.pool.stats().snapshot();
        self.refresh_ring_gauges();
        let ring_occ = self.rings.as_ref().map_or(0, |r| r.iter().map(RemoteRing::occupancy).sum());
        let ring_hw =
            self.rings.as_ref().map_or(0, |r| r.iter().map(RemoteRing::high_water).max().unwrap_or(0));
        format!(
            "{{\"t_ms\": {}, \"heap_id\": {}, \"committed_len\": {}, \"committed_sb\": {}, \
             \"used_sb\": {}, \"fills\": {}, \"fill_blocks\": {}, \"flushes\": {}, \
             \"flush_blocks\": {}, \"steals\": {}, \"home_pops\": {}, \"steal_rate\": {:.4}, \
             \"carved\": {}, \"grows\": {}, \"shrinks\": {}, \"sb_released\": {}, \
             \"large_allocs\": {}, \"pmem_flush_lines\": {}, \"pmem_flush_calls\": {}, \
             \"pmem_fences\": {}, \"journal_events\": {}, \"remote_ring_occupancy\": {ring_occ}, \
             \"remote_ring_high_water\": {ring_hw}}}",
            telemetry::now_ms(),
            self.id,
            self.committed_safe.load(Ordering::Acquire),
            self.committed_sb(),
            self.used_sb(),
            s.cache_fills.get(),
            s.cache_fill_blocks.get(),
            s.cache_flushes.get(),
            s.cache_flushes_blocks.get(),
            s.partial_steals.get(),
            s.partial_pops_home.get(),
            s.steal_rate(),
            s.sb_carved.get(),
            s.heap_grows.get(),
            s.heap_shrinks.get(),
            s.sb_released.get(),
            s.large_allocs.get(),
            pm.flush_lines,
            pm.flush_calls,
            pm.fences,
            self.journal.recorded(),
        )
    }

    /// Refresh the remote-ring occupancy/high-water gauges from the live
    /// rings. Called on every telemetry export — the rings themselves
    /// stay untouched on the hot path; this is a point-in-time read of
    /// their producer/consumer counters. Per-ring gauges ground capacity
    /// tuning (`RALLOC_REMOTE_RING_CAP`): a high-water at the slot count
    /// means that ring displaces batches back onto the anchor-CAS path.
    pub(crate) fn refresh_ring_gauges(&self) {
        let Some(rings) = &self.rings else { return };
        self.telemetry.describe(
            "remote_ring_occupancy",
            "remote-free batches currently in flight across every ring",
        );
        self.telemetry.describe(
            "remote_ring_high_water",
            "highest in-flight batch count any single ring has seen",
        );
        let shards = self.shards as usize;
        let mut gauges = self.ring_gauges.lock();
        let (mut occ_total, mut hw_max) = (0u64, 0u64);
        for (i, ring) in rings.iter().enumerate() {
            let (occ, hw) = (ring.occupancy(), ring.high_water());
            occ_total += occ;
            hw_max = hw_max.max(hw);
            if hw == 0 && !gauges.contains_key(&i) {
                continue; // never-touched ring: keep it out of the registry
            }
            let (occ_g, hw_g) = gauges.entry(i).or_insert_with(|| {
                let (class, shard) = (i / shards, i % shards);
                // Leaked exactly once per active ring (bounded by
                // classes x shards), because registry names are 'static.
                let occ_name: &'static str = Box::leak(
                    format!("remote_ring_c{class}_s{shard}_occupancy").into_boxed_str(),
                );
                let hw_name: &'static str = Box::leak(
                    format!("remote_ring_c{class}_s{shard}_high_water").into_boxed_str(),
                );
                (self.telemetry.gauge(occ_name), self.telemetry.gauge(hw_name))
            });
            occ_g.set(occ as i64);
            hw_g.set(hw as i64);
        }
        self.telemetry.gauge("remote_ring_occupancy").set(occ_total as i64);
        self.telemetry.gauge("remote_ring_high_water").set(hw_max as i64);
    }

    /// Refresh the safe frontier from the durable frontier word (offline
    /// use: recovery entry). After a crash the word holds the last fenced
    /// value, which is always >= the published safe frontier, and an
    /// eviction-style crash may even have persisted a *larger* word than
    /// was ever published — both are valid committed space.
    pub(crate) fn reload_frontier(&self) {
        // SAFETY: metadata words.
        let word = unsafe { self.pool.atomic_u64(COMMITTED_LEN_OFF) }.load(Ordering::Acquire);
        self.committed_safe.fetch_max(word, Ordering::AcqRel);
        let desc = unsafe { self.pool.atomic_u64(DESC_COMMITTED_LEN_OFF) }.load(Ordering::Acquire);
        self.desc_safe.fetch_max(desc, Ordering::AcqRel);
    }

    /// Grow the committed frontier to cover at least `need_sb`
    /// superblocks. Returns false only when `need_sb` exceeds the
    /// reserved capacity (the heap's hard OOM).
    ///
    /// Crash-recoverable ordering, per growth step:
    /// 1. `pool.commit_to` — the new space becomes addressable (pure
    ///    mapping state, no durable effect);
    /// 2. CAS-max the persisted frontier word, then flush + fence it;
    /// 3. publish `committed_safe`, releasing carvers into the space.
    ///
    /// A crash after 1 loses nothing; after 2, recovery sees a larger
    /// frontier with `used` still behind it (extra committed space,
    /// never dangling state); only after 3 can a `used` bump covering
    /// the new space be persisted — behind the already-durable frontier.
    #[cold]
    fn grow(&self, need_sb: usize) -> bool {
        if need_sb > self.geo.max_sb {
            return false;
        }
        loop {
            let cur_sb = self.committed_sb();
            if cur_sb >= need_sb {
                return true;
            }
            // Doubling policy: geometric in superblocks, clamped to the
            // request floor and the reserved ceiling.
            let target_sb = ((cur_sb as f64 * self.growth_factor) as usize)
                .max(need_sb)
                .min(self.geo.max_sb);
            let target = self.geo.committed_len_for_sb(target_sb);
            self.pool.commit_region_to(REGION_SB, target);
            // SAFETY: metadata offset, 8-aligned.
            let word = unsafe { self.pool.atomic_u64(COMMITTED_LEN_OFF) };
            let mut w = word.load(Ordering::Acquire);
            while w < target as u64 {
                match word.compare_exchange(
                    w,
                    target as u64,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => break,
                    Err(cur) => w = cur,
                }
            }
            self.persist(COMMITTED_LEN_OFF, 8);
            self.journal.record(EventKind::GrowCommit, target as u64, 0);
            self.flight_record(EventKind::GrowCommit, target as u64, 0);
            self.committed_safe.fetch_max(target as u64, Ordering::AcqRel);
            self.journal.record(EventKind::GrowPublish, target as u64, 0);
            self.flight_record(EventKind::GrowPublish, target as u64, 0);
            self.slow.heap_grows.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Grow the descriptor-region frontier to cover at least `need_sb`
    /// descriptors — the same crash-recoverable ordering as [`Self::grow`]
    /// run independently against the descriptor region's own frontier
    /// word: commit the region → CAS-max `DESC_COMMITTED_LEN_OFF` →
    /// flush + fence → publish `desc_safe`. A crash between any two steps
    /// leaves at worst extra committed descriptor space with `used` still
    /// behind it. Returns false only past the reserved capacity.
    #[cold]
    fn grow_desc(&self, need_sb: usize) -> bool {
        if need_sb > self.geo.max_sb {
            return false;
        }
        loop {
            let cur_sb = self.desc_committed_sb();
            if cur_sb >= need_sb {
                return true;
            }
            // Same doubling policy as the superblock region, but the two
            // frontiers advance independently — nothing couples their
            // step sizes or timing beyond carve needing both coverages.
            let target_sb = ((cur_sb as f64 * self.growth_factor) as usize)
                .max(need_sb)
                .min(self.geo.max_sb);
            let target = self.geo.desc_committed_len_for_sb(target_sb);
            self.pool.commit_region_to(REGION_DESC, target);
            // SAFETY: metadata offset, 8-aligned.
            let word = unsafe { self.pool.atomic_u64(DESC_COMMITTED_LEN_OFF) };
            let mut w = word.load(Ordering::Acquire);
            while w < target as u64 {
                match word.compare_exchange(
                    w,
                    target as u64,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => break,
                    Err(cur) => w = cur,
                }
            }
            self.persist(DESC_COMMITTED_LEN_OFF, 8);
            self.journal.record(EventKind::GrowDescCommit, target as u64, 0);
            self.flight_record(EventKind::GrowDescCommit, target as u64, 0);
            self.desc_safe.fetch_max(target as u64, Ordering::AcqRel);
            self.journal.record(EventKind::GrowDescPublish, target as u64, 0);
            self.flight_record(EventKind::GrowDescPublish, target as u64, 0);
            self.slow.desc_grows.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The shrink policy this heap runs under.
    #[inline]
    pub(crate) fn shrink_policy(&self) -> ShrinkPolicy {
        self.shrink_policy
    }

    /// Release the trailing run of fully-free superblocks: unlink their
    /// descriptors, lower `used`, lower the persisted frontier word, and
    /// decommit the tail. Returns the number of superblocks released.
    ///
    /// **Quiescent-point only** — the caller guarantees no concurrent
    /// heap operation (clean close, end of recovery, or an explicit
    /// [`Ralloc::shrink`] under the same contract): `used` never
    /// decreases online, and the list surgery below is not lock-free.
    ///
    /// Crash-recoverable ordering (the grow protocol's mirror image —
    /// grow is commit → CAS-max word → flush+fence → publish; shrink is
    /// unpublish → CAS-min word → flush+fence → decommit):
    /// 1. unlink the released descriptors from the free/partial lists
    ///    (transient state: a crash here just means a dirty rebuild);
    /// 2. *unpublish*: lower the persisted `used` word, flush + fence it,
    ///    and pull `committed_safe` down so nothing could carve the tail
    ///    (vacuous under quiescence, but keeps the published frontier and
    ///    the durable words in lockstep);
    /// 3. CAS-min the persisted frontier word down to cover exactly the
    ///    new `used`, then flush + fence it;
    /// 4. decommit the pool tail.
    ///
    /// A crash after 2 leaves used' < frontier (extra committed space,
    /// never dangling state); a crash between 3 and 4 leaves the durable
    /// frontier below the still-mapped tail, which reopen/recovery heal
    /// upward from the image — in every interleaving the durable frontier
    /// covers every durably-`used` superblock.
    pub(crate) fn shrink_quiesced(&self) -> usize {
        let used = self.used_sb();
        // Interior superblocks of *live* large allocations carry stale
        // recycled anchors (only the head's anchor is maintained online),
        // so "anchor == EMPTY" alone cannot prove a superblock free:
        // claim live spans first, exactly like recovery and the checker.
        let mut claimed = vec![false; used];
        for i in 0..used {
            let d = Desc::new(&self.pool, &self.geo, i as u32);
            if let DescKind::LargeHead { span } = d.classify(&self.geo, used) {
                if d.anchor(Ordering::Acquire).state == SbState::Full {
                    for k in 0..span {
                        claimed[i + k] = true;
                    }
                }
            }
        }
        let mut new_used = used;
        while new_used > 0 && !claimed[new_used - 1] {
            let d = Desc::new(&self.pool, &self.geo, (new_used - 1) as u32);
            if d.anchor(Ordering::Acquire).state != SbState::Empty {
                break;
            }
            new_used -= 1;
        }
        // The release covers the freed trailing run *and* the
        // committed-but-never-carved overshoot of the doubling policy, so
        // the shrunken frontier lands exactly on the surviving `used`.
        let committed_before = self.committed_sb();
        if new_used == used && committed_before <= new_used {
            return 0;
        }
        // Step 1: unlink every released descriptor. They sit on the free
        // list or (lazily retired) on a partial shard; filtering each
        // list and re-splicing the survivors preserves order. All
        // reserved shard heads are walked, not just the live ones — a
        // clean image may carry stale-shard state from a wider run.
        if new_used < used {
            let keep = |idx: &u32| (*idx as usize) < new_used;
            let free = DescList::free_list(&self.geo);
            let kept: Vec<u32> =
                free.collect(&self.pool, &self.geo).into_iter().filter(keep).collect();
            free.reset(&self.pool);
            free.splice_slice(&self.pool, &self.geo, &kept);
            for class in 1..NUM_CLASSES as u32 {
                for s in 0..shard::MAX_SHARDS as u32 {
                    let list = DescList::partial_shard(&self.geo, class, s);
                    let all = list.collect(&self.pool, &self.geo);
                    if all.iter().any(|idx| !keep(idx)) {
                        let kept: Vec<u32> = all.into_iter().filter(keep).collect();
                        list.reset(&self.pool);
                        list.splice_slice(&self.pool, &self.geo, &kept);
                    }
                }
            }
        }
        // Step 2: unpublish. The persisted `used` must drop (and become
        // durable) before the frontier word may, so no crash can observe
        // a frontier below a persisted `used` superblock.
        // SAFETY: metadata word, quiescent.
        unsafe { self.pool.atomic_u64(USED_SB_OFF) }
            .store(new_used as u64, Ordering::Release);
        self.persist(USED_SB_OFF, 8);
        let target = self.geo.committed_len_for_sb(new_used);
        debug_assert!(target >= self.geo.min_committed());
        self.committed_safe.store(target as u64, Ordering::Release);
        self.journal.record(EventKind::ShrinkUnpublish, target as u64, new_used as u64);
        self.flight_record(EventKind::ShrinkUnpublish, target as u64, new_used as u64);
        // Step 3: CAS-min the durable frontier word, then persist it.
        // SAFETY: metadata word.
        let word = unsafe { self.pool.atomic_u64(COMMITTED_LEN_OFF) };
        let mut w = word.load(Ordering::Acquire);
        while w > target as u64 {
            match word.compare_exchange(w, target as u64, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => break,
                Err(cur) => w = cur,
            }
        }
        self.persist(COMMITTED_LEN_OFF, 8);
        // Step 4: release the tail.
        self.pool.decommit_region_to(REGION_SB, target);
        let released = committed_before.saturating_sub(new_used);
        self.journal.record(
            EventKind::ShrinkDecommit,
            (released * SB_SIZE) as u64,
            target as u64,
        );
        self.flight_record(EventKind::ShrinkDecommit, (released * SB_SIZE) as u64, target as u64);
        // Steps 3'/4' for the descriptor region: its own frontier word
        // comes down to cover exactly the surviving `used` (the lowered
        // `used` is already durable from step 2, so no crash point can
        // observe a descriptor frontier below a persisted `used`), then
        // the region tail is released. Runs as its own protocol instance,
        // mirroring the independent grow.
        let desc_target = self.geo.desc_committed_len_for_sb(new_used);
        let desc_before = self.desc_safe.load(Ordering::Acquire) as usize;
        if desc_target < desc_before {
            self.desc_safe.store(desc_target as u64, Ordering::Release);
            // SAFETY: metadata word.
            let word = unsafe { self.pool.atomic_u64(DESC_COMMITTED_LEN_OFF) };
            let mut w = word.load(Ordering::Acquire);
            while w > desc_target as u64 {
                match word.compare_exchange(
                    w,
                    desc_target as u64,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => break,
                    Err(cur) => w = cur,
                }
            }
            self.persist(DESC_COMMITTED_LEN_OFF, 8);
            self.pool.decommit_region_to(REGION_DESC, desc_target);
            self.journal.record(
                EventKind::ShrinkDescDecommit,
                (desc_before - desc_target) as u64,
                desc_target as u64,
            );
            self.flight_record(
                EventKind::ShrinkDescDecommit,
                (desc_before - desc_target) as u64,
                desc_target as u64,
            );
        }
        self.slow.heap_shrinks.fetch_add(1, Ordering::Relaxed);
        self.slow.sb_released.fetch_add(released as u64, Ordering::Relaxed);
        released
    }

    /// Blocks a single fill may retain in the bin for `class`. Unbounded
    /// by default (the paper's whole-superblock Fill); bounded under the
    /// churn policy so one circulating superblock can feed several
    /// concurrently-active threads (see [`CHURN_FILL_RETAIN_DIV`]).
    #[inline]
    fn fill_retain(&self, mc: u32) -> u32 {
        if self.flush_half {
            (mc / CHURN_FILL_RETAIN_DIV).max(CHURN_FILL_RETAIN_MIN).min(mc)
        } else {
            mc
        }
    }

    /// Park a non-empty bin for adoption by a future thread's fill.
    /// Returns false (caller must flush) when the class's retention bound
    /// is already met or the heap is closed/crashed past this bin's life.
    fn park_bin(&self, class: u32, bin: &mut CacheBin) -> bool {
        if bin.len() == 0 {
            return true; // nothing to retain
        }
        // Retention across thread exits is a churn-policy lever; the
        // default policy keeps the historical exit-time full flush.
        if !self.flush_half {
            return false;
        }
        if self.parked[class as usize].lock().len() >= MAX_PARKED_BINS {
            return false;
        }
        // Under the churn policy, trim to the fill-retention bound before
        // parking: the excess goes back to superblock chains where every
        // thread can find it, instead of waiting for a same-class
        // adopter. (Flush outside the parked lock — it can take CASes.)
        let retain = self.fill_retain(class_max_count(class));
        if bin.len() > retain {
            let excess = bin.len() as usize - retain as usize;
            self.flush_blocks(&mut bin.blocks_mut()[..excess]);
            bin.drain_front(excess);
        }
        let mut parked = self.parked[class as usize].lock();
        if parked.len() >= MAX_PARKED_BINS {
            return false;
        }
        parked.push(std::mem::replace(bin, CacheBin::new()));
        self.slow.bin_parks.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Adopt a parked bin (most recently parked first), if any.
    fn adopt_parked(&self, class: u32) -> Option<CacheBin> {
        self.parked[class as usize].lock().pop()
    }

    /// Flush every parked bin back to the heap (clean close: a clean
    /// shutdown leaves nothing cached anywhere).
    pub(crate) fn flush_parked(&self) {
        for class in 1..NUM_CLASSES {
            let bins = std::mem::take(&mut *self.parked[class].lock());
            for mut bin in bins {
                self.flush_bin(&mut bin);
            }
        }
    }

    /// Drop every parked bin without flushing (crash/recovery: the blocks
    /// now belong to the rebuilt free structures, like stale TLS bins).
    pub(crate) fn discard_parked(&self) {
        for class in 1..NUM_CLASSES {
            self.parked[class].lock().clear();
        }
    }

    /// Expand the used prefix of the superblock region by `n` superblocks
    /// (paper §4.3): CAS `used` upward, then flush+fence it. When the
    /// committed frontier is in the way, grow it first (cold path); `None`
    /// only at the reserved-capacity ceiling.
    fn carve(&self, n: usize) -> Option<u32> {
        // SAFETY: metadata offset, 8-aligned.
        let used = unsafe { self.pool.atomic_u64(USED_SB_OFF) };
        loop {
            let u = used.load(Ordering::Acquire);
            if u as usize + n > self.committed_sb() {
                if !self.grow(u as usize + n) {
                    return None; // out of reserved space
                }
                continue;
            }
            // The descriptor region's frontier is independent (v5): a
            // carve needs both its superblocks *and* its descriptors
            // under their respective durable frontiers before `used` may
            // cover them.
            if u as usize + n > self.desc_committed_sb() {
                if !self.grow_desc(u as usize + n) {
                    return None; // out of reserved space
                }
                continue;
            }
            if used
                .compare_exchange(u, u + n as u64, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                self.persist(USED_SB_OFF, 8);
                self.slow.sb_carved.fetch_add(n as u64, Ordering::Relaxed);
                self.journal.record(EventKind::Carve, u, n as u64);
                self.flight_record(EventKind::Carve, u, n as u64);
                return Some(u as u32);
            }
        }
    }

    /// Refill a cache bin for `class` (paper §4.4, LRMalloc's Fill):
    /// first from a partial superblock, else from a free/fresh superblock
    /// whose entire block population goes to the bin. Either way the
    /// whole batch is reserved with at most **one** anchor CAS — a
    /// partial superblock's entire free chain is claimed by a single
    /// Partial→Full transition, and a fresh superblock is owned outright
    /// (plain anchor store) — so the slow path's synchronization is
    /// amortized over every block of the batch.
    pub(crate) fn fill_bin(&self, class: u32, bin: &mut CacheBin) -> bool {
        debug_assert!(is_small_class(class));
        debug_assert_eq!(bin.len(), 0, "fill into a non-empty bin");
        // Warm start (churn policy): adopt a bin parked by an exited
        // thread wholesale — the blocks never left DRAM-cache custody,
        // so the fill costs no anchor CAS and, crucially under churn, no
        // carve. Parking is flush_half-gated, so the pool is always
        // empty under the default policy; the gate here just skips the
        // lock.
        if self.flush_half {
            if let Some(warm) = self.adopt_parked(class) {
                debug_assert!(warm.len() > 0);
                self.slow.bin_adopts.fetch_add(1, Ordering::Relaxed);
                self.slow.cache_fills.fetch_add(1, Ordering::Relaxed);
                self.slow.cache_fill_blocks.fetch_add(warm.len() as u64, Ordering::Relaxed);
                self.journal.record(EventKind::Fill, warm.len() as u64, class as u64);
                self.flight_record(EventKind::Fill, warm.len() as u64, class as u64);
                *bin = warm;
                return true;
            }
        }
        bin.ensure_capacity(cache_capacity(class) as usize);
        let partial = self.partial(class);
        let home = self.home_shard();
        // Owner drain (remote-free rings): batches other threads freed
        // into our home shard's ring move straight into the bin — zero
        // anchor CAS per block, the consumer half of the wait-free
        // remote-free protocol — before any shared-list CAS is attempted.
        if self.rings.is_some() && self.drain_remote(class, home, bin, home) {
            self.slow.cache_fills.fetch_add(1, Ordering::Relaxed);
            self.slow.cache_fill_blocks.fetch_add(bin.len() as u64, Ordering::Relaxed);
            self.journal.record(EventKind::Fill, bin.len() as u64, class as u64);
            self.flight_record(EventKind::Fill, bin.len() as u64, class as u64);
            return true;
        }
        let free = DescList::free_list(&self.geo);
        let bsize = class_block_size(class) as usize;
        let mc = class_max_count(class);
        loop {
            if let Some(pop) = partial.pop(&self.pool, &self.geo, home) {
                let mut pop = pop;
                // Best-fit lever: a mostly-empty first candidate means
                // this fill is about to claim a huge chain while the list
                // goes dry for concurrent fills (the churn demand spike).
                // Probe a bounded number of further candidates and keep
                // the *fullest* — smallest free count — re-enlisting the
                // losers. Counts are read racily; the claim CAS below
                // revalidates whatever we settle on.
                let mut best = Desc::new(&self.pool, &self.geo, pop.idx).anchor(Ordering::Acquire);
                if self.flush_half && best.state == SbState::Partial && best.count * 2 > mc {
                    // Losers re-enlist only after the whole probe run:
                    // pushing one back mid-loop would hand the next
                    // (home-first, LIFO) pop the very descriptor just
                    // pushed, so no second distinct candidate would ever
                    // be seen.
                    let mut losers = [0u32; FILL_BESTFIT_PROBES];
                    let mut n_losers = 0;
                    for _ in 0..FILL_BESTFIT_PROBES {
                        let Some(cand) = partial.pop(&self.pool, &self.geo, home) else {
                            break;
                        };
                        self.slow.fill_bestfit_probes.fetch_add(1, Ordering::Relaxed);
                        let ca = Desc::new(&self.pool, &self.geo, cand.idx)
                            .anchor(Ordering::Acquire);
                        if ca.state == SbState::Empty {
                            // Lazy retirement, same as the claim loop.
                            free.push(&self.pool, &self.geo, cand.idx);
                            continue;
                        }
                        if ca.count < best.count {
                            losers[n_losers] = pop.idx;
                            pop = cand;
                            best = ca;
                        } else {
                            losers[n_losers] = cand.idx;
                        }
                        n_losers += 1;
                        if best.count * 2 <= mc {
                            break; // full enough
                        }
                    }
                    for &idx in &losers[..n_losers] {
                        partial.push(&self.pool, &self.geo, idx, home);
                    }
                }
                let idx = pop.idx;
                let d = Desc::new(&self.pool, &self.geo, idx);
                let mut a = d.anchor(Ordering::Acquire);
                let mut retired = false;
                loop {
                    if a.state == SbState::Empty {
                        // Fully-free superblock found on a partial list:
                        // retire it now (paper §4.4's lazy retirement).
                        free.push(&self.pool, &self.geo, idx);
                        retired = true;
                        break;
                    }
                    debug_assert_eq!(a.state, SbState::Partial);
                    // Reserve every free block with one CAS: count=0,
                    // avail parked at max_count, state FULL.
                    match d.cas_anchor(a, Anchor::full(mc)) {
                        Ok(()) => break,
                        Err(cur) => a = cur,
                    }
                }
                if retired {
                    // Lazily-retired EMPTY pop: no fill was served, so it
                    // counts toward neither home pops nor steals.
                    continue;
                }
                if pop.stolen {
                    self.slow.partial_steals.fetch_add(1, Ordering::Relaxed);
                    self.journal.record(EventKind::Steal, idx as u64, class as u64);
                    self.flight_record(EventKind::Steal, idx as u64, class as u64);
                } else {
                    self.slow.partial_pops_home.fetch_add(1, Ordering::Relaxed);
                }
                self.slow.fill_anchor_cas.fetch_add(1, Ordering::Relaxed);
                // We own the a.count-block chain headed at a.avail; carve
                // it into the bin locally, no further synchronization.
                // The walk is clamped to the bin's capacity: `a.count`
                // can only exceed it if a user double-free inflated the
                // anchor, and the containment then must be a bounded leak,
                // never a write past the bin's slot array.
                let take = a.count.min(mc);
                debug_assert_eq!(take, a.count, "anchor count exceeds superblock population");
                // Bounded fill retention (churn policy): keep only the
                // head of the claimed chain; the tail goes straight back
                // to the superblock (one extra CAS), re-enlisting it for
                // concurrent fills instead of privatizing everything.
                let keep_n = take.min(self.fill_retain(mc));
                let mut surplus: Vec<usize> =
                    Vec::with_capacity((take - keep_n) as usize);
                let sb_addr = self.addr_of(self.geo.sb(idx as usize));
                let mut blk = a.avail;
                for i in 0..take {
                    debug_assert!(blk < mc);
                    let addr = sb_addr + blk as usize * bsize;
                    // Free-block link: the block's first word holds the
                    // next free block's index (bounded walk: the final
                    // link word is never dereferenced).
                    // SAFETY: addr is a free block we exclusively own.
                    blk = unsafe { (*(addr as *const AtomicU64)).load(Ordering::Relaxed) } as u32;
                    // The walk is a dependent pointer chase; start pulling
                    // the next link word in while this block is pushed.
                    if blk < mc {
                        prefetch_read(sb_addr + blk as usize * bsize);
                    }
                    if i < keep_n {
                        bin.push(addr);
                    } else {
                        surplus.push(addr);
                    }
                }
                if !surplus.is_empty() {
                    self.push_batch(idx as usize, &surplus, home);
                    self.slow
                        .fill_bounded_returns
                        .fetch_add(surplus.len() as u64, Ordering::Relaxed);
                }
                self.slow.cache_fills.fetch_add(1, Ordering::Relaxed);
                self.slow.cache_fill_blocks.fetch_add(keep_n as u64, Ordering::Relaxed);
                self.journal.record(EventKind::Fill, keep_n as u64, class as u64);
                self.flight_record(EventKind::Fill, keep_n as u64, class as u64);
                return true;
            }
            // No partial superblock: take a free one, scavenge an empty
            // one stranded on another class's partial list, or carve.
            let idx = match free.pop(&self.pool, &self.geo).or_else(|| self.scavenge()) {
                Some(i) => i,
                // A failed scavenge raced with every concurrent scan and
                // flush: while scans hold popped descriptors they are
                // invisible (the scavenge-invisibility window), and a
                // flush may have retired a superblock to the free list
                // after our first pop missed it. One re-check converts
                // those races into reuse instead of a permanent carve.
                None => match free.pop(&self.pool, &self.geo) {
                    Some(i) => {
                        self.slow.free_recheck_hits.fetch_add(1, Ordering::Relaxed);
                        i
                    }
                    None => {
                        // Last stop before carving fresh space:
                        // steal-drain every shard's remote ring for this
                        // class. In asymmetric workloads (prodcon: some
                        // threads only allocate, others only free) the
                        // owning shards may never fill again, so without
                        // this sweep their ringed blocks would strand
                        // while the frontier grew without bound.
                        if self.rings.is_some() && self.steal_drain_rings(class, bin, home) {
                            self.slow.cache_fills.fetch_add(1, Ordering::Relaxed);
                            self.slow
                                .cache_fill_blocks
                                .fetch_add(bin.len() as u64, Ordering::Relaxed);
                            self.journal.record(EventKind::Fill, bin.len() as u64, class as u64);
                            self.flight_record(EventKind::Fill, bin.len() as u64, class as u64);
                            return true;
                        }
                        match self.carve(1) {
                            Some(i) => i,
                            None => return false, // out of persistent space
                        }
                    }
                },
            };
            let d = Desc::new(&self.pool, &self.geo, idx);
            // The one flush+fence of the allocation slow path: persist the
            // superblock's size identity before any of its blocks can be
            // handed out (paper §4, innovation 1). If a recycled
            // superblock already carries the identical persisted identity
            // (same class round-tripping through the free list), the
            // flush is provably redundant and skipped.
            let unchanged = d.size_class() == class && d.block_size() == bsize as u64;
            d.set_size(class, bsize as u64, mc, self.transient || unchanged);
            // Bounded fill retention (churn policy): by default the whole
            // fresh population goes to the bin (LRMalloc's Fill, maximal
            // amortization), but under `flush_half` the bin keeps only
            // the retention bound and the rest stays on the superblock's
            // free chain, enlisted PARTIAL. A fresh carve then feeds
            // several concurrently-active threads instead of one, so
            // per-(thread × class) retention stops forcing one new
            // superblock per additional runnable thread — the churn
            // footprint's quantized demand spike.
            let keep = self.fill_retain(mc);
            let sb_addr = self.addr_of(self.geo.sb(idx as usize));
            if keep < mc {
                // We own the fresh superblock outright: link the withheld
                // tail (blocks keep..mc) in ascending order and publish
                // the anchor before enlisting. The final block's link is
                // never followed (walks are bounded by count).
                for i in keep..mc - 1 {
                    // SAFETY: free-block first word of a block we own.
                    unsafe {
                        std::ptr::write((sb_addr + i as usize * bsize) as *mut u64, i as u64 + 1)
                    };
                }
                d.set_anchor(
                    Anchor { avail: keep, count: mc - keep, state: SbState::Partial },
                    Ordering::Release,
                );
                self.partial(class).push(&self.pool, &self.geo, idx, home);
                self.slow.partial_shard_pushes.fetch_add(1, Ordering::Relaxed);
            } else {
                d.set_anchor(Anchor::full(mc), Ordering::Release);
            }
            for i in (0..keep).rev() {
                bin.push(sb_addr + i as usize * bsize);
            }
            self.slow.cache_fills.fetch_add(1, Ordering::Relaxed);
            self.slow.cache_fill_blocks.fetch_add(keep as u64, Ordering::Relaxed);
            self.journal.record(EventKind::Fill, keep as u64, class as u64);
            self.flight_record(EventKind::Fill, keep as u64, class as u64);
            return true;
        }
    }

    /// Reclaim one fully-empty superblock parked on some class's partial
    /// list. Lazy retirement (paper §4.4) leaves PARTIAL→EMPTY
    /// superblocks enlisted until their own class pops them again; under
    /// shifting class mix that reservoir can strand megabytes while other
    /// classes carve fresh space. This runs only when the free list is
    /// exhausted, scans each class's partial list a bounded number of
    /// pops, re-enlists everything still partial, and hands one empty
    /// superblock to the caller (who re-types it with `set_size`, exactly
    /// like a free-list pop — the same ownership rules apply: a popped
    /// descriptor is off-list and EMPTY means no live blocks can be
    /// concurrently freed into it).
    ///
    /// While a scan holds popped descriptors they are invisible to
    /// concurrent fills of their class, which may carve instead; the
    /// small per-class bound keeps that window to a few descriptors for
    /// a few instructions, trading at worst one transient extra carve
    /// for the (permanent) carve that skipping scavenging would cost.
    fn scavenge(&self) -> Option<u32> {
        const POPS_PER_SHARD: usize = 4;
        for class in 1..NUM_CLASSES as u32 {
            for s in 0..self.shards {
                let list = DescList::partial_shard(&self.geo, class, s);
                let mut repush: [u32; POPS_PER_SHARD] = [0; POPS_PER_SHARD];
                let mut repush_n = 0;
                let mut found = None;
                while repush_n < POPS_PER_SHARD {
                    let Some(idx) = list.pop(&self.pool, &self.geo) else { break };
                    let d = Desc::new(&self.pool, &self.geo, idx);
                    if d.anchor(Ordering::Acquire).state == SbState::Empty {
                        found = Some(idx);
                        break;
                    }
                    repush[repush_n] = idx;
                    repush_n += 1;
                }
                for &idx in &repush[..repush_n] {
                    list.push(&self.pool, &self.geo, idx);
                }
                if found.is_some() {
                    self.slow.sb_scavenged.fetch_add(1, Ordering::Relaxed);
                    return found;
                }
            }
        }
        None
    }

    /// Return a batch of same-superblock blocks to that superblock's
    /// internal free list with a **single** anchor CAS, handling the
    /// FULL→PARTIAL and →EMPTY transitions (paper §4.4). The batch is
    /// pre-linked into a local chain (we own every block until the CAS
    /// publishes it), then spliced ahead of the current free-list head.
    fn push_batch(&self, sb: usize, blocks: &[usize], home: u32) {
        debug_assert!(!blocks.is_empty());
        let d = Desc::new(&self.pool, &self.geo, sb as u32);
        let mc = d.max_count();
        let bsize = d.block_size() as usize;
        let sb_addr = self.addr_of(self.geo.sb(sb));
        let block_idx = |addr: usize| {
            debug_assert_eq!((addr - sb_addr) % bsize, 0, "misaligned block in batch");
            let blk = ((addr - sb_addr) / bsize) as u32;
            debug_assert!(blk < mc);
            blk
        };
        // Pre-link the interior of the chain: block i's first word points
        // at block i+1's index. Unlike the fill walk the addresses are all
        // known up front, so pull block i+2's line in while linking i.
        // SAFETY: we own every freed block until the CAS publishes them.
        for (i, w) in blocks.windows(2).enumerate() {
            if let Some(&ahead) = blocks.get(i + 2) {
                prefetch_read(ahead);
            }
            unsafe { (*(w[0] as *const AtomicU64)).store(block_idx(w[1]) as u64, Ordering::Relaxed) };
        }
        let head = block_idx(blocks[0]);
        let tail = blocks[blocks.len() - 1];
        let n = blocks.len() as u32;
        loop {
            let a = d.anchor(Ordering::Acquire);
            // Link the chain's tail to the current head. `a.avail` may be
            // the max_count sentinel; walks are bounded by count, so the
            // stale link is never followed.
            // SAFETY: the tail block is still ours until the CAS.
            unsafe { (*(tail as *const AtomicU64)).store(a.avail as u64, Ordering::Release) };
            let count = a.count + n;
            debug_assert!(count <= mc);
            let new = Anchor {
                avail: head,
                count,
                state: if count == mc { SbState::Empty } else { SbState::Partial },
            };
            if d.cas_anchor(a, new).is_ok() {
                self.slow.flush_anchor_cas.fetch_add(1, Ordering::Relaxed);
                if a.state == SbState::Full {
                    // FULL superblocks are on no list; the thread that
                    // makes the transition enlists the descriptor — onto
                    // its own home shard, so a thread's flushed
                    // superblocks are the ones its next fill pops.
                    if new.state == SbState::Empty {
                        DescList::free_list(&self.geo).push(&self.pool, &self.geo, sb as u32);
                    } else {
                        self.partial(d.size_class()).push(&self.pool, &self.geo, sb as u32, home);
                        self.slow.partial_shard_pushes.fetch_add(1, Ordering::Relaxed);
                    }
                }
                // PARTIAL→EMPTY keeps the descriptor on its partial list;
                // it is retired when next popped (lazy, paper §4.4).
                return;
            }
        }
    }

    /// The remote-free ring of `(class, shard)`. Callers must have
    /// checked `self.rings.is_some()`.
    #[inline]
    fn ring(&self, class: u32, shard: u32) -> &RemoteRing {
        let rings = self.rings.as_ref().expect("remote rings disabled");
        &rings[class as usize * self.shards as usize + shard as usize]
    }

    /// Whether the remote-free rings are active for this heap.
    #[inline]
    pub(crate) fn remote_rings_enabled(&self) -> bool {
        self.rings.is_some()
    }

    /// Producer side of the remote-free protocol: park one
    /// superblock-coherent group on the owning shard's ring (wait-free,
    /// zero CAS). A displaced batch — the ring lapped an undrained slot —
    /// becomes ours and is returned through the direct grouped-CAS path,
    /// so overflow degrades to the pre-ring protocol instead of losing
    /// blocks; the event is journaled and flight-recorded (proto level)
    /// so a post-mortem timeline shows the pool was running degraded.
    fn remote_push(&self, sb: usize, owner: u32, blocks: &[usize], home: u32) {
        let class = Desc::new(&self.pool, &self.geo, sb as u32).size_class();
        debug_assert!(is_small_class(class));
        self.slow.remote_ring_pushes.fetch_add(1, Ordering::Relaxed);
        self.slow.remote_ring_push_blocks.fetch_add(blocks.len() as u64, Ordering::Relaxed);
        let batch = Box::new(RemoteBatch { sb: sb as u32, blocks: blocks.to_vec() });
        if let Some(displaced) = self.ring(class, owner).push(batch) {
            self.slow.remote_ring_overflows.fetch_add(1, Ordering::Relaxed);
            self.slow.remote_anchor_cas.fetch_add(1, Ordering::Relaxed);
            let n = displaced.blocks.len() as u64;
            self.journal.record(EventKind::RemoteRingOverflow, displaced.sb as u64, n);
            self.flight_record(EventKind::RemoteRingOverflow, displaced.sb as u64, n);
            self.push_batch(displaced.sb as usize, &displaced.blocks, home);
        }
    }

    /// Consumer side: drain the `(class, shard)` ring into `bin` (zero
    /// anchor CAS per block), stopping the sweep once the bin is full —
    /// unclaimed batches stay parked for the next fill, so a small bin
    /// never forces a claimed batch back through the anchor. Only a
    /// claimed batch that *straddles* the bin's remaining room pays the
    /// one-CAS direct return for its overhang. Returns true when the bin
    /// received at least one block.
    fn drain_remote(&self, class: u32, shard: u32, bin: &mut CacheBin, home: u32) -> bool {
        let ring = self.ring(class, shard);
        if !ring.maybe_pending() {
            return false;
        }
        let mut taken = 0u64;
        let mut batches = 0u64;
        ring.drain(|batch| {
            batches += 1;
            let room = bin.capacity() - bin.len() as usize;
            let take = batch.blocks.len().min(room);
            for &addr in &batch.blocks[..take] {
                bin.push(addr);
            }
            taken += take as u64;
            if take < batch.blocks.len() {
                self.slow.remote_anchor_cas.fetch_add(1, Ordering::Relaxed);
                self.push_batch(batch.sb as usize, &batch.blocks[take..], home);
            }
            (bin.len() as usize) < bin.capacity()
        });
        if batches > 0 {
            self.slow.remote_ring_drain_batches.fetch_add(batches, Ordering::Relaxed);
            self.slow.remote_ring_drain_blocks.fetch_add(taken, Ordering::Relaxed);
            self.slow.remote_drain_batch.observe(taken);
        }
        taken > 0
    }

    /// Drain shards' rings of `class` into `bin` (the pre-carve steal
    /// sweep), starting from a rotating shard so early-stopping drains
    /// skim every ring fairly instead of starving the back of the scan
    /// order. Returns true when the bin received any block.
    fn steal_drain_rings(&self, class: u32, bin: &mut CacheBin, home: u32) -> bool {
        let start = (self.ring_cursor.fetch_add(1, Ordering::Relaxed) % self.shards as u64) as u32;
        let mut got = false;
        for i in 0..self.shards {
            got |= self.drain_remote(class, (start + i) % self.shards, bin, home);
            if bin.len() as usize == bin.capacity() {
                break;
            }
        }
        got
    }

    /// Return every ring-parked batch to its superblock (quiescent
    /// points: clean close and explicit shrink — cached blocks must land
    /// where the frontier scan and the persisted image can see them).
    pub(crate) fn drain_rings_to_heap(&self) {
        let Some(rings) = &self.rings else { return };
        let home = self.home_shard();
        for ring in rings.iter() {
            ring.drain(|batch| {
                self.slow.remote_anchor_cas.fetch_add(1, Ordering::Relaxed);
                self.push_batch(batch.sb as usize, &batch.blocks, home);
                true
            });
        }
    }

    /// Forget every ring-parked batch without flushing (crash simulation
    /// and recovery): rings are volatile by design — in-flight remote
    /// frees die with DRAM and the recovery sweep reclaims their blocks
    /// by reachability, exactly like discarded cache bins.
    pub(crate) fn discard_rings(&self) {
        let Some(rings) = &self.rings else { return };
        for ring in rings.iter() {
            ring.drain(|batch| {
                drop(batch);
                true
            });
        }
    }

    /// Return an arbitrary batch of blocks, grouping them by superblock
    /// (LRMalloc's Flush). Reorders `blocks` in place while partitioning.
    ///
    /// Each group is classified by its superblock's owning shard
    /// (`sb % S` — the shard recovery enlists it on): **local** groups
    /// (owner == this thread's home shard, or rings disabled) pay the
    /// classic one anchor CAS via [`HeapInner::push_batch`]; **remote**
    /// groups ride the owning shard's MPSC ring instead — a wait-free
    /// zero-CAS push, reclaimed in bulk by the owner's next fill.
    ///
    /// The partition starts with the in-place, allocation-free linear
    /// scan — bins overwhelmingly hold blocks of one or two superblocks,
    /// so it normally finishes in a pass or two. Only when the batch
    /// turns out to span *many* directly-pushed superblocks does the
    /// remainder escalate to a small open-addressing group table,
    /// bounding the whole partition at O(n)
    /// ([`SlowStats::flush_partition_probes`] observes the table's
    /// work). With rings on, the heavy producer/consumer bleed that used
    /// to force the escalation is absorbed by ring pushes — remote
    /// groups do not count toward the escalation threshold — so the
    /// table is effectively demoted to the ring-off/fallback path.
    pub(crate) fn flush_blocks(&self, blocks: &mut [usize]) {
        /// Distinct directly-pushed superblocks the linear scan handles
        /// before the rest of the batch escalates to the table: the
        /// scan's worst case is then `MAX_LINEAR_GROUPS`·n, and typical
        /// bins never escalate.
        const MAX_LINEAR_GROUPS: usize = 8;
        let base = self.pool.base() as usize;
        // One TLS lookup + hash for the whole batch, not per superblock.
        let home = self.home_shard();
        let rings = self.rings.is_some();
        let mut i = 0;
        let mut groups = 0;
        while i < blocks.len() {
            if groups == MAX_LINEAR_GROUPS {
                return self.flush_blocks_grouped(&blocks[i..], home);
            }
            let sb = self
                .geo
                .sb_index_of(blocks[i] - base)
                .expect("flush_blocks: foreign address");
            // Partition: move every block of this superblock into
            // blocks[i..end].
            let mut end = i + 1;
            for j in i + 1..blocks.len() {
                if self.geo.sb_index_of(blocks[j] - base) == Some(sb) {
                    blocks.swap(end, j);
                    end += 1;
                }
            }
            let owner = shard::place_superblock(sb, self.shards);
            if owner != home {
                self.slow.remote_free_blocks.fetch_add((end - i) as u64, Ordering::Relaxed);
                if rings {
                    self.remote_push(sb, owner, &blocks[i..end], home);
                    i = end;
                    continue;
                }
                self.slow.remote_anchor_cas.fetch_add(1, Ordering::Relaxed);
            }
            self.push_batch(sb, &blocks[i..end], home);
            i = end;
            groups += 1;
        }
    }

    /// Table-based batch partition (the linear scan's escalation path):
    /// one pass to chain blocks per superblock through an open-addressing
    /// group table, one pass to hand each chain to
    /// [`HeapInner::push_batch`]. O(n) expected — the table is sized at
    /// 2× the batch so probe runs stay short.
    fn flush_blocks_grouped(&self, blocks: &[usize], home: u32) {
        const EMPTY: u32 = u32::MAX;
        let base = self.pool.base() as usize;
        let n = blocks.len();
        let cap = (2 * n).next_power_of_two();
        let mask = cap - 1;
        // slot -> group index; group = (superblock, chain head into `next`).
        let mut slots: Vec<u32> = vec![EMPTY; cap];
        let mut groups: Vec<(usize, u32)> = Vec::new();
        let mut next: Vec<u32> = vec![EMPTY; n];
        let mut probes = 0u64;
        for (i, &addr) in blocks.iter().enumerate() {
            let sb = self
                .geo
                .sb_index_of(addr - base)
                .expect("flush_blocks: foreign address");
            let mut h =
                ((sb as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & mask;
            loop {
                probes += 1;
                match slots[h] {
                    EMPTY => {
                        slots[h] = groups.len() as u32;
                        groups.push((sb, i as u32));
                        break;
                    }
                    g if groups[g as usize].0 == sb => {
                        next[i] = groups[g as usize].1;
                        groups[g as usize].1 = i as u32;
                        break;
                    }
                    _ => h = (h + 1) & mask,
                }
            }
        }
        self.slow.flush_partition_probes.fetch_add(probes, Ordering::Relaxed);
        let rings = self.rings.is_some();
        let mut scratch: Vec<usize> = Vec::with_capacity(n);
        for &(sb, head) in &groups {
            scratch.clear();
            let mut i = head;
            while i != EMPTY {
                scratch.push(blocks[i as usize]);
                i = next[i as usize];
            }
            // Chains are built newest-first; restore batch order so the
            // pre-linked free chain matches the linear partition's.
            scratch.reverse();
            // Same owner routing as the linear scan: remote groups in an
            // escalated batch still ride the rings.
            let owner = shard::place_superblock(sb, self.shards);
            if owner != home {
                self.slow.remote_free_blocks.fetch_add(scratch.len() as u64, Ordering::Relaxed);
                if rings {
                    self.remote_push(sb, owner, &scratch, home);
                    continue;
                }
                self.slow.remote_anchor_cas.fetch_add(1, Ordering::Relaxed);
            }
            self.push_batch(sb, &scratch, home);
        }
    }

    /// Flush an entire cache bin back to the heap (paper §4.4: "all of
    /// the blocks in the cache are pushed back"; contrast with Makalu's
    /// return-half policy, §6.3).
    pub(crate) fn flush_bin(&self, bin: &mut CacheBin) {
        let n = bin.len() as u64;
        if n == 0 {
            return;
        }
        self.slow.cache_flushes.fetch_add(1, Ordering::Relaxed);
        self.slow.cache_flushes_blocks.fetch_add(n, Ordering::Relaxed);
        self.journal.record(EventKind::Flush, n, 0);
        self.flight_record(EventKind::Flush, n, 0);
        self.flush_blocks(bin.blocks_mut());
        bin.clear();
    }

    /// Return the *older* half of a full bin (Makalu's return-half
    /// policy, §6.3), keeping the recently-freed half cached. The older
    /// blocks sit at the bottom of the LIFO array, so the flushed slice is
    /// also the one most likely to complete superblocks.
    pub(crate) fn flush_bin_half(&self, bin: &mut CacheBin) {
        let n = bin.len() as usize;
        if n == 0 {
            return;
        }
        let half = n.div_ceil(2);
        self.slow.cache_flushes.fetch_add(1, Ordering::Relaxed);
        self.slow.cache_flushes_blocks.fetch_add(half as u64, Ordering::Relaxed);
        self.slow.half_flushes.fetch_add(1, Ordering::Relaxed);
        self.journal.record(EventKind::Flush, half as u64, 0);
        self.flight_record(EventKind::Flush, half as u64, 0);
        self.flush_blocks(&mut bin.blocks_mut()[..half]);
        bin.drain_front(half);
    }

    /// Free-path overflow: size a never-used bin, or flush a full one
    /// (whole-bin by default, half under [`RallocConfig::flush_half`]).
    #[cold]
    pub(crate) fn free_overflow(&self, class: u32, bin: &mut CacheBin) {
        if bin.capacity() == 0 {
            bin.ensure_capacity(cache_capacity(class) as usize);
        } else if self.flush_half {
            self.flush_bin_half(bin);
        } else {
            self.flush_bin(bin);
        }
    }

    /// Drain every class bin of a TLS entry. At thread exit (`park`)
    /// non-empty bins are parked for adoption by future threads, up to
    /// the per-class retention bound; at close, and past the bound,
    /// they flush back to their superblocks.
    pub(crate) fn drain_tls(&self, entry: &mut HeapTls, park: bool) {
        for (class, bin) in entry.bins.iter_mut().enumerate() {
            if park && class != 0 && self.park_bin(class as u32, bin) {
                continue;
            }
            self.flush_bin(bin);
        }
    }

    fn malloc_large(&self, size: usize) -> *mut u8 {
        let span = size.div_ceil(SB_SIZE);
        // The paper always expands `used` for large allocations (§4.4).
        // When expansion fails we additionally try the free list for
        // single-superblock requests — a documented liveness improvement
        // for long-running processes with bounded pools.
        let idx = match self.carve(span) {
            Some(i) => Some(i),
            None if span == 1 => DescList::free_list(&self.geo)
                .pop(&self.pool, &self.geo)
                .or_else(|| self.scavenge()),
            None => None,
        };
        let Some(idx) = idx else {
            return std::ptr::null_mut();
        };
        // Tag interior superblocks first, then the head: all persisted
        // before the block is returned, so a post-crash conservative trace
        // can never misinterpret stale interior metadata (see recovery).
        for k in 1..span {
            Desc::new(&self.pool, &self.geo, idx + k as u32).set_size(
                CLASS_CONTINUATION,
                0,
                0,
                self.transient,
            );
        }
        let head = Desc::new(&self.pool, &self.geo, idx);
        head.set_size(0, size as u64, 1, self.transient);
        head.set_anchor(Anchor::full(1), Ordering::Release);
        self.slow.large_allocs.fetch_add(1, Ordering::Relaxed);
        self.addr_of(self.geo.sb(idx as usize)) as *mut u8
    }

    fn free_large(&self, off: usize, sb: usize) {
        let d = Desc::new(&self.pool, &self.geo, sb as u32);
        assert_eq!(off, self.geo.sb(sb), "free: not the start of a large block");
        let span = (d.block_size() as usize).div_ceil(SB_SIZE);
        // Split into constituent superblocks and retire each (paper §4.4).
        for k in 0..span {
            let dk = Desc::new(&self.pool, &self.geo, (sb + k) as u32);
            dk.set_anchor(Anchor { avail: 0, count: 0, state: SbState::Empty }, Ordering::Release);
            DescList::free_list(&self.geo).push(&self.pool, &self.geo, (sb + k) as u32);
        }
    }
}

/// A Ralloc persistent heap handle (cheaply cloneable).
///
/// The API mirrors the paper's Figure 1: `init` ([`Ralloc::create`] /
/// [`Ralloc::open_file`]), [`Ralloc::recover`], [`Ralloc::close`],
/// [`Ralloc::malloc`], [`Ralloc::free`], [`Ralloc::set_root`] and
/// [`Ralloc::get_root`].
#[derive(Clone)]
pub struct Ralloc {
    pub(crate) inner: Arc<HeapInner>,
}

impl Ralloc {
    // ---------------------------------------------------------- creation

    /// Create a fresh in-memory heap whose superblock region can hold at
    /// least `capacity` bytes.
    ///
    /// `capacity` (together with [`RallocConfig::max_capacity`] /
    /// `RALLOC_MAX_CAP`, whichever is larger) fixes the heap's *reserved*
    /// virtual span; [`RallocConfig::initial_capacity`] /
    /// `RALLOC_INIT_CAP` choose how much of it is committed upfront
    /// (default: all of it, the historical fixed-pool behavior). A heap
    /// with a small initial commitment grows its frontier on demand and
    /// only returns null once the *reserved* ceiling is exhausted.
    pub fn create(capacity: usize, cfg: RallocConfig) -> Ralloc {
        Self::create_inner(capacity, cfg, None)
    }

    /// Resolve a `create` capacity request (plus config and env
    /// overrides) into `(reserved span, initial committed length)`.
    fn capacity_plan(capacity: usize, cfg: &RallocConfig) -> (usize, usize) {
        let max_cap = shard::env_size("RALLOC_MAX_CAP")
            .or(cfg.max_capacity)
            .unwrap_or(capacity)
            .max(capacity);
        let init_cap = shard::env_size("RALLOC_INIT_CAP")
            .or(cfg.initial_capacity)
            .unwrap_or(max_cap)
            .min(max_cap);
        let reserved = Geometry::pool_len_for_capacity(max_cap);
        let geo = Geometry::from_pool_len(reserved);
        let init_sb = init_cap.div_ceil(SB_SIZE).clamp(1, geo.max_sb);
        (reserved, geo.committed_len_for_sb(init_sb))
    }

    fn create_inner(capacity: usize, cfg: RallocConfig, file: Option<PathBuf>) -> Ralloc {
        let (reserved, committed) = Self::capacity_plan(capacity, &cfg);
        let pool = PmemPool::with_reserve(
            reserved,
            committed,
            cfg.mode,
            cfg.flush_model,
            cfg.injector.clone(),
        );
        Self::fresh(pool, &cfg, file)
    }

    /// The paper's `init(path, size)`: open the heap file if it exists
    /// (returning whether a *dirty* restart — i.e. recovery — is needed),
    /// or create it fresh. A fresh or clean start returns `false`.
    ///
    /// The file holds only the committed prefix; the heap's reserved span
    /// is re-read from the image header, so a grown heap reopens with the
    /// same geometry and the same room to keep growing.
    pub fn open_file(
        path: &Path,
        capacity: usize,
        cfg: RallocConfig,
    ) -> io::Result<(Ralloc, bool)> {
        // Exclusive advisory lock first: two live processes on one pool
        // file silently race each other's saves (and, mapped, each
        // other's stores). The guard is held for the heap's lifetime and
        // auto-released by the kernel if this process dies. A second
        // opener gets a distinct "pool busy" (`WouldBlock`) error.
        // Acquiring creates the file, so emptiness — not existence —
        // distinguishes a fresh pool from one to adopt.
        let guard = PoolGuard::acquire(path)?;
        let file_len = guard.file().metadata()?.len() as usize;
        if file_len > 0 {
            let reserved = Self::peek_reserved_len(path).unwrap_or(0);
            if reserved > 0 {
                // A Ralloc header whose recorded reserved span is shorter
                // than the file is corrupt (the file can never legally
                // outgrow the reservation it was carved from). Refuse it
                // here with a real diagnostic — the old behavior clamped
                // the reservation up to the file length and left a
                // confusing "pool length mismatch" panic to fire later —
                // mirroring the truncated-image refusal in `adopt`.
                assert!(
                    file_len <= reserved,
                    "heap file {} is {file_len} bytes but its header records a \
                     reserved span of only {reserved}: refusing a corrupt heap image",
                    path.display()
                );
            }
            let pool = PmemPool::load_reserving(
                path,
                reserved,
                cfg.mode,
                cfg.flush_model,
                cfg.injector.clone(),
            )?;
            pool.hold_guard(guard);
            Ok(Self::adopt(pool, &cfg, Some(path.to_path_buf())))
        } else {
            let heap = Self::create_inner(capacity, cfg, Some(path.to_path_buf()));
            heap.inner.pool.hold_guard(guard);
            Ok((heap, false))
        }
    }

    /// Open (or create) a heap as a live `MAP_SHARED` mapping of `path` —
    /// the real-file analogue of [`Ralloc::open_file`], and the substrate
    /// the fork/SIGKILL crash harness (`crates/crashtest`) runs on. Every
    /// store lands in the OS page cache, so the heap survives the death
    /// of the process *at any instruction* with exactly the stores that
    /// had executed — no save step, no cooperation. The same flock guard
    /// applies ("pool busy" for a second live process), and the file
    /// stays openable by the plain [`Ralloc::open_file`] path afterwards
    /// (file length == committed frontier throughout).
    ///
    /// Mapped heaps are [`Mode::Direct`] only; `cfg.mode` is ignored.
    /// Requires the raw mmap layer (x86_64 Linux); other hosts get
    /// [`io::ErrorKind::Unsupported`].
    pub fn open_file_mapped(
        path: &Path,
        capacity: usize,
        cfg: RallocConfig,
    ) -> io::Result<(Ralloc, bool)> {
        let guard = PoolGuard::acquire(path)?;
        let file_len = guard.file().metadata()?.len() as usize;
        if file_len > 0 {
            let reserved = Self::peek_reserved_len(path).unwrap_or(0);
            if reserved > 0 {
                assert!(
                    file_len <= reserved,
                    "heap file {} is {file_len} bytes but its header records a \
                     reserved span of only {reserved}: refusing a corrupt heap image",
                    path.display()
                );
            }
            let pool = PmemPool::map_file(
                guard,
                reserved.max(file_len),
                file_len,
                cfg.flush_model,
                cfg.injector.clone(),
            )?;
            Ok(Self::adopt(pool, &cfg, Some(path.to_path_buf())))
        } else {
            let (reserved, committed) = Self::capacity_plan(capacity, &cfg);
            let pool = PmemPool::map_file(
                guard,
                reserved,
                committed,
                cfg.flush_model,
                cfg.injector.clone(),
            )?;
            Ok((Self::fresh(pool, &cfg, Some(path.to_path_buf())), false))
        }
    }

    /// Read the reserved span recorded in a heap file's header, if it is
    /// a current-format (or in-place-migratable v3) Ralloc image.
    fn peek_reserved_len(path: &Path) -> Option<usize> {
        use std::io::Read;
        let mut buf = [0u8; 16];
        let mut f = std::fs::File::open(path).ok()?;
        f.read_exact(&mut buf).ok()?;
        let magic = u64::from_ne_bytes(buf[0..8].try_into().unwrap());
        if magic != MAGIC && magic != MAGIC_V4 && magic != MAGIC_V3 {
            return None;
        }
        Some(u64::from_ne_bytes(buf[8..16].try_into().unwrap()) as usize)
    }

    /// Reserved span recorded in an in-memory image header (the image
    /// length when it is not a current-format Ralloc image).
    ///
    /// A recognizable header recording a reserved span *shorter* than the
    /// image is refused: the committed prefix can never legally outgrow
    /// the reservation, so such an image is corrupt (or had foreign bytes
    /// appended), and silently clamping the reservation up — the old
    /// behavior — would compute a geometry the header's `max_sb` never
    /// described. The refusal mirrors the truncated-image refusal on the
    /// file path.
    fn image_reserved_len(image: &[u8]) -> usize {
        if image.len() >= 16
            && matches!(
                u64::from_ne_bytes(image[0..8].try_into().unwrap()),
                MAGIC | MAGIC_V4 | MAGIC_V3
            )
        {
            let reserved = u64::from_ne_bytes(image[8..16].try_into().unwrap()) as usize;
            assert!(
                reserved >= image.len(),
                "heap image is {} bytes but its header records a reserved span of \
                 only {reserved}: refusing a corrupt heap image",
                image.len()
            );
            reserved
        } else {
            image.len()
        }
    }

    /// Adopt a raw pool image (e.g. a crash image remapped at a new base
    /// address). Returns the heap and whether it is dirty. The image may
    /// be shorter than the heap's reserved span (only the committed
    /// prefix is ever saved); the reservation is re-established from the
    /// header.
    pub fn from_image(image: &[u8], cfg: RallocConfig) -> (Ralloc, bool) {
        let pool =
            PmemPool::from_image_reserving(image, Self::image_reserved_len(image), cfg.mode);
        Self::adopt(pool, &cfg, None)
    }

    fn fresh(pool: PmemPool, cfg: &RallocConfig, file: Option<PathBuf>) -> Ralloc {
        let geo = Geometry::from_pool_len(pool.len());
        // A fresh physical prefix must at least reach the superblock
        // array's base (the smallest legal superblock frontier).
        pool.commit_to(geo.min_committed());
        flight::init_ring(&pool);
        // The descriptor region starts committed in lockstep with the
        // initially committed superblocks; from here on the two
        // frontiers advance and retreat independently.
        let init_sb = geo.committed_sb(pool.committed_len());
        // SAFETY: fresh pool, exclusive access, metadata offsets in bounds.
        unsafe {
            pool.write_u64(MAGIC_OFF, MAGIC);
            pool.write_u64(POOL_LEN_OFF, pool.len() as u64);
            pool.write_u64(MAX_SB_OFF, geo.max_sb as u64);
            pool.write_u64(USED_SB_OFF, 0);
            pool.write_u64(COMMITTED_LEN_OFF, pool.committed_len() as u64);
            pool.write_u64(
                DESC_COMMITTED_LEN_OFF,
                geo.desc_committed_len_for_sb(init_sb) as u64,
            );
            pool.write_u64(DIRTY_OFF, 1);
        }
        let heap = Self::build(pool, geo, cfg, file, FlightScan::default());
        heap.inner.persist(0, 64);
        heap.inner.persist(FLIGHT_OFF, FLIGHT_HDR_SIZE);
        heap.inner.flight_record(EventKind::Open, 0, 0);
        heap
    }

    fn adopt(pool: PmemPool, cfg: &RallocConfig, file: Option<PathBuf>) -> (Ralloc, bool) {
        // SAFETY: header reads within bounds.
        let mut magic = unsafe { pool.read_u64(MAGIC_OFF) };
        if magic == MAGIC_V3 {
            // v3 → v4 in-place migration: the only format change is the
            // flight ring, carved from metadata tail slack a v3 image
            // never wrote (geometry is identical). Clean images migrate;
            // dirty ones are refused — recovery must run under the build
            // that wrote the image before upgrading its format.
            // SAFETY: metadata word in bounds.
            let v3_dirty = unsafe { pool.read_u64(DIRTY_OFF) } == 1;
            assert!(
                !v3_dirty,
                "ralloc image has metadata-format version 3 and is dirty: recover \
                 it under a v3 build before upgrading (the v3→v4 flight-ring \
                 migration applies only to cleanly closed heaps)"
            );
            // Ring first, magic last, each fenced: a crash mid-migration
            // leaves a clean v3 image that simply re-migrates next open.
            // Stepping the magic only to v4 chains into the v4→v5 block
            // below, so each migration stays a self-contained recipe.
            flight::init_ring(&pool);
            pool.flush(FLIGHT_OFF, FLIGHT_HDR_SIZE);
            pool.fence();
            // SAFETY: header word.
            unsafe { pool.write_u64(MAGIC_OFF, MAGIC_V4) };
            pool.flush(MAGIC_OFF, 8);
            pool.fence();
            magic = MAGIC_V4;
        }
        if magic == MAGIC_V4 {
            // v4 → v5 in-place migration: the only format change is the
            // descriptor-region frontier word, claimed from header slack
            // every v4 image kept zeroed (geometry is identical). A v4
            // heap committed its whole descriptor region implicitly, so
            // the migrated word is `sb_off` — exactly the v4 semantics,
            // shrinkable from the next quiescent point on. Clean images
            // only: a dirty v4 image's recovery invariants belong to a
            // v4 build.
            // SAFETY: metadata word in bounds.
            let v4_dirty = unsafe { pool.read_u64(DIRTY_OFF) } == 1;
            assert!(
                !v4_dirty,
                "ralloc image has metadata-format version 4 and is dirty: open and \
                 recover it under a v4 build first (any pre-v5 checkout), close it \
                 cleanly, then reopen here — the v4→v5 descriptor-frontier \
                 migration applies only to cleanly closed heaps"
            );
            let v4_geo = Geometry::from_pool_len(pool.len());
            // Frontier word first, magic last, each fenced: a crash
            // mid-migration leaves a clean v4 image that re-migrates.
            // SAFETY: header word.
            unsafe { pool.write_u64(DESC_COMMITTED_LEN_OFF, v4_geo.sb_off as u64) };
            pool.flush(DESC_COMMITTED_LEN_OFF, 8);
            pool.fence();
            // SAFETY: header word.
            unsafe { pool.write_u64(MAGIC_OFF, MAGIC) };
            pool.flush(MAGIC_OFF, 8);
            pool.fence();
            magic = MAGIC;
        }
        if magic != MAGIC {
            // A recognizable Ralloc image with a different format version
            // must be refused, not silently re-initialized: erasing a
            // user's durable heap because they upgraded is data loss.
            // Anything else is "not a heap" and gets initialized fresh.
            assert!(
                magic & !0xFF != MAGIC & !0xFF,
                "ralloc image has metadata-format version {} but this build \
                 requires {}; re-create the pool (no in-place migration)",
                magic & 0xFF,
                MAGIC & 0xFF,
            );
            return (Self::fresh(pool, cfg, file), false);
        }
        let geo = Geometry::from_pool_len(pool.len());
        // SAFETY: header reads.
        unsafe {
            assert_eq!(pool.read_u64(POOL_LEN_OFF), pool.len() as u64, "pool length mismatch");
            assert_eq!(pool.read_u64(MAX_SB_OFF), geo.max_sb as u64, "geometry mismatch");
        }
        // Frontier validation. The image's persisted frontier word must
        // lie inside the image itself: a frontier past the end of the
        // file means the file was truncated (or the word corrupted), and
        // opening it would fabricate zeroed "committed" space where user
        // data used to be — refuse rather than silently lose data. The
        // image may legitimately extend *past* the word (a crash image
        // captures the volatile frontier; the word records the last
        // *fenced* one), in which case the word is healed upward: file
        // content is durable by definition.
        // SAFETY: header read.
        let frontier = unsafe { pool.read_u64(COMMITTED_LEN_OFF) } as usize;
        assert!(
            frontier >= geo.min_committed() && frontier <= pool.len(),
            "corrupt committed frontier {frontier} (reserved {})",
            pool.len()
        );
        assert!(
            frontier <= pool.committed_len(),
            "image frontier {frontier} exceeds the file ({} bytes): refusing a \
             truncated heap image",
            pool.committed_len()
        );
        let used = unsafe { pool.read_u64(USED_SB_OFF) } as usize;
        assert!(
            used <= geo.committed_sb(pool.committed_len()),
            "used superblocks ({used}) extend past the file's committed prefix: \
             refusing a truncated heap image"
        );
        // Descriptor-frontier validation, the same discipline against the
        // descriptor region's own word. The descriptor region always lies
        // inside the physical prefix (which never retreats below
        // `sb_off`), so there is no truncation case to refuse — the word
        // must simply lie within its region and cover every used
        // superblock's descriptor, which the grow protocol guarantees
        // (the word is fenced before `used` may rise past it).
        // SAFETY: header read.
        let desc_frontier = unsafe { pool.read_u64(DESC_COMMITTED_LEN_OFF) } as usize;
        assert!(
            desc_frontier >= geo.min_desc_committed() && desc_frontier <= geo.sb_off,
            "corrupt descriptor frontier {desc_frontier} (descriptor region spans \
             {}..{})",
            geo.min_desc_committed(),
            geo.sb_off
        );
        assert!(
            used <= geo.desc_committed_sb(desc_frontier),
            "used superblocks ({used}) have descriptors past the descriptor \
             frontier ({desc_frontier}): refusing a corrupt heap image"
        );
        let healed = frontier < pool.committed_len();
        if healed {
            // SAFETY: 8-aligned metadata word.
            unsafe { pool.atomic_u64(COMMITTED_LEN_OFF) }
                .store(pool.committed_len() as u64, Ordering::Release);
        }
        // SAFETY: 8-aligned metadata word.
        let dirty = unsafe { pool.atomic_u64(DIRTY_OFF) }.load(Ordering::Acquire) == 1;
        // Scan the flight ring *before* this process records anything:
        // what's in it now is the previous run's last steps — after a
        // crash, the victim's pre-crash timeline.
        let preopen = flight::scan_pool(&pool);
        let heap = Self::build(pool, geo, cfg, file, preopen);
        if healed {
            heap.inner.persist(COMMITTED_LEN_OFF, 8);
        }
        // Mark dirty for the duration of this run (the paper's robust
        // mutex acquire): any crash from here on requires recovery. This
        // must precede the stale-shard fold below — the fold mutates
        // durable list state, so a crash mid-fold has to trigger a full
        // rebuild, never a second fold over a half-written image.
        // SAFETY: 8-aligned metadata word.
        unsafe { heap.inner.pool.atomic_u64(DIRTY_OFF) }.store(1, Ordering::Release);
        heap.inner.persist(DIRTY_OFF, 8);
        // A clean image skips recovery, so heads parked beyond this run's
        // live shard count must be folded in here. A dirty image gets its
        // lists rebuilt from scratch by `recover` — and must NOT be
        // folded: its heads and link words are an inconsistent
        // incidentally-persisted mixture that a pop loop could cycle on.
        if !dirty {
            heap.inner.fold_stale_shards();
        }
        heap.inner.flight_record(EventKind::Open, dirty as u64, 0);
        (heap, dirty)
    }

    fn build(
        pool: PmemPool,
        geo: Geometry,
        cfg: &RallocConfig,
        file: Option<PathBuf>,
        preopen_flight: FlightScan,
    ) -> Ralloc {
        // Everything inside the pool's committed prefix is durable at
        // build time (fresh: about to be persisted before first use;
        // adopted: backed by the file), so carving may use all of it.
        let committed_safe = AtomicU64::new(pool.committed_len() as u64);
        // The descriptor frontier word is already in the header (fresh
        // writes it before building; adoption validated it), and the pool
        // learns the three-region tiling here so every later commit and
        // decommit is region-scoped.
        // SAFETY: header read.
        let desc_word = unsafe { pool.read_u64(DESC_COMMITTED_LEN_OFF) } as usize;
        let desc_safe = AtomicU64::new(desc_word as u64);
        pool.define_regions(&[
            RegionSpec { start: 0, end: META_SIZE, committed: META_SIZE },
            RegionSpec { start: META_SIZE, end: geo.sb_off, committed: desc_word },
            RegionSpec { start: geo.sb_off, end: pool.len(), committed: pool.committed_len() },
        ]);
        let telemetry = Registry::new();
        let slow = SlowStats::registered(&telemetry);
        let journal_cap = shard::env_size("RALLOC_JOURNAL_CAP").unwrap_or(DEFAULT_JOURNAL_CAP);
        // Flight recorder: transient heaps persist nothing, so theirs is
        // forced off; otherwise env overrides config (shrink-policy
        // pattern). The torn count from the adoption scan becomes a
        // counter so harnesses can assert on dropped records.
        let flight_level = if cfg.transient {
            FlightLevel::Off
        } else {
            std::env::var("RALLOC_FLIGHT")
                .ok()
                .and_then(|v| FlightLevel::parse(&v))
                .unwrap_or(cfg.flight_level)
        };
        let flight = FlightRecorder::new(flight_level, preopen_flight.resume_ticket());
        telemetry.describe(
            "flight_torn_records",
            "flight-ring records dropped at adoption because their checksum failed",
        );
        telemetry.counter("flight_torn_records").add(preopen_flight.torn);
        let shards = shard::effective_shards(cfg.partial_shards);
        // Remote-free rings (transient, like the caches they feed).
        // A single-shard heap owns every superblock from every thread's
        // perspective, so rings would never see a push — skip them.
        let remote_ring = shard::env_flag("RALLOC_REMOTE_RING").unwrap_or(cfg.remote_ring);
        let ring_cap =
            shard::env_size("RALLOC_REMOTE_RING_CAP").unwrap_or(cfg.remote_ring_cap).clamp(2, 4096);
        let rings = (remote_ring && shards > 1).then(|| {
            (0..NUM_CLASSES * shards as usize).map(|_| RemoteRing::new(ring_cap)).collect()
        });
        let heap = Ralloc {
            inner: Arc::new(HeapInner {
                pool,
                geo,
                id: NEXT_HEAP_ID.fetch_add(1, Ordering::Relaxed),
                transient: cfg.transient,
                shards,
                flush_half: shard::env_flag("RALLOC_FLUSH_HALF").unwrap_or(cfg.flush_half),
                growth_factor: cfg.growth_factor.clamp(1.0, 8.0),
                shrink_policy: std::env::var("RALLOC_SHRINK")
                    .ok()
                    .and_then(|v| ShrinkPolicy::parse(&v))
                    .unwrap_or(cfg.shrink_policy),
                parked: std::array::from_fn(|_| Mutex::new(Vec::new())),
                rings,
                ring_cursor: AtomicU64::new(0),
                ring_gauges: Mutex::new(HashMap::new()),
                committed_safe,
                desc_safe,
                generation: AtomicU64::new(0),
                exit_drains: AtomicUsize::new(0),
                closed: AtomicBool::new(false),
                file,
                root_fns: Mutex::new(HashMap::new()),
                slow,
                telemetry,
                journal: Journal::with_capacity(journal_cap),
                flight,
                preopen_flight,
                sampler: Mutex::new(None),
            }),
        };
        // RALLOC_TELEMETRY=<path> starts the background JSONL sampler on
        // every heap this process opens (interval RALLOC_TELEMETRY_MS,
        // default 200). Heap ids keep concurrent heaps' files distinct.
        if let Ok(base) = std::env::var("RALLOC_TELEMETRY") {
            if !base.is_empty() {
                let interval = shard::env_size("RALLOC_TELEMETRY_MS").unwrap_or(200).max(1);
                let path = if heap.inner.id > 1 { format!("{base}.{}", heap.inner.id) } else { base };
                let _ = heap.start_sampler(path, Duration::from_millis(interval as u64));
            }
        }
        heap
    }

    // ------------------------------------------------------- allocation

    /// Allocate `size` bytes; null on exhaustion (the paper's `malloc`).
    /// Lock-free; the fast path is a fast-slot read and a bin pop.
    pub fn malloc(&self, size: usize) -> *mut u8 {
        let inner = &*self.inner;
        debug_assert!(!inner.is_closed(), "malloc on closed heap");
        match size_class_of(size) {
            Some(class) => tcache::with_heap_tls(inner, || Arc::downgrade(&self.inner), |tls| {
                let bin = &mut tls.bins[class as usize];
                if let Some(addr) = bin.pop() {
                    return addr as *mut u8;
                }
                if inner.fill_bin(class, bin) {
                    bin.pop().expect("fill_bin returned empty") as *mut u8
                } else {
                    std::ptr::null_mut()
                }
            }),
            None => inner.malloc_large(size),
        }
    }

    /// Deallocate a block previously returned by [`Ralloc::malloc`]
    /// (the paper's `free`). Lock-free; fast path is a cache push.
    pub fn free(&self, ptr: *mut u8) {
        assert!(!ptr.is_null(), "free(null)");
        let inner = &*self.inner;
        let off = (ptr as usize)
            .checked_sub(inner.pool.base() as usize)
            .expect("free: pointer below heap");
        let sb = inner.geo.sb_index_of(off).expect("free: pointer outside superblock region");
        let d = Desc::new(&inner.pool, &inner.geo, sb as u32);
        let class = d.size_class();
        if class == 0 {
            inner.free_large(off, sb);
            return;
        }
        assert!(
            is_small_class(class),
            "free: address inside a large allocation or corrupt descriptor"
        );
        debug_assert_eq!(
            (off - inner.geo.sb(sb)) % class_block_size(class) as usize,
            0,
            "free: misaligned block pointer"
        );
        tcache::with_heap_tls(inner, || Arc::downgrade(&self.inner), |tls| {
            let bin = &mut tls.bins[class as usize];
            // Flush *before* pushing when the bin is at capacity, so the
            // just-freed block stays cached. A freshly refilled bin holds
            // max_count blocks and a malloc leaves it one short, so a
            // tight malloc/free pair oscillates inside the bin instead of
            // alternating a full flush with a full refill.
            if bin.is_full() {
                inner.free_overflow(class, bin);
            }
            bin.push(ptr as usize);
        })
    }

    /// The usable size of an allocated block (its class block size, or
    /// the recorded size for large blocks).
    pub fn usable_size(&self, ptr: *const u8) -> usize {
        let inner = &*self.inner;
        let off = (ptr as usize) - inner.pool.base() as usize;
        let sb = inner.geo.sb_index_of(off).expect("usable_size: foreign pointer");
        let d = Desc::new(&inner.pool, &inner.geo, sb as u32);
        d.block_size() as usize
    }

    // ------------------------------------------------------------ roots

    /// Store `ptr` as persistent root `i` (flushed and fenced). The
    /// stored representation is a superblock-region offset, so it
    /// survives remapping.
    pub fn set_root<T: Trace>(&self, i: usize, ptr: *const T) {
        self.register_root_fn(i, trace_thunk::<T>);
        self.set_root_raw(i, ptr as *const u8);
    }

    /// Retrieve root `i` and (re-)register `T`'s filter function for it —
    /// the paper's `getRoot<T>()`, which must be called before
    /// [`Ralloc::recover`] for precise tracing.
    pub fn get_root<T: Trace>(&self, i: usize) -> *mut T {
        self.register_root_fn(i, trace_thunk::<T>);
        self.get_root_raw(i) as *mut T
    }

    /// Untyped root store; recovery will trace it conservatively.
    pub fn set_root_raw(&self, i: usize, ptr: *const u8) {
        assert!(i < NUM_ROOTS, "root index out of range");
        let inner = &*self.inner;
        let slot = inner.geo.root(i);
        let val = if ptr.is_null() {
            0
        } else {
            let off = (ptr as usize)
                .checked_sub(inner.addr_of(inner.geo.sb(0)))
                .expect("set_root: pointer below superblock region");
            assert!(
                inner.geo.sb_index_of(inner.geo.sb(0) + off).is_some(),
                "set_root: pointer outside superblock region"
            );
            off as u64 + 1
        };
        // SAFETY: root slot is in the metadata region, 8-aligned.
        unsafe { inner.pool.atomic_u64(slot) }.store(val, Ordering::Release);
        inner.persist(slot, 8);
        inner.flight_record(EventKind::RootPublish, i as u64, val);
    }

    /// Untyped root load (traced conservatively unless a typed
    /// `get_root`/`set_root` registered a filter).
    pub fn get_root_raw(&self, i: usize) -> *mut u8 {
        assert!(i < NUM_ROOTS, "root index out of range");
        let inner = &*self.inner;
        // SAFETY: root slot in bounds, 8-aligned.
        let raw = unsafe { inner.pool.atomic_u64(inner.geo.root(i)) }.load(Ordering::Acquire);
        match raw.checked_sub(1) {
            None => std::ptr::null_mut(),
            Some(off) => (inner.addr_of(inner.geo.sb(0)) + off as usize) as *mut u8,
        }
    }

    /// Drop any registered filter function for root `i`, forcing
    /// conservative tracing of it (used by tests and ablations).
    pub fn clear_root_filter(&self, i: usize) {
        self.inner.root_fns.lock().remove(&i);
    }

    fn register_root_fn(&self, i: usize, f: TraceFn) {
        self.inner.root_fns.lock().insert(i, f);
    }

    // -------------------------------------------------------- lifecycle

    /// The paper's `close()`: drain this thread's caches, clear the dirty
    /// indicator, and write the whole heap back for a fast clean restart.
    /// Worker threads must have exited (their caches drain at thread
    /// exit).
    pub fn close(&self) -> io::Result<()> {
        let inner = &*self.inner;
        // A final sample then a joined stop: the time series ends with
        // the post-drain state instead of dangling mid-run.
        self.stop_sampler();
        tcache::drain_current_thread(inner);
        // Nothing cached survives a clean shutdown: bins parked by exited
        // threads flush back too (maximizing the shrink below). Exit
        // drains still in flight (TLS destructors outlive `scope` joins)
        // finish first, so their flushes land before the scan and
        // write-back rather than during.
        inner.await_exit_drains();
        inner.flush_parked();
        // Remote-free rings are DRAM too: every in-flight batch lands on
        // its superblock before the scan and write-back.
        inner.drain_rings_to_heap();
        // Quiescent point: release the trailing fully-free run while the
        // heap is still marked dirty, so a crash mid-shrink triggers a
        // full rebuild rather than trusting half-shrunk lists.
        if inner.shrink_policy.at_close() {
            inner.shrink_quiesced();
        }
        inner.closed.store(true, Ordering::Release);
        // The Close record lands before the dirty-clear so the final
        // full-pool flush below carries both.
        inner.flight_record(EventKind::Close, 0, 0);
        // SAFETY: metadata word.
        unsafe { inner.pool.atomic_u64(DIRTY_OFF) }.store(0, Ordering::Release);
        if !inner.transient {
            inner.pool.flush(0, inner.pool.committed_len());
            inner.pool.fence();
        }
        if let Some(path) = &inner.file {
            inner.pool.save(path)?;
        }
        Ok(())
    }

    /// Quiescent-point shrink: release the trailing run of fully-free
    /// superblocks back to the OS — descriptors unlinked, `used` and the
    /// persisted frontier word lowered (each flushed and fenced, in that
    /// order), the pool tail decommitted. Returns the number of
    /// superblocks released.
    ///
    /// The caller must guarantee quiescence (no concurrent heap
    /// operation), exactly as for [`Ralloc::recover`]. This runs
    /// regardless of [`RallocConfig::shrink_policy`], which only gates
    /// the automatic hooks at [`Ralloc::close`] and recovery.
    ///
    /// Blocks held in live threads' caches keep their superblocks
    /// non-free, so an explicit shrink releases the most after worker
    /// threads exit. Bins parked by those exits are flushed here first
    /// (as at [`Ralloc::close`]) so their blocks don't pin superblocks
    /// through the scan.
    pub fn shrink(&self) -> usize {
        self.inner.await_exit_drains();
        self.inner.flush_parked();
        // Ring-parked batches keep their superblocks non-EMPTY; return
        // them first so the trailing free run is as long as it can be.
        self.inner.drain_rings_to_heap();
        self.inner.shrink_quiesced()
    }

    /// Simulate a full-system crash (Tracked pools only): every line not
    /// flushed-and-fenced is lost, all thread caches are forgotten, and
    /// the heap is left dirty. Call [`Ralloc::recover`] before further
    /// use. Requires quiescence (no concurrent heap operations).
    pub fn crash_simulated(&self) {
        let inner = &*self.inner;
        inner.pool.crash();
        inner.generation.fetch_add(1, Ordering::AcqRel);
        inner.closed.store(false, Ordering::Release);
        tcache::discard_current_thread(inner);
        // Parked bins and remote-free rings are DRAM state, forgotten
        // like the TLS caches; the recovery sweep reclaims their blocks.
        inner.discard_parked();
        inner.discard_rings();
    }

    /// Was the heap dirty at open time / is recovery pending? (The dirty
    /// word itself, for inspection.)
    pub fn is_dirty(&self) -> bool {
        // SAFETY: metadata word.
        unsafe { self.inner.pool.atomic_u64(DIRTY_OFF) }.load(Ordering::Acquire) == 1
    }

    /// Offline recovery (paper §4.5): trace from the registered roots,
    /// then rebuild all transient metadata. Call `get_root<T>` for every
    /// live root first, as the paper requires; unregistered roots fall
    /// back to conservative tracing.
    ///
    /// Every thread cache is invalidated on entry: cached blocks are
    /// unreachable from the roots, so the rebuild reclaims them — the
    /// crash semantics recovery models even when called on a live heap.
    pub fn recover(&self) -> crate::recovery::RecoveryStats {
        crate::recovery::recover(&self.inner)
    }

    /// Parallel offline recovery (paper §6.4 future work): tracing is
    /// divided across persistent roots, sweeping across superblocks.
    /// Equivalent to [`Ralloc::recover`] with `threads == 1`.
    pub fn recover_parallel(&self, threads: usize) -> crate::recovery::RecoveryStats {
        crate::recovery::recover_with(&self.inner, threads)
    }

    // ------------------------------------------------------- inspection

    /// The underlying pool (benchmarks read its flush statistics).
    pub fn pool(&self) -> &PmemPool {
        &self.inner.pool
    }

    /// Whether the remote-free rings are active (config/env on **and**
    /// more than one shard; a single-shard heap owns everything, so
    /// every free is local and rings are skipped).
    pub fn remote_rings_enabled(&self) -> bool {
        self.inner.remote_rings_enabled()
    }

    /// The calling thread's home shard (tests and benches use it to
    /// construct guaranteed-remote frees).
    pub fn current_home_shard(&self) -> u32 {
        self.inner.home_shard()
    }

    /// The owning shard of the superblock containing `ptr` (`sb % S`) —
    /// the shard whose ring a remote free of `ptr` would ride.
    pub fn owner_shard_of(&self, ptr: *const u8) -> u32 {
        let inner = &*self.inner;
        let off = (ptr as usize)
            .checked_sub(inner.pool.base() as usize)
            .expect("owner_shard_of: pointer below heap");
        let sb = inner.geo.sb_index_of(off).expect("owner_shard_of: pointer outside superblocks");
        shard::place_superblock(sb, inner.shards)
    }

    /// Slow-path event counters.
    pub fn slow_stats(&self) -> &SlowStats {
        &self.inner.slow
    }

    // ------------------------------------------------------- telemetry

    /// The heap's metric registry: every [`SlowStats`] counter by name,
    /// plus recovery gauges and any metrics callers register themselves
    /// (e.g. a workload's latency [`telemetry::Histogram`]).
    pub fn telemetry(&self) -> &Registry {
        &self.inner.telemetry
    }

    /// The persistence-protocol event journal (grow/shrink phases,
    /// recovery phases, fill/flush/steal/carve; see
    /// [`telemetry::EventKind`]).
    pub fn journal(&self) -> &Journal {
        &self.inner.journal
    }

    /// The level the persistent flight recorder is running at.
    pub fn flight_level(&self) -> FlightLevel {
        self.inner.flight.level()
    }

    /// The pool's flight timeline as it was at adoption, before this
    /// process recorded anything — after a crash, the victim's last
    /// protocol steps. Empty for freshly created heaps.
    pub fn preopen_flight(&self) -> &FlightScan {
        &self.inner.preopen_flight
    }

    /// Scan the pool's flight ring right now (this run's records plus
    /// whatever of the previous run's the ring still holds). Safe under
    /// concurrency: a racing writer costs at worst a torn slot.
    pub fn flight_timeline(&self) -> FlightScan {
        flight::scan_pool(&self.inner.pool)
    }

    /// One JSON object capturing the full telemetry state: the heap and
    /// pmem registries (scopes `heap` / `pmem`), frontier gauges, and
    /// the resident journal events.
    pub fn telemetry_snapshot(&self) -> String {
        let inner = &*self.inner;
        inner.refresh_ring_gauges();
        format!(
            "{{\"t_ms\": {}, \"heap_id\": {}, \"used_sb\": {}, \"committed_sb\": {}, \
             \"committed_len\": {}, \"registries\": {}, \"journal\": {}}}",
            telemetry::now_ms(),
            inner.id,
            inner.used_sb(),
            inner.committed_sb(),
            inner.committed_safe.load(Ordering::Acquire),
            telemetry::export::to_json(&[
                ("heap", &inner.telemetry),
                ("pmem", inner.pool.stats().registry()),
            ]),
            inner.journal.to_json(),
        )
    }

    /// The same state in Prometheus text exposition format (scrape
    /// endpoint material; the journal has no Prometheus form).
    pub fn telemetry_prometheus(&self) -> String {
        self.inner.refresh_ring_gauges();
        telemetry::export::to_prometheus(&[
            ("heap", &self.inner.telemetry),
            ("pmem", self.inner.pool.stats().registry()),
        ])
    }

    /// Start a background sampler appending one time-series line to
    /// `path` every `interval` (JSONL; see [`HeapInner::sample_line`]'s
    /// schema in the README's Observability section). Also reachable via
    /// `RALLOC_TELEMETRY=<path>` / `RALLOC_TELEMETRY_MS=<ms>` at open.
    /// Replaces any sampler already running on this heap. The sampler
    /// holds only a weak reference: it retires when the heap drops, and
    /// [`Ralloc::close`] stops it.
    pub fn start_sampler(
        &self,
        path: impl AsRef<Path>,
        interval: Duration,
    ) -> io::Result<()> {
        let weak = Arc::downgrade(&self.inner);
        let handle = SamplerHandle::start(path, interval, move || {
            weak.upgrade().map(|inner| inner.sample_line())
        })?;
        *self.inner.sampler.lock() = Some(handle);
        Ok(())
    }

    /// Stop and join the background sampler, if one is running.
    pub fn stop_sampler(&self) {
        let handle = self.inner.sampler.lock().take();
        if let Some(mut handle) = handle {
            handle.stop();
        }
    }

    /// Heap geometry.
    pub fn geometry(&self) -> Geometry {
        self.inner.geo
    }

    /// Superblocks carved so far.
    pub fn used_superblocks(&self) -> usize {
        self.inner.used_sb()
    }

    /// Superblocks covered by the durable committed frontier — carving
    /// beyond this triggers a (cold-path) grow.
    pub fn committed_superblocks(&self) -> usize {
        self.inner.committed_sb()
    }

    /// The reserved ceiling in superblocks; the heap can never grow past
    /// this (malloc returns null once it is exhausted).
    pub fn max_superblocks(&self) -> usize {
        self.inner.geo.max_sb
    }

    /// Live partial-list shard count per size class (see [`crate::shard`]).
    pub fn partial_shards(&self) -> u32 {
        self.inner.shards()
    }

    /// True when the heap runs in LRMalloc (no flush/fence) mode.
    pub fn is_transient(&self) -> bool {
        self.inner.is_transient()
    }

    /// Register this heap's superblock region in the process-wide RIV
    /// region table under `id`, enabling cross-heap [`pptr::RivPtr`]
    /// references (the paper's §4.6 near-term plan). Re-register after
    /// every (re)open: ids are persistent, addresses are not.
    pub fn register_riv_region(&self, id: u8) {
        pptr::REGIONS.register(
            id,
            self.region_base(),
            self.inner.geo().max_sb * SB_SIZE,
        );
    }

    /// Absolute address of the superblock region's first byte; the base
    /// against which region-relative offsets (roots, packed counted
    /// pointers) are expressed.
    pub fn region_base(&self) -> usize {
        self.inner.addr_of(self.inner.geo.sb(0))
    }

    /// True if `ptr` lies inside this heap's superblock region.
    pub fn contains(&self, ptr: *const u8) -> bool {
        (ptr as usize)
            .checked_sub(self.inner.pool.base() as usize)
            .and_then(|off| self.inner.geo.sb_index_of(off))
            .is_some()
    }
}

impl std::fmt::Debug for Ralloc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ralloc")
            .field("id", &self.inner.id)
            .field("used_sb", &self.inner.used_sb())
            .field("committed_sb", &self.inner.committed_sb())
            .field("max_sb", &self.inner.geo.max_sb)
            .field("transient", &self.inner.transient)
            .finish()
    }
}

#[cfg(test)]
mod batch_tests {
    //! The Fill/Flush amortization contract: a fill of N blocks costs at
    //! most one anchor CAS and one size-identity flush, and a flush of N
    //! same-superblock blocks costs exactly one anchor CAS and no
    //! flushes, regardless of N.

    use super::*;

    /// Ring-off config: these tests pin down the *direct* anchor-CAS
    /// protocol (now the ring-off/fallback path). With rings on, whether
    /// a flushed group takes a CAS or a ring push depends on the test
    /// thread's token hash vs. the superblock's owner — nondeterministic
    /// across runs. The ring path has its own tests below.
    fn direct() -> RallocConfig {
        RallocConfig { remote_ring: false, ..Default::default() }
    }

    fn stats_of(heap: &Ralloc) -> (u64, u64, u64, u64, u64, u64) {
        let s = heap.slow_stats();
        (
            s.cache_fills.load(Ordering::Relaxed),
            s.cache_fill_blocks.load(Ordering::Relaxed),
            s.cache_flushes.load(Ordering::Relaxed),
            s.cache_flushes_blocks.load(Ordering::Relaxed),
            s.fill_anchor_cas.load(Ordering::Relaxed),
            s.flush_anchor_cas.load(Ordering::Relaxed),
        )
    }

    #[test]
    #[cfg_attr(feature = "telemetry-off", ignore = "asserts telemetry counters, which are compiled out")]
    fn fresh_fill_batches_whole_superblock_no_cas_one_flush() {
        let heap = Ralloc::create(8 << 20, RallocConfig::default());
        let mc = class_max_count(8) as u64; // 64 B class: 1024 blocks
        let fences0 = heap.pool().stats().snapshot().fences;
        let p = heap.malloc(64); // one fill: a whole fresh superblock
        assert!(!p.is_null());
        let (fills, fill_blocks, _, _, fill_cas, _) = stats_of(&heap);
        assert_eq!(fills, 1, "one malloc, one fill");
        assert_eq!(fill_blocks, mc, "the fill moved the whole superblock");
        assert_eq!(fill_cas, 0, "a fresh superblock is owned outright: no anchor CAS");
        // Exactly two fences: the `used` expansion and the size identity,
        // amortized over all `mc` blocks of the batch.
        let fences = heap.pool().stats().snapshot().fences - fences0;
        assert_eq!(fences, 2, "fill of {mc} blocks must flush once (+ once for carve)");
        assert_eq!(heap.slow_stats().avg_fill_batch(), mc as f64);
        heap.free(p);
    }

    #[test]
    #[cfg_attr(feature = "telemetry-off", ignore = "asserts telemetry counters, which are compiled out")]
    fn partial_fill_batches_with_exactly_one_cas_zero_flushes() {
        let heap = Ralloc::create(8 << 20, direct());
        let mc = class_max_count(8) as usize;
        // Drain one whole superblock through the bin, keeping ownership.
        let ptrs: Vec<usize> = (0..mc).map(|_| heap.malloc(64) as usize).collect();
        assert!(ptrs.iter().all(|&p| p != 0));
        // Hand 10 blocks back as one batch: the superblock turns PARTIAL.
        let mut batch: Vec<usize> = ptrs[..10].to_vec();
        heap.inner.flush_blocks(&mut batch);
        let (_, _, _, _, fill_cas0, flush_cas0) = stats_of(&heap);
        assert_eq!(flush_cas0, 1, "one batch, one superblock, one CAS");
        let fences0 = heap.pool().stats().snapshot().fences;
        // Bin is empty (we popped exactly mc), so this malloc refills from
        // the partial superblock: the 10-block chain, one CAS, no flush.
        let q = heap.malloc(64);
        assert!(!q.is_null());
        let (fills, fill_blocks, _, _, fill_cas, _) = stats_of(&heap);
        assert_eq!(fills, 2);
        assert_eq!(fill_blocks as usize, mc + 10, "second fill took the 10-block chain");
        assert_eq!(fill_cas - fill_cas0, 1, "a fill of N blocks performs exactly one anchor CAS");
        assert_eq!(
            heap.pool().stats().snapshot().fences,
            fences0,
            "a partial fill performs zero flushes"
        );
        heap.free(q);
        for &p in &ptrs[10..] {
            heap.free(p as *mut u8);
        }
    }

    #[test]
    #[cfg_attr(feature = "telemetry-off", ignore = "asserts telemetry counters, which are compiled out")]
    fn bin_overflow_flushes_whole_bin_one_cas_per_superblock() {
        let heap = Ralloc::create(8 << 20, direct());
        let mc = class_max_count(8) as usize;
        let cap = cache_capacity(8) as usize;
        let ptrs: Vec<usize> = (0..2 * mc).map(|_| heap.malloc(64) as usize).collect();
        assert!(ptrs.iter().all(|&p| p != 0));
        // Free the first superblock's population plus one: the bin fills
        // to capacity and the overflowing free flushes it in one batch.
        for &p in &ptrs[..cap + 1] {
            heap.free(p as *mut u8);
        }
        let s = heap.slow_stats();
        assert_eq!(s.cache_flushes.load(Ordering::Relaxed), 1);
        assert_eq!(s.cache_flushes_blocks.load(Ordering::Relaxed), cap as u64);
        assert_eq!(
            s.flush_anchor_cas.load(Ordering::Relaxed),
            1,
            "flushing {cap} same-superblock blocks must cost exactly one anchor CAS"
        );
        assert_eq!(s.avg_flush_batch(), cap as f64);
        assert_eq!(
            s.flush_partition_probes.load(Ordering::Relaxed),
            0,
            "a whole-bin flush of one superblock must stay on the linear path"
        );
        for &p in &ptrs[cap + 1..] {
            heap.free(p as *mut u8);
        }
    }

    #[test]
    #[cfg_attr(feature = "telemetry-off", ignore = "asserts telemetry counters, which are compiled out")]
    fn mixed_superblock_flush_one_cas_per_group() {
        let heap = Ralloc::create(8 << 20, direct());
        let mc = class_max_count(8) as usize;
        // Two superblocks' worth so the bin can hold a mixture.
        let ptrs: Vec<usize> = (0..mc + 4).map(|_| heap.malloc(64) as usize).collect();
        // Interleave blocks of superblock A (first mc) and B (last 4).
        let mut batch =
            vec![ptrs[0], ptrs[mc], ptrs[1], ptrs[mc + 1], ptrs[2], ptrs[mc + 2], ptrs[3]];
        heap.inner.flush_blocks(&mut batch);
        let s = heap.slow_stats();
        assert_eq!(
            s.flush_anchor_cas.load(Ordering::Relaxed),
            2,
            "two superblocks in the batch: exactly two anchor CASes"
        );
        for &p in &ptrs[4..mc] {
            heap.free(p as *mut u8);
        }
        heap.free(ptrs[mc + 3] as *mut u8);
    }

    #[test]
    #[cfg_attr(feature = "telemetry-off", ignore = "asserts telemetry counters, which are compiled out")]
    fn scavenge_reuses_empty_superblock_stranded_on_partial_list() {
        let heap = Ralloc::create(8 << 20, direct());
        let mc = class_max_count(8) as usize;
        let ptrs: Vec<usize> = (0..mc).map(|_| heap.malloc(64) as usize).collect();
        // Park the superblock EMPTY on the 64 B class's partial list:
        // first batch makes it FULL->PARTIAL (enlists), second makes it
        // PARTIAL->EMPTY (lazy retirement leaves it enlisted).
        let mut first: Vec<usize> = ptrs[..mc - 1].to_vec();
        heap.inner.flush_blocks(&mut first);
        let mut second = vec![ptrs[mc - 1]];
        heap.inner.flush_blocks(&mut second);
        assert_eq!(heap.used_superblocks(), 1);
        // A different class now needs a superblock: the free list is
        // empty, so without scavenging this would carve fresh space.
        let q = heap.malloc(128);
        assert!(!q.is_null());
        assert_eq!(
            heap.used_superblocks(),
            1,
            "empty superblock on a partial list must be reused, not bypassed"
        );
        assert_eq!(heap.slow_stats().sb_scavenged.load(Ordering::Relaxed), 1);
        heap.free(q);
    }

    #[test]
    #[cfg_attr(feature = "telemetry-off", ignore = "asserts telemetry counters, which are compiled out")]
    fn flush_half_policy_returns_older_half_and_keeps_the_rest() {
        let heap =
            Ralloc::create(8 << 20, RallocConfig { flush_half: true, ..Default::default() });
        let cap = cache_capacity(8) as usize;
        // cap+1 blocks: the last malloc triggers a second fill that
        // leaves the bin nearly full, so the free phase overflows twice.
        let ptrs: Vec<usize> = (0..cap + 1).map(|_| heap.malloc(64) as usize).collect();
        assert!(ptrs.iter().all(|&p| p != 0));
        for &p in &ptrs {
            heap.free(p as *mut u8);
        }
        let s = heap.slow_stats();
        let flushes = s.cache_flushes.load(Ordering::Relaxed);
        assert!(flushes > 0);
        assert_eq!(
            s.half_flushes.load(Ordering::Relaxed),
            flushes,
            "every overflow must use the half policy"
        );
        assert_eq!(
            s.avg_flush_batch(),
            (cap / 2) as f64,
            "each flush must return exactly half the bin, not all of it"
        );
    }

    #[test]
    #[cfg_attr(feature = "telemetry-off", ignore = "asserts telemetry counters, which are compiled out")]
    fn sharded_fill_counters_account_home_and_steals() {
        // Single-threaded: every partial pop is a home hit, never a steal.
        let heap = Ralloc::create(8 << 20, direct());
        let mc = class_max_count(8) as usize;
        let ptrs: Vec<usize> = (0..mc).map(|_| heap.malloc(64) as usize).collect();
        let mut batch: Vec<usize> = ptrs[..10].to_vec();
        heap.inner.flush_blocks(&mut batch);
        let q = heap.malloc(64); // refills from the partial superblock
        assert!(!q.is_null());
        let s = heap.slow_stats();
        assert_eq!(s.partial_pops_home.load(Ordering::Relaxed), 1);
        assert_eq!(s.partial_steals.load(Ordering::Relaxed), 0);
        assert_eq!(s.partial_shard_pushes.load(Ordering::Relaxed), 1);
        assert_eq!(s.steal_rate(), 0.0);
    }

    #[test]
    #[cfg_attr(feature = "telemetry-off", ignore = "asserts telemetry counters, which are compiled out")]
    fn small_initial_commit_grows_on_demand_and_stops_at_reserve() {
        let heap = Ralloc::create(
            4 << 20,
            RallocConfig {
                initial_capacity: Some(4 << 20),
                max_capacity: Some(16 << 20),
                ..Default::default()
            },
        );
        let committed0 = heap.committed_superblocks();
        assert!(committed0 < heap.max_superblocks(), "heap must start partially committed");
        assert_eq!(heap.geometry().max_sb, heap.max_superblocks());
        // Exhaust the initial commitment with large allocations (one
        // superblock each, no cache retention) and keep going: the
        // frontier must grow, transparently, with no null returns.
        let mut held = Vec::new();
        for _ in 0..heap.max_superblocks() {
            let p = heap.malloc(SB_SIZE - 16);
            assert!(!p.is_null(), "malloc must grow, not fail, below the reserve ceiling");
            held.push(p);
        }
        let grows = heap.slow_stats().heap_grows.load(Ordering::Relaxed);
        assert!(grows >= 2, "doubling from {committed0} sbs must take several grows: {grows}");
        assert_eq!(heap.committed_superblocks(), heap.max_superblocks());
        // The reserve ceiling is a hard OOM…
        assert!(heap.malloc(SB_SIZE - 16).is_null());
        // …but frees keep the heap serviceable (no corruption).
        for p in held {
            heap.free(p);
        }
        assert!(!heap.malloc(SB_SIZE - 16).is_null());
        assert!(crate::checker::check_heap(&heap).is_consistent());
    }

    #[test]
    fn default_config_commits_everything_upfront() {
        // The historical fixed-pool behavior: no growth machinery on the
        // hot path unless a config/env asks for a smaller initial commit.
        let heap = Ralloc::create(8 << 20, RallocConfig::default());
        assert_eq!(heap.committed_superblocks(), heap.max_superblocks());
        let p = heap.malloc(64);
        assert!(!p.is_null());
        assert_eq!(heap.slow_stats().heap_grows.load(Ordering::Relaxed), 0);
        heap.free(p);
    }

    #[test]
    #[cfg_attr(feature = "telemetry-off", ignore = "asserts telemetry counters, which are compiled out")]
    fn grow_persists_frontier_before_used() {
        // In Tracked mode, after any quiescent moment the persisted
        // frontier word must cover the persisted `used` — the ordering
        // the grow protocol guarantees.
        let heap = Ralloc::create(
            2 << 20,
            RallocConfig {
                initial_capacity: Some(2 << 20),
                max_capacity: Some(8 << 20),
                ..RallocConfig::tracked()
            },
        );
        let mut held = Vec::new();
        for _ in 0..heap.max_superblocks() {
            let p = heap.malloc(SB_SIZE / 2 + 1); // large path, 1 sb each
            assert!(!p.is_null());
            held.push(p);
        }
        assert!(heap.slow_stats().heap_grows.load(Ordering::Relaxed) >= 1);
        heap.crash_simulated();
        // Whatever survived: used within frontier, invariants hold.
        let geo = heap.geometry();
        // SAFETY: metadata words on a quiescent pool.
        let (frontier, used) = unsafe {
            (
                heap.pool().read_u64(crate::layout::COMMITTED_LEN_OFF) as usize,
                heap.pool().read_u64(USED_SB_OFF) as usize,
            )
        };
        assert!(
            used <= geo.committed_sb(frontier),
            "persisted used {used} outran persisted frontier {frontier}"
        );
        heap.recover();
        assert!(crate::checker::check_heap(&heap).is_consistent());
    }

    #[test]
    #[cfg_attr(feature = "telemetry-off", ignore = "asserts telemetry counters, which are compiled out")]
    fn grouped_flush_partition_is_linear_in_batch_size() {
        let heap = Ralloc::create(32 << 20, direct());
        let mc = class_max_count(8) as usize;
        // Blocks from many superblocks: allocate `sbs` whole superblocks
        // worth and take a couple of blocks from each, interleaved — the
        // adversarial shape for the old O(n·sb) linear partition.
        let sbs = 24usize;
        let ptrs: Vec<usize> = (0..sbs * mc).map(|_| heap.malloc(64) as usize).collect();
        assert!(ptrs.iter().all(|&p| p != 0));
        let mut batch: Vec<usize> = Vec::new();
        for blk in 0..2 {
            for sb in 0..sbs {
                batch.push(ptrs[sb * mc + blk]);
            }
        }
        let probes0 = heap.slow_stats().flush_partition_probes.load(Ordering::Relaxed);
        let cas0 = heap.slow_stats().flush_anchor_cas.load(Ordering::Relaxed);
        heap.inner.flush_blocks(&mut batch);
        let probes = heap.slow_stats().flush_partition_probes.load(Ordering::Relaxed) - probes0;
        let cas = heap.slow_stats().flush_anchor_cas.load(Ordering::Relaxed) - cas0;
        assert_eq!(cas, sbs as u64, "one anchor CAS per superblock group");
        assert!(
            probes > 0,
            "a {}-block batch over {sbs} superblocks must escalate to the table",
            batch.len()
        );
        assert!(
            probes <= 4 * batch.len() as u64,
            "partition must stay O(n): {probes} probes for {} blocks across {sbs} sbs",
            batch.len()
        );
        // Returned blocks are genuinely free again: drain them back out.
        for &p in &ptrs {
            if !batch.contains(&p) {
                heap.free(p as *mut u8);
            }
        }
        assert!(crate::checker::check_heap(&heap).is_consistent());
    }

    #[test]
    fn shrink_policy_parses_and_gates() {
        for (raw, want) in [
            ("off", Some(ShrinkPolicy::Off)),
            ("  CLOSE ", Some(ShrinkPolicy::Close)),
            ("recovery", Some(ShrinkPolicy::Recovery)),
            ("both", Some(ShrinkPolicy::Both)),
            ("1", Some(ShrinkPolicy::Both)),
            ("0", Some(ShrinkPolicy::Off)),
            ("garbage", None),
        ] {
            assert_eq!(ShrinkPolicy::parse(raw), want, "{raw:?}");
        }
        assert!(ShrinkPolicy::Both.at_close() && ShrinkPolicy::Both.at_recovery());
        assert!(ShrinkPolicy::Close.at_close() && !ShrinkPolicy::Close.at_recovery());
        assert!(!ShrinkPolicy::Recovery.at_close() && ShrinkPolicy::Recovery.at_recovery());
        assert!(!ShrinkPolicy::Off.at_close() && !ShrinkPolicy::Off.at_recovery());
    }

    #[test]
    fn explicit_shrink_releases_doubling_overshoot() {
        // Grow far enough that the doubling policy overshoots `used`,
        // free nothing: shrink must still pull the frontier back onto
        // the used prefix (releasing only never-carved space).
        let heap = Ralloc::create(
            1 << 20,
            RallocConfig {
                initial_capacity: Some(1 << 20),
                max_capacity: Some(32 << 20),
                ..Default::default()
            },
        );
        let mut held = Vec::new();
        for _ in 0..33 {
            held.push(heap.malloc(SB_SIZE / 2 + 1)); // 1 sb each, large path
        }
        assert!(held.iter().all(|p| !p.is_null()));
        let used = heap.used_superblocks();
        assert!(
            heap.committed_superblocks() > used,
            "doubling should overshoot at 33 sbs"
        );
        let released = heap.shrink();
        assert!(released > 0);
        assert_eq!(heap.used_superblocks(), used, "no live superblock may be released");
        assert_eq!(heap.committed_superblocks(), used, "frontier lands on used");
        // Everything still serviceable; the span regrows on demand.
        for p in held {
            heap.free(p);
        }
        assert!(!heap.malloc(64).is_null());
        assert!(crate::checker::check_heap(&heap).is_consistent());
    }

    #[test]
    #[cfg_attr(feature = "telemetry-off", ignore = "asserts telemetry counters, which are compiled out")]
    fn batched_return_transitions_full_to_empty_and_retires() {
        let heap = Ralloc::create(8 << 20, direct());
        let mc = class_max_count(8) as usize;
        let ptrs: Vec<usize> = (0..mc).map(|_| heap.malloc(64) as usize).collect();
        let off = ptrs[0] - heap.pool().base() as usize;
        let sb = heap.geometry().sb_index_of(off).unwrap();
        // Return the whole population as one batch: FULL -> EMPTY with a
        // single CAS, and the superblock lands on the free list.
        let mut batch = ptrs.clone();
        heap.inner.flush_blocks(&mut batch);
        let d = Desc::new(heap.pool(), &heap.geometry(), sb as u32);
        let a = d.anchor(Ordering::Acquire);
        assert_eq!(a.state, SbState::Empty);
        assert_eq!(a.count as usize, mc);
        assert_eq!(heap.slow_stats().flush_anchor_cas.load(Ordering::Relaxed), 1);
        assert_eq!(
            DescList::free_list(&heap.geometry()).collect(heap.pool(), &heap.geometry()),
            vec![sb as u32],
            "fully-freed FULL superblock must retire to the free list"
        );
    }
}

#[cfg(test)]
mod remote_ring_tests {
    //! The remote-free ring contract: a flushed group whose superblock
    //! belongs to another shard rides that shard's MPSC ring for zero
    //! producer-side anchor CASes, the owner reclaims it in bulk during
    //! fill, overflow degrades to the direct grouped-CAS protocol, and
    //! teardown paths drain the rings so nothing is stranded.

    use super::*;

    /// Pop `n` whole superblock populations of the 64 B class (class 8)
    /// through the thread cache. Fills move whole fresh superblocks into
    /// the bin in carve order, so chunk `i` is exactly the population of
    /// the `i`-th carved superblock and the bin ends empty.
    fn alloc_superblocks(heap: &Ralloc, n: usize) -> Vec<Vec<usize>> {
        let mc = class_max_count(8) as usize;
        let ptrs: Vec<usize> = (0..n * mc).map(|_| heap.malloc(64) as usize).collect();
        assert!(ptrs.iter().all(|&p| p != 0), "allocation failed mid-setup");
        ptrs.chunks(mc).map(|c| c.to_vec()).collect()
    }

    fn owner_of(heap: &Ralloc, chunk: &[usize]) -> u32 {
        heap.owner_shard_of(chunk[0] as *const u8)
    }

    #[test]
    #[cfg_attr(feature = "telemetry-off", ignore = "asserts telemetry counters, which are compiled out")]
    fn remote_group_flush_takes_zero_anchor_cas() {
        let heap = Ralloc::create(16 << 20, RallocConfig::default());
        if !heap.remote_rings_enabled() {
            eprintln!("skipping: remote rings disabled (RALLOC_REMOTE_RING/RALLOC_SHARDS?)");
            return;
        }
        let home = heap.current_home_shard();
        let sbs = alloc_superblocks(&heap, heap.partial_shards() as usize + 1);
        let remote = sbs
            .iter()
            .find(|c| owner_of(&heap, c) != home)
            .expect("S > 1 guarantees a foreign-owned superblock");
        let s = heap.slow_stats();
        let flush_cas0 = s.flush_anchor_cas.load(Ordering::Relaxed);
        let mut batch: Vec<usize> = remote[..10].to_vec();
        heap.inner.flush_blocks(&mut batch);
        assert_eq!(
            s.flush_anchor_cas.load(Ordering::Relaxed),
            flush_cas0,
            "a remote group must not touch its anchor on the producer side"
        );
        assert_eq!(s.remote_anchor_cas.load(Ordering::Relaxed), 0);
        assert_eq!(s.remote_ring_pushes.load(Ordering::Relaxed), 1, "one group, one ring push");
        assert_eq!(s.remote_ring_push_blocks.load(Ordering::Relaxed), 10);
        assert_eq!(s.remote_free_blocks.load(Ordering::Relaxed), 10);
        assert_eq!(s.remote_ring_overflows.load(Ordering::Relaxed), 0);
    }

    #[test]
    #[cfg_attr(feature = "telemetry-off", ignore = "asserts telemetry counters, which are compiled out")]
    fn owner_drain_reclaims_ring_batches_without_cas() {
        let heap = Ralloc::create(16 << 20, RallocConfig::default());
        if !heap.remote_rings_enabled() {
            eprintln!("skipping: remote rings disabled (RALLOC_REMOTE_RING/RALLOC_SHARDS?)");
            return;
        }
        let home = heap.current_home_shard();
        let sbs = alloc_superblocks(&heap, heap.partial_shards() as usize + 1);
        let remote = sbs
            .iter()
            .find(|c| owner_of(&heap, c) != home)
            .expect("S > 1 guarantees a foreign-owned superblock");
        let owner = owner_of(&heap, remote);
        // Three disjoint groups onto the owner's ring, 16 blocks each.
        for g in 0..3 {
            let mut batch: Vec<usize> = remote[16 * g..16 * (g + 1)].to_vec();
            heap.inner.flush_blocks(&mut batch);
        }
        let s = heap.slow_stats();
        let fill_cas0 = s.fill_anchor_cas.load(Ordering::Relaxed);
        let flush_cas0 = s.flush_anchor_cas.load(Ordering::Relaxed);
        let mut bin = CacheBin::new();
        bin.ensure_capacity(cache_capacity(8) as usize);
        assert!(heap.inner.drain_remote(8, owner, &mut bin, home));
        assert_eq!(bin.len(), 48, "the drain must take every ring-parked block");
        assert_eq!(
            s.fill_anchor_cas.load(Ordering::Relaxed),
            fill_cas0,
            "a ring drain refills the bin with zero anchor CASes"
        );
        assert_eq!(s.flush_anchor_cas.load(Ordering::Relaxed), flush_cas0);
        assert_eq!(s.remote_ring_drain_batches.load(Ordering::Relaxed), 3);
        assert_eq!(s.remote_ring_drain_blocks.load(Ordering::Relaxed), 48);
        let h = s.remote_drain_batch.snapshot();
        assert_eq!(h.count, 1, "one drain call, one batch-size sample");
        assert_eq!(h.sum, 48);
        // Hand the blocks back so the heap stays consistent.
        heap.inner.flush_blocks(bin.blocks_mut());
        bin.clear();
    }

    #[test]
    #[cfg_attr(feature = "telemetry-off", ignore = "asserts telemetry counters, which are compiled out")]
    fn ring_overflow_degrades_to_direct_cas_and_loses_nothing() {
        let heap = Ralloc::create(
            64 << 20,
            RallocConfig { remote_ring_cap: 2, ..Default::default() },
        );
        if !heap.remote_rings_enabled() {
            eprintln!("skipping: remote rings disabled (RALLOC_REMOTE_RING/RALLOC_SHARDS?)");
            return;
        }
        let mc = class_max_count(8) as usize;
        let home = heap.current_home_shard();
        let shards = heap.partial_shards() as usize;
        // Owners repeat every S superblocks, so 3S chunks give at least
        // three populations per foreign owner.
        let sbs = alloc_superblocks(&heap, 3 * shards);
        let target = owner_of(&heap, &sbs[0]).wrapping_add(1) % heap.partial_shards();
        let target = if target == home { (target + 1) % heap.partial_shards() } else { target };
        let victims: Vec<&Vec<usize>> =
            sbs.iter().filter(|c| owner_of(&heap, c) == target).collect();
        assert!(victims.len() >= 3, "expected ≥3 chunks for shard {target}");
        let s = heap.slow_stats();
        // Three whole-population pushes onto a capacity-2 ring: the third
        // laps the first, which must fall back to the direct CAS path.
        for chunk in &victims[..3] {
            let mut batch: Vec<usize> = (*chunk).clone();
            heap.inner.flush_blocks(&mut batch);
        }
        assert_eq!(s.remote_ring_overflows.load(Ordering::Relaxed), 1);
        assert!(s.remote_anchor_cas.load(Ordering::Relaxed) >= 1);
        assert!(
            heap.journal()
                .snapshot()
                .iter()
                .any(|e| e.kind == EventKind::RemoteRingOverflow && e.b == mc as u64),
            "the displacement must be journaled with its block count"
        );
        // The overflow victim went straight to EMPTY; the two still-parked
        // batches land when teardown drains the rings. Either way every
        // block must be accounted for.
        heap.inner.drain_rings_to_heap();
        for chunk in &victims[..3] {
            let off = chunk[0] - heap.pool().base() as usize;
            let sb = heap.geometry().sb_index_of(off).unwrap();
            let a = Desc::new(heap.pool(), &heap.geometry(), sb as u32).anchor(Ordering::Acquire);
            assert_eq!(a.state, SbState::Empty, "superblock {sb} lost blocks");
            assert_eq!(a.count as usize, mc);
        }
        let report = crate::checker::check_heap(&heap);
        assert!(report.is_consistent(), "{:?}", report.violations);
    }

    #[test]
    #[cfg_attr(feature = "telemetry-off", ignore = "asserts telemetry counters, which are compiled out")]
    fn remote_heavy_flush_never_enters_partition_table() {
        let heap = Ralloc::create(64 << 20, RallocConfig::default());
        if !heap.remote_rings_enabled() {
            eprintln!("skipping: remote rings disabled (RALLOC_REMOTE_RING/RALLOC_SHARDS?)");
            return;
        }
        if heap.partial_shards() < 4 {
            eprintln!("skipping: needs ≥4 shards so local groups stay under the escalation bound");
            return;
        }
        let home = heap.current_home_shard();
        let sbs = alloc_superblocks(&heap, 24);
        let locals = sbs.iter().filter(|c| owner_of(&heap, c) == home).count() as u64;
        // Two blocks from each of 24 superblocks, interleaved: 24 groups —
        // triple the pre-ring escalation bound — but only the handful of
        // local ones count toward it now.
        let mut batch = Vec::with_capacity(48);
        for i in 0..2 {
            for chunk in &sbs {
                batch.push(chunk[i]);
            }
        }
        let s = heap.slow_stats();
        let probes0 = s.flush_partition_probes.load(Ordering::Relaxed);
        let pushes0 = s.remote_ring_pushes.load(Ordering::Relaxed);
        heap.inner.flush_blocks(&mut batch);
        assert_eq!(
            s.flush_partition_probes.load(Ordering::Relaxed),
            probes0,
            "remote groups must not count toward grouped-flush escalation"
        );
        assert_eq!(s.remote_ring_pushes.load(Ordering::Relaxed) - pushes0, 24 - locals);
    }

    #[test]
    fn shrink_drains_rings_before_releasing() {
        let heap = Ralloc::create(16 << 20, RallocConfig::default());
        if !heap.remote_rings_enabled() {
            eprintln!("skipping: remote rings disabled (RALLOC_REMOTE_RING/RALLOC_SHARDS?)");
            return;
        }
        let n = heap.partial_shards() as usize + 1;
        let sbs = alloc_superblocks(&heap, n);
        // Whole populations: local groups retire their superblock outright,
        // remote groups park on rings until shrink drains them.
        for chunk in &sbs {
            let mut batch = chunk.clone();
            heap.inner.flush_blocks(&mut batch);
        }
        #[cfg(not(feature = "telemetry-off"))]
        assert!(heap.slow_stats().remote_ring_pushes.load(Ordering::Relaxed) > 0);
        heap.shrink();
        assert_eq!(
            heap.used_superblocks(),
            0,
            "shrink must drain ring-parked blocks so every superblock empties"
        );
        let report = crate::checker::check_heap(&heap);
        assert!(report.is_consistent(), "{:?}", report.violations);
    }
}
