//! Offline recovery: trace, sweep, reconstruct (paper §4.5).
//!
//! Recovery runs while the heap is quiescent (after a crash there are no
//! application threads, paper §3) and performs steps 1–10 of §4.5:
//!
//! 1.  remap (done by the caller when it opened the pool),
//! 2.  thread caches start empty (their *generation* was bumped),
//! 3.  partial lists and the superblock free list are reset,
//! 4.  filter functions were registered by `get_root<T>` calls,
//! 5.  trace all blocks reachable from the persistent roots,
//! 6.  scan the superblock region keeping only traced blocks,
//! 7.  update every descriptor's anchor,
//! 8.  reconstruct the partial lists,
//! 9.  reconstruct the superblock free list,
//! 10. flush all three regions and fence.
//!
//! ## Parallel recovery (paper §6.4 future work, implemented here)
//!
//! The paper notes it is "straightforward to parallelize Step 5 across
//! persistent roots and Steps 6–9 across superblocks"; `recover_parallel`
//! does exactly that. Tracing threads work on disjoint root subsets with
//! private mark sets that are OR-merged afterwards (marking is
//! idempotent, so shared substructure costs duplicated scanning but never
//! correctness). Sweeping threads rebuild disjoint descriptor ranges and
//! publish to the global lists concurrently — the lists are the same
//! lock-free Treiber stacks used online, so no extra synchronization is
//! needed.
//!
//! ## Shard-aware rebuild (steps 8–9)
//!
//! The partial lists being rebuilt are *sharded* ([`crate::shard`]):
//! every partial superblock goes to shard
//! [`place_superblock`](crate::shard::place_superblock)`(sb, S)`, a pure
//! function of the superblock index, so the rebuilt state is *born
//! sharded* and identical for any worker count. Each sweep worker
//! accumulates its range's descriptors into local per-(class, shard)
//! batches and publishes each batch with a **single** CAS
//! ([`DescList::splice_slice`]); the publication cost is O(workers ×
//! non-empty shards), not O(superblocks) — no CAS storm on a global head
//! at the end of recovery, which is exactly the failure mode a
//! single-list rebuild would reintroduce at scale.
//!
//! ## Large-block conflict rule (beyond the paper)
//!
//! Conservative tracing can mark a *stale* large-block head (a block that
//! was freed before the crash but whose class-0 descriptor still decodes).
//! If that phantom's span were honored it could swallow superblocks that
//! hold live small blocks — a safety violation, not just a leak. Recovery
//! therefore validates every marked large head: its interior superblocks
//! must all carry the `CONTINUATION` tag (persisted at large-allocation
//! time) and no marks. Genuine live large blocks always pass; conflicting
//! phantoms are dropped. Single-superblock phantoms merely leak one
//! superblock, matching the paper's "conservative collection may leak,
//! never corrupts" contract.

use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use telemetry::EventKind;

use crate::anchor::{Anchor, SbState};
use crate::descriptor::{Desc, DescKind};
use crate::gc::{MarkSet, TraceFn, Tracer};
use crate::heap::HeapInner;
use crate::layout::NUM_ROOTS;
use crate::lists::DescList;
use crate::shard::{place_superblock, ShardedPartial};
use crate::size_class::{class_block_size, class_max_count, NUM_CLASSES};

/// What recovery found and rebuilt.
///
/// Also published to the heap's metric [`telemetry::Registry`] (see
/// [`crate::Ralloc::telemetry`]) as `recovery_*` gauges plus a
/// `recovery_duration_ns` histogram (one sample per recovery), and to
/// the event journal as a `recovery_reconcile` → `recovery_sweep` →
/// `recovery_splice` phase trace — this struct is the per-call return
/// value, the registry is the exportable view.
#[derive(Debug, Clone, Default)]
pub struct RecoveryStats {
    /// Blocks reachable from the persistent roots (kept allocated).
    pub reachable_blocks: u64,
    /// Bytes those blocks occupy.
    pub reachable_bytes: u64,
    /// Superblocks returned to the free list.
    pub free_superblocks: usize,
    /// Superblocks placed on partial lists.
    pub partial_superblocks: usize,
    /// Fully-allocated superblocks (incl. live large spans).
    pub full_superblocks: usize,
    /// Phantom large heads rejected by the conflict rule.
    pub rejected_large_phantoms: usize,
    /// Words examined by conservative scans (0 when all filters precise).
    pub conservative_words_scanned: u64,
    /// Tagged words accepted as candidate pointers during conservative
    /// scans.
    pub conservative_candidates: u64,
    /// Worker threads used (1 = the paper's sequential recovery).
    pub threads: usize,
    /// Partial-list shards the rebuilt lists were partitioned into.
    pub shards: u32,
    /// Trailing fully-free superblocks released (frontier lowered and
    /// tail decommitted) by the end-of-recovery shrink. 0 when
    /// [`crate::heap::ShrinkPolicy`] disables the recovery hook. These
    /// were counted in `free_superblocks` by the sweep and are no longer
    /// on the free list.
    pub shrunk_superblocks: usize,
    /// Wall-clock recovery time (the quantity of paper Figure 6).
    pub duration: Duration,
}

/// Run sequential offline recovery. Caller guarantees quiescence.
pub(crate) fn recover(inner: &HeapInner) -> RecoveryStats {
    recover_with(inner, 1)
}

/// Run offline recovery with `threads` workers.
pub(crate) fn recover_with(inner: &HeapInner, threads: usize) -> RecoveryStats {
    let t0 = Instant::now();
    let pool = inner.pool();
    let geo = inner.geo();
    let used = inner.used_sb();
    let threads = threads.max(1);

    // Invalidate every thread cache populated before this point and wait
    // out thread-exit drains already in flight. Cached blocks are
    // unreachable from the roots, so the sweep below reclaims them — the
    // same semantics a real crash gives DRAM caches. Without the wait, a
    // just-joined worker's TLS destructor (which runs *after* its
    // `thread::scope` closure returns) could flush its bins into the
    // lists this function is about to reset and rebuild.
    inner.quiesce_caches();

    // Frontier reconciliation (reserve/commit model): the durable
    // frontier word is the surviving truth after a crash; refresh the
    // runtime safe-frontier from it, and validate that the used prefix —
    // the only region recovery sweeps — lies inside committed space. The
    // grow protocol persists the frontier word *before* any `used` bump
    // that relies on it, so a violation here means a corrupt or
    // hand-truncated image, not a crash timing.
    inner.reload_frontier();
    assert!(
        used <= geo.committed_sb(pool.committed_len()),
        "recovery: used superblocks ({used}) extend past the committed frontier \
         ({} bytes) — corrupt image",
        pool.committed_len()
    );
    // Same rule against the descriptor region's own frontier (v5): every
    // used superblock's descriptor must sit under the durable descriptor
    // frontier, because `grow_desc` fences its word before `used` may
    // rise past it. `reload_frontier` above already refreshed the runtime
    // safe-frontier from the surviving word.
    assert!(
        used <= inner.desc_committed_sb(),
        "recovery: used superblocks ({used}) have descriptors past the \
         descriptor frontier — corrupt image"
    );

    // Bins parked by pre-crash thread exits are DRAM state: their blocks
    // are about to be reclaimed (or kept) by the trace like any other
    // cached block, so the parked copies must be forgotten. Likewise the
    // remote-free rings: in-flight remote frees died with DRAM, and the
    // sweep reclaims their blocks by reachability (the rings' whole
    // crash-consistency argument — see `crate::remote`).
    inner.discard_parked();
    inner.discard_rings();

    // Steps 2-3: empty transient lists (thread caches were invalidated by
    // the crash's generation bump; on a dirty open none exist yet). Every
    // reserved shard head is reset, not just the live ones — the previous
    // run may have used a different shard count.
    DescList::free_list(geo).reset(pool);
    for class in 0..NUM_CLASSES as u32 {
        ShardedPartial::new(class, inner.shards()).reset_all(pool, geo);
    }
    inner.journal.record(EventKind::RecoveryReconcile, used as u64, threads as u64);
    inner.flight_record(EventKind::RecoveryReconcile, used as u64, threads as u64);

    // Gather the registered roots (step 4 already happened via get_root).
    let mut roots: Vec<(usize, Option<TraceFn>)> = Vec::new();
    {
        let root_fns = inner.root_fns.lock();
        for i in 0..NUM_ROOTS {
            // SAFETY: root slots are 8-aligned metadata words.
            let raw = unsafe { pool.atomic_u64(geo.root(i)) }.load(Ordering::Acquire);
            if let Some(off) = raw.checked_sub(1) {
                let addr = pool.base() as usize + geo.sb(0) + off as usize;
                roots.push((addr, root_fns.get(&i).copied()));
            }
        }
    }

    // Step 5: trace — sequentially, or across root subsets in parallel.
    let (marks, cons_words, cons_hits) = if threads == 1 || roots.len() <= 1 {
        let mut tracer = Tracer::new(pool, geo, used);
        for (addr, filter) in &roots {
            tracer.visit_addr(*addr, *filter);
        }
        tracer.drain();
        let (mut marks, w, h) = tracer.into_parts();
        recount(&mut marks);
        (marks, w, h)
    } else {
        let workers = threads.min(roots.len());
        let results: Vec<(MarkSet, u64, u64)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let roots = &roots;
                    s.spawn(move || {
                        let mut tracer = Tracer::new(pool, geo, used);
                        for (addr, filter) in roots.iter().skip(w).step_by(workers) {
                            tracer.visit_addr(*addr, *filter);
                        }
                        tracer.drain();
                        tracer.into_parts()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("tracing worker")).collect()
        });
        let mut iter = results.into_iter();
        let (mut marks, mut w, mut h) = iter.next().unwrap();
        for (m, ws, hs) in iter {
            marks.merge_from(&m);
            w += ws;
            h += hs;
        }
        recount(&mut marks);
        (marks, w, h)
    };

    let mut stats = RecoveryStats {
        reachable_blocks: marks.total,
        conservative_words_scanned: cons_words,
        conservative_candidates: cons_hits,
        threads,
        shards: inner.shards(),
        ..Default::default()
    };

    // Pass A: validate marked large heads and claim their spans.
    let mut claimed = vec![false; used];
    for i in 0..used {
        let d = Desc::new(pool, geo, i as u32);
        if let DescKind::LargeHead { span } = d.classify(geo, used) {
            if !marks.is_marked(i, 0) {
                continue;
            }
            let conflict = (1..span).any(|k| {
                let dk = Desc::new(pool, geo, (i + k) as u32);
                dk.classify(geo, used) != DescKind::Continuation || marks.counts[i + k] != 0
            });
            if conflict {
                stats.rejected_large_phantoms += 1;
                continue;
            }
            for k in 0..span {
                claimed[i + k] = true;
            }
            stats.reachable_bytes += d.block_size();
        }
    }
    // Small-block bytes, recomputed from the merged mark counts.
    for i in 0..used {
        let d = Desc::new(pool, geo, i as u32);
        if let DescKind::Small { class } = d.classify(geo, used) {
            stats.reachable_bytes += marks.counts[i] as u64 * class_block_size(class) as u64;
        }
    }

    // Pass B (steps 6-9): rebuild descriptors and lists, in parallel over
    // disjoint superblock ranges when requested.
    let sweep_threads = if threads == 1 || used < 64 { 1 } else { threads };
    if sweep_threads == 1 {
        let (f, p, full) = sweep_range(inner, &marks, &claimed, 0, used);
        stats.free_superblocks = f;
        stats.partial_superblocks = p;
        stats.full_superblocks = full;
    } else {
        let chunk = used.div_ceil(sweep_threads);
        let totals: Vec<(usize, usize, usize)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..sweep_threads)
                .map(|w| {
                    let marks = &marks;
                    let claimed = &claimed;
                    s.spawn(move || {
                        let lo = w * chunk;
                        let hi = ((w + 1) * chunk).min(used);
                        if lo >= hi {
                            (0, 0, 0)
                        } else {
                            sweep_range(inner, marks, claimed, lo, hi)
                        }
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("sweep worker")).collect()
        });
        for (f, p, full) in totals {
            stats.free_superblocks += f;
            stats.partial_superblocks += p;
            stats.full_superblocks += full;
        }
    }
    inner.journal.record(EventKind::RecoverySweep, stats.reachable_blocks, used as u64);
    inner.flight_record(EventKind::RecoverySweep, stats.reachable_blocks, used as u64);
    inner.journal.record(
        EventKind::RecoverySplice,
        stats.partial_superblocks as u64,
        stats.free_superblocks as u64,
    );
    inner.flight_record(
        EventKind::RecoverySplice,
        stats.partial_superblocks as u64,
        stats.free_superblocks as u64,
    );

    // Quiescent-point shrink (the recovery half of the bidirectional
    // frontier): the sweep just rebuilt the lists, so the trailing run of
    // fully-free superblocks is exactly known — release it before the
    // write-back, lowering `used` and the persisted frontier word in the
    // crash-safe order documented on `shrink_quiesced`. A restart whose
    // live set collapsed thereby restarts at live-set footprint instead
    // of its high-water mark.
    if inner.shrink_policy().at_recovery() {
        stats.shrunk_superblocks = inner.shrink_quiesced();
    }

    // Step 10: write everything back so a crash immediately after
    // recovery restarts from this reconstructed state. Only the
    // committed prefix exists to flush; the uncommitted reservation has
    // no content (and the pool would reject the range).
    if !inner.is_transient() {
        pool.flush(0, pool.committed_len());
        pool.fence();
    }

    stats.duration = t0.elapsed();

    // Publish the exportable view: last-recovery gauges plus one
    // duration sample, so snapshots and the Prometheus dump carry
    // recovery results without holding this struct.
    let reg = &inner.telemetry;
    reg.gauge("recovery_reachable_blocks").set(stats.reachable_blocks as i64);
    reg.gauge("recovery_free_superblocks").set(stats.free_superblocks as i64);
    reg.gauge("recovery_partial_superblocks").set(stats.partial_superblocks as i64);
    reg.gauge("recovery_full_superblocks").set(stats.full_superblocks as i64);
    reg.gauge("recovery_threads").set(stats.threads as i64);
    reg.histogram("recovery_duration_ns").observe(stats.duration.as_nanos() as u64);

    stats
}

/// Recompute a mark set's per-superblock counts and total (after merges;
/// also normalizes the single-tracer path so both report identically).
fn recount(marks: &mut MarkSet) {
    marks.merge_from(&MarkSet::new(marks.counts.len()));
}

/// Rebuild descriptors `lo..hi`: per-superblock free chains, anchors, and
/// list membership (steps 6-9 for a slice of the heap). Safe to run
/// concurrently over disjoint ranges — each worker accumulates its list
/// publications into local batches and splices every batch with one CAS
/// on the (lock-free) shared heads, so workers contend O(1) times per
/// list rather than once per descriptor. Partial superblocks are placed
/// on shard `place_superblock(i, S)`, a pure function of the index, so
/// any worker count rebuilds the identical sharded partition.
#[allow(clippy::needless_range_loop)] // `i` is a superblock index, not just a slice cursor
fn sweep_range(
    inner: &HeapInner,
    marks: &MarkSet,
    claimed: &[bool],
    lo: usize,
    hi: usize,
) -> (usize, usize, usize) {
    let pool = inner.pool();
    let geo = inner.geo();
    let used = inner.used_sb();
    let shards = inner.shards() as usize;
    let (mut frees, mut partials, mut fulls) = (0, 0, 0);
    let mut free_batch: Vec<u32> = Vec::new();
    let mut partial_batches: Vec<Vec<u32>> = vec![Vec::new(); NUM_CLASSES * shards];
    for i in lo..hi {
        let d = Desc::new(pool, geo, i as u32);
        if claimed[i] {
            // Live large block (head or interior): fully allocated.
            d.set_anchor(Anchor::full(1), Ordering::Relaxed);
            fulls += 1;
            continue;
        }
        match d.classify(geo, used) {
            DescKind::Small { class } => {
                let mc = class_max_count(class);
                let bsize = class_block_size(class) as usize;
                // Refresh the transient max_count cache without flushing
                // (the persisted class/size bits are rewritten unchanged).
                d.set_size(class, bsize as u64, mc, true);
                let marked = marks.counts[i];
                let free_count = mc - marked;
                let sb_addr = pool.base() as usize + geo.sb(i);
                // Chain the unmarked blocks in ascending order (step 6:
                // "keep only traced blocks").
                let mut first: Option<u32> = None;
                let mut prev: Option<u32> = None;
                for blk in 0..mc {
                    if marks.is_marked(i, blk) {
                        continue;
                    }
                    if let Some(p) = prev {
                        // SAFETY: free block first-words; ranges disjoint.
                        unsafe {
                            std::ptr::write((sb_addr + p as usize * bsize) as *mut u64, blk as u64)
                        };
                    } else {
                        first = Some(blk);
                    }
                    prev = Some(blk);
                }
                let anchor = if free_count == 0 {
                    Anchor::full(mc)
                } else {
                    Anchor {
                        avail: first.unwrap(),
                        count: free_count,
                        state: if free_count == mc { SbState::Empty } else { SbState::Partial },
                    }
                };
                d.set_anchor(anchor, Ordering::Relaxed);
                match anchor.state {
                    SbState::Empty => {
                        free_batch.push(i as u32);
                        frees += 1;
                    }
                    SbState::Partial => {
                        let s = place_superblock(i, shards as u32) as usize;
                        partial_batches[class as usize * shards + s].push(i as u32);
                        partials += 1;
                    }
                    SbState::Full => fulls += 1,
                }
            }
            // Unreached large heads, stale continuations, and garbage
            // descriptors all become free superblocks.
            DescKind::LargeHead { .. } | DescKind::Continuation | DescKind::Invalid => {
                d.set_anchor(
                    Anchor { avail: 0, count: 0, state: SbState::Empty },
                    Ordering::Relaxed,
                );
                free_batch.push(i as u32);
                frees += 1;
            }
        }
    }
    // Publish: one CAS per non-empty batch, O(workers) total per list.
    for (slot, batch) in partial_batches.iter().enumerate() {
        if !batch.is_empty() {
            let (class, s) = ((slot / shards) as u32, (slot % shards) as u32);
            DescList::partial_shard(geo, class, s).splice_slice(pool, geo, batch);
        }
    }
    DescList::free_list(geo).splice_slice(pool, geo, &free_batch);
    (frees, partials, fulls)
}
#[cfg(test)]
mod tests {
    use crate::heap::{Ralloc, RallocConfig};
    use crate::gc::{Trace, Tracer};
    use pptr::Pptr;

    /// A persistent singly-linked list node with a precise filter.
    #[repr(C)]
    struct Node {
        value: u64,
        next: Pptr<Node>,
    }

    unsafe impl Trace for Node {
        fn trace(&self, t: &mut Tracer<'_>) {
            t.visit_pptr(&self.next);
        }
    }

    fn tracked_heap() -> Ralloc {
        Ralloc::create(8 << 20, RallocConfig::tracked())
    }

    /// Build an n-node list rooted at slot `root`, persisting each node
    /// the way a durably-linearizable application would.
    fn build_list(heap: &Ralloc, root: usize, n: usize) -> Vec<usize> {
        let mut addrs = Vec::with_capacity(n);
        let mut head: *mut Node = std::ptr::null_mut();
        for i in 0..n {
            let p = heap.malloc(std::mem::size_of::<Node>()) as *mut Node;
            assert!(!p.is_null());
            unsafe {
                (*p).value = i as u64;
                (*p).next.set(head);
            }
            // Application-side persistence (paper §2.2: the app is
            // responsible for durable linearizability of its own data).
            let off = p as usize - heap.pool().base() as usize;
            heap.pool().persist(off, std::mem::size_of::<Node>());
            head = p;
            addrs.push(p as usize);
        }
        heap.set_root::<Node>(root, head);
        addrs
    }

    fn list_values(heap: &Ralloc, root: usize) -> Vec<u64> {
        let mut out = Vec::new();
        let mut cur = heap.get_root::<Node>(root);
        while !cur.is_null() {
            unsafe {
                out.push((*cur).value);
                cur = (*cur).next.as_ptr();
            }
        }
        out
    }

    #[test]
    fn crash_and_recover_preserves_rooted_list() {
        let heap = tracked_heap();
        build_list(&heap, 0, 100);
        heap.crash_simulated();
        let stats = heap.recover();
        assert_eq!(stats.reachable_blocks, 100);
        assert_eq!(list_values(&heap, 0), (0..100).rev().collect::<Vec<_>>());
        // Heap remains serviceable.
        let p = heap.malloc(64);
        assert!(!p.is_null());
        heap.free(p);
    }

    #[test]
    fn unrooted_blocks_are_reclaimed() {
        let heap = tracked_heap();
        build_list(&heap, 0, 10);
        // Allocate garbage that never gets attached: lost on crash.
        for _ in 0..1000 {
            let p = heap.malloc(64);
            assert!(!p.is_null());
        }
        heap.crash_simulated();
        let stats = heap.recover();
        assert_eq!(stats.reachable_blocks, 10, "leaked blocks must be collected");
    }

    #[test]
    fn recovered_free_space_is_never_handed_out_twice() {
        let heap = tracked_heap();
        let live = build_list(&heap, 0, 200);
        heap.crash_simulated();
        heap.recover();
        let live_set: std::collections::HashSet<usize> = live.into_iter().collect();
        // Allocate aggressively: no returned block may alias a live node.
        for _ in 0..20_000 {
            let p = heap.malloc(std::mem::size_of::<Node>());
            if p.is_null() {
                break;
            }
            assert!(!live_set.contains(&(p as usize)), "GC-surviving block re-allocated");
        }
        assert_eq!(list_values(&heap, 0).len(), 200);
    }

    #[test]
    fn recovery_is_idempotent() {
        let heap = tracked_heap();
        build_list(&heap, 0, 50);
        heap.crash_simulated();
        let s1 = heap.recover();
        let s2 = heap.recover();
        assert_eq!(s1.reachable_blocks, s2.reachable_blocks);
        assert_eq!(s1.free_superblocks, s2.free_superblocks);
        assert_eq!(list_values(&heap, 0).len(), 50);
    }

    #[test]
    fn crash_during_recovery_is_recoverable() {
        let heap = tracked_heap();
        build_list(&heap, 0, 50);
        heap.crash_simulated();
        heap.recover();
        // Crash again immediately (before any new persistence): recovery
        // flushed its reconstruction, so this recovers identically.
        heap.crash_simulated();
        let s = heap.recover();
        assert_eq!(s.reachable_blocks, 50);
        assert_eq!(list_values(&heap, 0).len(), 50);
    }

    #[test]
    fn thread_cached_blocks_recovered_after_crash() {
        let heap = tracked_heap();
        build_list(&heap, 0, 5);
        // Fill the thread cache with freed blocks, then crash: the cache
        // is transient, so those blocks leak until GC reclaims them.
        let ptrs: Vec<_> = (0..100).map(|_| heap.malloc(64)).collect();
        for p in ptrs {
            heap.free(p); // parked in this thread's cache
        }
        heap.crash_simulated();
        let stats = heap.recover();
        assert_eq!(stats.reachable_blocks, 5);
        // All cached blocks are allocatable again; heap serves requests.
        let p = heap.malloc(64);
        assert!(!p.is_null());
    }

    #[test]
    fn large_block_survives_crash() {
        let heap = tracked_heap();
        let size = 3 * crate::size_class::SB_SIZE + 17;
        let p = heap.malloc(size);
        assert!(!p.is_null());
        unsafe {
            std::ptr::write_bytes(p, 0xAB, size);
        }
        let off = p as usize - heap.pool().base() as usize;
        heap.pool().persist(off, size);
        heap.set_root::<u8>(0, p);
        heap.crash_simulated();
        let stats = heap.recover();
        assert_eq!(stats.reachable_blocks, 1);
        assert_eq!(stats.reachable_bytes, size as u64);
        let q = heap.get_root::<u8>(0);
        assert_eq!(q, p);
        unsafe {
            for i in [0usize, 1, size / 2, size - 1] {
                assert_eq!(*q.add(i), 0xAB, "large block byte {i} corrupted");
            }
        }
        // Freeing it afterwards returns the span.
        heap.free(q);
        let r = heap.malloc(64);
        assert!(!r.is_null());
    }

    #[test]
    fn unrooted_large_block_is_reclaimed() {
        let heap = tracked_heap();
        let size = 4 * crate::size_class::SB_SIZE;
        let p = heap.malloc(size);
        assert!(!p.is_null());
        let used_before = heap.used_superblocks();
        heap.crash_simulated();
        let stats = heap.recover();
        assert_eq!(stats.reachable_blocks, 0);
        assert_eq!(stats.free_superblocks, used_before, "span must be split and freed");
    }

    #[test]
    fn conservative_root_traces_without_filter() {
        let heap = tracked_heap();
        build_list(&heap, 0, 30);
        heap.crash_simulated();
        // Simulate an application that never called get_root::<T>: drop
        // the registered filter; recovery must fall back to conservative
        // scanning and still find every node (pptr tags make them
        // recognizable).
        heap.clear_root_filter(0);
        let stats = heap.recover();
        assert_eq!(stats.reachable_blocks, 30);
        assert!(stats.conservative_words_scanned > 0);
        assert_eq!(list_values(&heap, 0).len(), 30);
    }

    #[test]
    fn clean_close_then_dirty_reopen_roundtrip_via_image() {
        // Crash image -> new pool at a different base -> recovery: the
        // whole-point integration of position independence + GC.
        let heap = tracked_heap();
        build_list(&heap, 7, 64);
        let image = heap.pool().persistent_image();
        drop(heap);
        let (heap2, dirty) = Ralloc::from_image(&image, RallocConfig::tracked());
        assert!(dirty);
        // Re-register the filter (the paper: call getRoot before recover).
        let _ = heap2.get_root::<Node>(7);
        let stats = heap2.recover();
        assert_eq!(stats.reachable_blocks, 64);
        assert_eq!(list_values(&heap2, 7).len(), 64);
    }

    #[test]
    fn multiple_roots_all_traced() {
        let heap = tracked_heap();
        build_list(&heap, 0, 10);
        build_list(&heap, 1, 20);
        build_list(&heap, 1023, 30);
        heap.crash_simulated();
        let stats = heap.recover();
        assert_eq!(stats.reachable_blocks, 60);
        assert_eq!(list_values(&heap, 0).len(), 10);
        assert_eq!(list_values(&heap, 1).len(), 20);
        assert_eq!(list_values(&heap, 1023).len(), 30);
    }

    #[test]
    fn null_root_clears_reachability() {
        let heap = tracked_heap();
        build_list(&heap, 0, 40);
        heap.set_root::<Node>(0, std::ptr::null());
        heap.crash_simulated();
        let stats = heap.recover();
        assert_eq!(stats.reachable_blocks, 0, "detached structure must be collected");
    }

    #[test]
    fn recovery_stats_duration_positive() {
        let heap = tracked_heap();
        build_list(&heap, 0, 1000);
        heap.crash_simulated();
        let stats = heap.recover();
        assert!(stats.duration.as_nanos() > 0);
        assert_eq!(stats.reachable_blocks, 1000);
    }
}

#[cfg(test)]
mod parallel_tests {
    use crate::checker::check_heap;
    use crate::gc::{Trace, Tracer};
    use crate::heap::{Ralloc, RallocConfig};
    use pptr::Pptr;

    #[repr(C)]
    struct Node {
        value: u64,
        next: Pptr<Node>,
    }
    unsafe impl Trace for Node {
        fn trace(&self, t: &mut Tracer<'_>) {
            t.visit_pptr(&self.next);
        }
    }

    /// Many roots, each a list, so the parallel mark phase has real work
    /// to divide.
    fn build_many_lists(heap: &Ralloc, lists: usize, per: usize) {
        for r in 0..lists {
            let mut head: *mut Node = std::ptr::null_mut();
            for i in 0..per as u64 {
                let p = heap.malloc(std::mem::size_of::<Node>()) as *mut Node;
                assert!(!p.is_null());
                // SAFETY: fresh block.
                unsafe {
                    (*p).value = i;
                    (*p).next.set(head);
                }
                // Application-side durable linearizability (§2.2).
                let off = p as usize - heap.pool().base() as usize;
                heap.pool().persist(off, std::mem::size_of::<Node>());
                head = p;
            }
            heap.set_root::<Node>(r, head);
        }
    }

    #[test]
    fn parallel_recovery_matches_sequential() {
        // Shrink off: this test recovers the SAME heap twice and compares
        // sweep statistics, and an end-of-recovery shrink would (by
        // design) lower `used` between the two runs. The shrink hook has
        // its own crash-sweep coverage in tests/growable_heap.rs.
        let heap = Ralloc::create(
            32 << 20,
            RallocConfig {
                shrink_policy: crate::heap::ShrinkPolicy::Off,
                ..RallocConfig::tracked()
            },
        );
        build_many_lists(&heap, 16, 200);
        // Leak garbage so the sweep has work too.
        for _ in 0..2000 {
            let _ = heap.malloc(48);
        }
        heap.crash_simulated();
        let seq = heap.recover();
        let par = heap.recover_parallel(4);
        assert_eq!(seq.reachable_blocks, par.reachable_blocks);
        assert_eq!(seq.reachable_bytes, par.reachable_bytes);
        assert_eq!(seq.free_superblocks, par.free_superblocks);
        assert_eq!(seq.partial_superblocks, par.partial_superblocks);
        assert_eq!(seq.full_superblocks, par.full_superblocks);
        assert_eq!(par.threads, 4);
        let report = check_heap(&heap);
        assert!(report.is_consistent(), "{:?}", report.violations);
    }

    #[test]
    fn parallel_recovery_with_shared_substructure() {
        // Two roots pointing at the same list: per-thread mark sets
        // overlap and must merge without double counting.
        let heap = Ralloc::create(16 << 20, RallocConfig::tracked());
        build_many_lists(&heap, 1, 300);
        let head = heap.get_root::<Node>(0);
        heap.set_root::<Node>(1, head);
        heap.crash_simulated();
        let stats = heap.recover_parallel(2);
        assert_eq!(stats.reachable_blocks, 300, "shared list counted once");
        assert!(check_heap(&heap).is_consistent());
    }

    #[test]
    fn parallel_recovery_usable_afterwards() {
        let heap = Ralloc::create(32 << 20, RallocConfig::tracked());
        build_many_lists(&heap, 8, 100);
        heap.crash_simulated();
        heap.recover_parallel(4);
        // Allocate from the rebuilt lists across several classes.
        let mut held = Vec::new();
        for i in 0..5000usize {
            let p = heap.malloc(8 + (i % 40) * 8);
            assert!(!p.is_null());
            held.push(p);
        }
        for p in held {
            heap.free(p);
        }
        assert!(check_heap(&heap).is_consistent());
    }

    #[test]
    fn thread_count_one_is_sequential() {
        let heap = Ralloc::create(8 << 20, RallocConfig::tracked());
        build_many_lists(&heap, 4, 50);
        heap.crash_simulated();
        let s = heap.recover_parallel(1);
        assert_eq!(s.threads, 1);
        assert_eq!(s.reachable_blocks, 200);
    }
}

