//! The descriptor *anchor*: the single word on which all synchronization
//! for a superblock happens (paper §4.2).
//!
//! The anchor packs the head of the superblock's internal block free list
//! (`avail`), the number of free blocks (`count`), and the superblock
//! state, all updated together with one CAS. `avail == max_count` encodes
//! an empty free list (the convention LRMalloc uses so that a thread
//! reserving every free block can park `avail` on a value no concurrent
//! `free` will mistake for a real block).

/// Superblock state, two bits of the anchor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum SbState {
    /// Every block free; the superblock is (or is about to be) retired to
    /// the superblock free list.
    Empty = 0,
    /// Some blocks allocated, some free; on (or heading to) a partial list.
    Partial = 1,
    /// No free blocks (they are all allocated or reserved by a cache fill).
    Full = 2,
}

impl SbState {
    fn from_bits(b: u64) -> SbState {
        match b {
            0 => SbState::Empty,
            1 => SbState::Partial,
            2 => SbState::Full,
            _ => unreachable!("invalid anchor state bits"),
        }
    }
}

const AVAIL_BITS: u32 = 31;
const COUNT_BITS: u32 = 31;
const AVAIL_MASK: u64 = (1u64 << AVAIL_BITS) - 1;
const COUNT_MASK: u64 = (1u64 << COUNT_BITS) - 1;

/// Unpacked anchor value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Anchor {
    /// Index of the first block on the superblock-internal free list, or
    /// `max_count` when the list is empty.
    pub avail: u32,
    /// Number of blocks on that free list.
    pub count: u32,
    /// Superblock state.
    pub state: SbState,
}

impl Anchor {
    /// Pack into the 64-bit word stored in the descriptor.
    #[inline]
    pub fn pack(self) -> u64 {
        debug_assert!((self.avail as u64) <= AVAIL_MASK);
        debug_assert!((self.count as u64) <= COUNT_MASK);
        (self.avail as u64)
            | ((self.count as u64) << AVAIL_BITS)
            | ((self.state as u64) << (AVAIL_BITS + COUNT_BITS))
    }

    /// Unpack from the descriptor word.
    #[inline]
    pub fn unpack(raw: u64) -> Anchor {
        Anchor {
            avail: (raw & AVAIL_MASK) as u32,
            count: ((raw >> AVAIL_BITS) & COUNT_MASK) as u32,
            state: SbState::from_bits(raw >> (AVAIL_BITS + COUNT_BITS)),
        }
    }

    /// An anchor for a fully-allocated superblock (e.g. right after a
    /// cache fill reserved every block).
    #[inline]
    pub fn full(max_count: u32) -> Anchor {
        Anchor { avail: max_count, count: 0, state: SbState::Full }
    }

    /// An anchor for an entirely-free superblock whose free list is the
    /// natural chain 0 -> 1 -> ... (as recovery rebuilds it).
    #[inline]
    pub fn empty(max_count: u32) -> Anchor {
        Anchor { avail: 0, count: max_count, state: SbState::Empty }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        for avail in [0u32, 1, 8191, 8192, 100_000] {
            for count in [0u32, 1, 8192] {
                for state in [SbState::Empty, SbState::Partial, SbState::Full] {
                    let a = Anchor { avail, count, state };
                    assert_eq!(Anchor::unpack(a.pack()), a);
                }
            }
        }
    }

    #[test]
    fn zero_word_is_empty_anchor() {
        let a = Anchor::unpack(0);
        assert_eq!(a.state, SbState::Empty);
        assert_eq!(a.avail, 0);
        assert_eq!(a.count, 0);
    }

    #[test]
    fn full_constructor() {
        let a = Anchor::full(1024);
        assert_eq!(a.avail, 1024);
        assert_eq!(a.count, 0);
        assert_eq!(a.state, SbState::Full);
    }

    #[test]
    fn empty_constructor() {
        let a = Anchor::empty(8192);
        assert_eq!(a.avail, 0);
        assert_eq!(a.count, 8192);
        assert_eq!(a.state, SbState::Empty);
    }

    #[test]
    fn fields_do_not_interfere() {
        let a = Anchor { avail: 0x7FFF_FFFF, count: 0, state: SbState::Empty };
        let u = Anchor::unpack(a.pack());
        assert_eq!(u.count, 0);
        let b = Anchor { avail: 0, count: 0x7FFF_FFFF, state: SbState::Empty };
        let u = Anchor::unpack(b.pack());
        assert_eq!(u.avail, 0);
        assert_eq!(u.count, 0x7FFF_FFFF);
    }
}
