//! Persistent heap geometry (paper §4.2, Figure 2).
//!
//! A Ralloc heap is one contiguous pool divided into three regions:
//!
//! ```text
//! +--------------------+---------------------+------------------------+
//! | metadata (16 KiB)  | descriptor region   | superblock region      |
//! | dirty flag, roots, | 64 B per superblock | size/used + superblock |
//! | size classes, free | (1:64Ki ratio)      | array, 64 KiB units    |
//! | list head          |                     |                        |
//! +--------------------+---------------------+------------------------+
//! ```
//!
//! The *i*-th descriptor corresponds to the *i*-th superblock, so either
//! can be found from the other with shift/mask arithmetic. All layout is
//! a pure function of the pool length, so nothing about it needs to be
//! persisted beyond the pool length itself (stored in the header for
//! validation). **Bold** fields from the paper's Figure 2 — the only ones
//! flushed during normal operation — are: the dirty indicator, `used`,
//! the persistent roots, and each descriptor's size-class/block-size.
//!
//! Since v5 the three regions are *independently committed*: the
//! metadata region is always fully backed, while the descriptor and
//! superblock regions each carry their own persisted committed frontier
//! (`DESC_COMMITTED_LEN_OFF` / `COMMITTED_LEN_OFF`) and grow/shrink
//! through their own instances of the frontier protocol, rather than the
//! descriptor region being committed wholesale as a side effect of the
//! superblock frontier.

use crate::size_class::SB_SIZE;

/// Magic number identifying a Ralloc heap image ("RALLOC\0" + format
/// version). The low byte is the metadata-layout version and must be
/// bumped whenever the metadata region's layout changes, so a clean
/// image from an older build is re-initialized instead of silently
/// misread. v1: single partial-list head per class. v2: `MAX_SHARDS`
/// head slots per class. v3: reserve/commit capacity model — the header
/// records the *reserved* span in `POOL_LEN_OFF` and the persisted
/// committed frontier in `COMMITTED_LEN_OFF`. v4: persistent flight
/// recorder carved from the metadata region's tail slack. v5:
/// multi-region frontiers — the descriptor region gains its own
/// persisted committed frontier (`DESC_COMMITTED_LEN_OFF`) so descriptor
/// and superblock space grow and shrink independently instead of the
/// descriptor region being implicitly committed wholesale (this build).
pub const MAGIC: u64 = 0x52_41_4C_4C_4F_43_00_05;

/// The immediately-prior layout version. v4 used the same metadata field
/// offsets but had no descriptor frontier: the whole descriptor region
/// was implicitly committed (`min_committed == sb_off`) and the word at
/// `DESC_COMMITTED_LEN_OFF` was zeroed slack. A *clean* v4 image
/// therefore migrates in place: write the descriptor frontier word with
/// the v4 semantics (`sb_off`, everything committed), persist it, then
/// rewrite the magic. Dirty v4 images refuse — their recovery invariants
/// were established by a v4 build and must be replayed by one.
pub const MAGIC_V4: u64 = 0x52_41_4C_4C_4F_43_00_04;

/// Two versions back. v3's metadata fields are all at the same offsets
/// and the flight-ring slack was unused (and zeroed at init), so a
/// *clean* v3 image chain-migrates in place: initialize the ring header
/// (v3→v4), then the descriptor frontier word (v4→v5), then rewrite the
/// magic. Dirty v3 images still refuse.
pub const MAGIC_V3: u64 = 0x52_41_4C_4C_4F_43_00_03;

/// Descriptor stride in bytes (one cache line, paper §4.2).
pub const DESC_SIZE: usize = 64;

/// Number of persistent root slots (paper §4.2: 1024).
pub const NUM_ROOTS: usize = 1024;

// ---- metadata-region field offsets ----

/// Heap magic (u64).
pub const MAGIC_OFF: usize = 0;
/// *Reserved* pool length in bytes (u64) — the fixed virtual span the
/// geometry is computed from. An image's file may be shorter (only the
/// committed prefix is saved); reopening re-reserves this much.
pub const POOL_LEN_OFF: usize = 8;
/// Dirty indicator (u64: 1 = dirty). Persisted. Stands in for the paper's
/// robust `pthread_mutex_t`.
pub const DIRTY_OFF: usize = 16;
/// Superblock capacity (u64), for validation on reopen.
pub const MAX_SB_OFF: usize = 24;
/// Number of superblocks carved so far — the paper's `used` word.
/// Persisted (CAS + flush + fence on every expansion).
pub const USED_SB_OFF: usize = 32;
/// Superblock free-list head (`Counted`). Transient: reconstructed by
/// recovery, written back only by a clean shutdown.
pub const FREE_LIST_OFF: usize = 40;
/// Persisted committed frontier in bytes (u64): the pool prefix that is
/// backed and valid. Grows monotonically online (CAS-max + flush + fence)
/// *before* any `used` expansion into the newly committed space is
/// persisted, and shrinks only at quiescent points (close / end of
/// recovery: CAS-min + flush + fence, *after* the lowered `used` is
/// durable, then decommit) — so at every crash point a recovered `used`
/// lies within a recovered frontier. **Bold** (persisted online), once
/// per heap growth — growth is cold-path only; shrink is offline.
pub const COMMITTED_LEN_OFF: usize = 48;
/// Persisted *descriptor-region* committed frontier in bytes (u64, v5).
/// Bounds which descriptors are backed and usable, exactly as
/// `COMMITTED_LEN_OFF` bounds superblocks: grows online (CAS-max +
/// flush + fence) *before* any `used` expansion that needs the new
/// descriptors is persisted, shrinks only at quiescent points *after*
/// the lowered `used` is durable. Always within
/// `[desc_off, sb_off]`. **Bold** (persisted online), once per
/// descriptor-region growth. v4 images have zeroed slack here; the
/// clean-reopen migration writes `sb_off` (the v4 implicit semantics).
pub const DESC_COMMITTED_LEN_OFF: usize = 56;
/// Persistent roots: `NUM_ROOTS` u64 slots, each an offset+1 into the
/// superblock region (0 = null). Persisted on `set_root`.
pub const ROOTS_OFF: usize = 64;
/// Hard ceiling on partial-list shards per size class. The metadata
/// region reserves head slots for this many; the *live* shard count is a
/// runtime config (`RallocConfig::partial_shards`) clamped to it.
pub const MAX_SHARDS: usize = 16;
/// Per-class, per-shard partial-list heads (`Counted`),
/// `40 * MAX_SHARDS` slots. Transient: reset and rebuilt by recovery, so
/// the live shard count may change between runs.
pub const PARTIAL_HEADS_OFF: usize = ROOTS_OFF + NUM_ROOTS * 8;

/// Total metadata-region size (fixed, independent of heap size).
pub const META_SIZE: usize = 16 * 1024;

const _: () = assert!(PARTIAL_HEADS_OFF + 40 * MAX_SHARDS * 8 <= META_SIZE);

// ---- persistent flight-recorder ring (v4) ----
//
// The partial-list heads end at byte 13376, leaving 3008 bytes of
// metadata-region tail slack that every prior version zeroed and never
// touched. v4 carves the flight ring out of that slack, so the region
// geometry (and therefore every descriptor/superblock offset) is
// *identical* to v3 — which is what makes the clean-image migration a
// two-word rewrite instead of a region relocation.

/// Byte offset of the flight-ring header (64-byte aligned).
pub const FLIGHT_OFF: usize = PARTIAL_HEADS_OFF + 40 * MAX_SHARDS * 8;
/// Ring header size: magic + capacity + reserved words, one cache line.
pub const FLIGHT_HDR_SIZE: usize = 64;
/// Byte offset of flight record slot 0.
pub const FLIGHT_RECORDS_OFF: usize = FLIGHT_OFF + FLIGHT_HDR_SIZE;
/// One flight record: seq + checksum framing and a (kind, tid, t_ms, a, b)
/// payload. Two records per cache line; a slot never straddles lines.
pub const FLIGHT_REC_SIZE: usize = 32;
/// Ring capacity in records — everything that fits in the slack.
pub const FLIGHT_CAP: usize = (META_SIZE - FLIGHT_RECORDS_OFF) / FLIGHT_REC_SIZE;
/// Ring-header magic ("FLTREC" + version), at `FLIGHT_OFF`.
pub const FLIGHT_MAGIC: u64 = 0x46_4C_54_52_45_43_00_01;

const _: () = assert!(FLIGHT_OFF.is_multiple_of(64));
const _: () = assert!(FLIGHT_RECORDS_OFF + FLIGHT_CAP * FLIGHT_REC_SIZE <= META_SIZE);
const _: () = assert!(FLIGHT_CAP >= 64, "flight ring uselessly small");

/// Derived region offsets for a pool of a given length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometry {
    /// Total pool bytes.
    pub pool_len: usize,
    /// Capacity in superblocks.
    pub max_sb: usize,
    /// Byte offset of descriptor 0.
    pub desc_off: usize,
    /// Byte offset of superblock 0 (64 KiB-aligned offset).
    pub sb_off: usize,
}

impl Geometry {
    /// Compute geometry from a pool length. The superblock array starts at
    /// the first 64 KiB-aligned offset past the descriptors; `max_sb` is
    /// the largest capacity that fits.
    pub fn from_pool_len(pool_len: usize) -> Geometry {
        assert!(
            pool_len >= META_SIZE + SB_SIZE * 2,
            "pool too small for a Ralloc heap: {pool_len}"
        );
        // Solve max_sb: META + 64*max_sb rounded up to 64K + 64K*max_sb <= len.
        let mut max_sb = (pool_len - META_SIZE) / (DESC_SIZE + SB_SIZE);
        loop {
            let sb_off = (META_SIZE + max_sb * DESC_SIZE).next_multiple_of(SB_SIZE);
            if sb_off + max_sb * SB_SIZE <= pool_len {
                return Geometry { pool_len, max_sb, desc_off: META_SIZE, sb_off };
            }
            max_sb -= 1;
        }
    }

    /// Pool length needed for a superblock-region capacity of at least
    /// `capacity` bytes.
    pub fn pool_len_for_capacity(capacity: usize) -> usize {
        let sbs = capacity.div_ceil(SB_SIZE).max(2);
        let sb_off = (META_SIZE + sbs * DESC_SIZE).next_multiple_of(SB_SIZE);
        sb_off + sbs * SB_SIZE
    }

    // ---- reserve/commit views ----
    //
    // Geometry is a pure function of the *reserved* span, so the
    // desc↔sb shift/mask correspondence never changes as the heap grows;
    // the committed frontiers only bound how much of the descriptor and
    // superblock regions is currently backed. Since v5 the two regions
    // carry *independent* persisted frontiers: the superblock frontier
    // (`COMMITTED_LEN_OFF`) lives in `[sb_off, pool_len]` and the
    // descriptor frontier (`DESC_COMMITTED_LEN_OFF`) in
    // `[desc_off, sb_off]`, so neither is derived from the other through
    // the region ratio.

    /// The smallest legal *superblock-region* committed frontier: the
    /// superblock array's base offset (zero superblocks committed). Also
    /// the smallest physical pool prefix a heap image can have, since
    /// the metadata and descriptor regions precede the superblock array.
    #[inline]
    pub fn min_committed(&self) -> usize {
        self.sb_off
    }

    /// The smallest legal *descriptor-region* committed frontier: the
    /// descriptor array's base offset (zero descriptors committed).
    #[inline]
    pub fn min_desc_committed(&self) -> usize {
        self.desc_off
    }

    /// Number of descriptors fully covered by a descriptor-region
    /// frontier of `desc_frontier` bytes (clamped to capacity).
    #[inline]
    pub fn desc_committed_sb(&self, desc_frontier: usize) -> usize {
        (desc_frontier.saturating_sub(self.desc_off) / DESC_SIZE).min(self.max_sb)
    }

    /// The descriptor-region frontier (bytes) needed to back the first
    /// `sbs` descriptors. Always `<= sb_off` (the descriptor region's
    /// alignment slack before the superblock array is never needed).
    #[inline]
    pub fn desc_committed_len_for_sb(&self, sbs: usize) -> usize {
        debug_assert!(sbs <= self.max_sb);
        self.desc_off + sbs * DESC_SIZE
    }

    /// Number of superblocks fully covered by a committed frontier of
    /// `committed_len` bytes (clamped to capacity).
    #[inline]
    pub fn committed_sb(&self, committed_len: usize) -> usize {
        (committed_len.saturating_sub(self.sb_off) / SB_SIZE).min(self.max_sb)
    }

    /// The committed frontier (bytes) needed to back the first `sbs`
    /// superblocks.
    #[inline]
    pub fn committed_len_for_sb(&self, sbs: usize) -> usize {
        debug_assert!(sbs <= self.max_sb);
        self.sb_off + sbs * SB_SIZE
    }

    /// Byte offset of descriptor `i`.
    #[inline]
    pub fn desc(&self, i: usize) -> usize {
        debug_assert!(i < self.max_sb);
        self.desc_off + i * DESC_SIZE
    }

    /// Byte offset of superblock `i`.
    #[inline]
    pub fn sb(&self, i: usize) -> usize {
        debug_assert!(i < self.max_sb);
        self.sb_off + i * SB_SIZE
    }

    /// Map a byte offset inside the superblock region to its superblock
    /// index ("simple bit manipulation", paper §4.2).
    #[inline]
    pub fn sb_index_of(&self, off: usize) -> Option<usize> {
        if off < self.sb_off || off >= self.sb_off + self.max_sb * SB_SIZE {
            return None;
        }
        Some((off - self.sb_off) / SB_SIZE)
    }

    /// Byte offset of root slot `i`.
    #[inline]
    pub fn root(&self, i: usize) -> usize {
        debug_assert!(i < NUM_ROOTS);
        ROOTS_OFF + i * 8
    }

    /// Byte offset of the partial-list head for shard `shard` of `class`.
    #[inline]
    pub fn partial_head(&self, class: u32, shard: u32) -> usize {
        debug_assert!(class < 40);
        debug_assert!((shard as usize) < MAX_SHARDS);
        PARTIAL_HEADS_OFF + (class as usize * MAX_SHARDS + shard as usize) * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_disjoint_and_ordered() {
        let g = Geometry::from_pool_len(8 << 20);
        assert!(g.desc_off >= META_SIZE);
        assert!(g.sb_off >= g.desc_off + g.max_sb * DESC_SIZE);
        assert_eq!(g.sb_off % SB_SIZE, 0);
        assert!(g.sb_off + g.max_sb * SB_SIZE <= g.pool_len);
        assert!(g.max_sb >= 100);
    }

    #[test]
    fn capacity_round_trip() {
        for cap in [128 * 1024, 1 << 20, 10 << 20, 1 << 30] {
            let len = Geometry::pool_len_for_capacity(cap);
            let g = Geometry::from_pool_len(len);
            assert!(
                g.max_sb * SB_SIZE >= cap,
                "cap {cap}: got {} sbs",
                g.max_sb
            );
        }
    }

    #[test]
    fn desc_and_sb_correspondence() {
        let g = Geometry::from_pool_len(4 << 20);
        for i in 0..g.max_sb {
            let off = g.sb(i);
            assert_eq!(g.sb_index_of(off), Some(i));
            assert_eq!(g.sb_index_of(off + SB_SIZE - 1), Some(i));
            assert_eq!(g.desc(i), g.desc_off + i * DESC_SIZE);
        }
        assert_eq!(g.sb_index_of(0), None);
        assert_eq!(g.sb_index_of(g.sb_off - 1), None);
        assert_eq!(g.sb_index_of(g.sb_off + g.max_sb * SB_SIZE), None);
    }

    #[test]
    fn descriptor_ratio_matches_paper() {
        // 64 B descriptor per 64 KiB superblock = size/1024 (paper §4.3).
        assert_eq!(SB_SIZE / DESC_SIZE, 1024);
    }

    #[test]
    #[should_panic]
    fn tiny_pool_rejected() {
        Geometry::from_pool_len(1024);
    }

    #[test]
    fn committed_views_round_trip_and_clamp() {
        let g = Geometry::from_pool_len(64 << 20);
        assert_eq!(g.committed_sb(g.min_committed()), 0);
        assert_eq!(g.committed_sb(0), 0, "frontier below sb_off covers nothing");
        for sbs in [0usize, 1, 7, g.max_sb] {
            let len = g.committed_len_for_sb(sbs);
            assert_eq!(g.committed_sb(len), sbs);
            // A partially-covered superblock does not count.
            if sbs < g.max_sb {
                assert_eq!(g.committed_sb(len + SB_SIZE - 1), sbs);
            }
        }
        assert_eq!(g.committed_sb(usize::MAX), g.max_sb, "clamped to capacity");
        assert!(g.committed_len_for_sb(g.max_sb) <= g.pool_len, "full commit fits the pool");
    }

    #[test]
    fn flight_ring_fits_the_metadata_slack() {
        // The ring must start exactly where the partial heads end, stay
        // inside the metadata region, and keep slots cache-line interior.
        assert_eq!(FLIGHT_OFF, PARTIAL_HEADS_OFF + 40 * MAX_SHARDS * 8);
        assert_eq!(FLIGHT_OFF % 64, 0);
        assert_eq!(64 % FLIGHT_REC_SIZE, 0, "slots must tile cache lines");
        // (Ring-fits-the-slack and v3-slack-unused are compile-time
        // `const _` asserts next to the constants themselves.)
        // Versions differ only in the low byte of the magic.
        assert_eq!(MAGIC & !0xFF, MAGIC_V4 & !0xFF);
        assert_eq!(MAGIC & !0xFF, MAGIC_V3 & !0xFF);
        assert_eq!(MAGIC & 0xFF, 5);
        assert_eq!(MAGIC_V4 & 0xFF, 4);
        assert_eq!(MAGIC_V3 & 0xFF, 3);
    }

    #[test]
    fn desc_frontier_word_sits_in_the_header_gap() {
        // The descriptor frontier claims the previously-zeroed slack word
        // between the superblock frontier and the roots — which is what
        // makes the v4→v5 migration a two-word rewrite.
        assert_eq!(DESC_COMMITTED_LEN_OFF, COMMITTED_LEN_OFF + 8);
        const { assert!(DESC_COMMITTED_LEN_OFF + 8 <= ROOTS_OFF) };
    }

    #[test]
    fn desc_committed_views_round_trip_and_clamp() {
        let g = Geometry::from_pool_len(64 << 20);
        assert_eq!(g.desc_committed_sb(g.min_desc_committed()), 0);
        assert_eq!(g.desc_committed_sb(0), 0, "frontier below desc_off covers nothing");
        for sbs in [0usize, 1, 7, g.max_sb] {
            let len = g.desc_committed_len_for_sb(sbs);
            assert_eq!(g.desc_committed_sb(len), sbs);
            if sbs < g.max_sb {
                // A partially-covered descriptor does not count.
                assert_eq!(g.desc_committed_sb(len + DESC_SIZE - 1), sbs);
            }
        }
        assert_eq!(g.desc_committed_sb(usize::MAX), g.max_sb, "clamped to capacity");
        assert!(
            g.desc_committed_len_for_sb(g.max_sb) <= g.sb_off,
            "full descriptor commit fits before the superblock array"
        );
        // The two regions' frontier domains only meet at sb_off.
        assert!(g.min_desc_committed() < g.min_committed());
    }

    #[test]
    fn partial_shard_heads_are_disjoint_and_in_metadata() {
        let g = Geometry::from_pool_len(8 << 20);
        let mut seen = std::collections::HashSet::new();
        for class in 0..40u32 {
            for shard in 0..MAX_SHARDS as u32 {
                let off = g.partial_head(class, shard);
                assert!(off >= PARTIAL_HEADS_OFF && off + 8 <= META_SIZE);
                assert_eq!(off % 8, 0);
                assert!(seen.insert(off), "head slot reused: class {class} shard {shard}");
            }
        }
    }
}
