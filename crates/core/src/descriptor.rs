//! Descriptor accessors (paper §4.2).
//!
//! A descriptor is 32 bytes of state padded to a 64-byte cache line:
//!
//! ```text
//! +0   anchor        AtomicU64   (transient: reconstructed by recovery)
//! +8   next_free     AtomicU64   (transient: superblock free-list link)
//! +16  next_partial  AtomicU64   (transient: partial-list link)
//! +24  block_size    u64         (PERSISTED at superblock (re)use)
//! +32  size_class    u32  \  one (PERSISTED at superblock (re)use)
//! +36  max_count     u32  /  u64 (transient cache of SB_SIZE/block_size)
//! +40  ..64          padding
//! ```
//!
//! `size_class`/`block_size` are the only fields flushed online; they make
//! every block's size recoverable, which is what lets every other piece of
//! metadata be rebuilt offline (paper §4, innovation 1). List links store
//! descriptor *indices* (offset-based, remap-safe), not addresses.

use std::sync::atomic::{AtomicU64, Ordering};

use nvm::PmemPool;

use crate::anchor::Anchor;
use crate::layout::Geometry;
use crate::size_class::{is_small_class, CLASS_CONTINUATION, SB_SIZE};

const ANCHOR_OFF: usize = 0;
const NEXT_FREE_OFF: usize = 8;
const NEXT_PARTIAL_OFF: usize = 16;
const BLOCK_SIZE_OFF: usize = 24;
const CLASS_WORD_OFF: usize = 32;

/// A borrowed view of descriptor `idx` within a heap pool.
#[derive(Clone, Copy)]
pub struct Desc<'a> {
    pool: &'a PmemPool,
    /// Byte offset of the descriptor in the pool.
    off: usize,
    /// Descriptor (= superblock) index.
    pub idx: u32,
}

impl<'a> Desc<'a> {
    /// View descriptor `idx`.
    #[inline]
    pub fn new(pool: &'a PmemPool, geo: &Geometry, idx: u32) -> Desc<'a> {
        Desc { pool, off: geo.desc(idx as usize), idx }
    }

    /// The anchor word.
    #[inline]
    pub fn anchor_word(&self) -> &'a AtomicU64 {
        // SAFETY: in-bounds, 8-aligned by layout.
        unsafe { self.pool.atomic_u64(self.off + ANCHOR_OFF) }
    }

    /// Load the unpacked anchor.
    #[inline]
    pub fn anchor(&self, order: Ordering) -> Anchor {
        Anchor::unpack(self.anchor_word().load(order))
    }

    /// Store the anchor (used only when the superblock is owned
    /// exclusively: fresh carve, cache fill after reservation, recovery).
    #[inline]
    pub fn set_anchor(&self, a: Anchor, order: Ordering) {
        self.anchor_word().store(a.pack(), order)
    }

    /// CAS the anchor.
    #[inline]
    pub fn cas_anchor(&self, current: Anchor, new: Anchor) -> Result<(), Anchor> {
        self.anchor_word()
            .compare_exchange(current.pack(), new.pack(), Ordering::AcqRel, Ordering::Acquire)
            .map(|_| ())
            .map_err(Anchor::unpack)
    }

    /// Superblock free-list link (descriptor index + 1; 0 = end).
    #[inline]
    pub fn next_free(&self) -> &'a AtomicU64 {
        // SAFETY: in-bounds, 8-aligned.
        unsafe { self.pool.atomic_u64(self.off + NEXT_FREE_OFF) }
    }

    /// Partial-list link (descriptor index + 1; 0 = end).
    #[inline]
    pub fn next_partial(&self) -> &'a AtomicU64 {
        // SAFETY: in-bounds, 8-aligned.
        unsafe { self.pool.atomic_u64(self.off + NEXT_PARTIAL_OFF) }
    }

    /// Block size currently persisted for this superblock. For class 0
    /// this is the byte size of the whole large allocation.
    #[inline]
    pub fn block_size(&self) -> u64 {
        // Reads race only with `set_size`, which happens strictly before
        // the superblock is published; an atomic relaxed load keeps the
        // access well-defined.
        // SAFETY: in-bounds, 8-aligned.
        unsafe { self.pool.atomic_u64(self.off + BLOCK_SIZE_OFF) }.load(Ordering::Relaxed)
    }

    /// Size class currently persisted for this superblock.
    #[inline]
    pub fn size_class(&self) -> u32 {
        let w = // SAFETY: in-bounds, 8-aligned.
            unsafe { self.pool.atomic_u64(self.off + CLASS_WORD_OFF) }.load(Ordering::Relaxed);
        w as u32
    }

    /// Transient cached blocks-per-superblock.
    #[inline]
    pub fn max_count(&self) -> u32 {
        let w = // SAFETY: in-bounds, 8-aligned.
            unsafe { self.pool.atomic_u64(self.off + CLASS_WORD_OFF) }.load(Ordering::Relaxed);
        (w >> 32) as u32
    }

    /// Set and persist the size identity of this superblock. Must happen
    /// before any block of the superblock can be observed by another
    /// thread or by a post-crash trace — this is the one flush+fence on
    /// the (slow) allocation path (paper §4, innovation 1).
    ///
    /// When `transient` (LRMalloc mode) the flush/fence is skipped.
    pub fn set_size(&self, class: u32, block_size: u64, max_count: u32, transient: bool) {
        // SAFETY: in-bounds, 8-aligned; exclusive ownership during init.
        unsafe {
            self.pool
                .atomic_u64(self.off + BLOCK_SIZE_OFF)
                .store(block_size, Ordering::Relaxed);
            self.pool
                .atomic_u64(self.off + CLASS_WORD_OFF)
                .store((class as u64) | ((max_count as u64) << 32), Ordering::Release);
        }
        if !transient {
            self.pool.flush(self.off + BLOCK_SIZE_OFF, 16);
            self.pool.fence();
        }
    }

    /// Validate the persisted size identity, as recovery must: a crash may
    /// leave garbage classes in descriptors that were carved but never
    /// initialized. Returns the interpretation recovery should use.
    pub fn classify(&self, geo: &Geometry, used_sb: usize) -> DescKind {
        // `geo` is carried for future validations (e.g. per-heap class
        // tables).
        let _ = geo;
        let class = self.size_class();
        let bs = self.block_size();
        if class == CLASS_CONTINUATION {
            return DescKind::Continuation;
        }
        if class == 0 {
            // Large head: size must be positive and fit in the used region.
            let span = (bs as usize).div_ceil(SB_SIZE);
            if bs > 0 && span > 0 && (self.idx as usize) + span <= used_sb {
                return DescKind::LargeHead { span };
            }
            return DescKind::Invalid;
        }
        if is_small_class(class) && bs == crate::size_class::class_block_size(class) as u64 {
            DescKind::Small { class }
        } else {
            DescKind::Invalid
        }
    }
}

/// Recovery-time interpretation of a descriptor's persisted fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DescKind {
    /// A superblock of small blocks of the given class.
    Small { class: u32 },
    /// First superblock of a large allocation spanning `span` superblocks.
    LargeHead { span: usize },
    /// Interior superblock of some (possibly stale) large allocation.
    Continuation,
    /// Garbage (carved but never initialized, or torn): treat as free.
    Invalid,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anchor::SbState;
    use nvm::Mode;

    fn test_pool() -> (PmemPool, Geometry) {
        let len = Geometry::pool_len_for_capacity(1 << 20);
        let pool = PmemPool::new(len, Mode::Direct);
        let geo = Geometry::from_pool_len(pool.len());
        (pool, geo)
    }

    #[test]
    fn anchor_roundtrip_through_desc() {
        let (pool, geo) = test_pool();
        let d = Desc::new(&pool, &geo, 3);
        let a = Anchor { avail: 7, count: 100, state: SbState::Partial };
        d.set_anchor(a, Ordering::Release);
        assert_eq!(d.anchor(Ordering::Acquire), a);
    }

    #[test]
    fn cas_anchor_succeeds_and_fails() {
        let (pool, geo) = test_pool();
        let d = Desc::new(&pool, &geo, 0);
        let a0 = d.anchor(Ordering::Acquire);
        let a1 = Anchor { avail: 1, count: 2, state: SbState::Partial };
        d.cas_anchor(a0, a1).unwrap();
        let err = d.cas_anchor(a0, a1).unwrap_err();
        assert_eq!(err, a1);
    }

    #[test]
    #[cfg_attr(feature = "telemetry-off", ignore = "asserts telemetry counters, which are compiled out")]
    fn set_size_persists_and_reads_back() {
        let (pool, geo) = test_pool();
        let d = Desc::new(&pool, &geo, 5);
        d.set_size(8, 64, 1024, false);
        assert_eq!(d.size_class(), 8);
        assert_eq!(d.block_size(), 64);
        assert_eq!(d.max_count(), 1024);
        assert!(pool.stats().snapshot().fences >= 1);
    }

    #[test]
    fn transient_mode_skips_flush() {
        let (pool, geo) = test_pool();
        let before = pool.stats().snapshot();
        Desc::new(&pool, &geo, 1).set_size(2, 16, 4096, true);
        let after = pool.stats().snapshot();
        assert_eq!(after.fences, before.fences);
        assert_eq!(after.flush_calls, before.flush_calls);
    }

    #[test]
    fn classify_validates() {
        let (pool, geo) = test_pool();
        let used = 10usize;
        // Valid small.
        let d = Desc::new(&pool, &geo, 0);
        d.set_size(1, 8, 8192, true);
        assert_eq!(d.classify(&geo, used), DescKind::Small { class: 1 });
        // Small class with wrong size -> invalid.
        let d = Desc::new(&pool, &geo, 1);
        d.set_size(1, 16, 4096, true);
        assert_eq!(d.classify(&geo, used), DescKind::Invalid);
        // Zeroed descriptor -> class 0 with size 0 -> invalid.
        let d = Desc::new(&pool, &geo, 2);
        assert_eq!(d.classify(&geo, used), DescKind::Invalid);
        // Large head spanning 2 superblocks.
        let d = Desc::new(&pool, &geo, 3);
        d.set_size(0, (SB_SIZE + 10) as u64, 0, true);
        assert_eq!(d.classify(&geo, used), DescKind::LargeHead { span: 2 });
        // Large head overflowing the used region -> invalid.
        let d = Desc::new(&pool, &geo, 9);
        d.set_size(0, (SB_SIZE * 4) as u64, 0, true);
        assert_eq!(d.classify(&geo, used), DescKind::Invalid);
        // Continuation sentinel.
        let d = Desc::new(&pool, &geo, 4);
        d.set_size(CLASS_CONTINUATION, 0, 0, true);
        assert_eq!(d.classify(&geo, used), DescKind::Continuation);
    }
}
