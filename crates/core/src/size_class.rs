//! Size classes (paper §4.2).
//!
//! Ralloc inherits LRMalloc's segregated-fit organization: 39 small size
//! classes covering 8 B..14 KiB, plus class 0 for large allocations that
//! are carved directly out of the superblock region in 64 KiB units. Every
//! superblock holds blocks of exactly one class, which is what lets the
//! recovery GC infer the size of any block from one persisted per-
//! superblock field — the key to a flush-free `malloc` fast path.

/// Superblock size: 64 KiB, as in the paper.
pub const SB_SIZE: usize = 64 * 1024;

/// Largest "small" block; anything bigger goes through the large path.
pub const MAX_SMALL: usize = 14336;

/// Number of small classes (1..=39). Class 0 is the large class.
pub const NUM_SMALL_CLASSES: usize = 39;

/// Total classes including the large class 0.
pub const NUM_CLASSES: usize = NUM_SMALL_CLASSES + 1;

/// Sentinel stored in a descriptor's `size_class` field for superblocks
/// that are interior to a multi-superblock (large) allocation. Persisted
/// at large-allocation time so that post-crash conservative tracing never
/// interprets stale small-class metadata *inside* a live large block as a
/// separate block (see `recovery` module docs).
pub const CLASS_CONTINUATION: u32 = u32::MAX;

/// Block size for each class; index 0 is the large class (no fixed size).
///
/// Spacing mirrors LRMalloc/jemalloc: ×8 steps up to 64, then four steps
/// per power-of-two group.
pub const CLASS_SIZES: [u32; NUM_CLASSES] = [
    0, // class 0: large
    8, 16, 24, 32, 40, 48, 56, 64, // ×8
    80, 96, 112, 128, // ×16
    160, 192, 224, 256, // ×32
    320, 384, 448, 512, // ×64
    640, 768, 896, 1024, // ×128
    1280, 1536, 1792, 2048, // ×256
    2560, 3072, 3584, 4096, // ×512
    5120, 6144, 7168, 8192, // ×1024
    10240, 12288, 14336, // ×2048
];

/// Lookup table from `ceil(size/8)` to class index, built at compile time.
const LUT_LEN: usize = MAX_SMALL / 8 + 1;
static SIZE_TO_CLASS: [u8; LUT_LEN] = build_lut();

const fn build_lut() -> [u8; LUT_LEN] {
    let mut lut = [0u8; LUT_LEN];
    let mut class = 1usize;
    let mut i = 0usize; // i indexes ceil(size/8); size = i*8
    while i < LUT_LEN {
        while CLASS_SIZES[class] < (i * 8) as u32 {
            class += 1;
        }
        lut[i] = class as u8;
        i += 1;
    }
    lut
}

/// The smallest class whose blocks hold `size` bytes. `None` if `size`
/// needs the large path. `size == 0` is served from the 8-byte class,
/// giving each zero-size allocation a unique address like C `malloc(0)`.
#[inline]
pub fn size_class_of(size: usize) -> Option<u32> {
    if size > MAX_SMALL {
        return None;
    }
    let idx = size.div_ceil(8);
    Some(SIZE_TO_CLASS[idx] as u32)
}

/// Block size of a class (small classes only).
#[inline]
pub fn class_block_size(class: u32) -> u32 {
    debug_assert!((1..NUM_CLASSES as u32).contains(&class));
    CLASS_SIZES[class as usize]
}

/// Blocks per superblock for a small class.
#[inline]
pub fn class_max_count(class: u32) -> u32 {
    (SB_SIZE as u32) / class_block_size(class)
}

/// True if `class` names a valid *small* class.
#[inline]
pub fn is_small_class(class: u32) -> bool {
    (1..NUM_CLASSES as u32).contains(&class)
}

/// Thread-cache bin capacity for a small class, in blocks: exactly one
/// superblock's population, LRMalloc's CacheBin sizing. A fill that takes
/// every block of a superblock always fits, a full bin flushed back can
/// empty a superblock, and a tight malloc/free pair oscillates inside the
/// bin without ever touching a superblock anchor.
#[inline]
pub fn cache_capacity(class: u32) -> u32 {
    class_max_count(class)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_39_small_classes() {
        assert_eq!(CLASS_SIZES.len(), 40);
        assert_eq!(CLASS_SIZES[1], 8);
        assert_eq!(CLASS_SIZES[39], MAX_SMALL as u32);
    }

    #[test]
    fn sizes_strictly_increasing() {
        for w in CLASS_SIZES[1..].windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn all_sizes_8_aligned() {
        for &s in &CLASS_SIZES[1..] {
            assert_eq!(s % 8, 0, "class size {s} not 8-aligned");
        }
    }

    #[test]
    fn class_of_exact_sizes() {
        for (i, &s) in CLASS_SIZES.iter().enumerate().skip(1) {
            assert_eq!(size_class_of(s as usize), Some(i as u32), "size {s}");
        }
    }

    #[test]
    fn class_of_is_tight() {
        // Every size maps to the smallest class that fits.
        for size in 0..=MAX_SMALL {
            let c = size_class_of(size).unwrap();
            assert!(class_block_size(c) as usize >= size);
            if c > 1 {
                assert!(
                    (class_block_size(c - 1) as usize) < size,
                    "size {size} should use class {}",
                    c - 1
                );
            }
        }
    }

    #[test]
    fn large_sizes_rejected() {
        assert_eq!(size_class_of(MAX_SMALL + 1), None);
        assert_eq!(size_class_of(1 << 20), None);
    }

    #[test]
    fn zero_size_uses_smallest_class() {
        assert_eq!(size_class_of(0), Some(1));
    }

    #[test]
    fn max_count_sane() {
        assert_eq!(class_max_count(1), 8192); // 64K / 8
        assert_eq!(class_max_count(8), 1024); // 64K / 64
        assert_eq!(class_max_count(39), 4); // 64K / 14336 = 4.57 -> 4
        for c in 1..NUM_CLASSES as u32 {
            let mc = class_max_count(c);
            assert!(mc >= 4, "class {c} has only {mc} blocks");
            assert!(mc as usize * class_block_size(c) as usize <= SB_SIZE);
        }
    }

    #[test]
    fn cache_capacity_holds_one_superblock() {
        for c in 1..NUM_CLASSES as u32 {
            assert_eq!(cache_capacity(c), class_max_count(c));
            // A bin never exceeds one superblock's worth of memory.
            assert!(cache_capacity(c) as usize * class_block_size(c) as usize <= SB_SIZE);
        }
    }

    #[test]
    fn continuation_sentinel_is_not_a_class() {
        assert!(!is_small_class(CLASS_CONTINUATION));
        assert!(!is_small_class(0));
        assert!(is_small_class(1));
        assert!(is_small_class(39));
        assert!(!is_small_class(40));
    }
}
