//! Scratch probe: where does the `RallocGlobal` overhead over the raw
//! handle live — the alloc side or the dealloc side? Run with
//! `cargo run --release -p galloc --example surface_probe`.

use std::alloc::{GlobalAlloc, Layout};
use std::time::Instant;

fn time(label: &str, mut pair: impl FnMut()) {
    // Warm.
    for _ in 0..100_000 {
        pair();
    }
    let n = 20_000_000u64;
    let t0 = Instant::now();
    for _ in 0..n {
        pair();
    }
    let dt = t0.elapsed();
    println!("{label:28} {:6.2} Mops/s  ({:.2} ns/pair)", n as f64 / dt.as_secs_f64() / 1e6, dt.as_nanos() as f64 / n as f64);
}

fn main() {
    let heap = galloc::heap().expect("pool");
    let global = galloc::RallocGlobal;
    let layout = Layout::from_size_align(64, 8).unwrap();
    for _ in 0..3 {
        time("handle/handle", || {
            let p = heap.malloc(64);
            std::hint::black_box(p);
            heap.free(p);
        });
        time("global/global", || unsafe {
            let p = global.alloc(layout);
            std::hint::black_box(p);
            global.dealloc(p, layout);
        });
        time("global-alloc/handle-free", || unsafe {
            let p = global.alloc(layout);
            std::hint::black_box(p);
            heap.free(p);
        });
        time("handle-malloc/global-free", || unsafe {
            let p = heap.malloc(64);
            std::hint::black_box(p);
            global.dealloc(p, layout);
        });
        println!("---");
    }
    // Keep the objdump anchors alive.
    probe_global_pair(&global, layout);
    probe_handle_pair(heap);
}

// objdump anchors: the exact per-op sequences, un-inlined.
#[no_mangle]
#[inline(never)]
pub fn probe_global_pair(g: &galloc::RallocGlobal, layout: Layout) {
    unsafe {
        let p = g.alloc(layout);
        std::hint::black_box(p);
        g.dealloc(p, layout);
    }
}

#[no_mangle]
#[inline(never)]
pub fn probe_handle_pair(h: &ralloc::Ralloc) {
    let p = h.malloc(64);
    std::hint::black_box(p);
    h.free(p);
}
