//! Edge semantics of [`galloc::RallocGlobal`] with the allocator
//! actually *registered* — every `Vec`/`Box`/`String` in this test
//! binary, including the harness's own, runs on the persistent pool.

use std::alloc::{GlobalAlloc, Layout};
use std::cell::RefCell;

#[global_allocator]
static GLOBAL: galloc::RallocGlobal = galloc::RallocGlobal;

#[test]
fn the_pool_is_live_and_serves_ordinary_allocations() {
    let b = Box::new(0xFEED_FACE_u64);
    let heap = galloc::heap().expect("pool must have initialized");
    assert!(
        heap.contains(&*b as *const u64 as *const u8),
        "Box payload not served from the pool"
    );
    assert_eq!(*b, 0xFEED_FACE);
}

#[test]
fn zero_size_allocations_are_unique_aligned_and_freeable() {
    for align in [1usize, 8, 16, 64] {
        let layout = Layout::from_size_align(0, align).unwrap();
        // SAFETY: layouts are valid; this impl documents zero-size
        // support (C malloc(0) semantics: unique non-null pointer).
        unsafe {
            let a = GLOBAL.alloc(layout);
            let b = GLOBAL.alloc(layout);
            assert!(!a.is_null() && !b.is_null());
            assert_ne!(a, b, "zero-size allocations must be distinct");
            assert_eq!(a as usize % align, 0);
            assert_eq!(b as usize % align, 0);
            GLOBAL.dealloc(a, layout);
            GLOBAL.dealloc(b, layout);
        }
    }
}

#[test]
fn oversized_alignments_are_honored() {
    for (size, align) in [(300usize, 128usize), (1, 256), (4096, 4096), (100_000, 1 << 16)] {
        let layout = Layout::from_size_align(size, align).unwrap();
        // SAFETY: valid layout; block is written within its span.
        unsafe {
            let p = GLOBAL.alloc(layout);
            assert!(!p.is_null(), "size {size} align {align}");
            assert_eq!(p as usize % align, 0, "size {size} align {align} misaligned");
            std::ptr::write_bytes(p, 0xC3, size);
            assert_eq!(*p, 0xC3);
            assert_eq!(*p.add(size - 1), 0xC3);
            GLOBAL.dealloc(p, layout);
        }
    }

    #[repr(align(512))]
    struct Big([u8; 600]);
    let b = Box::new(Big([7; 600]));
    assert_eq!(&*b as *const Big as usize % 512, 0);
    assert!(b.0.iter().all(|&x| x == 7));
}

#[test]
fn realloc_shrinks_and_grows_in_place_within_the_block_then_copies() {
    let layout = Layout::from_size_align(100, 8).unwrap();
    // SAFETY: layouts track each block's current size throughout.
    unsafe {
        let p = GLOBAL.alloc(layout);
        assert!(!p.is_null());
        let usable = galloc::pool_usable_size(galloc::heap().unwrap(), p, 8);
        assert!(usable >= 100, "class block must cover the request");
        for i in 0..100 {
            *p.add(i) = i as u8;
        }

        // Shrink: always in place (the class block still covers it).
        let q = GLOBAL.realloc(p, layout, 40);
        assert_eq!(q, p, "shrink must not move the block");

        // Grow back within the block's usable span: still in place.
        let layout40 = Layout::from_size_align(40, 8).unwrap();
        let r = GLOBAL.realloc(q, layout40, usable);
        assert_eq!(r, p, "grow within usable span must not move the block");
        for i in 0..40 {
            assert_eq!(*r.add(i), i as u8, "in-place realloc lost byte {i}");
        }

        // Grow past the block: must move and copy.
        let layout_usable = Layout::from_size_align(usable, 8).unwrap();
        let s = GLOBAL.realloc(r, layout_usable, usable + 8192);
        assert!(!s.is_null());
        assert_ne!(s, p, "grow past the block must relocate");
        for i in 0..40 {
            assert_eq!(*s.add(i), i as u8, "copying realloc lost byte {i}");
        }
        GLOBAL.dealloc(s, Layout::from_size_align(usable + 8192, 8).unwrap());
    }
}

#[test]
fn alloc_zeroed_scrubs_recycled_persistent_blocks() {
    let layout = Layout::from_size_align(256, 8).unwrap();
    // SAFETY: valid layout, writes within span.
    unsafe {
        // Dirty a block and recycle it: the thread cache hands the same
        // block back LIFO, stale persistent bytes and all.
        let dirty = GLOBAL.alloc(layout);
        assert!(!dirty.is_null());
        std::ptr::write_bytes(dirty, 0xFF, 256);
        GLOBAL.dealloc(dirty, layout);

        let z = GLOBAL.alloc_zeroed(layout);
        assert!(!z.is_null());
        assert_eq!(z, dirty, "LIFO cache should recycle the dirtied block");
        for i in 0..256 {
            assert_eq!(*z.add(i), 0, "alloc_zeroed leaked stale byte at {i}");
        }
        GLOBAL.dealloc(z, layout);
    }
}

struct AllocsOnDrop;

impl Drop for AllocsOnDrop {
    fn drop(&mut self) {
        // Runs inside TLS teardown: this thread's cache store may
        // already be gone, so these allocations exercise the transient
        // one-shot cache-set fallback.
        let v: Vec<u64> = (0..2048).collect();
        assert_eq!(v[2047], 2047);
        let s = format!("teardown {}", v.len());
        assert!(s.ends_with("2048"));
    }
}

thread_local! {
    static FIRST: RefCell<Option<AllocsOnDrop>> = const { RefCell::new(None) };
    static HELD: RefCell<Vec<Vec<u8>>> = const { RefCell::new(Vec::new()) };
}

#[test]
fn allocation_during_tls_teardown_survives() {
    let t = std::thread::spawn(|| {
        FIRST.with(|c| *c.borrow_mut() = Some(AllocsOnDrop));
        // Freeing during teardown too: blocks cached by this thread are
        // drained through the same fallback.
        HELD.with(|h| {
            let mut held = h.borrow_mut();
            for i in 0..64 {
                held.push(vec![i as u8; 1024]);
            }
        });
        let warm: Vec<u8> = vec![9; 4096];
        assert_eq!(warm[4095], 9);
    });
    t.join().expect("TLS-teardown allocations must not panic");
}

#[test]
fn cross_thread_churn_stays_coherent() {
    let (tx, rx) = std::sync::mpsc::channel::<Vec<u8>>();
    let consumer = std::thread::spawn(move || {
        let mut total = 0usize;
        while let Ok(v) = rx.recv() {
            let fill = v[0];
            assert!(v.iter().all(|&b| b == fill), "cross-thread payload corrupted");
            total += v.len();
            drop(v); // freed on a different thread than it was malloc'd
        }
        total
    });
    let mut sent = 0usize;
    for round in 0..500usize {
        let size = 64 + (round * 37) % 3000;
        tx.send(vec![(round % 251) as u8; size]).unwrap();
        sent += size;
    }
    drop(tx);
    assert_eq!(consumer.join().unwrap(), sent);
}
