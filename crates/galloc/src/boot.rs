//! Allocation of last resort for the C ABI (`crates/capi`).
//!
//! Under `LD_PRELOAD`, the interposed `malloc` **is** libc's `malloc`:
//! there is no [`std::alloc::System`] to fall back on — calling it would
//! recurse straight back into the interposer. Pre-init and re-entrant
//! allocations there are served instead by:
//!
//! * a fixed static **bump arena** (lock-free, frees are no-ops): small
//!   allocations made while the pool is still being built — `env`
//!   strings, the heap's own shard vectors, early `ld.so`/libc startup
//!   allocations. Bounded and never reclaimed; the arena is sized so
//!   real programs use a few hundred KiB of it at most.
//! * raw **anonymous `mmap`** ([`nvm::sys`], direct syscalls — no libc
//!   allocation anywhere on the path) for anything the arena cannot
//!   hold. The C ABI layer prefixes each mapping with its length so
//!   `free` can `munmap` it.
//!
//! The Rust `#[global_allocator]` surface ([`crate::RallocGlobal`])
//! does not use this module — it can and does fall back to `System`.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Bump-arena capacity. Generous: pool construction plus libc startup
/// churn is well under 1 MiB; the rest is headroom for programs that
/// allocate heavily inside TLS destructors after the pool closes.
pub const ARENA_SIZE: usize = 4 << 20;

#[repr(C, align(64))]
struct Arena(UnsafeCell<[u8; ARENA_SIZE]>);

// SAFETY: handed out in disjoint bump-allocated chunks guarded by the
// atomic cursor; the backing cells are never accessed wholesale.
unsafe impl Sync for Arena {}

static ARENA: Arena = Arena(UnsafeCell::new([0; ARENA_SIZE]));
static CURSOR: AtomicUsize = AtomicUsize::new(0);

/// High-water mark of arena usage, for diagnostics.
pub fn arena_used() -> usize {
    CURSOR.load(Ordering::Relaxed).min(ARENA_SIZE)
}

/// Bump-allocate from the static arena; null once it is exhausted.
/// `align` must be a power of two. Frees are no-ops (bounded leak by
/// construction — this only serves bootstrap and re-entrant paths).
pub fn arena_alloc(size: usize, align: usize) -> *mut u8 {
    let base = ARENA.0.get() as usize;
    loop {
        let cur = CURSOR.load(Ordering::Relaxed);
        let start = match (base + cur).checked_add(align - 1) {
            Some(x) => (x & !(align - 1)) - base,
            None => return std::ptr::null_mut(),
        };
        let end = match start.checked_add(size) {
            Some(e) if e <= ARENA_SIZE => e,
            _ => return std::ptr::null_mut(),
        };
        if CURSOR
            .compare_exchange_weak(cur, end, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
        {
            return (base + start) as *mut u8;
        }
    }
}

/// True if `ptr` points into the static arena (its frees are no-ops).
pub fn arena_contains(ptr: *const u8) -> bool {
    let base = ARENA.0.get() as usize;
    (base..base + ARENA_SIZE).contains(&(ptr as usize))
}

/// Map `len` bytes of fresh anonymous memory (page-granular), bypassing
/// libc entirely. Null on failure or on hosts without the raw mmap
/// layer (non-x86_64: [`nvm::sys`] returns `Unsupported`).
pub fn map_pages(len: usize) -> *mut u8 {
    // SAFETY: fresh private anonymous mapping, no address hint.
    unsafe {
        nvm::sys::mmap(
            std::ptr::null_mut(),
            len,
            nvm::sys::PROT_READ | nvm::sys::PROT_WRITE,
            nvm::sys::MAP_PRIVATE | nvm::sys::MAP_ANONYMOUS,
            -1,
            0,
        )
    }
    .unwrap_or(std::ptr::null_mut())
}

/// Unmap a [`map_pages`] mapping.
///
/// # Safety
/// `(ptr, len)` must be exactly a live mapping returned by [`map_pages`].
pub unsafe fn unmap_pages(ptr: *mut u8, len: usize) {
    // SAFETY: per fn contract.
    let _ = unsafe { nvm::sys::munmap(ptr, len) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_bumps_aligned_disjoint_chunks() {
        let a = arena_alloc(100, 8);
        let b = arena_alloc(100, 64);
        assert!(!a.is_null() && !b.is_null());
        assert_eq!(b as usize % 64, 0);
        assert!(arena_contains(a) && arena_contains(b));
        // Disjoint: writing one never touches the other.
        // SAFETY: both are live 100-byte chunks.
        unsafe {
            std::ptr::write_bytes(a, 0x11, 100);
            std::ptr::write_bytes(b, 0x22, 100);
            assert_eq!(*a, 0x11);
        }
        assert!(!arena_contains(std::ptr::null()));
        assert!(arena_used() >= 200);
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn map_pages_roundtrip() {
        let p = map_pages(8192);
        assert!(!p.is_null());
        // SAFETY: fresh 8 KiB mapping.
        unsafe {
            std::ptr::write_bytes(p, 0x5A, 8192);
            assert_eq!(*p.add(8191), 0x5A);
            unmap_pages(p, 8192);
        }
    }
}
