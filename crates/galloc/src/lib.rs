//! Drop-in `#[global_allocator]` surface over the Ralloc persistent heap.
//!
//! ```ignore
//! use galloc::RallocGlobal;
//!
//! #[global_allocator]
//! static ALLOC: RallocGlobal = RallocGlobal;
//! ```
//!
//! Every `Box`, `Vec`, `String` — the whole Rust allocation surface — is
//! then served from one process-wide Ralloc pool. The pool is created
//! lazily on the first allocation:
//!
//! * `GALLOC_POOL=<path>` opens (or creates) a durable heap file via
//!   [`Ralloc::open_file`], recovering it first if it is dirty, and
//!   registers an `atexit` handler that closes it cleanly.
//! * Otherwise the pool is anonymous and transient (the paper's LRMalloc
//!   mode: no flushes, nothing to recover) — a plain fast DRAM allocator.
//! * `GALLOC_CAP=<bytes>` (with `K`/`M`/`G` suffixes) sets the reserved
//!   capacity; the committed footprint starts at a few superblocks and
//!   grows on demand through the v5 per-region frontier protocol.
//!
//! ## Why a global allocator is harder than a handle
//!
//! The handle API (`Ralloc::malloc`) can assume it is *not* the allocator
//! its own implementation uses. A `#[global_allocator]` cannot: the
//! heap's transient metadata (thread cache sets, bin slot arrays, shard
//! vectors) is allocated with Rust's global allocator — i.e. through
//! *this very type*. Three mechanisms break the recursion:
//!
//! 1. **A state machine** ([`UNINIT`]→[`BUSY`]→[`READY`]/[`FAILED`]):
//!    while the pool is being built (`BUSY`), every allocation — notably
//!    the builder's own — is served by [`System`].
//! 2. **A re-entrancy flag** (const-initialized thread-local, so it is
//!    accessible even during thread teardown): while a pool operation is
//!    in flight on this thread, nested allocations go to [`System`].
//! 3. **Routing on `dealloc`** by [`Ralloc::contains`]: pool blocks go
//!    back to the pool, everything else to [`System`]. The two never
//!    mix because (1) and (2) guarantee internal DRAM is never carved
//!    from the pool.
//!
//! Allocations during TLS destructors (a `thread_local` with a `Drop`
//! that frees or allocates) are served too: the heap's cache layer falls
//! back to a transient one-shot cache set once this thread's TLS store
//! is gone, and the flag/fast-slot thread-locals are const-initialized
//! `Cell`s with no destructor of their own.
//!
//! ## Alignment
//!
//! Superblock starts are 64-byte aligned absolute addresses and class
//! block sizes are multiples of 8, so:
//!
//! * `align <= 64`: request `round_up(size, align)`. Every size class
//!   hit by a multiple of `align` is itself a multiple of `align` (the
//!   class table is 8-step below 128, 16-step to 256, 32-step to 512,
//!   then 64-multiples throughout), and large blocks start on superblock
//!   boundaries, so the natural block address is already aligned.
//! * `align > 64`: over-allocate `size + align + 8`, round the payload
//!   up past an 8-byte slot, and stash the raw block address in the slot
//!   just below the payload for `dealloc`/`realloc` to recover.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::{Cell, UnsafeCell};
use std::io;
use std::mem::MaybeUninit;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};

use ralloc::{Ralloc, RallocConfig};

pub mod boot;

/// Default reserved capacity when `GALLOC_CAP` is unset: 1 GiB of
/// virtual span (committed lazily, a few superblocks at a time).
pub const DEFAULT_CAP: usize = 1 << 30;

/// Initial committed capacity: small, so a short-lived process never
/// pays for the full reservation.
const INITIAL_COMMIT: usize = 8 << 20;

/// Largest alignment the pool serves from a naturally aligned block;
/// beyond this the over-allocate-and-stash scheme kicks in.
const NATURAL_ALIGN: usize = 64;

const UNINIT: u8 = 0;
const BUSY: u8 = 1;
const READY: u8 = 2;
const FAILED: u8 = 3;

static STATE: AtomicU8 = AtomicU8::new(UNINIT);
static CLOSED: AtomicBool = AtomicBool::new(false);

/// Every piece of state the per-op fast paths touch, in *one* static.
///
/// One symbol matters: under the default PIC relocation model, statics
/// of an upstream crate are reached through the GOT — a pointer load to
/// find the static, then the value load. Scattered statics would cost
/// one GOT indirection *each* on every `alloc`/`dealloc`; a single
/// struct costs one, which is loop-invariant and hoistable, and keeps
/// the flag and the range bounds on one read-mostly cache line. The
/// heap itself is constructed *in place* here (not in a `OnceLock`), so
/// the `&Ralloc` the fast paths use is a constant offset from that same
/// address: liveness stays a control-only predicted branch instead of a
/// pointer load feeding the critical data dependency of every `malloc`.
#[repr(C, align(64))]
struct FastState {
    /// True exactly while the pool is READY and not closed — the one
    /// flag `alloc` branches on.
    live: AtomicBool,
    /// Cached absolute bounds of the pool's superblock region (fixed
    /// for the heap's life: the v5 pool reserves its whole span up
    /// front and grows only the committed frontier within it).
    /// `dealloc` routing is then two compares with no pointer chasing.
    /// Zero until init, so the empty range can never claim a foreign
    /// pointer.
    sb_start: AtomicUsize,
    sb_end: AtomicUsize,
    /// The heap, written exactly once by the UNINIT→BUSY race winner
    /// strictly before READY/`live` are Release-published. On its own
    /// cache line (`HeapSlot` is align(64)): whatever mutable state
    /// lives at the head of `Ralloc` must not false-share with the
    /// read-mostly routing fields above.
    heap: HeapSlot,
}

#[repr(align(64))]
struct HeapSlot(UnsafeCell<MaybeUninit<Ralloc>>);

// SAFETY: `heap` is written only by the BUSY-state winner before the
// Release-publish; afterwards it is only read through `&Ralloc` (itself
// Sync). The remaining fields are atomics.
unsafe impl Sync for FastState {}

static FAST: FastState = FastState {
    live: AtomicBool::new(false),
    sb_start: AtomicUsize::new(0),
    sb_end: AtomicUsize::new(0),
    heap: HeapSlot(UnsafeCell::new(MaybeUninit::uninit())),
};

/// The heap at its constant address.
///
/// # Safety
/// The pool must have been published (STATE == READY, or `FAST.live`
/// observed true with Acquire ordering).
#[inline]
unsafe fn heap_ref() -> &'static Ralloc {
    // SAFETY: per the caller contract the cell was initialized before a
    // Release-publish the caller has Acquire-observed.
    unsafe { &*(FAST.heap.0.get() as *const Ralloc) }
}

thread_local! {
    /// True while a pool operation is in flight on this thread. Const
    /// initialized and destructor-free: always accessible, even from a
    /// TLS destructor during thread teardown.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// Scoped set/restore of [`IN_POOL`] (restore, not clear: `dealloc` of a
/// pool block may nest under an `alloc` that already holds the flag).
struct Enter {
    prev: bool,
}

impl Enter {
    #[inline]
    fn new() -> Enter {
        Enter { prev: IN_POOL.with(|c| c.replace(true)) }
    }
}

impl Drop for Enter {
    #[inline]
    fn drop(&mut self) {
        let prev = self.prev;
        IN_POOL.with(|c| c.set(prev));
    }
}

#[inline]
fn in_pool() -> bool {
    IN_POOL.with(Cell::get)
}

/// Run a pointer-producing `f` with the re-entrancy flag held, in a
/// *single* TLS access — the fast path for `alloc`. Null doubles as
/// the "already in a pool op" verdict (a nested allocation from inside
/// the pool's own machinery) and as pool exhaustion: either way the
/// caller serves from [`System`], so no separate discriminant is paid.
/// No unwind guard: unwinding out of a `GlobalAlloc` method is
/// undefined behavior anyway, so `f` must not panic.
#[inline]
fn with_pool_flag(f: impl FnOnce() -> *mut u8) -> *mut u8 {
    IN_POOL.with(|flag| {
        if flag.get() {
            return std::ptr::null_mut();
        }
        flag.set(true);
        let r = f();
        flag.set(false);
        r
    })
}

/// Like [`with_pool_flag`] but nesting-tolerant (save/restore): for
/// `realloc` of a pool block, which must reach the pool even when the
/// flag is already held.
#[inline]
fn with_pool_flag_nested<R>(f: impl FnOnce() -> R) -> R {
    IN_POOL.with(|flag| {
        let prev = flag.replace(true);
        let r = f();
        flag.set(prev);
        r
    })
}

/// Set-and-clear flag bracket with *no* load: for `dealloc` of a pool
/// block. Sound because `GlobalAlloc::dealloc` of a pool-range pointer
/// is never re-entered from inside pool machinery — everything the pool
/// allocates internally comes from [`System`] (the alloc-path flag
/// guarantees it), so its drops route down the System branch, and the
/// pool frees its own blocks via `Ralloc::free` directly, never through
/// the global allocator. Two TLS stores instead of load+branch+stores.
#[inline]
fn with_pool_flag_leaf<R>(f: impl FnOnce() -> R) -> R {
    IN_POOL.with(|flag| {
        flag.set(true);
        let r = f();
        flag.set(false);
        r
    })
}

/// The process-wide pool, built lazily on first use. `None` while the
/// pool is being built (including re-entrant calls from the builder
/// itself), or forever after construction failed.
#[inline]
pub fn heap() -> Option<&'static Ralloc> {
    match STATE.load(Ordering::Acquire) {
        // SAFETY: READY Acquire-observed.
        READY => Some(unsafe { heap_ref() }),
        BUSY | FAILED => None,
        _ => init_slow(),
    }
}

/// True once [`close_pool`] has run: the image is durably closed, so no
/// further pool mutation is allowed (allocation falls back to [`System`]
/// and frees of pool blocks become no-ops in the exiting process).
#[inline]
pub fn pool_closed() -> bool {
    CLOSED.load(Ordering::Acquire)
}

#[cold]
fn init_slow() -> Option<&'static Ralloc> {
    if STATE.compare_exchange(UNINIT, BUSY, Ordering::AcqRel, Ordering::Acquire).is_err() {
        // Lost the race (or recursed here from the builder): the winner
        // will publish READY/FAILED; meanwhile System serves.
        return if STATE.load(Ordering::Acquire) == READY {
            // SAFETY: READY Acquire-observed.
            Some(unsafe { heap_ref() })
        } else {
            None
        };
    }
    // Building the heap allocates DRAM (shard vectors, telemetry, the
    // path string): all of it lands on System because STATE is BUSY.
    // The catch_unwind keeps a build panic from unwinding out of
    // `GlobalAlloc::alloc`, which would be undefined behavior.
    let built = std::panic::catch_unwind(build_heap);
    match built {
        Ok(Ok(h)) => {
            // SAFETY: we hold BUSY, so this is the only writer, and no
            // reader dereferences the cell until READY/LIVE below.
            let heap: &'static Ralloc = unsafe {
                (*FAST.heap.0.get()).write(h);
                heap_ref()
            };
            FAST.sb_start.store(heap.region_base(), Ordering::Relaxed);
            FAST.sb_end.store(heap.pool().base() as usize + heap.pool().len(), Ordering::Relaxed);
            STATE.store(READY, Ordering::Release);
            FAST.live.store(true, Ordering::Release);
            Some(heap)
        }
        _ => {
            STATE.store(FAILED, Ordering::Release);
            None
        }
    }
}

/// The pool handle iff it is ready and open, in one flag load — the
/// handle itself is the constant [`HEAP`] address, so the check is pure
/// control flow. Falls into the cold path only before the first
/// successful init (or after close or failure, where it keeps returning
/// `None` cheaply via [`STATE`]).
#[inline]
fn active_heap() -> Option<&'static Ralloc> {
    if FAST.live.load(Ordering::Acquire) {
        // SAFETY: LIVE Acquire-observed.
        return Some(unsafe { heap_ref() });
    }
    if STATE.load(Ordering::Acquire) == UNINIT {
        init_slow()
    } else {
        None
    }
}

/// True if `ptr` lies inside the pool's superblock region (two compares
/// against the cached bounds — no false positives before init, since
/// the range is then empty).
#[inline]
fn in_pool_range(ptr: *const u8) -> bool {
    let a = ptr as usize;
    a >= FAST.sb_start.load(Ordering::Relaxed) && a < FAST.sb_end.load(Ordering::Relaxed)
}

fn build_heap() -> io::Result<Ralloc> {
    let cap = std::env::var("GALLOC_CAP")
        .ok()
        .and_then(|s| parse_bytes(&s))
        .unwrap_or(DEFAULT_CAP);
    let cfg = RallocConfig {
        initial_capacity: Some(INITIAL_COMMIT.min(cap)),
        ..RallocConfig::default()
    };
    match std::env::var_os("GALLOC_POOL") {
        Some(path) => {
            let path = PathBuf::from(path);
            let (heap, dirty) = Ralloc::open_file(&path, cap, cfg)?;
            if dirty {
                heap.recover();
            }
            register_atexit_close();
            Ok(heap)
        }
        None => Ok(Ralloc::create(cap, RallocConfig { transient: true, ..cfg })),
    }
}

/// `"64M"` / `"1G"` / `"4096"` → bytes.
fn parse_bytes(s: &str) -> Option<usize> {
    let s = s.trim();
    let (digits, mult) = match s.as_bytes().last()? {
        b'k' | b'K' => (&s[..s.len() - 1], 1usize << 10),
        b'm' | b'M' => (&s[..s.len() - 1], 1 << 20),
        b'g' | b'G' => (&s[..s.len() - 1], 1 << 30),
        _ => (s, 1),
    };
    digits.trim().parse::<usize>().ok()?.checked_mul(mult)
}

extern "C" fn close_at_exit() {
    close_pool();
}

fn register_atexit_close() {
    extern "C" {
        fn atexit(f: extern "C" fn()) -> i32;
    }
    // SAFETY: libc atexit with a no-unwind extern "C" callback.
    unsafe { atexit(close_at_exit) };
}

/// Cleanly close a file-backed pool (flush, drain this thread's cache,
/// clear the dirty bit). Idempotent; returns whether this call did the
/// close. After closing, allocation falls back to [`System`] and frees
/// of still-live pool blocks are ignored — the pool image is sealed.
pub fn close_pool() -> bool {
    if STATE.load(Ordering::Acquire) != READY {
        return false;
    }
    if CLOSED.swap(true, Ordering::SeqCst) {
        return false;
    }
    // Unpublish the fast-path flag first: new allocations fall to
    // System while the close flushes and seals the image.
    FAST.live.store(false, Ordering::Release);
    // SAFETY: STATE == READY was checked above.
    let h = unsafe { heap_ref() };
    let _g = Enter::new();
    h.close().is_ok()
}

#[inline]
fn round_up(n: usize, align: usize) -> usize {
    (n + align - 1) & !(align - 1)
}

/// Allocate `size` bytes at `align` from the pool. Null on exhaustion.
///
/// # Safety
/// `align` must be a power of two (the `Layout` contract).
#[inline]
pub unsafe fn pool_alloc(heap: &Ralloc, size: usize, align: usize) -> *mut u8 {
    if align <= NATURAL_ALIGN {
        // Natural path: the rounded request lands in a size class whose
        // block size is a multiple of `align` (see module docs), or on a
        // superblock boundary for large requests. Zero-size requests are
        // bumped to one byte so they still get a unique block *of the
        // requested alignment*, C-`malloc(0)` style.
        heap.malloc(round_up(size.max(1), align))
    } else {
        let raw = heap.malloc(size + align + 8);
        if raw.is_null() {
            return std::ptr::null_mut();
        }
        let aligned = round_up(raw as usize + 8, align);
        // SAFETY: `aligned - 8 >= raw` and `aligned + size` fits the
        // block (it spans `size + align + 8` bytes); the slot is
        // 8-aligned because `aligned` is a multiple of `align >= 128`.
        unsafe { std::ptr::write((aligned as *mut u64).sub(1), raw as u64) };
        aligned as *mut u8
    }
}

/// Return a [`pool_alloc`] block to the pool. `align` must match the
/// allocation's (it selects the pointer scheme).
///
/// # Safety
/// `ptr` must be a live pool block allocated at `align`.
#[inline]
pub unsafe fn pool_dealloc(heap: &Ralloc, ptr: *mut u8, align: usize) {
    if align <= NATURAL_ALIGN {
        heap.free(ptr);
    } else {
        // SAFETY: pool_alloc stashed the raw block address just below
        // the over-aligned payload.
        let raw = unsafe { std::ptr::read((ptr as *const u64).sub(1)) } as *mut u8;
        heap.free(raw);
    }
}

/// The bytes usable at `ptr` without reallocation.
///
/// # Safety
/// `ptr` must be a live pool block allocated at `align`.
#[inline]
pub unsafe fn pool_usable_size(heap: &Ralloc, ptr: *const u8, align: usize) -> usize {
    if align <= NATURAL_ALIGN {
        heap.usable_size(ptr)
    } else {
        // SAFETY: per pool_alloc's layout, the raw block starts at the
        // stashed address and the payload at `ptr`.
        let raw = unsafe { std::ptr::read((ptr as *const u64).sub(1)) } as usize;
        heap.usable_size(raw as *const u8) - (ptr as usize - raw)
    }
}

/// The drop-in global allocator. A unit type: all state is process-wide
/// (one pool per process, like `malloc`).
pub struct RallocGlobal;

// SAFETY: allocation is served by the lock-free Ralloc heap or by
// System; dealloc routes each pointer back to the allocator that issued
// it (Ralloc::contains discriminates), and layouts are respected per
// the scheme in the module docs.
unsafe impl GlobalAlloc for RallocGlobal {
    #[inline]
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if let Some(heap) = active_heap() {
            // SAFETY: Layout guarantees a power-of-two align.
            let p = with_pool_flag(|| unsafe { pool_alloc(heap, layout.size(), layout.align()) });
            if !p.is_null() {
                return p;
            }
            // Null: either a nested allocation from the pool's own
            // machinery, or the pool is exhausted — degrade to System
            // rather than failing the process (dealloc routes by
            // range, so mixed provenance is fine).
            // None: re-entered from the pool's own DRAM needs.
        }
        // SAFETY: forwarded layout.
        unsafe { System.alloc(layout) }
    }

    #[inline]
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        if in_pool_range(ptr) {
            if !FAST.live.load(Ordering::Acquire) {
                // The image is sealed (exit path): leaking in the dying
                // process beats dirtying a closed pool.
                return;
            }
            // SAFETY: a pool-range pointer implies the heap was
            // published (the range is empty before init); ptr came from
            // pool_alloc at this layout.
            with_pool_flag_leaf(|| unsafe { pool_dealloc(heap_ref(), ptr, layout.align()) });
            return;
        }
        // SAFETY: not a pool block, so it came from System.
        unsafe { System.dealloc(ptr, layout) }
    }

    #[inline]
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if let Some(heap) = active_heap() {
            // SAFETY: Layout guarantees a power-of-two align.
            let p = with_pool_flag(|| unsafe { pool_alloc(heap, layout.size(), layout.align()) });
            if !p.is_null() {
                // A recycled persistent block holds whatever bytes
                // its previous life left there — possibly bytes
                // from *before a crash*. calloc semantics demand
                // zeroing, always.
                // SAFETY: the block spans at least layout.size().
                unsafe { std::ptr::write_bytes(p, 0, layout.size()) };
                return p;
            }
        }
        // SAFETY: forwarded layout.
        unsafe { System.alloc_zeroed(layout) }
    }

    #[inline]
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if in_pool_range(ptr) {
            if !FAST.live.load(Ordering::Acquire) {
                // Sealed image: copy out to System, leak the pool block.
                // SAFETY: old block holds layout.size() readable bytes.
                unsafe {
                    let fresh =
                        System.alloc(Layout::from_size_align_unchecked(new_size, layout.align()));
                    if !fresh.is_null() {
                        std::ptr::copy_nonoverlapping(ptr, fresh, layout.size().min(new_size));
                    }
                    return fresh;
                }
            }
            // SAFETY: pool-range pointer implies a published heap; pool
            // block at this layout; new_size > 0 per the GlobalAlloc
            // contract.
            return unsafe { pool_realloc(heap_ref(), ptr, layout, new_size) };
        }
        // SAFETY: not a pool block, so it came from System.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// RAII guard marking a pool operation in flight on this thread; the C
/// ABI layer (`crates/capi`) brackets its pool calls with this so both
/// surfaces share one re-entrancy flag.
pub struct ReentryGuard(#[allow(dead_code)] Enter);

/// Set the re-entrancy flag for the current scope (see [`ReentryGuard`]).
pub fn reentry_guard() -> ReentryGuard {
    ReentryGuard(Enter::new())
}

/// True while a pool operation is in flight on this thread — nested
/// allocations must be served away from the pool.
#[inline]
pub fn in_pool_op() -> bool {
    in_pool()
}

/// The heap, only if fully initialized: never triggers construction.
/// This is the accessor for `dealloc`-side routing — a pointer that
/// predates the pool cannot be a pool block.
#[inline]
pub fn heap_if_ready() -> Option<&'static Ralloc> {
    ready_heap()
}

#[inline]
fn ready_heap() -> Option<&'static Ralloc> {
    if STATE.load(Ordering::Acquire) == READY {
        // SAFETY: READY Acquire-observed.
        Some(unsafe { heap_ref() })
    } else {
        None
    }
}

/// Grow/shrink a pool block: in place while the rounded request still
/// fits the block's usable span, else allocate-copy-free.
///
/// # Safety
/// `ptr` is a live pool block of `layout`; `new_size > 0`.
unsafe fn pool_realloc(heap: &Ralloc, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
    let align = layout.align();
    with_pool_flag_nested(|| {
        // SAFETY: live pool block at this align.
        let usable = unsafe { pool_usable_size(heap, ptr, align) };
        if align <= NATURAL_ALIGN && round_up(new_size, align) <= usable {
            // In place: the class block (or large span) already covers
            // the new size. Shrinks always land here; so do grows
            // within slack.
            return ptr;
        }
        // SAFETY: align is a power of two, new_size > 0.
        let fresh = unsafe { pool_alloc(heap, new_size, align) };
        if fresh.is_null() {
            // SAFETY: degraded path mirrors alloc's System fallback.
            unsafe {
                let sys = System.alloc(Layout::from_size_align_unchecked(new_size, align));
                if sys.is_null() {
                    return std::ptr::null_mut();
                }
                std::ptr::copy_nonoverlapping(ptr, sys, layout.size().min(new_size));
                pool_dealloc(heap, ptr, align);
                return sys;
            }
        }
        // SAFETY: both blocks are live and at least min(old, new) long.
        unsafe {
            std::ptr::copy_nonoverlapping(ptr, fresh, layout.size().min(new_size));
            pool_dealloc(heap, ptr, align);
        }
        fresh
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_bytes_understands_suffixes() {
        assert_eq!(parse_bytes("4096"), Some(4096));
        assert_eq!(parse_bytes("64K"), Some(64 << 10));
        assert_eq!(parse_bytes("8m"), Some(8 << 20));
        assert_eq!(parse_bytes("2G"), Some(2 << 30));
        assert_eq!(parse_bytes(" 1 G "), Some(1 << 30));
        assert_eq!(parse_bytes("nope"), None);
        assert_eq!(parse_bytes(""), None);
    }

    #[test]
    fn natural_alignment_proof_holds_for_every_class() {
        // The module-docs claim pool_alloc's natural path relies on:
        // for every align in {1,2,4,8,16,32,64} and every size, the
        // class serving round_up(size, align) has a block size that is
        // a multiple of align.
        for align in [1usize, 2, 4, 8, 16, 32, 64] {
            for size in 0..=ralloc::MAX_SMALL {
                let req = round_up(size.max(1), align);
                if req > ralloc::MAX_SMALL {
                    continue; // large path: superblock start, 64-aligned
                }
                let class = ralloc::size_class::size_class_of(req)
                    .expect("small request must have a class");
                let bs = ralloc::size_class::class_block_size(class) as usize;
                assert_eq!(
                    bs % align,
                    0,
                    "class {class} (block {bs}) serves request {req} but breaks align {align}"
                );
            }
        }
    }

    #[test]
    fn pool_roundtrip_all_alignments() {
        let heap = Ralloc::create(
            64 << 20,
            RallocConfig { transient: true, ..RallocConfig::default() },
        );
        for align in [1usize, 8, 16, 64, 128, 4096] {
            for size in [1usize, 7, 100, 4096, 20_000, 100_000] {
                // SAFETY: powers of two, live heap.
                let p = unsafe { pool_alloc(&heap, size, align) };
                assert!(!p.is_null(), "size {size} align {align}");
                assert_eq!(p as usize % align, 0, "misaligned: size {size} align {align}");
                // SAFETY: fresh block of at least `size` bytes.
                unsafe {
                    std::ptr::write_bytes(p, 0xAB, size);
                    assert!(pool_usable_size(&heap, p, align) >= size);
                    pool_dealloc(&heap, p, align);
                }
            }
        }
    }
}
