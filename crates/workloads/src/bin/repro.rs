//! `repro` — regenerate every figure of the paper's evaluation.
//!
//! ```text
//! repro <fig5a|fig5b|fig5c|fig5d|fig5e|fig5f|fig6a|fig6b|all>
//!       [--quick] [--scale F] [--threads 1,2,4,...] [--flush optane|free]
//! ```
//!
//! Output is CSV on stdout, one row per figure point:
//!
//! ```text
//! figure,workload,allocator,threads,metric,value
//! 5a,threadtest,ralloc,4,seconds,0.812
//! ...
//! 6a,gc_stack,ralloc,1,blocks:100001:seconds,0.021
//! ```
//!
//! `--quick` shrinks the workloads to a smoke-test scale; the default
//! scale is sized for a laptop rather than the paper's 40-core testbed
//! (see EXPERIMENTS.md for the mapping).

use nvm::FlushModel;
use workloads::gcbench::{self, Structure};
use workloads::{
    default_threads, larson, make_allocator, prodcon, shbench, threadtest, vacation, ycsb,
    AllocKind,
};

struct Opts {
    figures: Vec<String>,
    scale: f64,
    threads: Vec<usize>,
    flush: FlushModel,
    capacity: usize,
}

fn parse_args() -> Opts {
    let mut figures = Vec::new();
    let mut scale = 0.25;
    let mut threads = default_threads();
    let mut flush = FlushModel::optane();
    let mut args = std::env::args().skip(1).peekable();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => scale = 0.02,
            "--scale" => {
                scale = args.next().expect("--scale F").parse().expect("scale float")
            }
            "--threads" => {
                threads = args
                    .next()
                    .expect("--threads list")
                    .split(',')
                    .map(|s| s.parse().expect("thread count"))
                    .collect()
            }
            "--flush" => {
                flush = match args.next().expect("--flush kind").as_str() {
                    "optane" => FlushModel::optane(),
                    "free" => FlushModel::free(),
                    other => panic!("unknown flush model {other}"),
                }
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: repro <fig5a..fig6b|all> [--quick] [--scale F] \
                     [--threads 1,2,4] [--flush optane|free]"
                );
                std::process::exit(0);
            }
            fig => figures.push(fig.to_string()),
        }
    }
    if figures.is_empty() || figures.iter().any(|f| f == "all") {
        figures = ["fig5a", "fig5b", "fig5c", "fig5d", "fig5e", "fig5f", "fig6a", "fig6b"]
            .iter()
            .map(|s| s.to_string())
            .collect();
    }
    Opts { figures, scale, threads, flush, capacity: 512 << 20 }
}

fn row(figure: &str, workload: &str, alloc: &str, threads: usize, metric: &str, value: f64) {
    println!("{figure},{workload},{alloc},{threads},{metric},{value:.6}");
}

fn main() {
    let o = parse_args();
    println!("figure,workload,allocator,threads,metric,value");
    for fig in &o.figures {
        match fig.as_str() {
            "fig5a" => {
                for &t in &o.threads {
                    for kind in AllocKind::all() {
                        let a = make_allocator(kind, o.capacity, o.flush);
                        let d = threadtest::run(&a, threadtest::Params::scaled(t, o.scale));
                        row("5a", "threadtest", kind.name(), t, "seconds", d.as_secs_f64());
                    }
                }
            }
            "fig5b" => {
                for &t in &o.threads {
                    for kind in AllocKind::all() {
                        let a = make_allocator(kind, o.capacity, o.flush);
                        let d = shbench::run(&a, shbench::Params::scaled(t, o.scale));
                        row("5b", "shbench", kind.name(), t, "seconds", d.as_secs_f64());
                    }
                }
            }
            "fig5c" => {
                for &t in &o.threads {
                    for kind in AllocKind::all() {
                        let a = make_allocator(kind, o.capacity, o.flush);
                        let tput = larson::run(&a, larson::Params::scaled(t, o.scale));
                        row("5c", "larson", kind.name(), t, "mops_per_sec", tput / 1e6);
                    }
                }
            }
            "fig5d" => {
                for &t in &o.threads {
                    for kind in AllocKind::all() {
                        let a = make_allocator(kind, o.capacity, o.flush);
                        let d = prodcon::run(&a, prodcon::Params::scaled(t, o.scale));
                        row("5d", "prodcon", kind.name(), t, "seconds", d.as_secs_f64());
                    }
                }
            }
            "fig5e" => {
                // Persistent allocators only, as in the paper.
                for &t in &o.threads {
                    for kind in AllocKind::persistent() {
                        let a = make_allocator(kind, o.capacity, o.flush);
                        let d = vacation::run(&a, vacation::Params::scaled(t, o.scale));
                        row("5e", "vacation", kind.name(), t, "seconds", d.as_secs_f64());
                    }
                }
            }
            "fig5f" => {
                for &t in &o.threads {
                    for kind in AllocKind::all() {
                        let a = make_allocator(kind, o.capacity, o.flush);
                        let kops = ycsb::run(&a, ycsb::Params::workload_a(t, o.scale));
                        row("5f", "memcached_ycsb_a", kind.name(), t, "kops_per_sec", kops);
                    }
                    // §6.3 also discusses workload B; emit it alongside.
                    for kind in AllocKind::all() {
                        let a = make_allocator(kind, o.capacity, o.flush);
                        let kops = ycsb::run(&a, ycsb::Params::workload_b(t, o.scale));
                        row("5f", "memcached_ycsb_b", kind.name(), t, "kops_per_sec", kops);
                    }
                }
            }
            "fig6a" | "fig6b" => {
                let (structure, name) = if fig == "fig6a" {
                    (Structure::Stack, "gc_stack")
                } else {
                    (Structure::Tree, "gc_tree")
                };
                // Paper sweeps 10^7..5*10^7 reachable blocks; scale down.
                let base = (2_000_000.0 * o.scale) as usize;
                for mult in 1..=5 {
                    let nodes = (base * mult).max(1_000);
                    let point = gcbench::run(structure, nodes);
                    row(
                        if fig == "fig6a" { "6a" } else { "6b" },
                        name,
                        "ralloc",
                        1,
                        &format!("blocks:{}:seconds", point.reachable_blocks),
                        point.recovery_time.as_secs_f64(),
                    );
                }
            }
            other => eprintln!("unknown figure: {other} (expected fig5a..fig6b or all)"),
        }
    }
}
