//! Larson (paper Fig. 5c): the server-simulation workload of Larson &
//! Krishnan, whose signature behaviour is **bleeding** — objects
//! allocated by one thread are freed by another, and worker "threads"
//! hand their leftover objects to a successor.
//!
//! We reproduce bleeding with a ring handoff: each worker churns its slot
//! array for a round, then passes the whole array to the next worker
//! (cross-thread frees guaranteed), repeating for a fixed number of
//! rounds. The paper runs the pattern for 30 s and reports throughput;
//! we run a fixed op count and report Mops/s so results are deterministic
//! in CI.

use std::sync::mpsc;
use std::time::Instant;

use rand::prelude::*;
use ralloc::PersistentAllocator;

use crate::DynAlloc;

/// Workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Worker threads (ring size).
    pub threads: usize,
    /// Live-object slots per worker (paper: 10³).
    pub slots: usize,
    /// Alloc/free operations per round.
    pub ops_per_round: usize,
    /// Handoff rounds (paper: fresh thread every 10⁴ iterations).
    pub rounds: usize,
    /// Size range (paper: 64–400 B).
    pub min_size: usize,
    /// Maximum object size.
    pub max_size: usize,
}

impl Params {
    /// Scaled configuration.
    pub fn scaled(threads: usize, scale: f64) -> Params {
        Params {
            threads,
            slots: 1_000,
            ops_per_round: ((20_000.0 * scale) as usize).max(1_000),
            rounds: 8,
            min_size: 64,
            max_size: 400,
        }
    }

    /// Total operations across all threads and rounds.
    pub fn total_ops(&self) -> usize {
        self.threads * self.rounds * self.ops_per_round
    }
}

/// Run Larson; returns throughput in operations per second.
pub fn run(alloc: &DynAlloc, p: Params) -> f64 {
    // Ring of channels: worker t sends its slots to worker (t+1) % n.
    let mut txs = Vec::with_capacity(p.threads);
    let mut rxs = Vec::with_capacity(p.threads);
    for _ in 0..p.threads {
        let (tx, rx) = mpsc::channel::<Vec<usize>>();
        txs.push(tx);
        rxs.push(Some(rx));
    }
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..p.threads {
            let alloc = alloc.clone();
            let next_tx = txs[(t + 1) % p.threads].clone();
            let rx = rxs[t].take().unwrap();
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0x1A_50 + t as u64);
                let mut slots: Vec<usize> = vec![0; p.slots];
                for _round in 0..p.rounds {
                    for _ in 0..p.ops_per_round {
                        let i = rng.gen_range(0..p.slots);
                        if slots[i] != 0 {
                            // Possibly a block allocated by another
                            // worker: the bleeding pattern.
                            alloc.free(slots[i] as *mut u8);
                        }
                        let size = rng.gen_range(p.min_size..=p.max_size);
                        let ptr = alloc.malloc(size);
                        assert!(!ptr.is_null(), "larson: allocator exhausted");
                        // SAFETY: fresh block of >= 8 bytes.
                        unsafe { std::ptr::write(ptr as *mut u64, ptr as u64) };
                        slots[i] = ptr as usize;
                    }
                    // Hand leftovers to the successor worker.
                    next_tx.send(std::mem::take(&mut slots)).unwrap();
                    slots = rx.recv().unwrap();
                    // Integrity check on inherited blocks.
                    for &pslot in slots.iter().filter(|&&x| x != 0) {
                        // SAFETY: live block written by its allocator.
                        assert_eq!(unsafe { std::ptr::read(pslot as *const u64) }, pslot as u64);
                    }
                }
                for &pslot in slots.iter().filter(|&&x| x != 0) {
                    alloc.free(pslot as *mut u8);
                }
            });
        }
    });
    p.total_ops() as f64 / start.elapsed().as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{make_allocator, AllocKind};
    use nvm::FlushModel;

    fn tiny(threads: usize) -> Params {
        Params {
            threads,
            slots: 64,
            ops_per_round: 500,
            rounds: 3,
            min_size: 64,
            max_size: 400,
        }
    }

    #[test]
    fn runs_on_every_allocator() {
        for kind in AllocKind::all() {
            let a = make_allocator(kind, 64 << 20, FlushModel::free());
            let tput = run(&a, tiny(2));
            assert!(tput > 0.0, "{kind:?}");
        }
    }

    #[test]
    fn handoff_ring_works_with_odd_thread_count() {
        let a = make_allocator(AllocKind::Ralloc, 64 << 20, FlushModel::free());
        assert!(run(&a, tiny(3)) > 0.0);
    }
}
