//! Prod-con (paper Fig. 5d): the Makalu producer/consumer workload.
//!
//! `threads/2` pairs of threads share one Michael–Scott queue each. The
//! producer allocates 64-byte objects and enqueues pointers to them; the
//! consumer dequeues and deallocates. Every block therefore crosses a
//! thread boundary before being freed. The paper allocates 10⁷·2/t
//! objects per pair; `scale` shrinks that. Metric: wall-clock time.

use std::time::{Duration, Instant};

use pds::MsQueue;
use ralloc::PersistentAllocator;

use crate::DynAlloc;

/// Workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Total threads; pairs = max(threads/2, 1).
    pub threads: usize,
    /// Objects moved through each pair's queue.
    pub objects_per_pair: usize,
    /// Object size (paper: 64 B).
    pub size: usize,
}

impl Params {
    /// Scaled configuration: total objects fixed across thread counts,
    /// split per pair as in the paper (10⁷·2/t each).
    pub fn scaled(threads: usize, scale: f64) -> Params {
        let pairs = (threads / 2).max(1);
        let total = ((400_000.0 * scale) as usize).max(2_000);
        Params { threads, objects_per_pair: total / pairs, size: 64 }
    }
}

/// Run prod-con; returns elapsed wall-clock time.
pub fn run(alloc: &DynAlloc, p: Params) -> Duration {
    let pairs = (p.threads / 2).max(1);
    let start = Instant::now();
    std::thread::scope(|s| {
        for pair in 0..pairs {
            let queue = std::sync::Arc::new(MsQueue::new(alloc.clone()));
            let n = p.objects_per_pair;
            // Producer
            {
                let queue = queue.clone();
                let alloc = alloc.clone();
                s.spawn(move || {
                    for i in 0..n {
                        let ptr = alloc.malloc(p.size);
                        assert!(!ptr.is_null(), "prodcon: allocator exhausted");
                        // SAFETY: fresh block of >= 16 bytes.
                        unsafe {
                            std::ptr::write(ptr as *mut u64, (pair * n + i) as u64);
                        }
                        while !queue.enqueue(ptr as u64) {
                            std::hint::spin_loop();
                        }
                    }
                });
            }
            // Consumer
            {
                let alloc = alloc.clone();
                s.spawn(move || {
                    let mut got = 0usize;
                    while got < n {
                        match queue.dequeue() {
                            Some(addr) => {
                                let ptr = addr as *mut u8;
                                // SAFETY: the producer wrote this word.
                                let _tag = unsafe { std::ptr::read(ptr as *const u64) };
                                alloc.free(ptr);
                                got += 1;
                            }
                            None => std::hint::spin_loop(),
                        }
                    }
                });
            }
        }
    });
    start.elapsed()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{make_allocator, AllocKind};
    use nvm::FlushModel;

    #[test]
    fn runs_on_every_allocator() {
        for kind in AllocKind::all() {
            let a = make_allocator(kind, 64 << 20, FlushModel::free());
            let d = run(&a, Params { threads: 2, objects_per_pair: 5_000, size: 64 });
            assert!(d.as_nanos() > 0, "{kind:?}");
        }
    }

    #[test]
    fn single_thread_degenerates_to_one_pair() {
        let a = make_allocator(AllocKind::Ralloc, 32 << 20, FlushModel::free());
        run(&a, Params { threads: 1, objects_per_pair: 2_000, size: 64 });
    }

    #[test]
    fn multiple_pairs() {
        let a = make_allocator(AllocKind::Ralloc, 64 << 20, FlushModel::free());
        run(&a, Params { threads: 4, objects_per_pair: 2_000, size: 64 });
    }
}
