//! Recovery-time measurement (paper §6.4, Figure 6).
//!
//! The paper inserts random key-value pairs into (a) a Treiber stack and
//! (b) the Natarajan–Mittal BST, skips `close()`, and measures the
//! recovery (GC + reconstruction) time of the subsequent restart as a
//! function of the number of reachable blocks. The expected result is a
//! straight line, with a higher per-node constant for the tree (worse
//! locality).
//!
//! We run the heap in Direct mode and invoke `recover()` on the quiescent
//! heap: that executes exactly the dirty-restart code path (trace +
//! sweep + rebuild + write-back) without paying the Tracked-mode shadow
//! bookkeeping, which would distort timing.

use std::time::Duration;

use pds::{NmTree, PStack};
use ralloc::{Ralloc, RallocConfig};

/// Which structure to populate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Structure {
    /// Treiber stack (Fig. 6a).
    Stack,
    /// Natarajan–Mittal tree (Fig. 6b).
    Tree,
}

/// One measured point.
#[derive(Debug, Clone)]
pub struct GcPoint {
    /// Blocks the GC found reachable.
    pub reachable_blocks: u64,
    /// Recovery wall-clock time.
    pub recovery_time: Duration,
}

/// Populate `structure` with `nodes` elements and measure recovery time.
pub fn run(structure: Structure, nodes: usize) -> GcPoint {
    // Size the heap to the structure: stack nodes are 16 B, tree inserts
    // allocate a 32 B leaf + 32 B internal.
    let per_node = match structure {
        Structure::Stack => 24,
        Structure::Tree => 64,
    };
    let heap = Ralloc::create((nodes * per_node * 2).max(8 << 20), RallocConfig::default());
    match structure {
        Structure::Stack => {
            let s = PStack::create(&heap, 0);
            for i in 0..nodes as u64 {
                // "random key-value pairs" — a cheap mix keeps values
                // non-trivial without an RNG in the hot loop.
                assert!(s.push(i.wrapping_mul(0x9E3779B97F4A7C15)));
            }
        }
        Structure::Tree => {
            let t = NmTree::create(&heap, 0);
            let mut key = 0x243F6A8885A308D3u64;
            let mut inserted = 0;
            while inserted < nodes {
                key = key.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                if t.insert(key % (u64::MAX / 4), inserted as u64) {
                    inserted += 1;
                }
            }
        }
    }
    let stats = heap.recover();
    GcPoint { reachable_blocks: stats.reachable_blocks, recovery_time: stats.duration }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_point_counts_nodes_plus_head() {
        let p = run(Structure::Stack, 1_000);
        assert_eq!(p.reachable_blocks, 1_001);
        assert!(p.recovery_time.as_nanos() > 0);
    }

    #[test]
    fn tree_point_counts_leaves_internals_sentinels() {
        let p = run(Structure::Tree, 500);
        // 500 leaves + 500 internals + 5 sentinels.
        assert_eq!(p.reachable_blocks, 1_005);
    }

    #[test]
    fn recovery_time_grows_with_reachable_set() {
        let small = run(Structure::Stack, 2_000);
        let large = run(Structure::Stack, 40_000);
        assert!(
            large.recovery_time > small.recovery_time,
            "GC time must grow with reachable blocks: {small:?} vs {large:?}"
        );
    }
}
