//! Vacation (paper Fig. 5e): the STAMP travel-reservation OLTP system,
//! in the lock-based form the paper took from the WHISPER suite.
//!
//! A manager holds four "relations" implemented as red-black trees (cars,
//! flights, rooms, customers). Each transaction performs 5 queries that
//! look up, reserve (insert/update), or cancel (remove) rows across the
//! tables, targeting 90% of the key space. Every insert/remove
//! allocates/frees a tree node, putting the allocator on the critical
//! path. Only persistent allocators are compared (Fig. 5e).

use std::time::{Duration, Instant};

use parking_lot::Mutex;
use pds::RbTree;
use rand::prelude::*;

use crate::DynAlloc;

/// Number of relations (tables), as in STAMP.
pub const TABLES: usize = 4;

/// Workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Client threads.
    pub threads: usize,
    /// Rows preloaded per table (paper: 16384 total "relations").
    pub rows: usize,
    /// Transactions per thread.
    pub txns: usize,
    /// Queries per transaction (paper: 5).
    pub queries: usize,
    /// Fraction of the key space touched (paper: 90%).
    pub coverage: f64,
}

impl Params {
    /// Scaled configuration (paper: 10⁶ transactions total).
    pub fn scaled(threads: usize, scale: f64) -> Params {
        Params {
            threads,
            rows: 4096,
            txns: ((40_000.0 * scale) as usize / threads.max(1)).max(500),
            queries: 5,
            coverage: 0.9,
        }
    }
}

/// Run vacation; returns elapsed wall-clock time.
pub fn run(alloc: &DynAlloc, p: Params) -> Duration {
    // Build and preload the four relations.
    let tables: Vec<Mutex<RbTree<DynAlloc>>> =
        (0..TABLES).map(|_| Mutex::new(RbTree::new(alloc.clone()))).collect();
    let mut rng = StdRng::seed_from_u64(0x0ACE);
    for table in &tables {
        let mut t = table.lock();
        for row in 0..p.rows as u64 {
            t.insert(row, rng.gen_range(100..500));
        }
    }
    let span = ((p.rows as f64) * p.coverage) as u64;
    let start = Instant::now();
    std::thread::scope(|s| {
        for tid in 0..p.threads {
            let tables = &tables;
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xACA7 + tid as u64);
                for _ in 0..p.txns {
                    for _ in 0..p.queries {
                        let table = &tables[rng.gen_range(0..TABLES)];
                        let key = rng.gen_range(0..span.max(1));
                        let action = rng.gen_range(0..10);
                        let mut t = table.lock();
                        match action {
                            // 10%: cancel a reservation (frees a node).
                            0 => {
                                t.remove(key);
                            }
                            // 20%: make a reservation (may allocate).
                            1 | 2 => {
                                let v = t.get(key).unwrap_or(0);
                                t.insert(key, v + 1);
                            }
                            // 70%: availability query + price update.
                            _ => {
                                if let Some(v) = t.get(key) {
                                    t.insert(key, v);
                                }
                            }
                        }
                    }
                }
            });
        }
    });
    start.elapsed()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{make_allocator, AllocKind};
    use nvm::FlushModel;

    fn tiny(threads: usize) -> Params {
        Params { threads, rows: 256, txns: 200, queries: 5, coverage: 0.9 }
    }

    #[test]
    fn runs_on_persistent_allocators() {
        for kind in AllocKind::persistent() {
            let a = make_allocator(kind, 64 << 20, FlushModel::free());
            let d = run(&a, tiny(2));
            assert!(d.as_nanos() > 0, "{kind:?}");
        }
    }

    #[test]
    fn trees_stay_consistent_under_churn() {
        let a = make_allocator(AllocKind::Ralloc, 64 << 20, FlushModel::free());
        run(&a, tiny(4));
        // A second run on the same allocator reuses freed nodes.
        run(&a, tiny(4));
    }
}
