//! Shbench (paper Fig. 5b): MicroQuill's allocator stress test.
//!
//! Threads allocate and free objects of mixed sizes from 64 to 400 bytes
//! (Makalu's largest "small" class), with smaller sizes more frequent,
//! and object lifetimes interleaved through a slot ring so frees hit
//! blocks of many ages. Metric: wall-clock time (lower is better).

use std::time::{Duration, Instant};

use rand::prelude::*;
use ralloc::PersistentAllocator;

use crate::DynAlloc;

/// Workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Worker threads.
    pub threads: usize,
    /// Alloc/free operations per thread.
    pub ops: usize,
    /// Live-object slots per thread (lifetime spread).
    pub slots: usize,
    /// Minimum object size.
    pub min_size: usize,
    /// Maximum object size (paper: 400).
    pub max_size: usize,
}

impl Params {
    /// Scaled configuration (paper: 10⁵ iterations).
    pub fn scaled(threads: usize, scale: f64) -> Params {
        Params {
            threads,
            ops: ((400_000.0 * scale) as usize).max(1_000),
            slots: 2_000,
            min_size: 64,
            max_size: 400,
        }
    }
}

/// Skewed size draw: min of two uniforms biases toward small sizes, the
/// distribution shbench documents ("smaller objects allocated more
/// frequently").
#[inline]
fn skewed_size(rng: &mut impl Rng, min: usize, max: usize) -> usize {
    let span = max - min + 1;
    let a = rng.gen_range(0..span);
    let b = rng.gen_range(0..span);
    min + a.min(b)
}

/// Run shbench; returns elapsed wall-clock time.
pub fn run(alloc: &DynAlloc, p: Params) -> Duration {
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..p.threads {
            let alloc = alloc.clone();
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0x5B_00 + t as u64);
                let mut slots: Vec<*mut u8> = vec![std::ptr::null_mut(); p.slots];
                for _ in 0..p.ops {
                    let i = rng.gen_range(0..p.slots);
                    if !slots[i].is_null() {
                        alloc.free(slots[i]);
                    }
                    let size = skewed_size(&mut rng, p.min_size, p.max_size);
                    let ptr = alloc.malloc(size);
                    assert!(!ptr.is_null(), "shbench: allocator exhausted");
                    // SAFETY: fresh block of >= 8 bytes.
                    unsafe { std::ptr::write(ptr as *mut u64, size as u64) };
                    slots[i] = ptr;
                }
                for ptr in slots.into_iter().filter(|p| !p.is_null()) {
                    alloc.free(ptr);
                }
            });
        }
    });
    start.elapsed()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{make_allocator, AllocKind};
    use nvm::FlushModel;

    #[test]
    fn runs_on_every_allocator() {
        for kind in AllocKind::all() {
            let a = make_allocator(kind, 64 << 20, FlushModel::free());
            let p = Params { threads: 2, ops: 2_000, slots: 128, min_size: 64, max_size: 400 };
            let d = run(&a, p);
            assert!(d.as_nanos() > 0, "{kind:?}");
        }
    }

    #[test]
    fn size_skew_favours_small() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 10_000;
        let small = (0..n)
            .filter(|_| skewed_size(&mut rng, 64, 400) < 232)
            .count();
        assert!(small > n * 6 / 10, "small fraction {small}/{n}");
    }
}
