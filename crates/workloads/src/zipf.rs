//! Zipfian key distribution, as used by YCSB's request generator
//! (Gray et al.'s rejection-free method, the same algorithm YCSB's
//! `ZipfianGenerator` implements).

/// Zipfian generator over `0..n` with skew `theta` (YCSB default 0.99).
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
}

impl Zipf {
    /// Create a generator for `n` items with skew `theta`.
    pub fn new(n: u64, theta: f64) -> Zipf {
        assert!(n > 0);
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        Zipf {
            n,
            theta,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            eta: (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan),
            zeta2,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Exact for small n, Euler-Maclaurin approximation for large n
        // (YCSB precomputes; we want constructor cost bounded).
        if n <= 10_000 {
            (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
        } else {
            let head: f64 = (1..=10_000u64).map(|i| 1.0 / (i as f64).powf(theta)).sum();
            // integral of x^-theta from 10000 to n
            let a = 1.0 - theta;
            head + ((n as f64).powf(a) - 10_000f64.powf(a)) / a
        }
    }

    /// Draw the next key given a uniform `u in [0,1)`.
    pub fn sample(&self, u: f64) -> u64 {
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let k = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        k.min(self.n - 1)
    }

    /// Number of items.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Skew parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Second-order zeta (exposed for tests).
    pub fn zeta2(&self) -> f64 {
        self.zeta2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn samples_in_range() {
        let z = Zipf::new(1000, 0.99);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let k = z.sample(rng.gen());
            assert!(k < 1000);
        }
    }

    #[test]
    fn skew_concentrates_on_head() {
        let z = Zipf::new(100_000, 0.99);
        let mut rng = StdRng::seed_from_u64(2);
        let mut head = 0;
        let n = 100_000;
        for _ in 0..n {
            if z.sample(rng.gen()) < 1000 {
                head += 1;
            }
        }
        // With theta=.99 over 100k items, ~>50% of mass is in the top 1%.
        assert!(
            head > n / 3,
            "zipf head mass too small: {head}/{n}"
        );
    }

    #[test]
    fn theta_zero_is_roughly_uniform() {
        let z = Zipf::new(1000, 0.01);
        let mut rng = StdRng::seed_from_u64(3);
        let mut head = 0;
        for _ in 0..100_000 {
            if z.sample(rng.gen()) < 100 {
                head += 1;
            }
        }
        // ~10% of draws should land in the first 10% of keys.
        assert!((5_000..20_000).contains(&head), "head={head}");
    }

    #[test]
    fn large_n_constructor_is_fast_and_sane() {
        let z = Zipf::new(100_000_000, 0.99);
        assert!(z.zeta2() > 1.0);
        assert_eq!(z.sample(0.0), 0);
    }
}
