//! # workloads — the paper's evaluation, reproducible
//!
//! One module per experiment of §6, each parameterized by allocator,
//! thread count, and a scale factor so the same code serves quick smoke
//! runs, criterion benches, and full figure regeneration:
//!
//! | module | figure | workload |
//! |---|---|---|
//! | [`threadtest`] | 5a | Hoard threadtest: per-thread alloc/free batches |
//! | [`shbench`] | 5b | MicroQuill shbench: mixed-size stress, skewed small |
//! | [`larson`] | 5c | Larson bleeding: cross-thread frees + thread turnover |
//! | [`prodcon`] | 5d | producer/consumer pairs over M&S queues |
//! | [`vacation`] | 5e | STAMP-style travel-reservation OLTP on RB-trees |
//! | [`ycsb`] | 5f | YCSB A/B over the library-mode KV store |
//! | [`gcbench`] | 6a/6b | recovery (GC) time vs. reachable blocks |
//!
//! [`alloc_select`] builds any of the five §6.1 allocators behind the
//! shared `PersistentAllocator` trait; [`zipf`] provides the YCSB key
//! distribution. The `repro` binary prints one CSV row per figure point.

pub mod alloc_select;
pub mod churn;
pub mod gcbench;
pub mod larson;
pub mod prodcon;
pub mod shbench;
pub mod threadtest;
pub mod vacation;
pub mod ycsb;
pub mod zipf;

pub use alloc_select::{make_allocator, AllocKind, DynAlloc};

/// Default thread counts for figure sweeps. The paper sweeps 1..90 on a
/// 2×20-core machine; we default to a modest ladder and let `--threads`
/// extend it on bigger hosts.
pub fn default_threads() -> Vec<usize> {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    [1usize, 2, 4, 8, 16, 32]
        .into_iter()
        .filter(|&t| t <= 2 * cores.max(2))
        .collect()
}
