//! The churn-fixpoint stress generator (Theorem 5.2's workload).
//!
//! One canonical definition shared by the leakage-freedom test
//! (`tests/overlap_stress.rs`), the footprint probe
//! (`examples/churn_probe.rs`), and the CI shrink smoke: a bounded live
//! set churned by short-lived worker threads, every block carrying a
//! full-block signature derived from its own address so overlap or
//! double-issue corrupts detectably. Keeping it here means the probe's
//! recorded trajectories stay comparable to the test they explain — any
//! tweak to the op mix changes both or neither.

use crate::DynAlloc;

/// Write the canonical address-derived signature over a live block.
///
/// # Safety
/// `ptr` must be a live block of at least `size` bytes exclusively owned
/// by the caller.
pub unsafe fn fill_signature(ptr: *mut u8, size: usize) {
    for i in 0..size {
        *ptr.add(i) = ((ptr as usize).wrapping_add(i) as u8) ^ 0x5A;
    }
}

/// Verify the signature; panics on any torn byte (overlap/double-issue).
///
/// # Safety
/// As for [`fill_signature`].
pub unsafe fn check_signature(ptr: *mut u8, size: usize) {
    for i in 0..size {
        let got = *ptr.add(i);
        let want = ((ptr as usize).wrapping_add(i) as u8) ^ 0x5A;
        assert_eq!(got, want, "signature torn at {ptr:p}+{i}: block overlap or double-issue");
    }
}

/// One churn round: `threads` fresh workers each run `per_thread_ops`
/// random alloc/free steps (sizes 8..408 B, live cap 400 blocks,
/// 1-in-3 free bias once anything is held), verify every signature, and
/// free everything on the way out. Thread exit drains/parks the workers'
/// caches — the thread-turnover half of the churn pattern.
///
/// The signature writes are part of the workload on purpose: their
/// per-op cost is what produces real preemption (and therefore real
/// thread overlap) on a single-core host.
pub fn stress(alloc: &DynAlloc, threads: usize, per_thread_ops: usize) {
    std::thread::scope(|s| {
        for t in 0..threads {
            let alloc = alloc.clone();
            s.spawn(move || {
                let mut held: Vec<(usize, usize)> = Vec::new();
                let mut x = 0x9E3779B9u64.wrapping_mul(t as u64 + 1) | 1;
                let mut rand = move || {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x
                };
                for _ in 0..per_thread_ops {
                    if held.len() > 400 || (!held.is_empty() && rand() % 3 == 0) {
                        let i = (rand() as usize) % held.len();
                        let (p, sz) = held.swap_remove(i);
                        // SAFETY: we exclusively own every held block.
                        unsafe { check_signature(p as *mut u8, sz) };
                        alloc.free(p as *mut u8);
                    } else {
                        let sz = 8 + (rand() as usize % 50) * 8;
                        let p = alloc.malloc(sz);
                        assert!(!p.is_null());
                        // SAFETY: fresh block of `sz` bytes.
                        unsafe { fill_signature(p, sz) };
                        held.push((p as usize, sz));
                    }
                }
                for (p, sz) in held {
                    // SAFETY: we exclusively own every held block.
                    unsafe { check_signature(p as *mut u8, sz) };
                    alloc.free(p as *mut u8);
                }
            });
        }
    });
}
