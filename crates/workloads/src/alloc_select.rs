//! Construction of the five allocators compared in §6.1.

use std::sync::Arc;

use baselines::{MakaluSim, PmdkSim, SystemAlloc};
use nvm::{FlushModel, Mode};
use ralloc::{PersistentAllocator, Ralloc, RallocConfig};

/// Shared handle to any allocator under test.
pub type DynAlloc = Arc<dyn PersistentAllocator>;

/// The five §6.1 allocators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocKind {
    /// The paper's contribution.
    Ralloc,
    /// Ralloc without flush/fence — exactly the paper's LRMalloc datapoint.
    LrMalloc,
    /// Lock-based persistent baseline (Makalu simulation).
    Makalu,
    /// Log-based `malloc_to` baseline (PMDK simulation).
    Pmdk,
    /// Transient system allocator (JEMalloc's role).
    System,
}

impl AllocKind {
    /// All allocators, in the paper's legend order.
    pub fn all() -> [AllocKind; 5] {
        [
            AllocKind::Ralloc,
            AllocKind::Makalu,
            AllocKind::Pmdk,
            AllocKind::LrMalloc,
            AllocKind::System,
        ]
    }

    /// The persistent subset (Fig. 5e compares only these).
    pub fn persistent() -> [AllocKind; 3] {
        [AllocKind::Ralloc, AllocKind::Makalu, AllocKind::Pmdk]
    }

    /// Parse a CLI name.
    pub fn parse(s: &str) -> Option<AllocKind> {
        Some(match s {
            "ralloc" => AllocKind::Ralloc,
            "lrmalloc" => AllocKind::LrMalloc,
            "makalu" => AllocKind::Makalu,
            "pmdk" => AllocKind::Pmdk,
            "system" | "jemalloc" => AllocKind::System,
            _ => return None,
        })
    }

    /// Display name (matches `PersistentAllocator::name`).
    pub fn name(&self) -> &'static str {
        match self {
            AllocKind::Ralloc => "ralloc",
            AllocKind::LrMalloc => "lrmalloc",
            AllocKind::Makalu => "makalu",
            AllocKind::Pmdk => "pmdk",
            AllocKind::System => "system",
        }
    }
}

/// Build an allocator with `capacity` bytes of heap. Persistent
/// allocators charge `flush` latency per flush/fence (pass
/// [`FlushModel::optane`] for figure runs, [`FlushModel::free`] for
/// functional tests).
pub fn make_allocator(kind: AllocKind, capacity: usize, flush: FlushModel) -> DynAlloc {
    match kind {
        AllocKind::Ralloc => {
            let cfg = RallocConfig { flush_model: flush, ..Default::default() };
            Arc::new(Ralloc::create(capacity, cfg))
        }
        AllocKind::LrMalloc => {
            Arc::new(Ralloc::create(capacity, RallocConfig::transient()))
        }
        AllocKind::Makalu => Arc::new(MakaluSim::create(capacity, Mode::Direct, flush)),
        AllocKind::Pmdk => Arc::new(PmdkSim::create(capacity, Mode::Direct, flush)),
        AllocKind::System => Arc::new(SystemAlloc::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_construct_and_serve() {
        for kind in AllocKind::all() {
            let a = make_allocator(kind, 8 << 20, FlushModel::free());
            assert_eq!(a.name(), kind.name());
            let p = a.malloc(64);
            assert!(!p.is_null(), "{:?}", kind);
            a.free(p);
        }
    }

    #[test]
    fn parse_round_trips() {
        for kind in AllocKind::all() {
            assert_eq!(AllocKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(AllocKind::parse("jemalloc"), Some(AllocKind::System));
        assert_eq!(AllocKind::parse("bogus"), None);
    }
}
