//! Threadtest (paper Fig. 5a): the Hoard allocator's classic workload.
//!
//! Every thread repeatedly allocates a batch of 64-byte objects and then
//! deallocates them, with no sharing between threads. The paper runs
//! 10⁴ iterations of 10⁵ objects; `scale` shrinks both for smoke runs.
//! Metric: wall-clock time (lower is better).

use std::time::{Duration, Instant};

use ralloc::PersistentAllocator;

use crate::DynAlloc;

/// Workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Worker threads.
    pub threads: usize,
    /// Batches per thread.
    pub iterations: usize,
    /// Objects per batch.
    pub objects: usize,
    /// Object size in bytes (paper: 64).
    pub size: usize,
}

impl Params {
    /// A scaled configuration: `scale` = 1.0 approximates the paper run
    /// (within laptop reach), smaller values shrink proportionally.
    pub fn scaled(threads: usize, scale: f64) -> Params {
        Params {
            threads,
            iterations: ((100.0 * scale) as usize).max(1),
            objects: ((10_000.0 * scale) as usize).max(64),
            size: 64,
        }
    }
}

/// Run threadtest; returns elapsed wall-clock time.
pub fn run(alloc: &DynAlloc, p: Params) -> Duration {
    let start = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..p.threads {
            let alloc = alloc.clone();
            s.spawn(move || {
                let mut batch: Vec<*mut u8> = Vec::with_capacity(p.objects);
                for _ in 0..p.iterations {
                    for _ in 0..p.objects {
                        let ptr = alloc.malloc(p.size);
                        assert!(!ptr.is_null(), "threadtest: allocator exhausted");
                        // Touch the block like a real program would.
                        // SAFETY: freshly allocated block of >= size bytes.
                        unsafe { std::ptr::write(ptr as *mut u64, ptr as u64) };
                        batch.push(ptr);
                    }
                    for ptr in batch.drain(..) {
                        alloc.free(ptr);
                    }
                }
            });
        }
    });
    start.elapsed()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{make_allocator, AllocKind};
    use nvm::FlushModel;

    #[test]
    fn runs_on_every_allocator() {
        for kind in AllocKind::all() {
            let a = make_allocator(kind, 32 << 20, FlushModel::free());
            let d = run(&a, Params { threads: 2, iterations: 3, objects: 500, size: 64 });
            assert!(d.as_nanos() > 0, "{kind:?}");
        }
    }

    #[test]
    fn steady_state_memory_bounded() {
        let a = make_allocator(AllocKind::Ralloc, 16 << 20, FlushModel::free());
        // Repeated batches must reuse memory, not exhaust 16 MiB.
        run(&a, Params { threads: 2, iterations: 50, objects: 2_000, size: 64 });
    }
}
