//! YCSB over library-mode memcached (paper Fig. 5f).
//!
//! The paper converts memcached into a library and drives it with the
//! Yahoo! Cloud Serving Benchmark: workload A (50% reads / 50% updates,
//! Fig. 5f) and workload B (95/5, discussed in §6.3 text). Keys follow
//! the YCSB zipfian distribution; updates rewrite the whole value and —
//! as in real memcached item replacement — allocate a fresh item when
//! the size changes, which our driver forces by cycling value sizes.
//! Metric: throughput (Kops/s, higher is better).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use pds::KvStore;
use rand::prelude::*;

use crate::zipf::Zipf;
use crate::DynAlloc;

/// Workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Client threads.
    pub threads: usize,
    /// Records loaded before the run (paper: 100 K).
    pub records: usize,
    /// Operations executed in the run phase (paper: 100 K).
    pub ops: usize,
    /// Percentage of reads (A: 50, B: 95).
    pub read_pct: u32,
    /// Base value size in bytes.
    pub value_size: usize,
}

impl Params {
    /// Workload A (write-dominant), scaled.
    pub fn workload_a(threads: usize, scale: f64) -> Params {
        Params {
            threads,
            records: ((100_000.0 * scale) as usize).max(1_000),
            ops: ((100_000.0 * scale) as usize).max(1_000),
            read_pct: 50,
            value_size: 100,
        }
    }

    /// Workload B (read-dominant), scaled.
    pub fn workload_b(threads: usize, scale: f64) -> Params {
        Params { read_pct: 95, ..Params::workload_a(threads, scale) }
    }
}

/// Run YCSB; returns throughput in Kops/s.
pub fn run(alloc: &DynAlloc, p: Params) -> f64 {
    let kv = KvStore::new(alloc.clone(), (p.records * 2).next_power_of_two());
    // Load phase.
    let value = vec![0xABu8; p.value_size];
    for k in 0..p.records as u64 {
        kv.set(k, &value);
    }
    let zipf = Zipf::new(p.records as u64, 0.99);
    let done = AtomicU64::new(0);
    let per_thread = p.ops / p.threads.max(1);
    let start = Instant::now();
    std::thread::scope(|s| {
        for tid in 0..p.threads {
            let kv = &kv;
            let zipf = &zipf;
            let done = &done;
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0x9C5B + tid as u64);
                let mut buf = vec![0u8; p.value_size + 32];
                let mut ops_done = 0u64;
                for i in 0..per_thread {
                    let key = zipf.sample(rng.gen());
                    if rng.gen_range(0..100) < p.read_pct {
                        let hit = kv.get_into(key, &mut buf);
                        debug_assert!(hit.is_some());
                    } else {
                        // Cycle sizes so replacement reallocates, as
                        // memcached's item store does.
                        let sz = p.value_size + (i % 3) * 8;
                        kv.set(key, &buf[..sz]);
                    }
                    ops_done += 1;
                }
                done.fetch_add(ops_done, Ordering::Relaxed);
            });
        }
    });
    let elapsed = start.elapsed();
    done.load(Ordering::Relaxed) as f64 / elapsed.as_secs_f64() / 1_000.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{make_allocator, AllocKind};
    use nvm::FlushModel;

    #[test]
    fn workload_a_runs_on_every_allocator() {
        for kind in AllocKind::all() {
            let a = make_allocator(kind, 128 << 20, FlushModel::free());
            let p = Params { threads: 2, records: 2_000, ops: 4_000, read_pct: 50, value_size: 100 };
            let kops = run(&a, p);
            assert!(kops > 0.0, "{kind:?}");
        }
    }

    #[test]
    fn workload_b_is_read_dominant() {
        let p = Params::workload_b(4, 0.1);
        assert_eq!(p.read_pct, 95);
        let a = make_allocator(AllocKind::Ralloc, 64 << 20, FlushModel::free());
        assert!(run(&a, Params { threads: 2, records: 1_000, ops: 2_000, ..p }) > 0.0);
    }
}
