//! Live-pool inspection: a writer holding the exclusive lock forces
//! `snapshot` onto the racy unlocked path, and every parser must
//! tolerate whatever the racing writer was mid-way through. After the
//! writer closes, the same pool snapshots locked and checks clean.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use ralloc::{Ralloc, RallocConfig};

#[test]
fn live_pool_snapshots_racily_then_checks_clean_after_close() {
    if !nvm::sys::available() {
        eprintln!("skipping: raw syscall layer unavailable on this host");
        return;
    }
    let path = std::env::temp_dir().join("rinspect_live.pool");
    let _ = std::fs::remove_file(&path);
    let (heap, _dirty) =
        Ralloc::open_file_mapped(&path, 64 << 20, RallocConfig::default()).expect("create pool");

    let stop = Arc::new(AtomicBool::new(false));
    let churn = {
        let heap = heap.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut held: Vec<*mut u8> = Vec::new();
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let p = heap.malloc(64 + (i as usize % 512));
                unsafe { std::ptr::write(p as *mut u64, i) };
                held.push(p);
                if held.len() > 64 {
                    heap.free(held.remove(0));
                }
                if i.is_multiple_of(32) {
                    heap.set_root::<u64>(7, p as *const u64);
                }
                i += 1;
            }
            for p in held {
                heap.free(p);
            }
        })
    };

    // Let the writer generate traffic, then snapshot mid-churn. The
    // writer's exclusive lock is still held, so the shared-lock attempt
    // must fall back to the racy read and say so.
    std::thread::sleep(std::time::Duration::from_millis(100));
    let snap = rinspect::snapshot(&path).expect("live snapshot");
    assert!(snap.live, "a pool with a live writer must snapshot as live");
    let dump = rinspect::dump(&snap.image);
    assert!(
        dump.contains("recovery required"),
        "a live pool reads as dirty (the writer has not closed):\n{dump}"
    );
    // Torn records from racing writers are counted and dropped, never
    // decoded; the scan itself must not flinch.
    // The churn publishes roots far faster than the 92-slot ring holds,
    // so the window has wrapped — but what survives the racy read is
    // still a sequenced, decodable suffix of the victim's history.
    let scan = rinspect::timeline(&snap.image);
    assert!(
        scan.events.iter().any(|e| e.kind_name() == "root_publish"),
        "a racy scan still decodes the recent protocol events"
    );
    assert!(
        scan.events.windows(2).all(|w| w[0].seq < w[1].seq),
        "surviving records stay in sequence order"
    );

    stop.store(true, Ordering::Relaxed);
    churn.join().unwrap();
    heap.set_root::<u64>(7, std::ptr::null());
    heap.close().expect("clean close");
    drop(heap);

    let snap = rinspect::snapshot(&path).expect("post-close snapshot");
    assert!(!snap.live, "a closed pool's lock is free: snapshot locks shared");
    let out = rinspect::check(&snap.image).expect("check");
    assert!(!out.recovered, "a cleanly closed pool needs no recovery");
    assert!(
        out.report.is_consistent(),
        "violations on a cleanly closed pool: {:?}",
        out.report.violations
    );
    let scan = rinspect::timeline(&snap.image);
    assert!(
        scan.events.iter().any(|e| e.kind_name() == "close"),
        "the clean close must be the timeline's final protocol event"
    );
    let _ = std::fs::remove_file(&path);
}
