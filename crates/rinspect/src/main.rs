//! `rinspect` — read-only forensics on a Ralloc pool file.
//!
//! ```text
//! rinspect dump     <pool>          raw header + geometry (corruption-tolerant)
//! rinspect stats    <pool>          per-class occupancy + fragmentation
//! rinspect timeline <pool> [--json] the persistent flight recorder's events
//! rinspect check    <pool>          recover a copy (if dirty) + invariant check
//! ```
//!
//! Exit codes: 0 ok/consistent, 1 violations found, 2 usage or I/O or
//! refused-image error. The pool file is never written; live pools are
//! snapshotted racily (see the library docs).

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: rinspect <dump|stats|timeline|check> <pool-file> [--json]\n\
         \n\
         Read-only inspection of a Ralloc pool file (live or post-mortem).\n\
         dump      raw header and geometry; works on corrupt images\n\
         stats     per-size-class occupancy and fragmentation histograms\n\
         timeline  the crash-surviving flight-recorder events (--json for machines)\n\
         check     adopt a private copy, recover if dirty, run the invariant checker"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    let json = match argv.iter().position(|a| a == "--json") {
        Some(i) => {
            argv.remove(i);
            true
        }
        None => false,
    };
    let mut args = argv.into_iter();
    let Some(cmd) = args.next() else { return usage() };
    let Some(path) = args.next().map(PathBuf::from) else { return usage() };
    if args.next().is_some() {
        return usage();
    }

    let snap = match rinspect::snapshot(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("rinspect: cannot snapshot {}: {e}", path.display());
            return ExitCode::from(2);
        }
    };
    if snap.live {
        eprintln!(
            "rinspect: {} has a live writer (exclusive lock held); \
             reading an unlocked racy snapshot",
            path.display()
        );
    }

    match cmd.as_str() {
        "dump" => {
            print!("{}", rinspect::dump(&snap.image));
            ExitCode::SUCCESS
        }
        "stats" => match rinspect::stats(&snap.image) {
            Ok(st) => {
                print!("{}", st.to_text());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("rinspect: {e}");
                ExitCode::from(2)
            }
        },
        "timeline" => {
            let scan = rinspect::timeline(&snap.image);
            if json {
                println!("{}", scan.to_json());
            } else if scan.events.is_empty() && scan.torn == 0 {
                println!("(flight ring empty or absent)");
            } else {
                print!("{}", scan.to_text());
            }
            ExitCode::SUCCESS
        }
        "check" => match rinspect::check(&snap.image) {
            Ok(out) => {
                let r = &out.report;
                println!(
                    "recovered: {}   superblocks: {}   free blocks: {}   free list: {}   \
                     partial lists: {}",
                    out.recovered,
                    r.superblocks,
                    r.free_blocks,
                    r.free_list_len,
                    r.partial_list_len
                );
                if r.is_consistent() {
                    println!("consistent: every structural invariant holds");
                    ExitCode::SUCCESS
                } else {
                    println!("{} violation(s):", r.violations.len());
                    for v in &r.violations {
                        println!("  [{}] {}", v.rule, v.detail);
                    }
                    ExitCode::from(1)
                }
            }
            Err(e) => {
                eprintln!("rinspect: {e}");
                ExitCode::from(2)
            }
        },
        _ => usage(),
    }
}
