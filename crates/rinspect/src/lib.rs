//! # rinspect — heap forensics for Ralloc pool files
//!
//! Opens a pool file **read-only** and answers the questions a crashed
//! (or misbehaving) deployment raises:
//!
//! * [`dump`] — raw header and geometry, tolerant of corrupt images
//!   (it parses bytes, it never adopts the heap);
//! * [`stats`] — per-size-class occupancy and fragmentation histograms
//!   from a full descriptor walk;
//! * [`timeline`] — the persistent flight recorder's event ring (the
//!   victim's last protocol steps, after a crash);
//! * [`check`] — adopt a *copy* of the image, run recovery if it is
//!   dirty, and run the full invariant checker
//!   ([`ralloc::checker::check_heap`]) against the result.
//!
//! ## Live pools
//!
//! [`snapshot`] takes a shared `flock` on the file. A *dead* pool grants
//! it (and the lock then excludes writers from reopening mid-inspection);
//! a *live* pool's writer holds the exclusive lock, so rinspect degrades
//! to an unlocked racy read — safe because every consumer of the bytes
//! is defensive: the flight scan drops checksum-failed records, `dump`
//! only reads header words, and `check`/`stats` operate on the private
//! copy, never on the writer's file. Nothing here ever writes the pool.

use std::io;
use std::path::Path;

use ralloc::anchor::SbState;
use ralloc::descriptor::{Desc, DescKind};
use ralloc::flight;
use ralloc::layout::{
    Geometry, COMMITTED_LEN_OFF, DESC_COMMITTED_LEN_OFF, DIRTY_OFF, FLIGHT_CAP, FLIGHT_MAGIC,
    FLIGHT_OFF, MAGIC, MAGIC_OFF, MAGIC_V3, MAGIC_V4, MAX_SB_OFF, META_SIZE, NUM_ROOTS,
    POOL_LEN_OFF, USED_SB_OFF,
};
use ralloc::{FlightScan, Ralloc, RallocConfig};
use std::sync::atomic::Ordering;

/// A read-only byte snapshot of a pool file.
pub struct Snapshot {
    pub image: Vec<u8>,
    /// True when a live writer held the exclusive lock and the bytes
    /// were read racily (crc-framed records make that safe to consume).
    pub live: bool,
}

/// Snapshot a pool file. Dead pools are read under a shared `flock`
/// (which also keeps writers out for the duration); live pools — whose
/// writer holds the exclusive lock — are read without a lock.
pub fn snapshot(path: &Path) -> io::Result<Snapshot> {
    match nvm::PoolGuard::acquire_shared(path) {
        Ok(guard) => {
            let image = std::fs::read(path)?;
            drop(guard);
            Ok(Snapshot { image, live: false })
        }
        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
            Ok(Snapshot { image: std::fs::read(path)?, live: true })
        }
        Err(e) => Err(e),
    }
}

fn word(image: &[u8], off: usize) -> Option<u64> {
    image
        .get(off..off + 8)
        .map(|b| u64::from_ne_bytes(b.try_into().unwrap()))
}

/// Raw header + geometry dump. Pure byte parsing: works on corrupt,
/// truncated, or down-level images (every field it could not read is
/// reported as such, and nothing panics).
pub fn dump(image: &[u8]) -> String {
    let mut s = String::new();
    s.push_str(&format!("image length:     {} bytes\n", image.len()));
    let Some(magic) = word(image, MAGIC_OFF) else {
        s.push_str("header:           too short for a Ralloc header (< 8 bytes)\n");
        return s;
    };
    let version = match magic {
        MAGIC => "v5 (current)",
        MAGIC_V4 => "v4 (migratable: descriptor frontier not yet framed)",
        MAGIC_V3 => "v3 (migratable: flight ring not yet carved)",
        _ => "not a Ralloc image",
    };
    s.push_str(&format!("magic:            {magic:#018x}  {version}\n"));
    if magic != MAGIC && magic != MAGIC_V4 && magic != MAGIC_V3 {
        return s;
    }
    let pool_len = word(image, POOL_LEN_OFF).unwrap_or(0);
    let dirty = word(image, DIRTY_OFF);
    let max_sb = word(image, MAX_SB_OFF);
    let used_sb = word(image, USED_SB_OFF);
    let committed = word(image, COMMITTED_LEN_OFF);
    s.push_str(&format!("reserved span:    {pool_len} bytes\n"));
    s.push_str(&format!(
        "dirty:            {}\n",
        match dirty {
            Some(0) => "0 (clean close)".into(),
            Some(1) => "1 (crash or live writer: recovery required)".into(),
            Some(v) => format!("{v} (corrupt)"),
            None => "<unreadable>".into(),
        }
    ));
    s.push_str(&format!(
        "max superblocks:  {}\n",
        max_sb.map_or("<unreadable>".into(), |v| v.to_string())
    ));
    s.push_str(&format!(
        "used superblocks: {}\n",
        used_sb.map_or("<unreadable>".into(), |v| v.to_string())
    ));
    s.push_str(&format!(
        "sb frontier:      {}{}\n",
        committed.map_or("<unreadable>".into(), |v| v.to_string()),
        if committed.is_some_and(|c| c as usize > image.len()) {
            "  (EXCEEDS the file: truncated image)"
        } else {
            ""
        }
    ));
    // The descriptor-frontier word exists only from v5 on; a v4/v3 image
    // keeps that header slack zeroed and commits its whole descriptor
    // region implicitly.
    if magic == MAGIC {
        s.push_str(&format!(
            "desc frontier:    {}\n",
            word(image, DESC_COMMITTED_LEN_OFF).map_or("<unreadable>".into(), |v| v.to_string()),
        ));
    } else {
        s.push_str("desc frontier:    implicit (pre-v5: whole descriptor region committed)\n");
    }
    if pool_len >= Geometry::pool_len_for_capacity(1) as u64 {
        let geo = Geometry::from_pool_len(pool_len as usize);
        s.push_str(&format!(
            "geometry:         metadata [0, {}), descriptors [{}, {}), superblocks [{}, ...)\n",
            META_SIZE,
            geo.desc(0),
            geo.sb(0),
            geo.sb(0),
        ));
        if magic == MAGIC {
            let dw = word(image, DESC_COMMITTED_LEN_OFF).unwrap_or(0) as usize;
            let ok = dw >= geo.desc(0) && dw <= geo.sb(0);
            s.push_str(&format!(
                "desc committed:   {} of {} descriptors{}\n",
                geo.desc_committed_sb(dw),
                geo.max_sb,
                if ok { "" } else { "  (frontier OUTSIDE the descriptor region)" },
            ));
        }
    }
    let roots_set = (0..NUM_ROOTS)
        .filter(|&i| {
            // Root slots sit at geo-independent metadata offsets.
            word(image, ralloc::layout::ROOTS_OFF + i * 8).is_some_and(|v| v != 0)
        })
        .count();
    s.push_str(&format!("roots set:        {roots_set} of {NUM_ROOTS}\n"));
    match word(image, FLIGHT_OFF) {
        Some(FLIGHT_MAGIC) => {
            let scan = flight::scan_image(image);
            let range = match (scan.events.first(), scan.events.last()) {
                (Some(a), Some(z)) => format!("seq {}..={}", a.seq, z.seq),
                _ => "empty".into(),
            };
            s.push_str(&format!(
                "flight ring:      {} record(s) ({range}), {} torn, capacity {}\n",
                scan.events.len(),
                scan.torn,
                FLIGHT_CAP
            ));
        }
        _ => s.push_str("flight ring:      absent (pre-v4 image or unwritten)\n"),
    }
    s
}

/// The flight timeline of an image ([`flight::scan_image`]): the ring's
/// surviving records in sequence order plus the torn count.
pub fn timeline(image: &[u8]) -> FlightScan {
    flight::scan_image(image)
}

/// Adopt a **copy** of the image (the caller's file is never written)
/// for stats/check. Corrupt images make adoption panic; that panic is
/// caught and returned as an error string.
fn adopt_copy(image: &[u8]) -> Result<(Ralloc, bool), String> {
    let image = image.to_vec();
    std::panic::catch_unwind(move || Ralloc::from_image(&image, RallocConfig::default()))
        .map_err(|p| {
            let msg = p
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| p.downcast_ref::<&str>().copied())
                .unwrap_or("adoption panicked");
            format!("image refused: {msg}")
        })
}

/// Occupancy histogram bucket count (eighths of a superblock's blocks).
const OCC_BUCKETS: usize = 8;

/// Per-size-class usage derived from a descriptor walk.
#[derive(Debug, Default, Clone)]
pub struct ClassStats {
    pub superblocks: usize,
    pub blocks_used: u64,
    pub blocks_free: u64,
    pub block_size: u64,
    /// Superblocks bucketed by used-fraction: index i counts those with
    /// used/max in [i/8, (i+1)/8) (full superblocks land in the last).
    pub occupancy: [usize; OCC_BUCKETS],
}

/// Heap-wide stats from walking every carved descriptor.
#[derive(Debug, Default, Clone)]
pub struct HeapStats {
    pub dirty: bool,
    pub used_sb: usize,
    pub committed_sb: usize,
    pub large_spans: usize,
    pub large_superblocks: usize,
    pub free_superblocks: usize,
    pub invalid_superblocks: usize,
    /// Indexed by size class (0 unused; classes start at 1).
    pub classes: Vec<ClassStats>,
}

impl HeapStats {
    /// Fraction of blocks free across partial/full small superblocks —
    /// the internal-fragmentation headline.
    pub fn frag_ratio(&self) -> f64 {
        let (used, free) = self.classes.iter().fold((0u64, 0u64), |(u, f), c| {
            (u + c.blocks_used, f + c.blocks_free)
        });
        if used + free == 0 {
            0.0
        } else {
            free as f64 / (used + free) as f64
        }
    }

    /// Render as an aligned text table with occupancy sparklines.
    pub fn to_text(&self) -> String {
        let mut s = format!(
            "dirty: {}   superblocks: {} used / {} committed   large: {} span(s) over {} sb   \
             free: {}   invalid: {}\n",
            self.dirty,
            self.used_sb,
            self.committed_sb,
            self.large_spans,
            self.large_superblocks,
            self.free_superblocks,
            self.invalid_superblocks,
        );
        s.push_str(&format!(
            "small-block fragmentation: {:.1}% of blocks free in live superblocks\n",
            self.frag_ratio() * 100.0
        ));
        s.push_str("class  blksz     sbs    used blks    free blks  occupancy (empty->full)\n");
        for (class, c) in self.classes.iter().enumerate() {
            if c.superblocks == 0 {
                continue;
            }
            let bars: String = c
                .occupancy
                .iter()
                .map(|&n| {
                    // Log-ish glyph ramp so one huge bucket doesn't blank
                    // the rest.
                    match n {
                        0 => '.',
                        1..=2 => ':',
                        3..=9 => '+',
                        _ => '#',
                    }
                })
                .collect();
            s.push_str(&format!(
                "{class:>5}  {:>5}  {:>6}  {:>11}  {:>11}  [{bars}]\n",
                c.block_size, c.superblocks, c.blocks_used, c.blocks_free
            ));
        }
        s
    }
}

/// Walk every carved descriptor of the image and aggregate per-class
/// occupancy. The image is adopted as a private copy; dirty images are
/// walked as-is (anchors are best-effort after a crash — run [`check`]
/// for the recovered truth).
pub fn stats(image: &[u8]) -> Result<HeapStats, String> {
    let (heap, dirty) = adopt_copy(image)?;
    let pool = heap.pool();
    let geo = Geometry::from_pool_len(pool.len());
    let used = heap.used_superblocks();
    let mut out = HeapStats {
        dirty,
        used_sb: used,
        committed_sb: geo.committed_sb(pool.committed_len()),
        classes: vec![ClassStats::default(); ralloc::size_class::NUM_CLASSES],
        ..Default::default()
    };
    let mut skip = 0usize;
    for idx in 0..used {
        if skip > 0 {
            skip -= 1;
            continue;
        }
        let d = Desc::new(pool, &geo, idx as u32);
        match d.classify(&geo, used) {
            DescKind::Small { class } => {
                let a = d.anchor(Ordering::Acquire);
                if a.state == SbState::Empty {
                    out.free_superblocks += 1;
                    continue;
                }
                let max = d.max_count() as u64;
                let free = (a.count as u64).min(max);
                let c = &mut out.classes[class as usize];
                c.superblocks += 1;
                c.block_size = d.block_size();
                c.blocks_free += free;
                c.blocks_used += max - free;
                let bucket = (((max - free) * OCC_BUCKETS as u64) / max.max(1))
                    .min(OCC_BUCKETS as u64 - 1);
                c.occupancy[bucket as usize] += 1;
            }
            DescKind::LargeHead { span } => {
                out.large_spans += 1;
                out.large_superblocks += span;
                skip = span.saturating_sub(1);
            }
            // A continuation without a preceding live head, or garbage:
            // both read as reclaimable space here; `check` judges them.
            DescKind::Continuation => out.invalid_superblocks += 1,
            DescKind::Invalid => out.free_superblocks += 1,
        }
    }
    Ok(out)
}

/// The verdict of [`check`].
#[derive(Debug)]
pub struct CheckOutcome {
    /// The image needed (and received) recovery before checking.
    pub recovered: bool,
    pub report: ralloc::CheckReport,
}

/// Adopt a private copy of the image, run recovery if it is dirty, and
/// run the full structural-invariant checker. The pool file is never
/// written: recovery mutates only the in-memory copy.
pub fn check(image: &[u8]) -> Result<CheckOutcome, String> {
    let (heap, dirty) = adopt_copy(image)?;
    if dirty {
        // No filter functions are registered post-mortem, so roots trace
        // conservatively — exactly what recovery promises to support.
        heap.recover();
    }
    Ok(CheckOutcome { recovered: dirty, report: ralloc::check_heap(&heap) })
}
