//! Region-based persistent offsets.
//!
//! The paper's `pptr` takes an optional template parameter naming a region
//! (metadata, descriptor, or superblock) and then stores a *based* offset
//! from that region's start instead of a self-relative offset. Application
//! programmers never need these; they appear only inside allocator
//! metadata (persistent roots live in the metadata region but point into
//! the superblock region). [`RIdx`] is the Rust analogue: a plain region
//! offset with an explicit null encoding, convertible to/from absolute
//! addresses given the region base.

/// A persistent offset into a named region (null-able).
///
/// `repr(transparent)` over `u64`; the all-ones value is null so that a
/// *zeroed* word decodes as offset 0 — callers that need zeroed-memory ==
/// null (like the root array) store `RIdx::encode_or_zero` instead, which
/// uses offset+1 encoding. Two encodings are provided because descriptors
/// index from 0 while roots must treat fresh zeroed NVM as "no root".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(transparent)]
pub struct RIdx(pub u64);

impl RIdx {
    /// Null marker for the plain encoding.
    pub const NULL: RIdx = RIdx(u64::MAX);

    /// A non-null offset.
    #[inline]
    pub fn new(off: u64) -> Self {
        debug_assert_ne!(off, u64::MAX);
        RIdx(off)
    }

    /// True if this is the null marker.
    #[inline]
    pub fn is_null(&self) -> bool {
        self.0 == u64::MAX
    }

    /// Offset value; panics on null.
    #[inline]
    pub fn get(&self) -> u64 {
        assert!(!self.is_null(), "RIdx::get on null");
        self.0
    }

    /// Absolute address given the region base; None if null.
    #[inline]
    pub fn to_addr(&self, base: usize) -> Option<usize> {
        if self.is_null() {
            None
        } else {
            Some(base + self.0 as usize)
        }
    }

    /// Build from an absolute address within the region.
    #[inline]
    pub fn from_addr(base: usize, addr: usize) -> Self {
        debug_assert!(addr >= base);
        RIdx((addr - base) as u64)
    }

    // ---- offset+1 encoding: raw 0 means null (for zero-initialized NVM) ----

    /// Encode an optional offset such that raw `0` is null.
    #[inline]
    pub fn encode_or_zero(off: Option<u64>) -> u64 {
        match off {
            None => 0,
            Some(o) => o + 1,
        }
    }

    /// Decode the offset+1 encoding.
    #[inline]
    pub fn decode_or_zero(raw: u64) -> Option<u64> {
        raw.checked_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_handling() {
        assert!(RIdx::NULL.is_null());
        assert!(!RIdx::new(0).is_null());
        assert_eq!(RIdx::NULL.to_addr(0x1000), None);
    }

    #[test]
    fn addr_roundtrip() {
        let base = 0x7f00_0000usize;
        let r = RIdx::from_addr(base, base + 4096);
        assert_eq!(r.get(), 4096);
        assert_eq!(r.to_addr(base), Some(base + 4096));
        // Remapping at a different base lands at the same relative spot.
        let base2 = 0x1_0000_0000usize;
        assert_eq!(r.to_addr(base2), Some(base2 + 4096));
    }

    #[test]
    fn zero_encoding() {
        assert_eq!(RIdx::encode_or_zero(None), 0);
        assert_eq!(RIdx::encode_or_zero(Some(0)), 1);
        assert_eq!(RIdx::decode_or_zero(0), None);
        assert_eq!(RIdx::decode_or_zero(1), Some(0));
        assert_eq!(RIdx::decode_or_zero(4097), Some(4096));
    }

    #[test]
    #[should_panic]
    fn get_on_null_panics() {
        RIdx::NULL.get();
    }
}
