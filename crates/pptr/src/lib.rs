//! # pptr — position-independent persistent pointers
//!
//! Persistent data must be mappable at different virtual addresses in
//! different processes and across runs (paper §4.6), which rules out
//! storing absolute virtual addresses in NVM. Following the paper (and
//! Chen et al.'s *off-holders*), this crate provides:
//!
//! * [`Pptr<T>`] — a 64-bit **self-relative** pointer: it stores the offset
//!   of the target *from the pointer's own location*. Because the
//!   location is always at hand when loading or storing through the
//!   pointer, no segment base register is needed, and the representation
//!   stays 64 bits (unlike PMDK's 128-bit based pointers, which force
//!   wide-CAS for atomic updates).
//! * [`AtomicPptr<T>`] — the same representation behind an `AtomicU64`,
//!   CAS-able with a single-word compare-and-swap.
//! * [`RIdx`] — a region-based index/offset used *inside allocator
//!   metadata only* (persistent roots, descriptor links), where the paper
//!   likewise uses based pointers with a region-index template parameter.
//! * [`Counted`] — a packed {index, counter} word for ABA-safe Treiber
//!   stack heads (34-bit counter + 30-bit index, paper §4.2).
//!
//! ## The tag pattern
//!
//! Given the paper's hard 1 TB limit on the superblock region, a
//! self-relative offset needs at most 41 bits plus sign. The upper 16 bits
//! of every non-null `Pptr` hold the uncommon pattern [`PPTR_TAG`]
//! (`0xA5A5`), which is masked off on dereference. During conservative
//! post-crash garbage collection, only 64-bit words carrying this tag are
//! treated as candidate references, which drastically reduces the chance
//! that integer data is mistaken for a pointer (paper §4.6). The all-zero
//! word is the null pointer, so zero-initialized memory reads as null.

mod counted;
mod pptr_impl;
mod ridx;
mod riv;

pub use counted::Counted;
pub use pptr_impl::{AtomicPptr, Pptr, PPTR_LOW_MASK, PPTR_TAG, PPTR_TAG_SHIFT};
pub use ridx::RIdx;
pub use riv::{is_riv_pattern, AtomicRivPtr, RegionTable, RivPtr, MAX_REGIONS, REGIONS, RIV_TAG};

/// True if `word` carries the off-holder tag, i.e. could be a non-null
/// `Pptr` bit pattern. Used by the conservative GC filter.
#[inline]
pub fn is_pptr_pattern(word: u64) -> bool {
    word >> PPTR_TAG_SHIFT == PPTR_TAG as u64
}

/// Interpret `word`, found at address `addr_of_word`, as a candidate
/// self-relative pointer; return the absolute target address if the tag
/// matches. Alignment and range checks are the caller's job (the GC knows
/// the heap bounds and block geometry).
#[inline]
pub fn decode_candidate(addr_of_word: usize, word: u64) -> Option<usize> {
    if !is_pptr_pattern(word) || word == 0 {
        return None;
    }
    let off = sign_extend_48(word & PPTR_LOW_MASK);
    Some((addr_of_word as i64).wrapping_add(off) as usize)
}

/// Sign-extend the low 48 bits of `v`.
#[inline]
pub(crate) fn sign_extend_48(v: u64) -> i64 {
    ((v << 16) as i64) >> 16
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_detection() {
        assert!(!is_pptr_pattern(0));
        assert!(!is_pptr_pattern(42));
        assert!(!is_pptr_pattern(u64::MAX));
        assert!(is_pptr_pattern((PPTR_TAG as u64) << 48));
        assert!(is_pptr_pattern((PPTR_TAG as u64) << 48 | 0x1234));
    }

    #[test]
    fn sign_extension() {
        assert_eq!(sign_extend_48(0), 0);
        assert_eq!(sign_extend_48(1), 1);
        assert_eq!(sign_extend_48(0x0000_7FFF_FFFF_FFFF), 0x7FFF_FFFF_FFFF);
        assert_eq!(sign_extend_48(0x0000_FFFF_FFFF_FFFF), -1);
        assert_eq!(sign_extend_48(0x0000_8000_0000_0000), -(1i64 << 47));
    }

    #[test]
    fn decode_candidate_roundtrip() {
        let here = 0x7000_0000usize;
        let target = 0x7000_4000usize;
        let off = (target as i64 - here as i64) as u64 & PPTR_LOW_MASK;
        let word = off | (PPTR_TAG as u64) << 48;
        assert_eq!(decode_candidate(here, word), Some(target));
        // backwards
        let off = (here as i64 - target as i64) as u64 & PPTR_LOW_MASK;
        let word = off | (PPTR_TAG as u64) << 48;
        assert_eq!(decode_candidate(target, word), Some(here));
    }

    #[test]
    fn decode_rejects_untagged() {
        assert_eq!(decode_candidate(0x1000, 0x2000), None);
        assert_eq!(decode_candidate(0x1000, 0), None);
    }
}
