//! Self-relative (off-holder) pointers and their atomic variant.

use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::sign_extend_48;

/// Uncommon bit pattern stored in the top 16 bits of every non-null
/// [`Pptr`]. Chosen so that small integers, ASCII text, and typical float
/// bit patterns never match; see crate docs.
pub const PPTR_TAG: u16 = 0xA5A5;

/// Bit position of the tag.
pub const PPTR_TAG_SHIFT: u32 = 48;

/// Mask selecting the 48-bit signed offset field.
pub const PPTR_LOW_MASK: u64 = (1u64 << 48) - 1;

/// A 64-bit position-independent pointer to `T`: stores the signed offset
/// of the target from the pointer's **own address** (an *off-holder*).
///
/// Because the offset is relative to the field itself, a `Pptr` is only
/// meaningful at a fixed location inside the persistent region — moving
/// the struct that contains it (e.g. with `memcpy` within the heap)
/// invalidates it, just like in the paper's C++ implementation. It is
/// `repr(transparent)` over `u64`, and the all-zero value is null, so
/// zero-filled NVM pages parse as null pointers.
///
/// `Pptr` is deliberately *not* `Copy`: copying it to a new address would
/// silently retarget it. Read it with [`Pptr::as_ptr`], write it with
/// [`Pptr::set`].
#[repr(transparent)]
pub struct Pptr<T> {
    raw: u64,
    _marker: PhantomData<*const T>,
}

impl<T> Pptr<T> {
    /// A null pointer (also the value of zeroed memory).
    pub const fn null() -> Self {
        Pptr { raw: 0, _marker: PhantomData }
    }

    /// Compute the raw encoding for a pointer *located at* `field_addr`
    /// that should target `target_addr`.
    #[inline]
    pub fn encode(field_addr: usize, target_addr: usize) -> u64 {
        let off = (target_addr as i64).wrapping_sub(field_addr as i64);
        debug_assert!(
            (-(1i64 << 47)..(1i64 << 47)).contains(&off),
            "pptr offset out of 48-bit range: {off}"
        );
        (off as u64 & PPTR_LOW_MASK) | ((PPTR_TAG as u64) << PPTR_TAG_SHIFT)
    }

    /// Decode a raw encoding found at `field_addr` into an absolute
    /// address (`None` when null).
    #[inline]
    pub fn decode(field_addr: usize, raw: u64) -> Option<usize> {
        if raw == 0 {
            return None;
        }
        let off = sign_extend_48(raw & PPTR_LOW_MASK);
        Some((field_addr as i64).wrapping_add(off) as usize)
    }

    /// The raw 64-bit representation.
    #[inline]
    pub fn raw(&self) -> u64 {
        self.raw
    }

    /// True if null.
    #[inline]
    pub fn is_null(&self) -> bool {
        self.raw == 0
    }

    /// Address of this pointer field itself.
    #[inline]
    fn self_addr(&self) -> usize {
        self as *const Self as usize
    }

    /// Absolute target address, or null.
    #[inline]
    pub fn as_ptr(&self) -> *mut T {
        match Self::decode(self.self_addr(), self.raw) {
            Some(a) => a as *mut T,
            None => std::ptr::null_mut(),
        }
    }

    /// Point this field at `target` (or null).
    #[inline]
    pub fn set(&mut self, target: *const T) {
        self.raw = if target.is_null() {
            0
        } else {
            Self::encode(self.self_addr(), target as usize)
        };
    }

    /// Dereference.
    ///
    /// # Safety
    /// The pointer must be non-null and target a live, properly
    /// initialized `T` within the mapped region; the usual aliasing rules
    /// apply.
    #[inline]
    pub unsafe fn as_ref(&self) -> &T {
        debug_assert!(!self.is_null());
        &*self.as_ptr()
    }
}

impl<T> Default for Pptr<T> {
    fn default() -> Self {
        Self::null()
    }
}

impl<T> std::fmt::Debug for Pptr<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Pptr({:p})", self.as_ptr())
    }
}

/// An atomic off-holder: [`Pptr`] semantics over an `AtomicU64`, updatable
/// with a plain 64-bit CAS (no wide-CAS needed — this is the point of
/// self-relative over base-plus-offset representations, paper §1/§4.6).
#[repr(transparent)]
pub struct AtomicPptr<T> {
    raw: AtomicU64,
    _marker: PhantomData<*const T>,
}

impl<T> AtomicPptr<T> {
    /// A new null atomic pointer.
    pub const fn null() -> Self {
        AtomicPptr { raw: AtomicU64::new(0), _marker: PhantomData }
    }

    #[inline]
    fn self_addr(&self) -> usize {
        self as *const Self as usize
    }

    /// Load the absolute target address (null if unset).
    #[inline]
    pub fn load(&self, order: Ordering) -> *mut T {
        match Pptr::<T>::decode(self.self_addr(), self.raw.load(order)) {
            Some(a) => a as *mut T,
            None => std::ptr::null_mut(),
        }
    }

    /// Load the raw encoding (useful for CAS loops that must preserve the
    /// exact expected bits).
    #[inline]
    pub fn load_raw(&self, order: Ordering) -> u64 {
        self.raw.load(order)
    }

    /// Store a new target.
    #[inline]
    pub fn store(&self, target: *const T, order: Ordering) {
        let raw = if target.is_null() {
            0
        } else {
            Pptr::<T>::encode(self.self_addr(), target as usize)
        };
        self.raw.store(raw, order);
    }

    /// Compare-and-swap by target address. Returns `Ok(current)` on
    /// success, `Err(actual_target)` on failure.
    #[inline]
    pub fn compare_exchange(
        &self,
        current: *const T,
        new: *const T,
        success: Ordering,
        failure: Ordering,
    ) -> Result<*mut T, *mut T> {
        let enc = |p: *const T| {
            if p.is_null() {
                0
            } else {
                Pptr::<T>::encode(self.self_addr(), p as usize)
            }
        };
        let dec = |raw: u64| match Pptr::<T>::decode(self.self_addr(), raw) {
            Some(a) => a as *mut T,
            None => std::ptr::null_mut(),
        };
        match self
            .raw
            .compare_exchange(enc(current), enc(new), success, failure)
        {
            Ok(prev) => Ok(dec(prev)),
            Err(prev) => Err(dec(prev)),
        }
    }
}

impl<T> Default for AtomicPptr<T> {
    fn default() -> Self {
        Self::null()
    }
}

impl<T> std::fmt::Debug for AtomicPptr<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AtomicPptr({:p})", self.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_roundtrip() {
        let p: Pptr<u64> = Pptr::null();
        assert!(p.is_null());
        assert!(p.as_ptr().is_null());
        assert_eq!(p.raw(), 0);
    }

    #[test]
    fn set_and_read_back() {
        let target: u64 = 99;
        let mut p: Pptr<u64> = Pptr::null();
        p.set(&target);
        assert!(!p.is_null());
        assert_eq!(p.as_ptr(), &target as *const u64 as *mut u64);
        unsafe { assert_eq!(*p.as_ref(), 99) };
        p.set(std::ptr::null());
        assert!(p.is_null());
    }

    #[test]
    fn raw_carries_tag() {
        let target: u64 = 1;
        let mut p: Pptr<u64> = Pptr::null();
        p.set(&target);
        assert!(crate::is_pptr_pattern(p.raw()));
    }

    #[test]
    fn self_pointing_is_not_null() {
        // Offset 0 (a pointer to its own address) must be distinguishable
        // from null — the tag guarantees it.
        let mut p: Pptr<Pptr<u64>> = Pptr::null();
        let addr = &p as *const _ as usize;
        p.set(addr as *const Pptr<u64>);
        assert!(!p.is_null());
        assert_eq!(p.as_ptr() as usize, addr);
    }

    #[test]
    fn negative_offsets_work() {
        let pair: (u64, Pptr<u64>) = (7, Pptr::null());
        let mut pair = pair;
        let first = &pair.0 as *const u64;
        pair.1.set(first); // target address below the field address
        assert_eq!(pair.1.as_ptr(), first as *mut u64);
    }

    #[test]
    fn same_target_moves_with_field_address() {
        // Two pptr fields at different addresses targeting the same object
        // have different raw encodings — the essence of self-relativity.
        let target: u64 = 5;
        let mut a: Pptr<u64> = Pptr::null();
        let mut b: Pptr<u64> = Pptr::null();
        a.set(&target);
        b.set(&target);
        assert_eq!(a.as_ptr(), b.as_ptr());
        assert_ne!(a.raw(), b.raw());
    }

    #[test]
    fn atomic_store_load() {
        let target: u64 = 123;
        let p: AtomicPptr<u64> = AtomicPptr::null();
        assert!(p.load(Ordering::Relaxed).is_null());
        p.store(&target, Ordering::Release);
        assert_eq!(p.load(Ordering::Acquire), &target as *const u64 as *mut u64);
    }

    #[test]
    fn atomic_cas_success_and_failure() {
        let t1: u64 = 1;
        let t2: u64 = 2;
        let p: AtomicPptr<u64> = AtomicPptr::null();
        assert!(p
            .compare_exchange(std::ptr::null(), &t1, Ordering::AcqRel, Ordering::Acquire)
            .is_ok());
        // Wrong expectation fails and reports the actual value.
        let err = p
            .compare_exchange(std::ptr::null(), &t2, Ordering::AcqRel, Ordering::Acquire)
            .unwrap_err();
        assert_eq!(err, &t1 as *const u64 as *mut u64);
        assert!(p
            .compare_exchange(&t1, &t2, Ordering::AcqRel, Ordering::Acquire)
            .is_ok());
        assert_eq!(p.load(Ordering::Relaxed), &t2 as *const u64 as *mut u64);
    }

    #[test]
    fn encode_decode_inverse() {
        for (field, target) in [
            (0x10000usize, 0x10000usize),
            (0x10000, 0x90000),
            (0x90000, 0x10000),
            (0x7fff_0000, 0x0000_8000),
        ] {
            let raw = Pptr::<u8>::encode(field, target);
            assert_eq!(Pptr::<u8>::decode(field, raw), Some(target));
        }
    }
}
