//! Region-ID-in-Value (RIV) pointers — the paper's stated near-term plan
//! (§4.6): "implement a Region ID in Value variant of `pptr`, retaining
//! the smart pointer interface and the size of 64 bits" (after Chen et
//! al., MICRO'17). Self-relative off-holders cannot reference a *different*
//! persistent heap; a [`RivPtr`] can, by naming the target region in the
//! value:
//!
//! ```text
//! 63      56 55      48 47                                            0
//! +---------+----------+-----------------------------------------------+
//! | 0xA6    | region id| region offset + 1  (0 = null in this field)   |
//! +---------+----------+-----------------------------------------------+
//! ```
//!
//! A process-wide [`RegionTable`] maps region ids to the virtual address
//! at which each persistent region is currently mapped; every process
//! (and every run) re-registers its mappings, so the stored value is
//! position-independent. The 0xA6 tag is distinct from the off-holder
//! tag (0xA5 high byte), so conservative GC can tell them apart.
//!
//! Like the paper's plan, this is a *pointer representation*; cross-heap
//! garbage collection is out of scope (a region's GC treats incoming RIV
//! pointers from other regions as roots that must be registered
//! explicitly).

use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// High-byte tag marking RIV pointers.
pub const RIV_TAG: u8 = 0xA6;

/// Maximum number of registered regions.
pub const MAX_REGIONS: usize = 256;

const OFF_MASK: u64 = (1u64 << 48) - 1;

/// Process-wide region-id → (base, len) mapping. Registration is
/// per-run: ids are persistent, addresses are not.
pub struct RegionTable {
    bases: [AtomicUsize; MAX_REGIONS],
    lens: [AtomicUsize; MAX_REGIONS],
}

impl RegionTable {
    const fn new() -> RegionTable {
        // AtomicUsize isn't Copy; build the arrays with a const block.
        RegionTable {
            bases: [const { AtomicUsize::new(0) }; MAX_REGIONS],
            lens: [const { AtomicUsize::new(0) }; MAX_REGIONS],
        }
    }

    /// Map `id` to the region currently at `base..base+len`.
    pub fn register(&self, id: u8, base: usize, len: usize) {
        assert!(base != 0, "region base must be non-null");
        self.lens[id as usize].store(len, Ordering::Release);
        self.bases[id as usize].store(base, Ordering::Release);
    }

    /// Remove a mapping (e.g. the heap was closed).
    pub fn unregister(&self, id: u8) {
        self.bases[id as usize].store(0, Ordering::Release);
        self.lens[id as usize].store(0, Ordering::Release);
    }

    /// Current base of `id`, if registered.
    pub fn base(&self, id: u8) -> Option<usize> {
        match self.bases[id as usize].load(Ordering::Acquire) {
            0 => None,
            b => Some(b),
        }
    }

    /// Current extent of `id`, if registered.
    pub fn len(&self, id: u8) -> Option<usize> {
        self.base(id)?;
        Some(self.lens[id as usize].load(Ordering::Acquire))
    }

    /// Reverse lookup: which registered region contains `addr`?
    pub fn region_of(&self, addr: usize) -> Option<(u8, usize)> {
        for id in 0..MAX_REGIONS {
            let base = self.bases[id].load(Ordering::Acquire);
            if base == 0 {
                continue;
            }
            let len = self.lens[id].load(Ordering::Acquire);
            if addr >= base && addr < base + len {
                return Some((id as u8, base));
            }
        }
        None
    }
}

/// The process-wide table used by [`RivPtr`].
pub static REGIONS: RegionTable = RegionTable::new();

/// True if `word` carries the RIV tag.
#[inline]
pub fn is_riv_pattern(word: u64) -> bool {
    (word >> 56) as u8 == RIV_TAG && word & OFF_MASK != 0
}

/// A 64-bit cross-region persistent pointer (RIV representation).
///
/// Unlike [`crate::Pptr`], the encoding does not depend on the field's
/// own address, so `RivPtr` is `Copy` and can be moved freely; the cost
/// is one region-table lookup per dereference (Chen et al. measure this
/// variant within ~10% of raw pointers as well).
#[repr(transparent)]
pub struct RivPtr<T> {
    raw: u64,
    _marker: PhantomData<*const T>,
}

impl<T> Clone for RivPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for RivPtr<T> {}

impl<T> RivPtr<T> {
    /// The null pointer (also zeroed-NVM's value).
    pub const fn null() -> RivPtr<T> {
        RivPtr { raw: 0, _marker: PhantomData }
    }

    /// Point at `addr`, which must lie inside the registered region `id`.
    pub fn new(id: u8, addr: usize) -> RivPtr<T> {
        let base = REGIONS.base(id).expect("RivPtr::new: region not registered");
        let len = REGIONS.len(id).unwrap();
        assert!(
            addr >= base && addr < base + len,
            "RivPtr::new: address outside region {id}"
        );
        let off1 = (addr - base) as u64 + 1;
        debug_assert!(off1 <= OFF_MASK);
        RivPtr {
            raw: ((RIV_TAG as u64) << 56) | ((id as u64) << 48) | off1,
            _marker: PhantomData,
        }
    }

    /// Point at `addr` in whichever registered region contains it.
    pub fn from_addr(addr: usize) -> RivPtr<T> {
        let (id, _) = REGIONS
            .region_of(addr)
            .expect("RivPtr::from_addr: address in no registered region");
        Self::new(id, addr)
    }

    /// Raw 64-bit representation.
    pub fn raw(&self) -> u64 {
        self.raw
    }

    /// Rebuild from the raw representation (e.g. read from NVM).
    pub fn from_raw(raw: u64) -> RivPtr<T> {
        debug_assert!(raw == 0 || is_riv_pattern(raw));
        RivPtr { raw, _marker: PhantomData }
    }

    /// True if null.
    pub fn is_null(&self) -> bool {
        self.raw == 0
    }

    /// The target region's id (None if null).
    pub fn region(&self) -> Option<u8> {
        if self.is_null() {
            None
        } else {
            Some((self.raw >> 48) as u8)
        }
    }

    /// Resolve to an absolute address in the current mapping. `None` if
    /// null or if the region is not registered in this process.
    pub fn as_ptr(&self) -> Option<*mut T> {
        if self.is_null() {
            return None;
        }
        let id = (self.raw >> 48) as u8;
        let base = REGIONS.base(id)?;
        let off = (self.raw & OFF_MASK) - 1;
        Some((base + off as usize) as *mut T)
    }

    /// Dereference.
    ///
    /// # Safety
    /// The target region must be registered at its current mapping and
    /// the pointee must be a live `T`.
    pub unsafe fn as_ref(&self) -> Option<&T> {
        self.as_ptr().map(|p| unsafe { &*p })
    }
}

impl<T> Default for RivPtr<T> {
    fn default() -> Self {
        Self::null()
    }
}

impl<T> std::fmt::Debug for RivPtr<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (self.region(), self.as_ptr()) {
            (Some(id), Some(p)) => write!(f, "RivPtr(region {id} -> {p:p})"),
            (Some(id), None) => write!(f, "RivPtr(region {id}, unmapped)"),
            _ => write!(f, "RivPtr(null)"),
        }
    }
}

/// Atomic RIV pointer: position-independent cross-region pointer with
/// single-word CAS (the advantage over 128-bit based pointers).
#[repr(transparent)]
pub struct AtomicRivPtr<T> {
    raw: AtomicU64,
    _marker: PhantomData<*const T>,
}

impl<T> AtomicRivPtr<T> {
    /// A new null pointer.
    pub const fn null() -> AtomicRivPtr<T> {
        AtomicRivPtr { raw: AtomicU64::new(0), _marker: PhantomData }
    }

    /// Load the current value.
    pub fn load(&self, order: Ordering) -> RivPtr<T> {
        RivPtr::from_raw(self.raw.load(order))
    }

    /// Store a new value.
    pub fn store(&self, p: RivPtr<T>, order: Ordering) {
        self.raw.store(p.raw, order)
    }

    /// Single-word compare-and-swap.
    pub fn compare_exchange(
        &self,
        current: RivPtr<T>,
        new: RivPtr<T>,
        success: Ordering,
        failure: Ordering,
    ) -> Result<RivPtr<T>, RivPtr<T>> {
        self.raw
            .compare_exchange(current.raw, new.raw, success, failure)
            .map(RivPtr::from_raw)
            .map_err(RivPtr::from_raw)
    }
}

impl<T> Default for AtomicRivPtr<T> {
    fn default() -> Self {
        Self::null()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests share the global table; use distinct ids per test.
    fn buf(len: usize) -> Vec<u64> {
        vec![0u64; len]
    }

    #[test]
    fn roundtrip_within_region() {
        let data = buf(64);
        let base = data.as_ptr() as usize;
        REGIONS.register(10, base, 64 * 8);
        let p: RivPtr<u64> = RivPtr::new(10, base + 16);
        assert_eq!(p.region(), Some(10));
        assert_eq!(p.as_ptr(), Some((base + 16) as *mut u64));
        assert!(is_riv_pattern(p.raw()));
        REGIONS.unregister(10);
    }

    #[test]
    fn cross_region_reference() {
        let a = buf(32);
        let b = buf(32);
        REGIONS.register(11, a.as_ptr() as usize, 32 * 8);
        REGIONS.register(12, b.as_ptr() as usize, 32 * 8);
        // A pointer value computed in region 11 targeting region 12.
        let p: RivPtr<u64> = RivPtr::from_addr(b.as_ptr() as usize + 8);
        assert_eq!(p.region(), Some(12));
        assert_eq!(p.as_ptr(), Some((b.as_ptr() as usize + 8) as *mut u64));
        REGIONS.unregister(11);
        REGIONS.unregister(12);
    }

    #[test]
    fn survives_remap() {
        // Same persistent region mapped at two different addresses across
        // "runs": the raw value resolves correctly after re-registration.
        let run1 = buf(16);
        REGIONS.register(13, run1.as_ptr() as usize, 16 * 8);
        let p: RivPtr<u64> = RivPtr::new(13, run1.as_ptr() as usize + 40);
        let raw = p.raw();
        REGIONS.unregister(13);

        let run2 = buf(16); // a different allocation = different base
        REGIONS.register(13, run2.as_ptr() as usize, 16 * 8);
        let q: RivPtr<u64> = RivPtr::from_raw(raw);
        assert_eq!(q.as_ptr(), Some((run2.as_ptr() as usize + 40) as *mut u64));
        REGIONS.unregister(13);
    }

    #[test]
    fn unregistered_region_resolves_to_none() {
        let data = buf(8);
        REGIONS.register(14, data.as_ptr() as usize, 64);
        let p: RivPtr<u64> = RivPtr::new(14, data.as_ptr() as usize);
        REGIONS.unregister(14);
        assert_eq!(p.as_ptr(), None, "unmapped region must not resolve");
        assert_eq!(p.region(), Some(14));
    }

    #[test]
    fn null_is_zero_and_distinct_from_offset_zero() {
        let data = buf(8);
        let base = data.as_ptr() as usize;
        REGIONS.register(15, base, 64);
        let n: RivPtr<u64> = RivPtr::null();
        assert!(n.is_null());
        assert_eq!(n.raw(), 0);
        // Offset 0 (region base) is representable and non-null.
        let p: RivPtr<u64> = RivPtr::new(15, base);
        assert!(!p.is_null());
        assert_eq!(p.as_ptr(), Some(base as *mut u64));
        REGIONS.unregister(15);
    }

    #[test]
    fn riv_tag_distinct_from_pptr_tag() {
        let data = buf(8);
        REGIONS.register(16, data.as_ptr() as usize, 64);
        let p: RivPtr<u64> = RivPtr::new(16, data.as_ptr() as usize);
        assert!(!crate::is_pptr_pattern(p.raw()), "GC must not confuse RIV with off-holder");
        REGIONS.unregister(16);
    }

    #[test]
    fn atomic_cas() {
        let data = buf(8);
        let base = data.as_ptr() as usize;
        REGIONS.register(17, base, 64);
        let cell: AtomicRivPtr<u64> = AtomicRivPtr::null();
        let p = RivPtr::new(17, base);
        cell.compare_exchange(RivPtr::null(), p, Ordering::AcqRel, Ordering::Acquire)
            .unwrap();
        assert_eq!(cell.load(Ordering::Acquire).as_ptr(), p.as_ptr());
        let err = cell
            .compare_exchange(RivPtr::null(), p, Ordering::AcqRel, Ordering::Acquire)
            .unwrap_err();
        assert_eq!(err.raw(), p.raw());
        REGIONS.unregister(17);
    }
}
