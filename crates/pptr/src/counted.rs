//! ABA-safe counted index words for Treiber stack heads.
//!
//! The heads of the superblock free list and the per-size-class partial
//! lists are lock-free LIFO stacks of descriptors. A pop that reads head
//! `A`, is delayed, and then CASes while `A` was popped and pushed back
//! would corrupt the list (the ABA problem, paper §4.2 / Scott §2.3.1).
//! The paper devotes 34 bits of each list head to a monotonically
//! increasing counter, leaving 30 bits for the descriptor index — enough
//! for 2^30 superblocks × 64 KiB = 64 TiB of heap, comfortably above the
//! 1 TB region limit.

/// Packed `{counter: 34, index+1: 30}` word. Index field value 0 encodes
/// the empty list, so zeroed NVM decodes as an empty stack head.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(transparent)]
pub struct Counted(pub u64);

/// Number of bits for the (index+1) field.
const IDX_BITS: u32 = 30;
const IDX_MASK: u64 = (1u64 << IDX_BITS) - 1;

impl Counted {
    /// An empty head (counter 0).
    pub const EMPTY: Counted = Counted(0);

    /// Build from parts. `idx == None` encodes the empty list.
    #[inline]
    pub fn pack(idx: Option<u32>, counter: u64) -> Self {
        let idxf = match idx {
            None => 0,
            Some(i) => {
                debug_assert!((i as u64) < IDX_MASK, "descriptor index too large");
                i as u64 + 1
            }
        };
        Counted((counter << IDX_BITS) | idxf)
    }

    /// The head descriptor index, `None` if the list is empty.
    #[inline]
    pub fn idx(&self) -> Option<u32> {
        let f = self.0 & IDX_MASK;
        if f == 0 {
            None
        } else {
            Some((f - 1) as u32)
        }
    }

    /// The ABA counter (wraps modulo 2^34).
    #[inline]
    pub fn counter(&self) -> u64 {
        self.0 >> IDX_BITS
    }

    /// A head with a new index and the counter advanced by one.
    #[inline]
    pub fn advance(&self, idx: Option<u32>) -> Self {
        Self::pack(idx, (self.counter() + 1) & ((1u64 << 34) - 1))
    }
}

impl Default for Counted {
    fn default() -> Self {
        Self::EMPTY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zero() {
        assert_eq!(Counted::EMPTY.0, 0);
        assert_eq!(Counted::EMPTY.idx(), None);
        assert_eq!(Counted::EMPTY.counter(), 0);
    }

    #[test]
    fn pack_unpack() {
        let c = Counted::pack(Some(0), 0);
        assert_eq!(c.idx(), Some(0));
        assert_eq!(c.counter(), 0);
        let c = Counted::pack(Some(123456), 999);
        assert_eq!(c.idx(), Some(123456));
        assert_eq!(c.counter(), 999);
        let c = Counted::pack(None, 7);
        assert_eq!(c.idx(), None);
        assert_eq!(c.counter(), 7);
    }

    #[test]
    fn advance_bumps_counter() {
        let c = Counted::pack(Some(5), 10);
        let d = c.advance(Some(6));
        assert_eq!(d.idx(), Some(6));
        assert_eq!(d.counter(), 11);
        let e = d.advance(None);
        assert_eq!(e.idx(), None);
        assert_eq!(e.counter(), 12);
    }

    #[test]
    fn counter_wraps_at_34_bits() {
        let c = Counted::pack(Some(1), (1u64 << 34) - 1);
        let d = c.advance(Some(1));
        assert_eq!(d.counter(), 0);
        assert_eq!(d.idx(), Some(1));
    }

    #[test]
    fn distinct_counters_distinct_words() {
        // The ABA defence: same index, different counters, different bits.
        let a = Counted::pack(Some(9), 1);
        let b = Counted::pack(Some(9), 2);
        assert_ne!(a.0, b.0);
    }

    #[test]
    fn max_index_fits() {
        let max = (IDX_MASK - 1) as u32;
        let c = Counted::pack(Some(max), 0);
        assert_eq!(c.idx(), Some(max));
    }
}
