//! Offline stand-in for `parking_lot`: the same non-poisoning `Mutex` /
//! `RwLock` API, implemented over `std::sync`. A thread that panics while
//! holding a lock does not poison it for everyone else — matching
//! parking_lot semantics, which the workspace relies on in crash tests.

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Non-poisoning mutex with parking_lot's `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    #[inline]
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    #[inline]
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(e) => e.into_inner(),
        }
    }

    #[inline]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

/// Non-poisoning reader-writer lock with parking_lot's API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    #[inline]
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    #[inline]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(e) => e.into_inner(),
        }
    }

    #[inline]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(e) => e.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn panicked_holder_does_not_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("die holding the lock");
        })
        .join();
        *m.lock() += 1; // must not panic
        assert_eq!(*m.lock(), 1);
    }
}
