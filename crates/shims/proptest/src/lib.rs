//! Offline stand-in for `proptest` covering the workspace's usage: the
//! `proptest!` macro over functions whose arguments are drawn from range,
//! tuple, `collection::vec` and `bool::weighted` strategies, plus
//! `prop_assert!`/`prop_assert_eq!` and `ProptestConfig::with_cases`.
//!
//! Differences from real proptest, by design:
//! * **No shrinking.** A failing case reports its seed; re-running
//!   reproduces it exactly (generation is seeded per case index).
//! * Values are drawn uniformly; there is no bias toward edge cases.

use rand::prelude::*;

/// A generator of values of type `Value`.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

/// `proptest::collection`: sized containers of a sub-strategy.
pub mod collection {
    use super::*;

    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// A `Vec` whose length is drawn from `len` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "collection::vec: empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `proptest::bool`: weighted coin flips.
pub mod bool {
    use super::*;

    pub struct Weighted(f64);

    /// `true` with probability `p`.
    pub fn weighted(p: f64) -> Weighted {
        assert!((0.0..=1.0).contains(&p), "bool::weighted: p out of range");
        Weighted(p)
    }

    impl Strategy for Weighted {
        type Value = bool;
        fn generate(&self, rng: &mut StdRng) -> bool {
            rng.gen_bool(self.0)
        }
    }
}

pub mod test_runner {
    /// Per-`proptest!` block configuration. Only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }
}

pub mod prelude {
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy};
}

/// Base seed for case generation; override with `PROPTEST_SEED` to replay
/// a reported failure.
pub fn base_seed() -> u64 {
    std::env::var("PROPTEST_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(0x5EED_CAFE)
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+)
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+)
    };
}

/// The `proptest!` block: expands each contained function into a `#[test]`
/// that draws its arguments from the given strategies for `cases`
/// iterations. Failures report the per-case seed for replay.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            use $crate::Strategy as _;
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..cfg.cases as u64 {
                let seed = $crate::base_seed() ^ (case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                let mut rng = <rand::StdRng as rand::SeedableRng>::seed_from_u64(seed);
                $(let $arg = ($strat).generate(&mut rng);)+
                let run = || $body;
                if let Err(panic) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(run)) {
                    eprintln!(
                        "proptest case {}/{} failed (replay with PROPTEST_SEED={})",
                        case + 1,
                        cfg.cases,
                        $crate::base_seed()
                    );
                    std::panic::resume_unwind(panic);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Range and vec strategies stay in bounds.
        #[test]
        fn strategies_in_bounds(
            xs in crate::collection::vec((0u8..2, 0usize..100), 1..20),
            y in 5u64..10,
        ) {
            prop_assert!((5..10).contains(&y));
            prop_assert!(!xs.is_empty() && xs.len() < 20);
            for (a, b) in xs {
                prop_assert!(a < 2, "a = {a}");
                prop_assert!(b < 100);
            }
        }
    }

    proptest! {
        /// Default config path compiles and runs.
        #[test]
        fn default_config_runs(x in 0u32..10) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    fn weighted_extremes() {
        use crate::Strategy;
        let mut rng = <rand::StdRng as rand::SeedableRng>::seed_from_u64(1);
        for _ in 0..100 {
            assert!(crate::bool::weighted(1.0).generate(&mut rng));
            assert!(!crate::bool::weighted(0.0).generate(&mut rng));
        }
    }
}
