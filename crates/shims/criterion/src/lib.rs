//! Offline stand-in for `criterion` providing the harness surface the
//! bench targets use: groups, `BenchmarkId`, `Bencher::{iter,
//! iter_custom}`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement model: per benchmark, calibrate an iteration count so one
//! sample takes roughly `measurement_time / sample_size`, run
//! `sample_size` samples, and report the **median** ns/iter (robust to
//! scheduler noise). Results are printed as aligned text; no statistics
//! beyond the median, no HTML reports.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// A benchmark's display identity: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { name: format!("{}/{}", function.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId { name: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { name: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> BenchmarkId {
        BenchmarkId { name }
    }
}

/// One measured result, exposed so callers can post-process (e.g. emit
/// machine-readable JSON next to the human-readable table).
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// `group/function/parameter`.
    pub id: String,
    /// Median nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// p50 over the per-sample ns/iter distribution (== the median).
    pub p50_ns: f64,
    /// p99 over the per-sample ns/iter distribution. With the default
    /// 10-20 samples this is effectively the worst sample — a tail
    /// indicator, not a precise quantile.
    pub p99_ns: f64,
    /// Total iterations executed across all samples.
    pub iterations: u64,
}

/// Harness entry point. `Default` honors the standard
/// `CRITERION_SAMPLE_SIZE` / `CRITERION_MEASUREMENT_MS` env overrides so
/// CI can run benches in smoke mode.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let sample_size = std::env::var("CRITERION_SAMPLE_SIZE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(10);
        let measurement_time = std::env::var("CRITERION_MEASUREMENT_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .map(Duration::from_millis)
            .unwrap_or(Duration::from_secs(1));
        Criterion { sample_size, measurement_time, results: Vec::new() }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            criterion: self,
        }
    }

    /// All results measured so far (for machine-readable emission).
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

/// A named group of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.name);
        let result = run_bench(&full, self.sample_size, self.measurement_time, &mut f);
        self.criterion.results.push(result);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.name);
        let result = run_bench(&full, self.sample_size, self.measurement_time, &mut |b| {
            f(b, input)
        });
        self.criterion.results.push(result);
        self
    }

    pub fn finish(self) {}
}

/// Throughput hint (accepted and ignored; the shim reports ns/iter).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Passed to the bench closure; records one sample per invocation of
/// `iter`/`iter_custom`.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    #[inline]
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// The closure times `iters` operations itself and returns the total.
    #[inline]
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        self.elapsed = f(self.iters);
    }
}

fn run_bench(
    id: &str,
    sample_size: usize,
    measurement_time: Duration,
    f: &mut dyn FnMut(&mut Bencher),
) -> BenchResult {
    // Calibrate: grow the per-sample iteration count until one sample
    // costs at least ~1/sample_size of the measurement budget.
    let target = measurement_time.div_f64(sample_size as f64).max(Duration::from_micros(200));
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        if b.elapsed >= target || iters >= 1 << 30 {
            break;
        }
        // Aim directly at the target with a growth cap to stay responsive.
        let ratio = target.as_secs_f64() / b.elapsed.as_secs_f64().max(1e-9);
        iters = (iters as f64 * ratio.clamp(2.0, 100.0)).ceil() as u64;
    }

    let mut samples = Vec::with_capacity(sample_size);
    let mut total_iters = 0u64;
    for _ in 0..sample_size {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters as f64);
        total_iters += iters;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median_s = samples[samples.len() / 2];
    let ns = median_s * 1e9;
    // Rank-based percentile over the sample distribution (nearest-rank,
    // same convention as telemetry::HistSnapshot::percentile).
    let rank = |q: f64| ((q * samples.len() as f64).ceil() as usize).max(1) - 1;
    let p99 = samples[rank(0.99)] * 1e9;
    println!(
        "bench  {id:<56} {ns:>12.1} ns/iter  ({:.2} Mops/s, p99 sample {p99:.1} ns)",
        1e3 / ns.max(1e-9)
    );
    BenchResult {
        id: id.to_string(),
        ns_per_iter: ns,
        p50_ns: ns,
        p99_ns: p99,
        iterations: total_iters,
    }
}

/// Define `pub fn $group_name()` running the listed bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Define `fn main()` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        std::env::set_var("CRITERION_SAMPLE_SIZE", "3");
        std::env::set_var("CRITERION_MEASUREMENT_MS", "30");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.bench_function("spin", |b| b.iter(|| black_box(1u64 + 1)));
        g.bench_with_input(BenchmarkId::new("param", 4), &4u64, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        g.finish();
        assert_eq!(c.results().len(), 2);
        assert!(c.results().iter().all(|r| r.ns_per_iter > 0.0));
        assert!(c.results().iter().all(|r| r.p99_ns >= r.p50_ns));
    }

    #[test]
    fn iter_custom_records_reported_duration() {
        std::env::set_var("CRITERION_SAMPLE_SIZE", "2");
        std::env::set_var("CRITERION_MEASUREMENT_MS", "1");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.bench_function("custom", |b| {
            b.iter_custom(|iters| Duration::from_nanos(100 * iters))
        });
        g.finish();
        let r = &c.results()[0];
        assert!((r.ns_per_iter - 100.0).abs() < 1.0, "got {}", r.ns_per_iter);
    }
}
