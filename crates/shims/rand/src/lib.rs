//! Offline stand-in for `rand` 0.8 covering exactly the surface the
//! workspace uses: `StdRng::seed_from_u64`, `Rng::{gen, gen_range,
//! gen_bool}` and `SliceRandom::shuffle`, all deterministic.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — fast,
//! well-distributed, and reproducible across platforms. `gen_range` uses
//! a modulo reduction; its bias is negligible for workload generation
//! (spans ≪ 2^64) and irrelevant to correctness tests.

/// Core RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, `rand`-style.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// The workspace's standard generator: xoshiro256**.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        // SplitMix64 expansion of the seed, as rand does for small seeds.
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng { s: [next(), next(), next(), next()] }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    fn from_rng(rng: &mut dyn RngCore) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn from_rng(rng: &mut dyn RngCore) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn from_rng(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in [0, 1) with 53 bits of precision.
    #[inline]
    fn from_rng(rng: &mut dyn RngCore) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn from_rng(rng: &mut dyn RngCore) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types with uniform range sampling (the integer primitives).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `lo..hi` (caller guarantees `lo < hi`).
    fn sample_excl(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self;
    /// Uniform draw from `lo..=hi` (caller guarantees `lo <= hi`).
    fn sample_incl(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_excl(lo: $t, hi: $t, rng: &mut dyn RngCore) -> $t {
                let span = (hi as i128 - lo as i128) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
            #[inline]
            fn sample_incl(lo: $t, hi: $t, rng: &mut dyn RngCore) -> $t {
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`Rng::gen_range`]. A single generic impl per range
/// shape (as in real rand) so integer-literal ranges unify with the type
/// the surrounding expression demands.
pub trait SampleRange<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    #[inline]
    fn sample(self, rng: &mut dyn RngCore) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_excl(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    #[inline]
    fn sample(self, rng: &mut dyn RngCore) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty inclusive range");
        T::sample_incl(lo, hi, rng)
    }
}

/// The user-facing RNG methods, blanket-implemented for any [`RngCore`].
pub trait Rng: RngCore {
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    #[inline]
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        <f64 as Standard>::from_rng(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Slice helpers, `rand::seq::SliceRandom`-style.
pub trait SliceRandom {
    type Item;
    fn shuffle<R: Rng>(&mut self, rng: &mut R);
    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        // Fisher–Yates.
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

pub mod seq {
    pub use super::SliceRandom;
}

pub mod prelude {
    pub use super::{Rng, RngCore, SampleRange, SeedableRng, SliceRandom, StdRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: usize = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: u64 = rng.gen_range(5..=5);
            assert_eq!(y, 5);
            let z: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.7)).count();
        assert!((6500..7500).contains(&hits), "got {hits}/10000 at p=0.7");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice sorted");
    }
}
