//! Two-process regression test for the advisory pool lock: while one
//! process holds a heap open on a pool file, a second process opening the
//! same file gets a distinct "pool busy" error; once the holder exits
//! (or is killed — the kernel releases `flock` on process death), the
//! pool opens normally.

use std::io::{BufRead, BufReader, ErrorKind};
use std::process::{Command, Stdio};

use ralloc::{Ralloc, RallocConfig};

#[test]
fn second_process_gets_pool_busy_until_holder_dies() {
    if !nvm::sys::available() {
        eprintln!("skipping: raw syscall layer unavailable on this host");
        return;
    }
    let pool = std::env::temp_dir().join("ct_flock_guard.pool");
    let _ = std::fs::remove_file(&pool);

    let mut holder = Command::new(env!("CARGO_BIN_EXE_crashtest"))
        .args(["hold", "--pool", pool.to_str().unwrap(), "--millis", "4000"])
        .stdout(Stdio::piped())
        .spawn()
        .expect("failed to spawn holder process");

    // Wait until the holder reports the lock is acquired.
    let mut line = String::new();
    BufReader::new(holder.stdout.as_mut().unwrap())
        .read_line(&mut line)
        .expect("holder produced no output");
    assert_eq!(line.trim(), "HOLDING");

    // Second process (us): both open paths must refuse with WouldBlock.
    let err = Ralloc::open_file(&pool, 32 << 20, RallocConfig::default())
        .expect_err("open_file must fail while another process holds the pool");
    assert_eq!(err.kind(), ErrorKind::WouldBlock, "unexpected error: {err}");
    assert!(err.to_string().contains("pool busy"), "got: {err}");
    let err = Ralloc::open_file_mapped(&pool, 32 << 20, RallocConfig::default())
        .expect_err("open_file_mapped must fail while the pool is held");
    assert_eq!(err.kind(), ErrorKind::WouldBlock, "unexpected error: {err}");

    // Kill the holder: flock releases with the process, no cooperation.
    holder.kill().expect("kill holder");
    holder.wait().expect("reap holder");
    let (heap, _dirty) = Ralloc::open_file(&pool, 32 << 20, RallocConfig::default())
        .expect("pool must open once the holder died");
    drop(heap);
    let _ = std::fs::remove_file(&pool);
}
