//! Kill-sweep smoke tests: each structure survives a batch of randomized
//! SIGKILLs with its visibility oracle green. The full acceptance sweep
//! (hundreds of kills per structure) is the `#[ignore]`d test at the
//! bottom — CI's `crashtest-smoke` job and developers run the quick ones.

use std::process::Command;

fn harness_available() -> bool {
    nvm::sys::available()
}

fn sweep(structure: &str, rounds: usize, seed: &str) {
    if !harness_available() {
        eprintln!("skipping: raw syscall layer unavailable on this host");
        return;
    }
    let dir = std::env::temp_dir().join(format!("ct_sweep_{structure}_{seed}"));
    let out = Command::new(env!("CARGO_BIN_EXE_crashtest"))
        .args([
            "sweep",
            "--structure",
            structure,
            "--rounds",
            &rounds.to_string(),
            "--seed",
            seed,
            "--dir",
            dir.to_str().unwrap(),
        ])
        .output()
        .expect("failed to spawn crashtest binary");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "sweep failed for {structure}:\n{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("SWEEP ok"), "missing summary:\n{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn queue_survives_kill_sweep() {
    sweep("queue", 25, "0xA001");
}

#[test]
fn stack_survives_kill_sweep() {
    sweep("stack", 25, "0xA002");
}

#[test]
fn kv_survives_kill_sweep() {
    sweep("kv", 25, "0xA003");
}

#[test]
fn nmtree_survives_kill_sweep() {
    sweep("nmtree", 25, "0xA004");
}

#[test]
fn rbtree_survives_kill_sweep() {
    sweep("rbtree", 25, "0xA005");
}

#[test]
fn churn_survives_kill_sweep() {
    sweep("churn", 25, "0xA006");
}

/// Acceptance sweep: enough rounds that every structure eats well over
/// 200 actual SIGKILLs. Run with `cargo test -p crashtest -- --ignored`.
#[test]
#[ignore = "long: hundreds of kills per structure"]
fn acceptance_sweep_200_kills_per_structure() {
    sweep("all", 300, "0xACCE");
}
