//! Deterministic replay: a failing sweep prints its `RALLOC_CRASH_SEED`,
//! and re-running with that seed must reproduce the identical kill point.
//! With one workload thread and an event-count kill, the whole execution
//! is deterministic, so the recovered op-log must come out bit-identical
//! in length — that is what this asserts, across both a CLI `--seed` and
//! the environment variable.

use std::process::Command;

fn run_line(seed_arg: Option<&str>, seed_env: Option<&str>, pool: &str) -> String {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_crashtest"));
    cmd.args([
        "run",
        "--structure",
        "queue",
        "--threads",
        "1",
        "--events",
        "1100",
        "--pool",
        pool,
    ]);
    if let Some(s) = seed_arg {
        cmd.args(["--seed", s]);
    }
    if let Some(s) = seed_env {
        cmd.env("RALLOC_CRASH_SEED", s);
    }
    let out = cmd.output().expect("failed to spawn crashtest binary");
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(
        out.status.success(),
        "run failed:\n{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    stdout
        .lines()
        .find(|l| l.starts_with("RESULT"))
        .unwrap_or_else(|| panic!("no RESULT line in:\n{stdout}"))
        .to_string()
}

fn field<'a>(line: &'a str, key: &str) -> &'a str {
    line.split_whitespace()
        .find_map(|tok| tok.strip_prefix(key).and_then(|t| t.strip_prefix('=')))
        .unwrap_or_else(|| panic!("missing {key} in: {line}"))
}

#[test]
fn same_seed_reproduces_identical_kill_point() {
    if !nvm::sys::available() {
        eprintln!("skipping: raw syscall layer unavailable on this host");
        return;
    }
    let tmp = std::env::temp_dir();
    let a = run_line(Some("0x5EED"), None, tmp.join("ct_replay_a.pool").to_str().unwrap());
    let b = run_line(Some("0x5EED"), None, tmp.join("ct_replay_b.pool").to_str().unwrap());
    // Both killed, and the child made bit-identical progress: the kill
    // landed at the same persistence event of the same op sequence.
    assert_eq!(field(&a, "killed"), "true", "{a}");
    assert_eq!(field(&a, "records"), field(&b, "records"), "\n{a}\n{b}");
    assert_eq!(field(&a, "acked"), field(&b, "acked"), "\n{a}\n{b}");
    assert_eq!(field(&a, "inflight"), field(&b, "inflight"), "\n{a}\n{b}");

    // The seed is honored from the environment too (how a failure's
    // printed `RALLOC_CRASH_SEED=...` is replayed), and the RESULT line
    // echoes it for the next report.
    let c = run_line(None, Some("0x5EED"), tmp.join("ct_replay_c.pool").to_str().unwrap());
    assert_eq!(field(&c, "seed"), "0x5eed", "{c}");
    assert_eq!(field(&a, "records"), field(&c, "records"), "\n{a}\n{c}");

    // A different seed takes a different path (sanity that the assert
    // above is not vacuous).
    let d = run_line(Some("0xD1FF"), None, tmp.join("ct_replay_d.pool").to_str().unwrap());
    assert_ne!(field(&a, "records"), field(&d, "records"), "\n{a}\n{d}");
}
