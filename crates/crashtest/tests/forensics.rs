//! Post-mortem forensics: a SIGKILLed victim leaves a pool that
//! `rinspect` can dump, check, and timeline without the harness — and
//! the harness's own failure reports carry the victim's persistent
//! flight timeline, not the recovering process's volatile journal.

use std::os::unix::process::ExitStatusExt;
use std::path::Path;
use std::process::Command;

use crashtest::{verify, KillSpec, RunConfig, Structure, STRUCT_ROOT};
use ralloc::{Ralloc, RallocConfig};

fn harness_available() -> bool {
    nvm::sys::available()
}

/// Spawn the crashtest binary in `victim` mode: the child runs the
/// workload against `pool` and (with `Events`) SIGKILLs itself, leaving
/// the dirty pool on disk. Returns the kill signal, if any.
fn spawn_victim(structure: Structure, pool: &Path, seed: u64, kill: KillSpec) -> Option<i32> {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_crashtest"));
    cmd.args([
        "victim",
        "--structure",
        structure.name(),
        "--pool",
        pool.to_str().unwrap(),
        "--seed",
        &format!("{seed:#x}"),
    ]);
    match kill {
        KillSpec::Events(n) => {
            cmd.args(["--events", &n.to_string()]);
        }
        KillSpec::None => {
            cmd.arg("--no-kill");
        }
        KillSpec::TimeMicros(_) => unreachable!("victim mode has no parent to time the kill"),
    }
    let status = cmd.status().expect("failed to spawn crashtest victim");
    status.signal()
}

/// A killed victim's pool must yield a non-empty flight timeline and an
/// `rinspect check` verdict that agrees with the harness's own
/// recover-and-verify pass.
#[test]
fn killed_pool_yields_timeline_and_check_agrees_with_harness() {
    if !harness_available() {
        eprintln!("skipping: raw syscall layer unavailable on this host");
        return;
    }
    let pool = std::env::temp_dir().join("ct_forensics_killed.pool");
    let seed = 0xF0_0001;
    let sig = spawn_victim(Structure::Queue, &pool, seed, KillSpec::Events(2000));
    assert_eq!(sig, Some(9), "victim should have SIGKILLed itself mid-workload");

    // Snapshot BEFORE any recovery touches the file: this is the raw
    // post-mortem state. The victim is dead, so its lock is gone.
    let snap = rinspect::snapshot(&pool).expect("snapshot of dead pool");
    assert!(!snap.live, "dead pool must not report a live writer");

    let dump = rinspect::dump(&snap.image);
    assert!(
        dump.contains("recovery required"),
        "killed pool should dump as dirty:\n{dump}"
    );

    let scan = rinspect::timeline(&snap.image);
    assert!(
        !scan.events.is_empty(),
        "victim ran thousands of ops; the flight ring cannot be empty"
    );
    assert!(
        scan.events.iter().any(|e| e.kind_name() == "open"),
        "timeline should record the victim's open"
    );

    // rinspect recovers a private copy and checks it; the harness
    // recovers the real file and runs the checker plus the oracles. The
    // two must agree that the heap is sound.
    let out = rinspect::check(&snap.image).expect("rinspect check");
    assert!(out.recovered, "a SIGKILLed pool is dirty and needs recovery");
    assert!(
        out.report.is_consistent(),
        "rinspect found violations the harness would not:\n{:?}",
        out.report.violations
    );

    let mut cfg = RunConfig::new(Structure::Queue, pool.clone(), seed);
    cfg.kill = KillSpec::Events(2000);
    verify(&cfg, true).expect("harness verify should agree the pool is recoverable");
    crashtest::cleanup(&cfg);
}

/// Forced-failure fixture: break a cleanly-run pool so verification
/// fails deterministically, and assert the failure report embeds the
/// victim's flight timeline as parseable JSON.
#[test]
fn failure_report_carries_victim_flight_timeline() {
    if !harness_available() {
        eprintln!("skipping: raw syscall layer unavailable on this host");
        return;
    }
    let pool = std::env::temp_dir().join("ct_forensics_forced.pool");
    let seed = 0xF0_0002;
    let sig = spawn_victim(Structure::Queue, &pool, seed, KillSpec::None);
    assert_eq!(sig, None, "no-kill victim should exit cleanly");

    // Sabotage: recover the pool, then unpublish the structure root.
    // Verification must now fail — the fixture for "every failing round
    // attaches the victim's timeline".
    {
        let (heap, dirty) = Ralloc::open_file_mapped(&pool, crashtest::POOL_CAP, RallocConfig::default())
            .expect("reopen for sabotage");
        crashtest::workload::register_filters(&heap, Structure::Queue);
        if dirty {
            heap.recover();
        }
        heap.set_root::<u64>(STRUCT_ROOT, std::ptr::null());
        heap.close().expect("clean close after sabotage");
    }

    let cfg = RunConfig::new(Structure::Queue, pool.clone(), seed);
    let err = verify(&cfg, false).expect_err("verification must fail on the sabotaged pool");
    assert!(
        err.contains("victim flight timeline"),
        "failure report missing the timeline banner:\n{err}"
    );
    let json = err
        .split("---\n")
        .last()
        .expect("timeline JSON after the banner");
    assert!(
        json.trim_start().starts_with("{\"torn\":") && json.contains("\"events\": [{\"seq\":"),
        "timeline should be non-empty parseable JSON:\n{json}"
    );
    assert!(
        json.contains("\"kind\": \"root_publish\""),
        "the sabotage itself (a root publish) must appear in the timeline:\n{json}"
    );
    crashtest::cleanup(&cfg);
}
