//! Kill-based proof that the remote-free rings are safely volatile: the
//! `prodcon` workload (producers malloc, consumers free across threads —
//! 100 % remote frees) keeps batches of in-flight frees parked on the
//! rings, a SIGKILL drops them with DRAM, and recovery's reachability
//! sweep must reclaim every one — visibility oracles green, no leak.
//!
//! Spawns the `crashtest` binary because `run_once` forks, and forking
//! is only safe from a single-threaded process.

use std::process::Command;

fn harness_available() -> bool {
    nvm::sys::available()
}

fn sweep(rounds: usize, seed: &str, env: &[(&str, &str)]) {
    if !harness_available() {
        eprintln!("skipping: raw syscall layer unavailable on this host");
        return;
    }
    let dir = std::env::temp_dir().join(format!("ct_prodcon_{seed}"));
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_crashtest"));
    cmd.args([
        "sweep",
        "--structure",
        "prodcon",
        "--rounds",
        &rounds.to_string(),
        "--seed",
        seed,
        "--dir",
        dir.to_str().unwrap(),
    ]);
    for (k, v) in env {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("failed to spawn crashtest binary");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "prodcon sweep failed (seed {seed}):\n{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("SWEEP ok"), "missing summary:\n{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn prodcon_survives_kill_sweep_with_loaded_rings() {
    sweep(25, "0xC001", &[("RALLOC_REMOTE_RING", "on")]);
}

#[test]
fn prodcon_survives_kill_sweep_with_tiny_rings() {
    // A 2-slot ring overflows constantly, so kills land mid-fallback as
    // often as mid-push: both halves of the degradation path must be
    // crash-safe.
    sweep(25, "0xC002", &[("RALLOC_REMOTE_RING", "on"), ("RALLOC_REMOTE_RING_CAP", "2")]);
}

#[test]
fn prodcon_survives_kill_sweep_with_rings_off() {
    // Control: the same workload over the direct grouped-CAS path.
    sweep(25, "0xC003", &[("RALLOC_REMOTE_RING", "off")]);
}
