//! Multi-threaded victim workloads, one per structure under test, plus
//! the allocator-protocol churn storm. Runs inside the forked child; the
//! parent replays the per-thread op-log against the recovered structure
//! through `crate::oracle`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use pds::{NmTree, PKv, PQueue, PRbTree, PStack};
use ralloc::Ralloc;

use crate::oplog::{self, OpKind, OpLogDir, OpWriter, RES_NONE};
use crate::oracle::{self, MapSemantics};
use crate::rng::XorShift;

/// Root index of the structure under test.
pub const STRUCT_ROOT: usize = 0;
/// Root index of the op-log directory.
pub const OPLOG_ROOT: usize = 1;

/// Which structure the victim exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Structure {
    /// Recoverable MS queue ([`PQueue`]).
    Queue,
    /// Recoverable Treiber stack ([`PStack`]).
    Stack,
    /// Recoverable chained hash map ([`PKv`]).
    Kv,
    /// Recoverable Natarajan–Mittal tree ([`NmTree`]).
    NmTree,
    /// Op-logged red-black tree ([`PRbTree`]).
    RbTree,
    /// Allocator-protocol storm: large/small malloc-free churn driving
    /// frontier growth, threaded through a [`PQueue`] for the oracle.
    Churn,
    /// Producer/consumer split: producers malloc and hand blocks over a
    /// channel, consumers free them — 100 % remote frees, so the
    /// remote-free rings carry in-flight batches at the moment of the
    /// kill. Threaded through a [`PQueue`] for the oracle.
    ProdCon,
}

impl Structure {
    /// Every structure, in sweep order.
    pub const ALL: [Structure; 7] = [
        Structure::Queue,
        Structure::Stack,
        Structure::Kv,
        Structure::NmTree,
        Structure::RbTree,
        Structure::Churn,
        Structure::ProdCon,
    ];

    /// CLI name.
    pub fn name(self) -> &'static str {
        match self {
            Structure::Queue => "queue",
            Structure::Stack => "stack",
            Structure::Kv => "kv",
            Structure::NmTree => "nmtree",
            Structure::RbTree => "rbtree",
            Structure::Churn => "churn",
            Structure::ProdCon => "prodcon",
        }
    }

    /// Parse a CLI name.
    pub fn parse(s: &str) -> Option<Structure> {
        Structure::ALL.into_iter().find(|x| x.name() == s)
    }
}

/// Live handle to whichever structure the run uses.
enum Handle {
    Queue(PQueue),
    Stack(PStack),
    Kv(PKv),
    NmTree(NmTree),
    RbTree(PRbTree),
}

impl Handle {
    fn create(heap: &Ralloc, s: Structure) -> Handle {
        match s {
            Structure::Queue | Structure::Churn | Structure::ProdCon => {
                Handle::Queue(PQueue::create(heap, STRUCT_ROOT))
            }
            Structure::Stack => Handle::Stack(PStack::create(heap, STRUCT_ROOT)),
            Structure::Kv => Handle::Kv(PKv::create(heap, STRUCT_ROOT)),
            Structure::NmTree => Handle::NmTree(NmTree::create(heap, STRUCT_ROOT)),
            Structure::RbTree => Handle::RbTree(PRbTree::create(heap, STRUCT_ROOT)),
        }
    }
}

/// Child-side setup: create the structure and the op-log, fully
/// persisted, before any workload op runs.
pub fn setup(heap: &Ralloc, s: Structure, threads: usize) -> *mut OpLogDir {
    // The handle is recreated per worker via `attach` on an already
    // healthy (freshly created) structure, so dropping it here is fine —
    // create() leaves everything persisted and rooted.
    let _ = Handle::create(heap, s);
    oplog::create(heap, OPLOG_ROOT, threads)
}

/// Run the workload: `threads` workers, each logging every op. Returns
/// when every worker finished or filled its log (if the armed kill never
/// fires).
pub fn run(heap: &Ralloc, s: Structure, dir: *mut OpLogDir, threads: usize, seed: u64, ops: usize) {
    if s == Structure::ProdCon {
        return run_prodcon(heap, dir, threads, seed, ops);
    }
    let handle = match s {
        Structure::Queue | Structure::Churn | Structure::ProdCon => {
            Handle::Queue(PQueue::attach(heap, STRUCT_ROOT).unwrap())
        }
        Structure::Stack => Handle::Stack(PStack::attach(heap, STRUCT_ROOT).unwrap()),
        Structure::Kv => Handle::Kv(PKv::attach(heap, STRUCT_ROOT).unwrap()),
        Structure::NmTree => Handle::NmTree(NmTree::attach(heap, STRUCT_ROOT).unwrap()),
        Structure::RbTree => Handle::RbTree(PRbTree::attach(heap, STRUCT_ROOT).unwrap()),
    };
    let dir = dir as usize;
    std::thread::scope(|sc| {
        for tid in 0..threads {
            let handle = &handle;
            let heap = heap.clone();
            sc.spawn(move || {
                let mut w = OpWriter::new(&heap, dir as *mut OpLogDir, tid);
                let mut rng = XorShift::new(seed ^ (0x9E37 + tid as u64 * 0x1_0001));
                worker(&heap, s, handle, tid as u64, &mut w, &mut rng, ops);
            });
        }
    });
}

/// The producer/consumer storm: thread pairs (2i, 2i+1) share a bounded
/// channel; the even thread allocates and hands blocks over, the odd
/// thread frees them. Every handed-over block is freed by a thread that
/// does not own its superblock, so the allocator's remote-free rings run
/// loaded for the whole window — a SIGKILL lands with in-flight batches
/// on them, which recovery must reclaim by reachability. An odd leftover
/// thread churns locally so every log sees traffic.
fn run_prodcon(heap: &Ralloc, dir: *mut OpLogDir, threads: usize, seed: u64, ops: usize) {
    let q = PQueue::attach(heap, STRUCT_ROOT).unwrap();
    let dir = dir as usize;
    std::thread::scope(|sc| {
        for pair in 0..threads / 2 {
            let (tx, rx) = std::sync::mpsc::sync_channel::<usize>(256);
            let (ptid, ctid) = (2 * pair, 2 * pair + 1);
            let (qp, heap_p) = (&q, heap.clone());
            sc.spawn(move || {
                let mut w = OpWriter::new(&heap_p, dir as *mut OpLogDir, ptid);
                let mut rng = XorShift::new(seed ^ (0x9E37 + ptid as u64 * 0x1_0001));
                let mut seq: u64 = 0;
                for _ in 0..ops {
                    if w.full() {
                        break;
                    }
                    if rng.next_u64() % 10 < 8 {
                        let size = 64 + (rng.next_u64() as usize % 4000);
                        w.begin(OpKind::Churn, size as u64, 0);
                        let p = heap_p.malloc(size);
                        assert!(!p.is_null(), "prodcon malloc failed");
                        // SAFETY: freshly allocated block of `size` bytes.
                        unsafe {
                            *p = 0xAB;
                            *p.add(size - 1) = 0xCD;
                        }
                        w.ack(0);
                        if tx.send(p as usize).is_err() {
                            heap_p.free(p); // consumer exited: reclaim locally
                        }
                    } else {
                        seq += 1;
                        let v = ((ptid as u64) << 32) | seq;
                        w.begin(OpKind::Enqueue, v, 0);
                        assert!(qp.enqueue(v), "enqueue failed: heap exhausted");
                        w.ack(0);
                    }
                }
            });
            let (qc, heap_c) = (&q, heap.clone());
            sc.spawn(move || {
                let mut w = OpWriter::new(&heap_c, dir as *mut OpLogDir, ctid);
                let mut rng = XorShift::new(seed ^ (0x9E37 + ctid as u64 * 0x1_0001));
                for p in rx {
                    // Remote free: this thread never allocated from p's
                    // superblock. Drain past a full log so producers
                    // never wedge on a closed channel mid-run.
                    heap_c.free(p as *mut u8);
                    if !w.full() && rng.next_u64().is_multiple_of(16) {
                        w.begin(OpKind::Dequeue, 0, 0);
                        let res = qc.dequeue().unwrap_or(RES_NONE);
                        w.ack(res);
                    }
                }
            });
        }
        if threads % 2 == 1 {
            let tid = threads - 1;
            let heap_s = heap.clone();
            sc.spawn(move || {
                let mut w = OpWriter::new(&heap_s, dir as *mut OpLogDir, tid);
                let mut rng = XorShift::new(seed ^ (0x9E37 + tid as u64 * 0x1_0001));
                for _ in 0..ops {
                    if w.full() {
                        break;
                    }
                    let size = 64 + (rng.next_u64() as usize % 4000);
                    w.begin(OpKind::Churn, size as u64, 0);
                    let p = heap_s.malloc(size);
                    assert!(!p.is_null(), "prodcon malloc failed");
                    // SAFETY: freshly allocated block of `size` bytes.
                    unsafe {
                        *p = 0xAB;
                        *p.add(size - 1) = 0xCD;
                    }
                    heap_s.free(p);
                    w.ack(0);
                }
            });
        }
    });
}

/// Keys per thread for the map workloads: small enough that removes and
/// re-inserts of the same key are common.
const KEYS_PER_THREAD: u64 = 64;

fn worker(
    heap: &Ralloc,
    s: Structure,
    handle: &Handle,
    tid: u64,
    w: &mut OpWriter,
    rng: &mut XorShift,
    ops: usize,
) {
    let mut seq: u64 = 0;
    for i in 0..ops {
        if w.full() {
            break;
        }
        let r = rng.next_u64();
        match (s, handle) {
            (Structure::Queue, Handle::Queue(q)) => {
                if r % 10 < 6 {
                    seq += 1;
                    let v = (tid << 32) | seq;
                    w.begin(OpKind::Enqueue, v, 0);
                    assert!(q.enqueue(v), "enqueue failed: heap exhausted");
                    w.ack(0);
                } else {
                    w.begin(OpKind::Dequeue, 0, 0);
                    let res = q.dequeue().unwrap_or(RES_NONE);
                    w.ack(res);
                }
            }
            (Structure::Churn, Handle::Queue(q)) => {
                match r % 10 {
                    // Allocator storm: transient blocks, occasionally
                    // huge, to hammer cache fill/flush and the
                    // reserve/commit frontier (grow storm).
                    0..=3 => {
                        let size = if r.is_multiple_of(97) {
                            256 * 1024 + (rng.next_u64() as usize % (1 << 20))
                        } else {
                            64 + (rng.next_u64() as usize % 4000)
                        };
                        w.begin(OpKind::Churn, size as u64, 0);
                        let p = heap.malloc(size);
                        assert!(!p.is_null(), "churn malloc failed");
                        // Touch first and last byte so the pages are real.
                        // SAFETY: freshly allocated block of `size` bytes.
                        unsafe {
                            *p = 0xAB;
                            *p.add(size - 1) = 0xCD;
                        }
                        heap.free(p);
                        w.ack(0);
                    }
                    4..=7 => {
                        seq += 1;
                        let v = (tid << 32) | seq;
                        w.begin(OpKind::Enqueue, v, 0);
                        assert!(q.enqueue(v), "enqueue failed: heap exhausted");
                        w.ack(0);
                    }
                    _ => {
                        w.begin(OpKind::Dequeue, 0, 0);
                        let res = q.dequeue().unwrap_or(RES_NONE);
                        w.ack(res);
                    }
                }
            }
            (Structure::Stack, Handle::Stack(st)) => {
                if r % 10 < 6 {
                    seq += 1;
                    let v = (tid << 32) | seq;
                    w.begin(OpKind::Push, v, 0);
                    assert!(st.push(v), "push failed: heap exhausted");
                    w.ack(0);
                } else {
                    w.begin(OpKind::Pop, 0, 0);
                    let res = st.pop().unwrap_or(RES_NONE);
                    w.ack(res);
                }
            }
            (Structure::Kv, Handle::Kv(m)) => {
                let key = (tid << 32) | (r % KEYS_PER_THREAD);
                if r % 10 < 7 {
                    let val = i as u64 + 1;
                    w.begin(OpKind::Insert, key, val);
                    assert!(m.insert(key, val), "insert failed: heap exhausted");
                    w.ack(1);
                } else {
                    w.begin(OpKind::Remove, key, 0);
                    let res = m.remove(key).unwrap_or(RES_NONE);
                    w.ack(res);
                }
            }
            (Structure::NmTree, Handle::NmTree(t)) => {
                let key = (tid << 32) | (r % KEYS_PER_THREAD);
                if r % 10 < 7 {
                    let val = i as u64 + 1;
                    w.begin(OpKind::Insert, key, val);
                    let inserted = t.insert(key, val);
                    w.ack(inserted as u64);
                } else {
                    w.begin(OpKind::Remove, key, 0);
                    let res = t.remove(key).unwrap_or(RES_NONE);
                    w.ack(res);
                }
            }
            (Structure::RbTree, Handle::RbTree(t)) => {
                let key = (tid << 32) | (r % KEYS_PER_THREAD);
                if r % 10 < 7 {
                    let val = i as u64 + 1;
                    w.begin(OpKind::Insert, key, val);
                    t.insert(key, val);
                    w.ack(1);
                } else {
                    w.begin(OpKind::Remove, key, 0);
                    let res = t.remove(key).unwrap_or(RES_NONE);
                    w.ack(res);
                }
            }
            _ => unreachable!("structure/handle mismatch"),
        }
    }
}

/// Parent-side: register the recovery trace filters for both roots
/// **before** [`Ralloc::recover`] sweeps (an unregistered root is traced
/// conservatively and its children could be misclassified).
pub fn register_filters(heap: &Ralloc, s: Structure) {
    match s {
        Structure::Queue | Structure::Churn | Structure::ProdCon => {
            let _ = heap.get_root::<pds::QueueHead>(STRUCT_ROOT);
        }
        Structure::Stack => {
            let _ = heap.get_root::<pds::StackHead>(STRUCT_ROOT);
        }
        Structure::Kv => {
            let _ = heap.get_root::<pds::KvHead>(STRUCT_ROOT);
        }
        Structure::NmTree => {
            let _ = heap.get_root::<pds::NmNode>(STRUCT_ROOT);
        }
        Structure::RbTree => {
            let _ = heap.get_root::<pds::TreeLogHead>(STRUCT_ROOT);
        }
    }
    let _ = heap.get_root::<OpLogDir>(OPLOG_ROOT);
}

/// Parent-side: attach the recovered structure and run its oracle
/// against the decoded logs.
pub fn verify_structure(
    heap: &Ralloc,
    s: Structure,
    logs: &[Vec<oplog::LogOp>],
) -> Result<(), String> {
    match s {
        Structure::Queue | Structure::Churn | Structure::ProdCon => {
            let q = PQueue::attach(heap, STRUCT_ROOT)
                .ok_or("queue root missing after recovery")?;
            oracle::check_conservation(logs, &q.snapshot(), false)
        }
        Structure::Stack => {
            let st = PStack::attach(heap, STRUCT_ROOT)
                .ok_or("stack root missing after recovery")?;
            oracle::check_conservation(logs, &st.snapshot(), true)
        }
        Structure::Kv => {
            let m = PKv::attach(heap, STRUCT_ROOT)
                .ok_or("kv root missing after recovery")?;
            let entries: BTreeMap<u64, u64> = m.snapshot().into_iter().collect();
            oracle::check_map(logs, &entries, MapSemantics::Upsert)
        }
        Structure::NmTree => {
            let t = NmTree::attach(heap, STRUCT_ROOT)
                .ok_or("nmtree root missing after recovery")?;
            let mut entries = BTreeMap::new();
            for k in t.keys() {
                entries.insert(k, t.get(k).ok_or("nmtree key without value")?);
            }
            oracle::check_map(logs, &entries, MapSemantics::InsertIfAbsent)
        }
        Structure::RbTree => {
            let t = PRbTree::attach(heap, STRUCT_ROOT)
                .ok_or("rbtree root missing after recovery")?;
            t.validate();
            let mut entries = BTreeMap::new();
            for k in t.keys() {
                entries.insert(k, t.get(k).ok_or("rbtree key without value")?);
            }
            oracle::check_map(logs, &entries, MapSemantics::Upsert)
        }
    }
}

/// Used by the seed-replay check: total persistence-relevant progress
/// the child made, as one number (records begun across all threads).
pub fn oplog_totals(logs: &[Vec<oplog::LogOp>]) -> (usize, usize, usize) {
    let total: usize = logs.iter().map(Vec::len).sum();
    let acked: usize = logs
        .iter()
        .map(|l| l.iter().filter(|o| o.acked).count())
        .sum();
    (total, acked, total - acked)
}

/// Cross-thread unique value helper for ad-hoc callers (examples).
pub fn unique_value(tid: u64, counter: &AtomicU64) -> u64 {
    (tid << 32) | counter.fetch_add(1, Ordering::Relaxed)
}
