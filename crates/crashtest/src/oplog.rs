//! Persisted per-thread operation log: the ground truth the visibility
//! oracles check recovered structures against.
//!
//! The log lives **in the same heap** as the structure under test, at its
//! own root, so it survives exactly the crashes the structure survives —
//! no side files, no clock skew between "what the log says happened" and
//! "what the pool says happened".
//!
//! Each workload thread owns one [`ThreadLog`]: a fixed array of 32-byte
//! records written strictly in order, never recycled. An operation is
//! bracketed:
//!
//! 1. operands and `STARTED` header are written and persisted **before**
//!    the structure operation executes;
//! 2. the result and `ACKED` header are written and persisted **after**
//!    it returns.
//!
//! So after a kill, a record is `ACKED` ⇒ the op fully happened and its
//! effect must be *exactly-once* visible; `STARTED` ⇒ the op may have
//! executed any prefix of its stores and must be *at-most-once* visible;
//! `EMPTY` ⇒ the op never began. Because each thread is sequential, only
//! a thread's last non-empty record can be `STARTED`.

use std::sync::atomic::{AtomicU64, Ordering};

use ralloc::{PersistentAllocator, Ralloc, Trace, Tracer};

/// Maximum workload threads a log directory can register.
pub const MAX_THREADS: usize = 8;

/// Records per thread log. A workload that fills its log simply stops
/// (the child then exits cleanly if the kill never lands).
pub const LOG_CAP: usize = 4096;

/// `res` value meaning "no result" (empty dequeue/pop, absent remove).
pub const RES_NONE: u64 = u64::MAX;

/// Record states (low byte of the header word).
pub const EMPTY: u64 = 0;
pub const STARTED: u64 = 1;
pub const ACKED: u64 = 2;

/// Operation kinds (header byte 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum OpKind {
    Enqueue = 1,
    Dequeue = 2,
    Push = 3,
    Pop = 4,
    Insert = 5,
    Remove = 6,
    /// Allocator churn (malloc/write/free cycle): no structure effect,
    /// logged so the harness can count progress.
    Churn = 7,
}

impl OpKind {
    fn from_u8(v: u8) -> Option<OpKind> {
        Some(match v {
            1 => OpKind::Enqueue,
            2 => OpKind::Dequeue,
            3 => OpKind::Push,
            4 => OpKind::Pop,
            5 => OpKind::Insert,
            6 => OpKind::Remove,
            7 => OpKind::Churn,
            _ => return None,
        })
    }
}

/// One logged operation. 32 bytes, 32-byte aligned within the array, so
/// a record never straddles more than one cache line boundary and a
/// single `persist` covers it.
#[repr(C)]
pub struct OpRec {
    /// `state | kind << 8`. Written *after* the operands (program order),
    /// so a visible header implies visible operands.
    hdr: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
    res: AtomicU64,
}

/// A thread's private slice of the log.
#[repr(C)]
pub struct ThreadLog {
    records: [OpRec; LOG_CAP],
}

/// Root block: slot `t` holds the region offset + 1 of thread `t`'s log.
#[repr(C)]
pub struct OpLogDir {
    slots: [AtomicU64; MAX_THREADS],
}

unsafe impl Trace for OpLogDir {
    fn trace(&self, t: &mut Tracer<'_>) {
        for s in &self.slots {
            if let Some(off) = s.load(Ordering::Relaxed).checked_sub(1) {
                t.visit_region_offset::<ThreadLog>(off);
            }
        }
    }
}

unsafe impl Trace for ThreadLog {
    fn trace(&self, _t: &mut Tracer<'_>) {
        // Records hold values, never references: leaf block.
    }
}

/// Create the directory plus `threads` logs and register the directory
/// as root `root`. Called once, before the workload starts.
pub fn create(heap: &Ralloc, root: usize, threads: usize) -> *mut OpLogDir {
    assert!(threads <= MAX_THREADS);
    let dir = heap.malloc(std::mem::size_of::<OpLogDir>()) as *mut OpLogDir;
    assert!(!dir.is_null(), "heap exhausted creating op-log directory");
    // SAFETY: fresh blocks, exclusively owned until published.
    unsafe {
        for s in &(*dir).slots {
            s.store(0, Ordering::Relaxed);
        }
        for t in 0..threads {
            let log = heap.malloc(std::mem::size_of::<ThreadLog>()) as *mut ThreadLog;
            assert!(!log.is_null(), "heap exhausted creating thread log");
            std::ptr::write_bytes(log as *mut u8, 0, std::mem::size_of::<ThreadLog>());
            heap.persist(log as *const u8, std::mem::size_of::<ThreadLog>());
            let off1 = (log as usize - heap.region_base()) as u64 + 1;
            (*dir).slots[t].store(off1, Ordering::Release);
        }
    }
    heap.persist(dir as *const u8, std::mem::size_of::<OpLogDir>());
    heap.set_root::<OpLogDir>(root, dir);
    dir
}

/// Re-attach to the directory after a crash (None if it was never
/// published — the child died during setup, before any op could ack).
pub fn attach(heap: &Ralloc, root: usize) -> Option<*mut OpLogDir> {
    let dir = heap.get_root::<OpLogDir>(root);
    (!dir.is_null()).then_some(dir)
}

/// Sequential writer for one thread's log (child side).
pub struct OpWriter {
    heap: Ralloc,
    log: *mut ThreadLog,
    /// Index of the next record to start.
    n: usize,
}

// SAFETY: each writer is owned by exactly one workload thread.
unsafe impl Send for OpWriter {}

impl OpWriter {
    /// Writer for thread `tid` of directory `dir` (a pointer from
    /// [`create`]/[`attach`], valid for the heap's lifetime).
    #[allow(clippy::not_unsafe_ptr_arg_deref)]
    pub fn new(heap: &Ralloc, dir: *mut OpLogDir, tid: usize) -> OpWriter {
        // SAFETY: slots were published by `create` before threads spawned.
        let off1 = unsafe { (*dir).slots[tid].load(Ordering::Acquire) };
        assert!(off1 != 0, "thread {tid} has no log slot");
        let log = (heap.region_base() + (off1 - 1) as usize) as *mut ThreadLog;
        OpWriter { heap: heap.clone(), log, n: 0 }
    }

    #[inline]
    fn rec(&self) -> &OpRec {
        // SAFETY: n < LOG_CAP is checked in `begin`; the log block is
        // live for the heap's lifetime.
        unsafe { &(*self.log).records[self.n] }
    }

    /// True if the log is full (the workload thread should stop).
    pub fn full(&self) -> bool {
        self.n >= LOG_CAP
    }

    /// Number of operations begun so far.
    pub fn begun(&self) -> usize {
        self.n
    }

    /// Persist a `STARTED` record for the op about to run. Returns false
    /// if the log is full (op must not run).
    pub fn begin(&mut self, kind: OpKind, a: u64, b: u64) -> bool {
        if self.full() {
            return false;
        }
        let r = self.rec();
        r.a.store(a, Ordering::Relaxed);
        r.b.store(b, Ordering::Relaxed);
        r.res.store(RES_NONE, Ordering::Relaxed);
        r.hdr.store(STARTED | (kind as u64) << 8, Ordering::Release);
        self.heap
            .persist(r as *const OpRec as *const u8, std::mem::size_of::<OpRec>());
        true
    }

    /// Persist the `ACKED` record for the op `begin` opened.
    pub fn ack(&mut self, res: u64) {
        let r = self.rec();
        let hdr = r.hdr.load(Ordering::Relaxed);
        debug_assert_eq!(hdr & 0xff, STARTED);
        r.res.store(res, Ordering::Relaxed);
        r.hdr.store((hdr & !0xff) | ACKED, Ordering::Release);
        self.heap
            .persist(r as *const OpRec as *const u8, std::mem::size_of::<OpRec>());
        self.n += 1;
    }
}

/// A decoded record (oracle side).
#[derive(Debug, Clone, Copy)]
pub struct LogOp {
    pub kind: OpKind,
    pub a: u64,
    pub b: u64,
    pub res: u64,
    pub acked: bool,
}

/// Read every thread's log back (parent side, post-recovery). Index =
/// thread id; scanning stops at the first `EMPTY` record. A corrupt
/// header (torn kill inside the header store is impossible — it is one
/// aligned word — so this means a real bug) is reported as an error.
#[allow(clippy::not_unsafe_ptr_arg_deref)]
pub fn read_logs(heap: &Ralloc, dir: *mut OpLogDir) -> Result<Vec<Vec<LogOp>>, String> {
    let mut out = Vec::new();
    for t in 0..MAX_THREADS {
        // SAFETY: quiescent post-mortem read.
        let off1 = unsafe { (*dir).slots[t].load(Ordering::Acquire) };
        let Some(off) = off1.checked_sub(1) else {
            continue;
        };
        let log = (heap.region_base() + off as usize) as *const ThreadLog;
        let mut ops = Vec::new();
        for i in 0..LOG_CAP {
            // SAFETY: in-bounds record of a live log block.
            let r = unsafe { &(*log).records[i] };
            let hdr = r.hdr.load(Ordering::Acquire);
            let state = hdr & 0xff;
            if state == EMPTY {
                break;
            }
            let kind = OpKind::from_u8((hdr >> 8) as u8)
                .ok_or_else(|| format!("thread {t} record {i}: bad kind in header {hdr:#x}"))?;
            if state != STARTED && state != ACKED {
                return Err(format!("thread {t} record {i}: bad state {state}"));
            }
            let acked = state == ACKED;
            ops.push(LogOp {
                kind,
                a: r.a.load(Ordering::Acquire),
                b: r.b.load(Ordering::Acquire),
                res: r.res.load(Ordering::Acquire),
                acked,
            });
            if !acked && i + 1 < LOG_CAP {
                // A sequential thread can have at most one in-flight op,
                // and only as its last record.
                let nxt = unsafe { &(*log).records[i + 1] };
                if nxt.hdr.load(Ordering::Acquire) & 0xff != EMPTY {
                    return Err(format!(
                        "thread {t}: STARTED record {i} is not the last record"
                    ));
                }
                break;
            }
        }
        out.push(ops);
    }
    Ok(out)
}
