//! # crashtest — fork/SIGKILL crash-injection harness
//!
//! The cooperative crash tests (`tests/recoverability.rs`) simulate
//! power failure *inside* one process: an armed [`nvm::CrashInjector`]
//! panics at a persistence event, the harness catches the unwind and
//! discards unflushed lines. That model is precise but polite — panics
//! unwind, destructors run, and only `Mode::Tracked` pools participate.
//!
//! This crate kills for real. The victim is a **forked child** running a
//! multi-threaded workload over a live file-backed pool
//! ([`ralloc::Ralloc::open_file_mapped`], `MAP_SHARED`); the parent
//! SIGKILLs it at a randomized moment — either wall-clock
//! ([`KillSpec::TimeMicros`]) or an exact persistence-event count
//! ([`KillSpec::Events`], replayable) — then reopens the pool, runs
//! recovery, and checks **visibility oracles** against a per-thread
//! op-log persisted in the same heap (see [`oplog`] and [`oracle`]):
//! acked operations are exactly-once visible, in-flight operations
//! at-most-once.
//!
//! Everything random derives from one seed (`RALLOC_CRASH_SEED`); a
//! failing round prints it, and re-running with it reproduces the same
//! kill point.
//!
//! Fork safety: [`run_once`] must be called from a **single-threaded**
//! process (the `crashtest` binary); the child may spawn threads freely.

pub mod oplog;
pub mod oracle;
pub mod rng;
pub mod workload;

use std::fmt;
use std::path::{Path, PathBuf};
use std::time::Duration;

use nvm::sys;
use ralloc::{Ralloc, RallocConfig};

pub use rng::XorShift;
pub use workload::{Structure, OPLOG_ROOT, STRUCT_ROOT};

/// Reserved virtual span for victim pools. Mostly uncommitted; the
/// committed frontier starts at [`INIT_COMMIT`] and grows under load.
pub const POOL_CAP: usize = 256 << 20;
/// Initial committed capacity: small, so workloads cross the grow path.
pub const INIT_COMMIT: usize = 8 << 20;

/// Environment variable carrying the sweep seed.
pub const SEED_ENV: &str = "RALLOC_CRASH_SEED";

/// When the parent kills the child.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillSpec {
    /// Child SIGKILLs itself at exactly the `n`-th persistence event
    /// after the workload starts (deterministic, replayable).
    Events(u64),
    /// Parent SIGKILLs the child after a wall-clock delay (asynchronous:
    /// lands at an arbitrary instruction).
    TimeMicros(u64),
    /// Never kill: the child runs to completion (clean-run control).
    None,
}

impl fmt::Display for KillSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KillSpec::Events(n) => write!(f, "events:{n}"),
            KillSpec::TimeMicros(us) => write!(f, "time-us:{us}"),
            KillSpec::None => write!(f, "none"),
        }
    }
}

/// One crash round's configuration.
#[derive(Debug, Clone)]
pub struct RunConfig {
    pub structure: Structure,
    pub pool: PathBuf,
    pub seed: u64,
    pub threads: usize,
    pub ops_per_thread: usize,
    pub kill: KillSpec,
}

impl RunConfig {
    /// Defaults for a sweep round (pool path and kill filled in by the
    /// sweep loop).
    pub fn new(structure: Structure, pool: PathBuf, seed: u64) -> RunConfig {
        RunConfig {
            structure,
            pool,
            seed,
            threads: 4,
            ops_per_thread: 1500,
            kill: KillSpec::None,
        }
    }
}

/// What one round did and found.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The child died by SIGKILL (false: ran to completion).
    pub killed: bool,
    /// The kill landed before setup finished; nothing could have acked,
    /// so the oracles pass vacuously.
    pub died_in_setup: bool,
    /// Op-log records begun / acked / in-flight across all threads.
    pub records: usize,
    pub acked: usize,
    pub inflight: usize,
}

fn ready_path(pool: &Path) -> PathBuf {
    let mut p = pool.as_os_str().to_owned();
    p.push(".ready");
    PathBuf::from(p)
}

fn victim_config(injector: Option<std::sync::Arc<nvm::CrashInjector>>) -> RallocConfig {
    RallocConfig {
        injector,
        initial_capacity: Some(INIT_COMMIT),
        ..Default::default()
    }
}

/// Child-side body: open the pool live-mapped, build the structure and
/// op-log, then run the workload until the kill lands (or it finishes).
/// Never returns; exits via `exit_group` so no buffers flush twice.
pub fn child_exec(cfg: &RunConfig) -> ! {
    let inj = nvm::CrashInjector::new();
    let (heap, _dirty) =
        match Ralloc::open_file_mapped(&cfg.pool, POOL_CAP, victim_config(Some(inj.clone()))) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("crashtest child: open_file_mapped failed: {e}");
                sys::exit_group(2)
            }
        };
    let dir = workload::setup(&heap, cfg.structure, cfg.threads);
    // Ops can only ack past this marker; the parent treats a missing
    // marker as "died during setup" (vacuous pass — init is not a
    // recoverable phase, a real deployment re-creates on failed init).
    if let Err(e) = std::fs::write(ready_path(&cfg.pool), b"ready") {
        eprintln!("crashtest child: marker write failed: {e}");
        sys::exit_group(2)
    }
    if let KillSpec::Events(n) = cfg.kill {
        inj.arm_kill(n);
    }
    workload::run(&heap, cfg.structure, dir, cfg.threads, cfg.seed, cfg.ops_per_thread);
    inj.disarm();
    sys::exit_group(0)
}

/// Fork a victim, kill it per `cfg.kill`, then recover and run the
/// oracles. Must be called from a single-threaded process.
pub fn run_once(cfg: &RunConfig) -> Result<RunReport, String> {
    if !sys::available() {
        return Err("kill-based crash testing requires the raw syscall layer \
                    (x86_64 Linux)"
            .into());
    }
    let _ = std::fs::remove_file(&cfg.pool);
    let _ = std::fs::remove_file(ready_path(&cfg.pool));
    // SAFETY: the crashtest binary is single-threaded at this point (its
    // documented contract); the child only proceeds into `child_exec`.
    let pid = unsafe { sys::fork() }.map_err(|e| format!("fork failed: {e}"))?;
    if pid == 0 {
        child_exec(cfg); // never returns
    }
    if let KillSpec::TimeMicros(us) = cfg.kill {
        std::thread::sleep(Duration::from_micros(us));
        let _ = sys::kill(pid, sys::SIGKILL);
    }
    let (_, status) = sys::wait4(pid, 0).map_err(|e| format!("wait failed: {e}"))?;
    let killed = sys::term_signal(status) == Some(sys::SIGKILL);
    if !killed {
        match sys::exit_code(status) {
            Some(0) => {}
            other => {
                return Err(format!(
                    "child neither SIGKILLed nor exited cleanly: status {status:#x} \
                     (exit code {other:?})"
                ))
            }
        }
    }
    verify(cfg, killed)
}

/// Reopen the pool, recover, and run every oracle. Separated from
/// [`run_once`] so a recorded pool file can be re-checked on its own.
pub fn verify(cfg: &RunConfig, killed: bool) -> Result<RunReport, String> {
    if !ready_path(&cfg.pool).exists() {
        return Ok(RunReport {
            killed,
            died_in_setup: true,
            records: 0,
            acked: 0,
            inflight: 0,
        });
    }
    let (heap, dirty) = Ralloc::open_file_mapped(&cfg.pool, POOL_CAP, victim_config(None))
        .map_err(|e| format!("reopen failed: {e}"))?;
    workload::register_filters(&heap, cfg.structure);
    if dirty {
        heap.recover();
    }
    // Failure reports attach the *victim's* last protocol steps — the
    // persistent flight timeline scanned from the pool at reopen, before
    // this process recorded anything. (The volatile journal here belongs
    // to the recovering process and says nothing about the crash.)
    let fail = |msg: String| -> String {
        format!(
            "{msg}\nstructure={} seed={:#x} kill={}\n--- victim flight timeline \
             (pre-crash, from the pool) ---\n{}",
            cfg.structure.name(),
            cfg.seed,
            cfg.kill,
            heap.preopen_flight().to_json()
        )
    };
    let chk = ralloc::checker::check_heap(&heap);
    if !chk.is_consistent() {
        return Err(fail(format!(
            "heap checker found {} violation(s): {:?}",
            chk.violations.len(),
            chk.violations
        )));
    }
    let dir = oplog::attach(&heap, OPLOG_ROOT)
        .ok_or_else(|| fail("op-log root missing despite setup marker".into()))?;
    let logs = oplog::read_logs(&heap, dir).map_err(&fail)?;
    workload::verify_structure(&heap, cfg.structure, &logs).map_err(&fail)?;
    let (records, acked, inflight) = workload::oplog_totals(&logs);
    Ok(RunReport { killed, died_in_setup: false, records, acked, inflight })
}

/// Remove a round's pool and marker files (sweep hygiene).
pub fn cleanup(cfg: &RunConfig) {
    let _ = std::fs::remove_file(&cfg.pool);
    let _ = std::fs::remove_file(ready_path(&cfg.pool));
}

/// Read the sweep seed: `RALLOC_CRASH_SEED` if set (decimal or
/// `0x`-hex), else derived from the process id and time.
pub fn seed_from_env() -> u64 {
    if let Ok(s) = std::env::var(SEED_ENV) {
        let t = s.trim();
        let parsed = if let Some(hex) = t.strip_prefix("0x") {
            u64::from_str_radix(hex, 16).ok()
        } else {
            t.parse().ok()
        };
        if let Some(v) = parsed {
            return v;
        }
        eprintln!("crashtest: ignoring unparsable {SEED_ENV}={s}");
    }
    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    now ^ ((sys::getpid() as u64) << 32) | 1
}
