//! CLI driver for the fork/SIGKILL crash harness.
//!
//! ```text
//! crashtest sweep --structure queue|stack|kv|nmtree|rbtree|churn|prodcon|all \
//!                 --rounds N [--seed S] [--dir PATH] [--threads T] [--ops N]
//! crashtest run    --structure S --pool PATH [--seed S] [--threads T] [--ops N] \
//!                  (--events N | --time-us N | --no-kill)
//! crashtest victim --structure S --pool PATH [--seed S] [--threads T] [--ops N] \
//!                  (--events N | --no-kill)
//! crashtest hold   --pool PATH --millis N
//! ```
//!
//! `sweep` is the workhorse: for each round it derives a kill point from
//! the seed (even rounds by persistence-event count, odd by wall-clock),
//! forks a victim, kills it, recovers, and runs the oracles. Any failure
//! prints the seed (`RALLOC_CRASH_SEED=<seed>` re-runs it exactly) plus
//! the victim's persistent flight timeline scanned from the pool, and
//! exits non-zero.
//!
//! `victim` turns *this* process into the workload child: it runs the
//! structure's workload against `--pool` and, with `--events N`,
//! SIGKILLs itself at the N-th persistence event — leaving a genuinely
//! dirty pool file behind for `rinspect` and the forensics tests. No
//! verification runs and the pool is never cleaned up.
//!
//! `hold` opens a pool with the advisory lock and sits on it — the
//! second process of the two-process `flock` regression test.
//!
//! This process stays single-threaded (fork safety); only victims spawn
//! threads.

use std::path::PathBuf;
use std::process::ExitCode;

use crashtest::{
    cleanup, run_once, seed_from_env, KillSpec, RunConfig, Structure, XorShift, SEED_ENV,
};

fn parse_u64(s: &str) -> Option<u64> {
    let t = s.trim();
    if let Some(hex) = t.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        t.parse().ok()
    }
}

/// Minimal `--flag value` parser over the remaining args.
struct Args(Vec<String>);

impl Args {
    fn opt(&mut self, flag: &str) -> Option<String> {
        let i = self.0.iter().position(|a| a == flag)?;
        if i + 1 >= self.0.len() {
            die(&format!("{flag} needs a value"));
        }
        self.0.remove(i);
        Some(self.0.remove(i))
    }

    fn flag(&mut self, flag: &str) -> bool {
        match self.0.iter().position(|a| a == flag) {
            Some(i) => {
                self.0.remove(i);
                true
            }
            None => false,
        }
    }

    fn finish(&self) {
        if let Some(extra) = self.0.first() {
            die(&format!("unrecognized argument: {extra}"));
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("crashtest: {msg}");
    std::process::exit(2)
}

fn main() -> ExitCode {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        die("missing subcommand (sweep | run | victim | hold)");
    }
    let cmd = argv.remove(0);
    let mut args = Args(argv);
    match cmd.as_str() {
        "sweep" => sweep(&mut args),
        "run" => run(&mut args),
        "victim" => victim(&mut args),
        "hold" => hold(&mut args),
        other => die(&format!("unknown subcommand {other}")),
    }
}

fn structures_arg(args: &mut Args) -> Vec<Structure> {
    match args.opt("--structure").as_deref() {
        None | Some("all") => Structure::ALL.to_vec(),
        Some(name) => match Structure::parse(name) {
            Some(s) => vec![s],
            None => die(&format!("unknown structure {name}")),
        },
    }
}

fn sweep(args: &mut Args) -> ExitCode {
    let structures = structures_arg(args);
    let rounds: usize = args
        .opt("--rounds")
        .and_then(|v| v.parse().ok())
        .unwrap_or(25);
    let seed = args
        .opt("--seed")
        .map(|v| parse_u64(&v).unwrap_or_else(|| die("bad --seed")))
        .unwrap_or_else(seed_from_env);
    let dir = args
        .opt("--dir")
        .map(PathBuf::from)
        .unwrap_or_else(std::env::temp_dir);
    let threads = args.opt("--threads").and_then(|v| v.parse().ok());
    let ops = args.opt("--ops").and_then(|v| v.parse().ok());
    args.finish();
    let _ = std::fs::create_dir_all(&dir);

    let mut rng = XorShift::new(seed);
    let mut total_kills = 0usize;
    for s in structures {
        for round in 0..rounds {
            let pool = dir.join(format!("crash_{}_{round}.pool", s.name()));
            let mut cfg = RunConfig::new(s, pool, rng.next_u64() | 1);
            if let Some(t) = threads {
                cfg.threads = t;
            }
            if let Some(n) = ops {
                cfg.ops_per_thread = n;
            }
            // Alternate deterministic event-count kills with asynchronous
            // wall-clock kills so both flavors get coverage every sweep.
            cfg.kill = if round % 2 == 0 {
                KillSpec::Events(rng.range(1, 30_000))
            } else {
                KillSpec::TimeMicros(rng.range(300, 40_000))
            };
            match run_once(&cfg) {
                Ok(r) => {
                    if r.killed {
                        total_kills += 1;
                    }
                    println!(
                        "round structure={} i={round} kill={} killed={} setup_died={} \
                         records={} acked={} inflight={} ok",
                        s.name(),
                        cfg.kill,
                        r.killed,
                        r.died_in_setup,
                        r.records,
                        r.acked,
                        r.inflight
                    );
                    cleanup(&cfg);
                }
                Err(e) => {
                    println!(
                        "FAILURE structure={} round={round} {SEED_ENV}={seed:#x} kill={}",
                        s.name(),
                        cfg.kill
                    );
                    println!("{e}");
                    println!("pool file kept for inspection: {}", cfg.pool.display());
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    println!("SWEEP ok seed={seed:#x} kills={total_kills}");
    ExitCode::SUCCESS
}

fn run(args: &mut Args) -> ExitCode {
    let structure = match structures_arg(args).as_slice() {
        [s] => *s,
        _ => die("run needs exactly one --structure"),
    };
    let pool = args
        .opt("--pool")
        .map(PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("crashtest_run.pool"));
    let seed = args
        .opt("--seed")
        .map(|v| parse_u64(&v).unwrap_or_else(|| die("bad --seed")))
        .unwrap_or_else(seed_from_env);
    let mut cfg = RunConfig::new(structure, pool, seed);
    if let Some(t) = args.opt("--threads").and_then(|v| v.parse().ok()) {
        cfg.threads = t;
    }
    if let Some(n) = args.opt("--ops").and_then(|v| v.parse().ok()) {
        cfg.ops_per_thread = n;
    }
    cfg.kill = if let Some(n) = args.opt("--events") {
        KillSpec::Events(parse_u64(&n).unwrap_or_else(|| die("bad --events")))
    } else if let Some(us) = args.opt("--time-us") {
        KillSpec::TimeMicros(parse_u64(&us).unwrap_or_else(|| die("bad --time-us")))
    } else if args.flag("--no-kill") {
        KillSpec::None
    } else {
        die("run needs --events N, --time-us N, or --no-kill")
    };
    args.finish();

    match run_once(&cfg) {
        Ok(r) => {
            println!(
                "RESULT structure={} seed={seed:#x} kill={} killed={} setup_died={} \
                 records={} acked={} inflight={}",
                structure.name(),
                cfg.kill,
                r.killed,
                r.died_in_setup,
                r.records,
                r.acked,
                r.inflight
            );
            cleanup(&cfg);
            ExitCode::SUCCESS
        }
        Err(e) => {
            println!("FAILURE structure={} {SEED_ENV}={seed:#x}", structure.name());
            println!("{e}");
            ExitCode::FAILURE
        }
    }
}

/// Become the workload victim: no fork, no verify, no cleanup. With
/// `--events N` the process SIGKILLs itself mid-workload, leaving the
/// pool dirty on disk — the raw material for post-mortem forensics.
fn victim(args: &mut Args) -> ! {
    let structure = match structures_arg(args).as_slice() {
        [s] => *s,
        _ => die("victim needs exactly one --structure"),
    };
    let pool = args
        .opt("--pool")
        .map(PathBuf::from)
        .unwrap_or_else(|| die("victim needs --pool"));
    let seed = args
        .opt("--seed")
        .map(|v| parse_u64(&v).unwrap_or_else(|| die("bad --seed")))
        .unwrap_or_else(seed_from_env);
    let mut cfg = RunConfig::new(structure, pool, seed);
    if let Some(t) = args.opt("--threads").and_then(|v| v.parse().ok()) {
        cfg.threads = t;
    }
    if let Some(n) = args.opt("--ops").and_then(|v| v.parse().ok()) {
        cfg.ops_per_thread = n;
    }
    cfg.kill = if let Some(n) = args.opt("--events") {
        KillSpec::Events(parse_u64(&n).unwrap_or_else(|| die("bad --events")))
    } else if args.flag("--no-kill") {
        KillSpec::None
    } else {
        die("victim needs --events N or --no-kill")
    };
    args.finish();
    let _ = std::fs::remove_file(&cfg.pool);
    let mut marker = cfg.pool.as_os_str().to_owned();
    marker.push(".ready");
    let _ = std::fs::remove_file(PathBuf::from(marker));
    crashtest::child_exec(&cfg)
}

fn hold(args: &mut Args) -> ExitCode {
    let pool = args
        .opt("--pool")
        .map(PathBuf::from)
        .unwrap_or_else(|| die("hold needs --pool"));
    let millis: u64 = args
        .opt("--millis")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2000);
    args.finish();
    let heap = match ralloc::Ralloc::open_file(&pool, 32 << 20, ralloc::RallocConfig::default())
    {
        Ok((h, _dirty)) => h,
        Err(e) => {
            eprintln!("hold: open failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Tell the orchestrating test the lock is held (line-buffered pipe).
    println!("HOLDING");
    use std::io::Write;
    let _ = std::io::stdout().flush();
    std::thread::sleep(std::time::Duration::from_millis(millis));
    drop(heap);
    ExitCode::SUCCESS
}
