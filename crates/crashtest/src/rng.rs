//! Seeded xorshift64* PRNG: every random choice the harness makes (kill
//! offsets, op mixes, sizes) flows from one `RALLOC_CRASH_SEED`, so a
//! failing run replays bit-identically from its printed seed.

/// xorshift64* — tiny, fast, and plenty for fuzzing choices.
#[derive(Debug, Clone)]
pub struct XorShift(u64);

impl XorShift {
    /// Seeded generator (a zero seed is remapped to a fixed non-zero
    /// constant — xorshift has a zero fixed point).
    pub fn new(seed: u64) -> XorShift {
        XorShift(if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed })
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform-ish value in `[lo, hi)`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi);
        lo + self.next_u64() % (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = XorShift::new(42);
        let mut b = XorShift::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = XorShift::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut z = XorShift::new(0);
        assert_ne!(z.next_u64(), 0);
    }
}
