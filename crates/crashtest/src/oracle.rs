//! Visibility oracles: decide whether a recovered structure is
//! consistent with the persisted op-log.
//!
//! Two families cover every structure under test:
//!
//! * **Conservation** (queue, stack): values are globally unique
//!   (`tid << 32 | seq`), so the recovered snapshot plus the acked
//!   consumer results must account for every acked producer op exactly
//!   once, with a slack of at most one unrecorded consumption per
//!   in-flight consumer. Per-producer order (FIFO for the queue, LIFO
//!   for the stack) is checked on the surviving values.
//! * **Last-writer maps** (kv, nmtree, rbtree): keys are partitioned by
//!   thread (`tid << 32 | k`), so each thread's log replays to the exact
//!   expected state of its keys; the single possibly-in-flight op makes
//!   exactly one key two-valued (pre- or post-state, at most once).

use std::collections::{BTreeMap, HashMap, HashSet};

use crate::oplog::{LogOp, OpKind, RES_NONE};

/// Check a producer/consumer structure (queue or stack).
///
/// `snapshot` is the recovered structure's content — front-to-back for
/// the queue, top-to-bottom for the stack. `lifo` selects the
/// per-producer order direction the snapshot must honor.
pub fn check_conservation(
    logs: &[Vec<LogOp>],
    snapshot: &[u64],
    lifo: bool,
) -> Result<(), String> {
    let mut produced_acked: HashSet<u64> = HashSet::new();
    let mut produced_inflight: HashSet<u64> = HashSet::new();
    let mut consumed: Vec<u64> = Vec::new();
    let mut consumers_inflight = 0usize;
    for (t, ops) in logs.iter().enumerate() {
        for op in ops {
            match op.kind {
                OpKind::Enqueue | OpKind::Push => {
                    if op.acked {
                        produced_acked.insert(op.a);
                    } else {
                        produced_inflight.insert(op.a);
                    }
                }
                OpKind::Dequeue | OpKind::Pop => {
                    if op.acked {
                        if op.res != RES_NONE {
                            consumed.push(op.res);
                        }
                    } else {
                        consumers_inflight += 1;
                    }
                }
                OpKind::Churn => {}
                other => {
                    return Err(format!("thread {t}: unexpected op {other:?} in \
                                        conservation log"))
                }
            }
        }
    }

    // 1. The snapshot holds no duplicates and only values some producer
    //    actually (or possibly) produced.
    let mut seen = HashSet::new();
    for &v in snapshot {
        if !seen.insert(v) {
            return Err(format!("value {v:#x} appears twice in the snapshot"));
        }
        if !produced_acked.contains(&v) && !produced_inflight.contains(&v) {
            return Err(format!("value {v:#x} in snapshot was never produced"));
        }
    }

    // 2. Acked consumptions are of produced values, at most once each,
    //    and a consumed value cannot still be in the structure.
    let mut consumed_set = HashSet::new();
    for &v in &consumed {
        if !consumed_set.insert(v) {
            return Err(format!("value {v:#x} consumed twice"));
        }
        if !produced_acked.contains(&v) && !produced_inflight.contains(&v) {
            return Err(format!("consumed value {v:#x} was never produced"));
        }
        if seen.contains(&v) {
            return Err(format!("value {v:#x} both consumed and still present"));
        }
    }

    // 3. Exactly-once for acked producers: every acked value is present
    //    or consumed, except at most one per in-flight consumer (which
    //    may have removed a value without acking it).
    let missing: Vec<u64> = produced_acked
        .iter()
        .filter(|v| !seen.contains(v) && !consumed_set.contains(v))
        .copied()
        .collect();
    if missing.len() > consumers_inflight {
        return Err(format!(
            "{} acked-produced values vanished (e.g. {:#x}) but only {} \
             consumers were in flight",
            missing.len(),
            missing[0],
            consumers_inflight
        ));
    }

    // 4. Per-producer order among surviving values: a single producer's
    //    sequence numbers must appear monotonically (increasing for
    //    FIFO front-to-back, decreasing for LIFO top-to-bottom).
    let mut last: HashMap<u64, u64> = HashMap::new();
    for &v in snapshot {
        let (tid, seq) = (v >> 32, v & 0xffff_ffff);
        if let Some(&prev) = last.get(&tid) {
            let ok = if lifo { seq < prev } else { seq > prev };
            if !ok {
                return Err(format!(
                    "producer {tid}: seq {seq} after {prev} violates \
                     {} order",
                    if lifo { "LIFO" } else { "FIFO" }
                ));
            }
        }
        last.insert(tid, seq);
    }
    Ok(())
}

/// Map-structure semantics the replay has to mirror.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapSemantics {
    /// `insert` overwrites an existing key (PKv, PRbTree).
    Upsert,
    /// `insert` fails on an existing key (NmTree).
    InsertIfAbsent,
}

/// Check a key-value structure against the logs.
///
/// `entries` is the recovered structure's full content. Keys are
/// partitioned: key `tid << 32 | k` belongs to thread `tid`, so each
/// thread's sequential log determines its keys' expected values exactly,
/// modulo its one possibly-in-flight op.
pub fn check_map(
    logs: &[Vec<LogOp>],
    entries: &BTreeMap<u64, u64>,
    semantics: MapSemantics,
) -> Result<(), String> {
    // Partition the recovered entries by owning thread.
    let mut actual: Vec<BTreeMap<u64, u64>> = vec![BTreeMap::new(); logs.len()];
    for (&k, &v) in entries {
        let tid = (k >> 32) as usize;
        if tid >= logs.len() {
            return Err(format!("key {k:#x} belongs to no workload thread"));
        }
        actual[tid].insert(k, v);
    }

    for (t, ops) in logs.iter().enumerate() {
        let mut expect: BTreeMap<u64, u64> = BTreeMap::new();
        let mut inflight: Option<(u64, Option<u64>, Option<u64>)> = None; // key, pre, post
        for op in ops {
            let key = op.a;
            if (key >> 32) as usize != t {
                return Err(format!("thread {t} logged foreign key {key:#x}"));
            }
            let pre = expect.get(&key).copied();
            let post = match op.kind {
                OpKind::Insert => match semantics {
                    MapSemantics::Upsert => Some(op.b),
                    MapSemantics::InsertIfAbsent => pre.or(Some(op.b)),
                },
                OpKind::Remove => None,
                other => {
                    return Err(format!("thread {t}: unexpected op {other:?} in map log"))
                }
            };
            if op.acked {
                match post {
                    Some(v) => {
                        expect.insert(key, v);
                    }
                    None => {
                        expect.remove(&key);
                    }
                }
            } else {
                // Only the last record can be in flight (read_logs
                // enforced that): either state of this key is legal.
                inflight = Some((key, pre, post));
            }
        }
        let (if_key, if_pre, if_post) =
            inflight.map_or((u64::MAX, None, None), |(k, a, b)| (k, a, b));
        // Every expected key must hold its expected value; every actual
        // key must be expected — except the in-flight key, which may be
        // in its pre- or post-state.
        for (&k, &v) in &expect {
            if k == if_key {
                continue;
            }
            match actual[t].get(&k) {
                Some(&av) if av == v => {}
                Some(&av) => {
                    return Err(format!(
                        "thread {t} key {k:#x}: expected {v:#x}, structure has {av:#x}"
                    ))
                }
                None => {
                    return Err(format!(
                        "thread {t} key {k:#x}: acked value {v:#x} missing from structure"
                    ))
                }
            }
        }
        for (&k, &av) in &actual[t] {
            if k == if_key {
                continue;
            }
            match expect.get(&k) {
                Some(_) => {} // checked above
                None => {
                    return Err(format!(
                        "thread {t} key {k:#x}={av:#x} present but its last acked \
                         op removed it (or it was never inserted)"
                    ))
                }
            }
        }
        if if_key != u64::MAX {
            let got = actual[t].get(&if_key).copied();
            if got != if_pre && got != if_post {
                return Err(format!(
                    "thread {t} in-flight key {if_key:#x}: structure has {got:?}, \
                     expected pre {if_pre:?} or post {if_post:?}"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oplog::OpKind;

    fn op(kind: OpKind, a: u64, b: u64, res: u64, acked: bool) -> LogOp {
        LogOp { kind, a, b, res, acked }
    }

    #[test]
    fn conservation_accepts_consistent_history() {
        // Thread 0 enqueued 0,1,2 (acked); thread 1 dequeued value 0.
        let logs = vec![
            vec![
                op(OpKind::Enqueue, 0, 0, 0, true),
                op(OpKind::Enqueue, 1, 0, 0, true),
                op(OpKind::Enqueue, 2, 0, 0, true),
            ],
            vec![op(OpKind::Dequeue, 0, 0, 0, true)],
        ];
        check_conservation(&logs, &[1, 2], false).unwrap();
    }

    #[test]
    fn conservation_rejects_lost_ack() {
        let logs = vec![vec![op(OpKind::Enqueue, 7, 0, 0, true)]];
        let err = check_conservation(&logs, &[], false).unwrap_err();
        assert!(err.contains("vanished"), "{err}");
    }

    #[test]
    fn conservation_allows_inflight_consumer_slack() {
        let logs = vec![
            vec![op(OpKind::Enqueue, 7, 0, 0, true)],
            vec![op(OpKind::Dequeue, 0, 0, RES_NONE, false)],
        ];
        check_conservation(&logs, &[], false).unwrap();
    }

    #[test]
    fn conservation_rejects_duplicate_and_foreign_values() {
        let logs = vec![vec![op(OpKind::Enqueue, 7, 0, 0, true)]];
        assert!(check_conservation(&logs, &[7, 7], false).is_err());
        assert!(check_conservation(&logs, &[9], false).is_err());
    }

    #[test]
    fn conservation_checks_fifo_order() {
        let logs = vec![vec![
            op(OpKind::Enqueue, 1, 0, 0, true),
            op(OpKind::Enqueue, 2, 0, 0, true),
        ]];
        check_conservation(&logs, &[1, 2], false).unwrap();
        assert!(check_conservation(&logs, &[2, 1], false).is_err());
        // Same snapshot is fine for a stack (LIFO top-to-bottom).
        check_conservation(&logs, &[2, 1], true).unwrap();
    }

    #[test]
    fn map_accepts_replayed_history_and_inflight_slack() {
        let k = |t: u64, i: u64| (t << 32) | i;
        let logs = vec![vec![
            op(OpKind::Insert, k(0, 1), 10, 1, true),
            op(OpKind::Insert, k(0, 2), 20, 1, true),
            op(OpKind::Remove, k(0, 1), 0, 10, true),
            op(OpKind::Insert, k(0, 3), 30, RES_NONE, false),
        ]];
        // In-flight insert of key 3: absent...
        let mut m = BTreeMap::new();
        m.insert(k(0, 2), 20);
        check_map(&logs, &m, MapSemantics::Upsert).unwrap();
        // ...or present.
        m.insert(k(0, 3), 30);
        check_map(&logs, &m, MapSemantics::Upsert).unwrap();
        // But never with the wrong value.
        m.insert(k(0, 3), 31);
        assert!(check_map(&logs, &m, MapSemantics::Upsert).is_err());
    }

    #[test]
    fn map_rejects_lost_acked_insert() {
        let k = 5u64; // tid 0, key 5
        let logs = vec![vec![op(OpKind::Insert, k, 50, 1, true)]];
        let err = check_map(&logs, &BTreeMap::new(), MapSemantics::Upsert).unwrap_err();
        assert!(err.contains("missing"), "{err}");
    }

    #[test]
    fn map_honors_insert_if_absent_semantics() {
        let k = 5u64; // tid 0, key 5
        let logs = vec![vec![
            op(OpKind::Insert, k, 50, 1, true),
            op(OpKind::Insert, k, 60, 0, true), // failed: key existed
        ]];
        let mut m = BTreeMap::new();
        m.insert(k, 50);
        check_map(&logs, &m, MapSemantics::InsertIfAbsent).unwrap();
        // Upsert semantics would require 60.
        assert!(check_map(&logs, &m, MapSemantics::Upsert).is_err());
    }
}
