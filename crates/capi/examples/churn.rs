//! Allocation churn driver for the `LD_PRELOAD` smoke test.
//!
//! A deliberately ordinary Rust binary: it uses the *system* allocator
//! (libc `malloc` via `std::alloc::System`'s default global), so when
//! run under `LD_PRELOAD=librp.so` every allocation below exercises the
//! interposed C ABI — mixed sizes, cross-thread frees, over-aligned
//! blocks, `realloc` growth through `Vec`, and allocation inside a TLS
//! destructor. Exits 0 if every invariant holds.

use std::cell::RefCell;

/// Deterministic xorshift so runs are reproducible.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

#[repr(align(256))]
struct Overaligned([u8; 300]);

thread_local! {
    /// A TLS value whose destructor both frees and allocates: the
    /// classic global-allocator teardown hazard.
    static PARTING: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

struct AllocOnDrop;

impl Drop for AllocOnDrop {
    fn drop(&mut self) {
        let grown: Vec<u64> = (0..512).collect();
        assert_eq!(grown.iter().sum::<u64>(), 511 * 512 / 2);
    }
}

thread_local! {
    static LATE: RefCell<Option<AllocOnDrop>> = const { RefCell::new(None) };
}

fn worker(seed: u64) -> u64 {
    PARTING.with(|p| p.borrow_mut().push(format!("thread {seed} was here")));
    LATE.with(|l| *l.borrow_mut() = Some(AllocOnDrop));

    let mut rng = Rng(seed | 1);
    let mut live: Vec<Vec<u8>> = Vec::new();
    let mut checksum = 0u64;
    for round in 0..2_000u64 {
        let size = (rng.next() % 2048 + 1) as usize;
        let fill = (round & 0xFF) as u8;
        let v = vec![fill; size];
        checksum = checksum.wrapping_add(v.iter().map(|&b| b as u64).sum::<u64>());
        live.push(v);
        if live.len() > 64 {
            let idx = (rng.next() as usize) % live.len();
            let v = live.swap_remove(idx);
            let fill = v[0];
            assert!(v.iter().all(|&b| b == fill), "payload corrupted");
        }
        if round % 97 == 0 {
            let big = Box::new(Overaligned([0x5A; 300]));
            assert_eq!(&*big as *const _ as usize % 256, 0, "over-aligned box misaligned");
            assert!(big.0.iter().all(|&b| b == 0x5A));
        }
        if round % 131 == 0 {
            // Vec growth from tiny: a realloc ladder.
            let mut grow: Vec<u64> = Vec::with_capacity(1);
            for i in 0..500 {
                grow.push(i);
            }
            assert_eq!(grow[499], 499);
        }
    }
    checksum
}

fn main() {
    let threads: Vec<_> = (0..4)
        .map(|t| {
            std::thread::spawn(move || {
                // Cross-thread traffic: blocks allocated here are freed
                // by whichever thread pops them — including `main`.
                worker(0x9E3779B97F4A7C15 ^ t)
            })
        })
        .collect();
    let local = worker(42);
    let mut total = local;
    for t in threads {
        total = total.wrapping_add(t.join().expect("worker panicked"));
    }
    // calloc path: zeroed even on recycled blocks.
    let zeroed = vec![0u8; 1 << 20];
    assert!(zeroed.iter().all(|&b| b == 0), "calloc returned dirty memory");
    println!("churn ok: checksum {total:#x}");
}
