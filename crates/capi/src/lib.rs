//! `librp` — the Ralloc heap behind a C ABI, interposable via
//! `LD_PRELOAD`.
//!
//! Two surfaces share one process-wide pool (the singleton managed by
//! [`galloc`]):
//!
//! * **Explicit**: `rp_init` / `rp_malloc` / `rp_calloc` / `rp_realloc`
//!   / `rp_free` / `rp_close` — the paper's C interface, for programs
//!   linking `librp` deliberately.
//! * **Interposed**: `malloc` / `free` / `calloc` / `realloc` /
//!   `posix_memalign` / `aligned_alloc` / `malloc_usable_size`, so
//!   `LD_PRELOAD=librp.so GALLOC_POOL=/path/heap.pool some-binary`
//!   transparently runs an unmodified program on persistent memory.
//!
//! ## Self-describing pointers
//!
//! C `free` receives no layout, so — unlike the Rust
//! `#[global_allocator]` surface, which routes on the `Layout` it is
//! handed — every pointer this library returns is self-describing.
//! The word just below the payload says how to take the block apart:
//!
//! ```text
//! pool:   [raw Ralloc block .. [raw addr][payload ..]        ]
//! arena:  [bump chunk       .. [size    ][payload ..]        ]
//! mmap:   [page-aligned map .. [chunk addr][map len][payload]]
//! ```
//!
//! Provenance is decided without metadata: `Ralloc::contains`, then the
//! bootstrap arena's fixed range, and anything else must be one of our
//! own anonymous mappings — under `LD_PRELOAD` from process start there
//! is no fourth allocator the pointer could have come from.
//!
//! ## Re-entry
//!
//! Interposing `malloc` means the allocator's own DRAM needs (thread
//! cache boxes, shard vectors, `env` strings during pool construction)
//! arrive back here recursively, and there is no libc `malloc` to punt
//! to — it *is* this function. While the pool is being built, or while
//! a pool operation is already in flight on this thread
//! ([`galloc::in_pool_op`]), allocations are served from
//! [`galloc::boot`]: a static bump arena, then raw anonymous `mmap`
//! (direct syscalls, no libc anywhere on the path).

use std::os::raw::{c_char, c_int, c_void};

use galloc::boot;
use ralloc::Ralloc;

/// Minimum payload alignment, per the C `malloc` contract
/// (`max_align_t` is 16 on x86_64).
const MIN_ALIGN: usize = 16;

/// Arena chunks above this go straight to `mmap` (the arena is a small
/// fixed pool reserved for bootstrap churn).
const ARENA_MAX: usize = 32 << 10;

#[inline]
fn round_up(n: usize, align: usize) -> usize {
    (n + align - 1) & !(align - 1)
}

/// Allocate `size` bytes at `align` (a power of two) with a
/// self-describing header. Never unwinds; null on exhaustion.
fn c_alloc(size: usize, align: usize) -> *mut u8 {
    let align = align.max(MIN_ALIGN);
    if !galloc::in_pool_op() && !galloc::pool_closed() {
        if let Some(heap) = galloc::heap() {
            let _g = galloc::reentry_guard();
            let p = pool_c_alloc(heap, size, align);
            if !p.is_null() {
                return p;
            }
        }
    }
    boot_alloc(size, align)
}

/// Pool-backed allocation: over-allocate by `align + 8`, round the
/// payload up past an 8-byte slot, stash the raw block address there.
fn pool_c_alloc(heap: &Ralloc, size: usize, align: usize) -> *mut u8 {
    let Some(request) = size.checked_add(align + 8) else {
        return std::ptr::null_mut();
    };
    let raw = heap.malloc(request);
    if raw.is_null() {
        return std::ptr::null_mut();
    }
    let p = round_up(raw as usize + 8, align);
    // SAFETY: p - 8 >= raw and p + size <= raw + request; the slot is
    // 8-aligned (p is a multiple of align >= 16).
    unsafe { std::ptr::write((p as *mut u64).sub(1), raw as u64) };
    p as *mut u8
}

/// Bootstrap allocation: bump arena for small chunks, anonymous `mmap`
/// for the rest (and for arena overflow).
fn boot_alloc(size: usize, align: usize) -> *mut u8 {
    if let Some(chunk_len) = size.checked_add(align + 8) {
        if chunk_len <= ARENA_MAX {
            let chunk = boot::arena_alloc(chunk_len, 8);
            if !chunk.is_null() {
                let p = round_up(chunk as usize + 8, align);
                // SAFETY: slot and payload fit the chunk as above; arena
                // frees are no-ops, so the slot records the *size* for
                // malloc_usable_size instead of a raw address.
                unsafe { std::ptr::write((p as *mut u64).sub(1), size as u64) };
                return p as *mut u8;
            }
        }
    }
    let Some(total) = size.checked_add(align + 16).map(|t| round_up(t, 4096)) else {
        return std::ptr::null_mut();
    };
    let chunk = boot::map_pages(total);
    if chunk.is_null() {
        return std::ptr::null_mut();
    }
    let p = round_up(chunk as usize + 16, align);
    // SAFETY: p - 16 >= chunk and p + size <= chunk + total; both slots
    // are 8-aligned.
    unsafe {
        std::ptr::write((p as *mut u64).sub(2), chunk as u64);
        std::ptr::write((p as *mut u64).sub(1), total as u64);
    }
    p as *mut u8
}

/// Release a [`c_alloc`] pointer. Null is a no-op, as is an arena chunk
/// (bounded bootstrap leak) or any pool block after [`rp_close`].
fn c_free(p: *mut u8) {
    if p.is_null() || boot::arena_contains(p) {
        return;
    }
    if let Some(heap) = galloc::heap_if_ready() {
        if heap.contains(p) {
            if galloc::pool_closed() {
                return;
            }
            let _g = galloc::reentry_guard();
            // SAFETY: pool pointers carry the raw block address at p-8.
            let raw = unsafe { std::ptr::read((p as *const u64).sub(1)) } as *mut u8;
            heap.free(raw);
            return;
        }
    }
    // SAFETY: not pool, not arena: one of our anonymous mappings, whose
    // base and length sit just below the payload.
    unsafe {
        let chunk = std::ptr::read((p as *const u64).sub(2)) as *mut u8;
        let total = std::ptr::read((p as *const u64).sub(1)) as usize;
        boot::unmap_pages(chunk, total);
    }
}

/// Usable bytes at `p` (>= the requested size; 0 for null).
fn c_usable_size(p: *const u8) -> usize {
    if p.is_null() {
        return 0;
    }
    if boot::arena_contains(p) {
        // SAFETY: arena slot stores the requested size.
        return unsafe { std::ptr::read((p as *const u64).sub(1)) } as usize;
    }
    if let Some(heap) = galloc::heap_if_ready() {
        if heap.contains(p) {
            let _g = galloc::reentry_guard();
            // SAFETY: pool slot stores the raw block address.
            let raw = unsafe { std::ptr::read((p as *const u64).sub(1)) } as usize;
            return heap.usable_size(raw as *const u8) - (p as usize - raw);
        }
    }
    // SAFETY: mmap header as in c_free.
    unsafe {
        let chunk = std::ptr::read((p as *const u64).sub(2)) as usize;
        let total = std::ptr::read((p as *const u64).sub(1)) as usize;
        chunk + total - p as usize
    }
}

fn c_realloc(p: *mut u8, size: usize) -> *mut u8 {
    if p.is_null() {
        return c_alloc(size, MIN_ALIGN);
    }
    if size == 0 {
        c_free(p);
        return std::ptr::null_mut();
    }
    let usable = c_usable_size(p);
    if size <= usable {
        return p;
    }
    let fresh = c_alloc(size, MIN_ALIGN);
    if !fresh.is_null() {
        // SAFETY: old payload spans `usable` readable bytes, new spans
        // at least `size`.
        unsafe { std::ptr::copy_nonoverlapping(p, fresh, usable.min(size)) };
        c_free(p);
    }
    fresh
}

// ------------------------------------------------------- explicit C API

/// Open (or create) the process pool. `path == NULL` gives a transient
/// DRAM pool; otherwise the heap file is created/reopened (recovering a
/// dirty image first) and closed cleanly at exit. `cap == 0` keeps the
/// `GALLOC_CAP`/default capacity. Returns 0 on success, -1 on failure.
/// Idempotent once the pool exists; tolerates `malloc` re-entry during
/// construction.
///
/// # Safety
/// `path` must be null or a NUL-terminated string.
#[no_mangle]
pub unsafe extern "C" fn rp_init(path: *const c_char, cap: usize) -> c_int {
    if !path.is_null() {
        // SAFETY: caller contract.
        let cpath = unsafe { std::ffi::CStr::from_ptr(path) };
        match cpath.to_str() {
            Ok(s) => std::env::set_var("GALLOC_POOL", s),
            Err(_) => return -1,
        }
    }
    if cap > 0 {
        std::env::set_var("GALLOC_CAP", cap.to_string());
    }
    if galloc::heap().is_some() {
        0
    } else {
        -1
    }
}

/// Cleanly close a file-backed pool (flush, clear the dirty bit). After
/// this the image is sealed: `malloc` degrades to transient memory and
/// frees of live pool blocks are ignored. Returns 0 if this call closed
/// the pool, -1 if there was nothing to close.
#[no_mangle]
pub extern "C" fn rp_close() -> c_int {
    if galloc::close_pool() {
        0
    } else {
        -1
    }
}

/// The paper's `malloc`.
#[no_mangle]
pub extern "C" fn rp_malloc(size: usize) -> *mut c_void {
    c_alloc(size, MIN_ALIGN) as *mut c_void
}

/// The paper's `free`.
///
/// # Safety
/// `p` must be null or a live pointer from this allocator.
#[no_mangle]
pub unsafe extern "C" fn rp_free(p: *mut c_void) {
    c_free(p as *mut u8)
}

/// `calloc`: zeroed even when the pool recycles a persistent block
/// whose previous life (possibly pre-crash) left bytes behind.
#[no_mangle]
pub extern "C" fn rp_calloc(n: usize, size: usize) -> *mut c_void {
    let Some(total) = n.checked_mul(size) else {
        return std::ptr::null_mut();
    };
    let p = c_alloc(total, MIN_ALIGN);
    if !p.is_null() {
        // SAFETY: fresh payload of at least `total` bytes.
        unsafe { std::ptr::write_bytes(p, 0, total) };
    }
    p as *mut c_void
}

/// `realloc` (in place while the block's usable span covers the request).
///
/// # Safety
/// `p` must be null or a live pointer from this allocator.
#[no_mangle]
pub unsafe extern "C" fn rp_realloc(p: *mut c_void, size: usize) -> *mut c_void {
    c_realloc(p as *mut u8, size) as *mut c_void
}

// -------------------------------------------- LD_PRELOAD interposition

/// Interposed `malloc`.
#[no_mangle]
pub extern "C" fn malloc(size: usize) -> *mut c_void {
    rp_malloc(size)
}

/// Interposed `free`.
///
/// # Safety
/// As [`rp_free`].
#[no_mangle]
pub unsafe extern "C" fn free(p: *mut c_void) {
    // SAFETY: same contract.
    unsafe { rp_free(p) }
}

/// Interposed `calloc`.
#[no_mangle]
pub extern "C" fn calloc(n: usize, size: usize) -> *mut c_void {
    rp_calloc(n, size)
}

/// Interposed `realloc`.
///
/// # Safety
/// As [`rp_realloc`].
#[no_mangle]
pub unsafe extern "C" fn realloc(p: *mut c_void, size: usize) -> *mut c_void {
    // SAFETY: same contract.
    unsafe { rp_realloc(p, size) }
}

/// Interposed `posix_memalign`.
///
/// # Safety
/// `memptr` must be a valid out-pointer.
#[no_mangle]
pub unsafe extern "C" fn posix_memalign(
    memptr: *mut *mut c_void,
    align: usize,
    size: usize,
) -> c_int {
    if !align.is_power_of_two() || align < std::mem::size_of::<*mut c_void>() {
        return 22; // EINVAL
    }
    let p = c_alloc(size, align);
    if p.is_null() {
        return 12; // ENOMEM
    }
    // SAFETY: caller contract.
    unsafe { *memptr = p as *mut c_void };
    0
}

/// Interposed `aligned_alloc`.
#[no_mangle]
pub extern "C" fn aligned_alloc(align: usize, size: usize) -> *mut c_void {
    if !align.is_power_of_two() {
        return std::ptr::null_mut();
    }
    c_alloc(size, align) as *mut c_void
}

/// Interposed `memalign` (obsolete but still emitted by some programs).
#[no_mangle]
pub extern "C" fn memalign(align: usize, size: usize) -> *mut c_void {
    if !align.is_power_of_two() {
        return std::ptr::null_mut();
    }
    c_alloc(size, align) as *mut c_void
}

/// Interposed `malloc_usable_size`.
///
/// # Safety
/// `p` must be null or a live pointer from this allocator.
#[no_mangle]
pub unsafe extern "C" fn malloc_usable_size(p: *mut c_void) -> usize {
    c_usable_size(p as *const u8)
}
