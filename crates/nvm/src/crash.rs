//! Deterministic crash-point injection.
//!
//! Recoverability (paper §3, Theorem 5.4) must hold for a crash at *any*
//! point in the execution. To test that, a [`CrashInjector`] counts
//! persistence events (flushes and fences) and, when a pre-armed budget is
//! exhausted, aborts the executing thread by panicking with a recognizable
//! payload. The test harness catches the unwind, invokes
//! [`crate::PmemPool::crash`] to discard non-persisted lines, runs
//! recovery, and verifies the heap invariants.
//!
//! Counting *persistence events* rather than instructions keeps the crash
//! points aligned with the moments the persistent image actually changes,
//! which is where the interesting interleavings live. Tests typically
//! sweep the budget from 1 to the total number of events observed in a
//! crash-free run, plus random budgets under concurrency.

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

/// Panic payload used to signal an injected crash. Harnesses match on this
/// with [`CrashPoint::is`] after `catch_unwind`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPoint;

/// Message embedded in injected-crash panics (also matchable as a string
/// payload for convenience when the payload crosses a thread boundary).
pub const CRASH_POINT_MSG: &str = "nvm: injected crash point";

impl CrashPoint {
    /// Returns true if a caught panic payload is an injected crash.
    pub fn is(payload: &(dyn std::any::Any + Send)) -> bool {
        payload.is::<CrashPoint>()
            || payload
                .downcast_ref::<&str>()
                .is_some_and(|s| *s == CRASH_POINT_MSG)
            || payload
                .downcast_ref::<String>()
                .is_some_and(|s| s == CRASH_POINT_MSG)
    }
}

/// What firing the injector does to the process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashAction {
    /// Panic with [`CrashPoint`] — the cooperative style: the harness
    /// catches the unwind in-process and simulates the power failure
    /// itself (`PmemPool::crash`).
    Panic,
    /// `SIGKILL` the whole process — the kill-based style: no unwinding,
    /// no destructors, no chance to "finish" anything. Only meaningful
    /// when the surviving state lives outside the process (a file-backed
    /// pool) and a parent process performs the recovery check.
    Kill,
}

/// Counts persistence events and injects a crash when armed.
///
/// Disarmed by default; [`CrashInjector::arm`] gives a budget of events
/// after which the *next* event panics. The injector is shared (`Arc`) so a
/// pool and many threads can observe the same budget; the panic fires in
/// whichever thread exhausts it, and only once per arming.
///
/// [`CrashInjector::arm_kill`] swaps the panic for a real `SIGKILL` of the
/// process — the deterministic flavour of the fork-based crash harness
/// (`crates/crashtest`): persistence event N is an exact, replayable
/// program point, and the kill at it is a true fail-stop (nothing after
/// the event executes, not even unwinding).
#[derive(Debug, Default)]
pub struct CrashInjector {
    /// Remaining events before crash; negative = disarmed.
    budget: AtomicI64,
    /// Total events observed since construction (never reset by arm).
    observed: AtomicU64,
    /// 0 = panic (default), 1 = SIGKILL self.
    action: AtomicU8,
}

impl CrashInjector {
    /// A new, disarmed injector.
    pub fn new() -> Arc<Self> {
        Arc::new(CrashInjector {
            budget: AtomicI64::new(-1),
            observed: AtomicU64::new(0),
            action: AtomicU8::new(0),
        })
    }

    /// Arm the injector: after `n` further events, the next event panics
    /// with [`CrashPoint`]. `n == 0` means the very next event crashes.
    pub fn arm(&self, n: u64) {
        self.action.store(0, Ordering::SeqCst);
        self.budget.store(n as i64, Ordering::SeqCst);
    }

    /// Arm the injector to `SIGKILL` the whole process at the event
    /// instead of panicking. See [`CrashAction::Kill`]; requires the raw
    /// syscall layer ([`crate::sys::available`]) to actually die — on
    /// unsupported hosts the event falls back to the panic action.
    pub fn arm_kill(&self, n: u64) {
        self.action.store(1, Ordering::SeqCst);
        self.budget.store(n as i64, Ordering::SeqCst);
    }

    /// Disarm without crashing.
    pub fn disarm(&self) {
        self.budget.store(-1, Ordering::SeqCst);
    }

    /// Number of persistence events observed over the injector's lifetime.
    /// Run once disarmed to learn the event count, then sweep `arm(0..n)`.
    pub fn observed(&self) -> u64 {
        self.observed.load(Ordering::SeqCst)
    }

    /// Record one persistence event; panics with [`CrashPoint`] if the
    /// armed budget is exhausted. Called by the pool on flush and fence.
    #[inline]
    pub fn on_event(&self) {
        self.observed.fetch_add(1, Ordering::Relaxed);
        // Fast path: disarmed.
        if self.budget.load(Ordering::Relaxed) < 0 {
            return;
        }
        let prev = self.budget.fetch_sub(1, Ordering::SeqCst);
        if prev == 0 {
            // Our decrement consumed the final budget: crash here. Leave
            // the counter negative so concurrent threads do not also fire.
            self.budget.store(i64::MIN / 2, Ordering::SeqCst);
            if self.action.load(Ordering::SeqCst) == 1 {
                // Fail-stop for real: SIGKILL cannot be caught, so nothing
                // past this persistence event runs in any thread. If the
                // kill somehow fails (unsupported host), fall through to
                // the panic so the event never passes silently.
                let _ = crate::sys::kill(crate::sys::getpid(), crate::sys::SIGKILL);
                std::thread::sleep(std::time::Duration::from_secs(10));
            }
            std::panic::panic_any(CrashPoint);
        }
        if prev < 0 {
            // Lost a race with the crashing thread after it re-armed to a
            // deeply negative value; treat as disarmed.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_never_fires() {
        let inj = CrashInjector::new();
        for _ in 0..1000 {
            inj.on_event();
        }
        assert_eq!(inj.observed(), 1000);
    }

    #[test]
    fn fires_after_budget() {
        let inj = CrashInjector::new();
        inj.arm(3);
        inj.on_event();
        inj.on_event();
        inj.on_event();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| inj.on_event()));
        let payload = r.expect_err("should have crashed");
        assert!(CrashPoint::is(&*payload));
    }

    #[test]
    fn fires_only_once() {
        let inj = CrashInjector::new();
        inj.arm(0);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| inj.on_event()));
        assert!(r.is_err());
        // Subsequent events are quiet.
        inj.on_event();
        inj.on_event();
    }

    #[test]
    fn disarm_cancels() {
        let inj = CrashInjector::new();
        inj.arm(1);
        inj.on_event();
        inj.disarm();
        inj.on_event(); // would have fired
    }

    #[test]
    fn crash_point_matches_str_payloads() {
        let boxed: Box<dyn std::any::Any + Send> = Box::new(CRASH_POINT_MSG);
        assert!(CrashPoint::is(&*boxed));
        let boxed: Box<dyn std::any::Any + Send> = Box::new(CRASH_POINT_MSG.to_string());
        assert!(CrashPoint::is(&*boxed));
        let other: Box<dyn std::any::Any + Send> = Box::new(42u32);
        assert!(!CrashPoint::is(&*other));
    }
}
