//! The simulated persistent-memory pool.

use std::alloc::{alloc_zeroed, dealloc, Layout};
use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::crash::CrashInjector;
use crate::flush::FlushModel;
use crate::stats::PmemStats;
use crate::{line_down, line_up, CACHE_LINE};

/// How the pool simulates persistence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Loads/stores go straight to memory; flush/fence are compiler fences
    /// plus the [`FlushModel`] latency. No crash simulation. This is the
    /// performance-measurement configuration.
    Direct,
    /// The pool maintains a shadow *persistent image*. A cache line enters
    /// the shadow only when flushed and then fenced. [`PmemPool::crash`]
    /// reverts the volatile image to the shadow. This is the
    /// crash-semantics-testing configuration.
    Tracked,
}

/// What survives a simulated power failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashStyle {
    /// Only lines that were explicitly flushed and fenced survive — the
    /// strict pmemcheck/Yat model and the worst case for recovery code.
    StrictFlushOnly,
    /// In addition, each dirty-but-unflushed line survives with probability
    /// `survive_permille`/1000, modelling spontaneous cache eviction on
    /// real hardware. Deterministic given `seed`.
    RandomEviction {
        /// Per-line survival probability in permille (0..=1000).
        survive_permille: u32,
        /// RNG seed (xorshift) so failures reproduce.
        seed: u64,
    },
}

struct TrackState {
    /// The persistent image: what NVM would contain after power loss.
    shadow: Box<[u8]>,
    /// Lines flushed (content captured at flush time) but not yet fenced.
    pending: HashMap<usize, [u8; CACHE_LINE]>,
}

/// A region of simulated NVM.
///
/// The region is a single allocation, 4 KiB aligned, zero-initialized
/// (matching fresh DAX pages). All offsets are relative to [`PmemPool::base`];
/// persistent data structures must store *offsets* (or self-relative
/// pointers), never absolute addresses, because a reload maps the image at
/// a different base — exactly the position-independence discipline the
/// paper's `pptr` enforces.
pub struct PmemPool {
    base: *mut u8,
    len: usize,
    layout: Layout,
    mode: Mode,
    flush_model: FlushModel,
    stats: PmemStats,
    injector: Option<Arc<CrashInjector>>,
    tracked: Option<Mutex<TrackState>>,
    /// Number of simulated crashes survived (diagnostics).
    crashes: AtomicU32,
}

// SAFETY: the pool hands out raw pointers and the collaborating allocator
// performs all concurrent access through atomics; the pool's own mutable
// state is behind a Mutex. `crash` and `load` require external quiescence,
// which the allocator layer guarantees (recovery is offline, paper §3).
unsafe impl Send for PmemPool {}
unsafe impl Sync for PmemPool {}

impl PmemPool {
    /// Create a zeroed pool of `len` bytes (rounded up to a cache line).
    pub fn new(len: usize, mode: Mode) -> Self {
        Self::with_options(len, mode, FlushModel::default(), None)
    }

    /// Create a pool with an explicit flush-latency model and optional
    /// crash injector.
    pub fn with_options(
        len: usize,
        mode: Mode,
        flush_model: FlushModel,
        injector: Option<Arc<CrashInjector>>,
    ) -> Self {
        let len = line_up(len.max(CACHE_LINE));
        let layout = Layout::from_size_align(len, 4096).expect("pool layout");
        // SAFETY: layout has nonzero size.
        let base = unsafe { alloc_zeroed(layout) };
        assert!(!base.is_null(), "pmem pool allocation of {len} bytes failed");
        let tracked = match mode {
            Mode::Direct => None,
            Mode::Tracked => Some(Mutex::new(TrackState {
                shadow: vec![0u8; len].into_boxed_slice(),
                pending: HashMap::new(),
            })),
        };
        PmemPool {
            base,
            len,
            layout,
            mode,
            flush_model,
            stats: PmemStats::default(),
            injector,
            tracked,
            crashes: AtomicU32::new(0),
        }
    }

    /// Base address of the mapping. Valid until the pool is dropped.
    #[inline]
    pub fn base(&self) -> *mut u8 {
        self.base
    }

    /// Size of the region in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the pool has zero capacity (never true in practice).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The persistence mode.
    #[inline]
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Persistence-operation counters.
    #[inline]
    pub fn stats(&self) -> &PmemStats {
        &self.stats
    }

    /// Number of simulated crashes this pool has been through.
    pub fn crash_count(&self) -> u32 {
        self.crashes.load(Ordering::Relaxed)
    }

    /// True if `off..off+len` lies within the pool.
    #[inline]
    pub fn check_range(&self, off: usize, len: usize) -> bool {
        off <= self.len && len <= self.len - off
    }

    /// Raw pointer to offset `off`.
    ///
    /// # Safety
    /// `off + size_of::<T>()` must be in bounds and `off` must satisfy
    /// `T`'s alignment relative to the (4 KiB-aligned) base. All access
    /// through the pointer must follow the usual aliasing rules (shared
    /// mutation only through atomics).
    #[inline]
    pub unsafe fn at<T>(&self, off: usize) -> *mut T {
        debug_assert!(self.check_range(off, std::mem::size_of::<T>()));
        debug_assert_eq!(off % std::mem::align_of::<T>(), 0);
        self.base.add(off) as *mut T
    }

    /// An atomic u64 view of the 8 bytes at offset `off`.
    ///
    /// # Safety
    /// `off` must be 8-aligned and in bounds; the location must only be
    /// accessed as an atomic u64 while shared.
    #[inline]
    pub unsafe fn atomic_u64(&self, off: usize) -> &AtomicU64 {
        debug_assert!(self.check_range(off, 8));
        debug_assert_eq!(off % 8, 0);
        &*(self.base.add(off) as *const AtomicU64)
    }

    /// Read a u64 at `off` with a plain (non-atomic) load.
    ///
    /// # Safety
    /// `off` must be 8-aligned, in bounds, and not concurrently written.
    #[inline]
    pub unsafe fn read_u64(&self, off: usize) -> u64 {
        std::ptr::read(self.at::<u64>(off))
    }

    /// Write a u64 at `off` with a plain (non-atomic) store.
    ///
    /// # Safety
    /// As for [`PmemPool::read_u64`], plus exclusivity of the write.
    #[inline]
    pub unsafe fn write_u64(&self, off: usize, v: u64) {
        std::ptr::write(self.at::<u64>(off), v)
    }

    /// `clwb`-equivalent: request write-back of every cache line covering
    /// `off..off+len`. Not persistent until the next [`PmemPool::fence`].
    pub fn flush(&self, off: usize, len: usize) {
        assert!(self.check_range(off, len), "flush out of range");
        if len == 0 {
            return;
        }
        let first = line_down(off);
        let last = line_up(off + len);
        let lines = (last - first) / CACHE_LINE;
        if let Some(inj) = &self.injector {
            inj.on_event();
        }
        // One flush call covers one contiguous line run; adjacent CLWBs
        // pipeline, so the model charges once per run, not per line.
        let charged = match self.mode {
            Mode::Direct => {
                // The data already lives in (cache-coherent) DRAM; charge
                // the modelled latency and compile-time order the stores.
                std::sync::atomic::compiler_fence(Ordering::SeqCst);
                self.flush_model.charge_flush_run(lines)
            }
            Mode::Tracked => {
                let mut st = self.tracked.as_ref().unwrap().lock();
                for line in (first..last).step_by(CACHE_LINE) {
                    let mut buf = [0u8; CACHE_LINE];
                    // SAFETY: line..line+64 is in bounds; racing reads of
                    // bytes being concurrently stored yield *some* byte
                    // values, which is exactly the nondeterminism a real
                    // asynchronous write-back has.
                    unsafe {
                        std::ptr::copy_nonoverlapping(
                            self.base.add(line),
                            buf.as_mut_ptr(),
                            CACHE_LINE,
                        );
                    }
                    st.pending.insert(line, buf);
                }
                self.flush_model.charge_flush_run(lines)
            }
        };
        self.stats.record_flush(lines, charged);
    }

    /// `sfence`-equivalent: all previously flushed lines become persistent.
    pub fn fence(&self) {
        if let Some(inj) = &self.injector {
            inj.on_event();
        }
        let charged = match self.mode {
            Mode::Direct => {
                std::sync::atomic::fence(Ordering::SeqCst);
                self.flush_model.charge_fence()
            }
            Mode::Tracked => {
                let mut st = self.tracked.as_ref().unwrap().lock();
                let pending = std::mem::take(&mut st.pending);
                for (line, buf) in pending {
                    st.shadow[line..line + CACHE_LINE].copy_from_slice(&buf);
                }
                self.flush_model.charge_fence()
            }
        };
        self.stats.record_fence(charged);
    }

    /// Flush + fence in one call (the common "persist" idiom).
    pub fn persist(&self, off: usize, len: usize) {
        self.flush(off, len);
        self.fence();
    }

    /// Simulate a full-system power failure with the strict model: the
    /// volatile image is replaced by the persistent image; everything not
    /// explicitly flushed-and-fenced is lost.
    ///
    /// The caller must guarantee quiescence (no thread touching the pool),
    /// mirroring the paper's fail-stop model in which a crash halts all
    /// threads. Panics in [`Mode::Direct`].
    pub fn crash(&self) {
        self.crash_with(CrashStyle::StrictFlushOnly)
    }

    /// Simulate a crash with a chosen [`CrashStyle`].
    pub fn crash_with(&self, style: CrashStyle) {
        let tracked = self
            .tracked
            .as_ref()
            .expect("crash simulation requires Mode::Tracked");
        let mut st = tracked.lock();
        // Un-fenced flushes are lost.
        st.pending.clear();
        if let CrashStyle::RandomEviction { survive_permille, seed } = style {
            // Some dirty lines persist anyway (spontaneous eviction).
            let mut rng = seed | 1;
            let mut xorshift = move || {
                rng ^= rng << 13;
                rng ^= rng >> 7;
                rng ^= rng << 17;
                rng
            };
            for line in (0..self.len).step_by(CACHE_LINE) {
                // SAFETY: in-bounds; quiescent per contract.
                let volatile =
                    unsafe { std::slice::from_raw_parts(self.base.add(line), CACHE_LINE) };
                if volatile != &st.shadow[line..line + CACHE_LINE]
                    && (xorshift() % 1000) < survive_permille as u64
                {
                    st.shadow[line..line + CACHE_LINE].copy_from_slice(volatile);
                }
            }
        }
        // SAFETY: quiescent per contract; copies shadow over volatile.
        unsafe {
            std::ptr::copy_nonoverlapping(st.shadow.as_ptr(), self.base, self.len);
        }
        self.crashes.fetch_add(1, Ordering::Relaxed);
    }

    /// A copy of the image that would survive a crash right now
    /// (in [`Mode::Direct`] this is the volatile image, i.e. assume clean
    /// shutdown).
    pub fn persistent_image(&self) -> Vec<u8> {
        match &self.tracked {
            Some(t) => t.lock().shadow.to_vec(),
            // SAFETY: reading the whole pool; caller tolerance for racing
            // bytes as with flush.
            None => unsafe { std::slice::from_raw_parts(self.base, self.len).to_vec() },
        }
    }

    /// Write the current volatile image to a file — what a clean shutdown
    /// (full write-back) leaves in the DAX segment.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        // SAFETY: whole-pool read, caller quiescent.
        let data = unsafe { std::slice::from_raw_parts(self.base, self.len) };
        fs::write(path, data)
    }

    /// Write the *persistent* image to a file — what NVM would contain if
    /// the machine lost power now.
    pub fn save_crash_image(&self, path: &Path) -> io::Result<()> {
        fs::write(path, self.persistent_image())
    }

    /// Recreate a pool from a file produced by [`PmemPool::save`] or
    /// [`PmemPool::save_crash_image`]. The new pool's base address will,
    /// in general, differ from the original — position-independent data
    /// must still be readable, which the tests verify.
    pub fn load(path: &Path, mode: Mode) -> io::Result<Self> {
        Self::load_with(path, mode, FlushModel::default(), None)
    }

    /// [`PmemPool::load`] with explicit model/injector.
    pub fn load_with(
        path: &Path,
        mode: Mode,
        flush_model: FlushModel,
        injector: Option<Arc<CrashInjector>>,
    ) -> io::Result<Self> {
        let data = fs::read(path)?;
        let pool = Self::with_options(data.len(), mode, flush_model, injector);
        assert!(pool.len >= data.len());
        // SAFETY: fresh pool, no other users yet.
        unsafe {
            std::ptr::copy_nonoverlapping(data.as_ptr(), pool.base, data.len());
        }
        // The on-file image *is* persistent: seed the shadow with it.
        if let Some(t) = &pool.tracked {
            let mut st = t.lock();
            st.shadow[..data.len()].copy_from_slice(&data);
        }
        Ok(pool)
    }

    /// Adopt an in-memory image (used to simulate a remap at a new base
    /// address without touching the filesystem).
    pub fn from_image(image: &[u8], mode: Mode) -> Self {
        let pool = Self::with_options(image.len(), mode, FlushModel::default(), None);
        // SAFETY: fresh pool.
        unsafe {
            std::ptr::copy_nonoverlapping(image.as_ptr(), pool.base, image.len());
        }
        if let Some(t) = &pool.tracked {
            t.lock().shadow[..image.len()].copy_from_slice(image);
        }
        pool
    }
}

impl Drop for PmemPool {
    fn drop(&mut self) {
        // SAFETY: allocated in `with_options` with this layout.
        unsafe { dealloc(self.base, self.layout) }
    }
}

impl std::fmt::Debug for PmemPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PmemPool")
            .field("len", &self.len)
            .field("mode", &self.mode)
            .field("crashes", &self.crash_count())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_bytes(pool: &PmemPool, off: usize, bytes: &[u8]) {
        unsafe {
            std::ptr::copy_nonoverlapping(bytes.as_ptr(), pool.base().add(off), bytes.len());
        }
    }

    fn read_byte(pool: &PmemPool, off: usize) -> u8 {
        unsafe { *pool.base().add(off) }
    }

    #[test]
    fn new_pool_is_zeroed_and_aligned() {
        let pool = PmemPool::new(1 << 16, Mode::Direct);
        assert_eq!(pool.base() as usize % 4096, 0);
        for off in [0usize, 1, 4095, (1 << 16) - 1] {
            assert_eq!(read_byte(&pool, off), 0);
        }
    }

    #[test]
    fn unflushed_writes_lost_on_crash() {
        let pool = PmemPool::new(4096, Mode::Tracked);
        write_bytes(&pool, 128, &[7; 8]);
        pool.crash();
        assert_eq!(read_byte(&pool, 128), 0, "unflushed line must not survive");
    }

    #[test]
    fn flushed_and_fenced_writes_survive() {
        let pool = PmemPool::new(4096, Mode::Tracked);
        write_bytes(&pool, 128, &[7; 8]);
        pool.flush(128, 8);
        pool.fence();
        write_bytes(&pool, 256, &[9; 8]); // dirty, unflushed
        pool.crash();
        assert_eq!(read_byte(&pool, 128), 7);
        assert_eq!(read_byte(&pool, 256), 0);
    }

    #[test]
    fn flush_without_fence_is_lost() {
        let pool = PmemPool::new(4096, Mode::Tracked);
        write_bytes(&pool, 64, &[3; 4]);
        pool.flush(64, 4);
        // no fence
        pool.crash();
        assert_eq!(read_byte(&pool, 64), 0);
    }

    #[test]
    fn flush_captures_content_at_flush_time() {
        let pool = PmemPool::new(4096, Mode::Tracked);
        write_bytes(&pool, 64, &[1; 4]);
        pool.flush(64, 4);
        write_bytes(&pool, 64, &[2; 4]); // after clwb, before sfence
        pool.fence();
        pool.crash();
        // Strict model: the flush-time value persisted.
        assert_eq!(read_byte(&pool, 64), 1);
    }

    #[test]
    fn flush_spans_multiple_lines() {
        let pool = PmemPool::new(4096, Mode::Tracked);
        write_bytes(&pool, 60, &[5; 8]); // straddles line 0 and line 64
        pool.persist(60, 8);
        pool.crash();
        assert_eq!(read_byte(&pool, 60), 5);
        assert_eq!(read_byte(&pool, 67), 5);
        assert_eq!(pool.stats().snapshot().flush_lines, 2);
    }

    #[test]
    fn crash_is_line_granular_not_torn() {
        let pool = PmemPool::new(4096, Mode::Tracked);
        write_bytes(&pool, 0, &[1; 64]);
        pool.persist(0, 64);
        write_bytes(&pool, 0, &[2; 64]); // dirty whole line again
        pool.crash();
        // Whole line reverts to the persisted value — no partial line.
        for i in 0..64 {
            assert_eq!(read_byte(&pool, i), 1);
        }
    }

    #[test]
    fn random_eviction_can_persist_unflushed() {
        let pool = PmemPool::new(4096, Mode::Tracked);
        write_bytes(&pool, 0, &[9; 64]);
        pool.crash_with(CrashStyle::RandomEviction { survive_permille: 1000, seed: 42 });
        assert_eq!(read_byte(&pool, 0), 9, "p=1.0 eviction must persist the line");
        let pool2 = PmemPool::new(4096, Mode::Tracked);
        write_bytes(&pool2, 0, &[9; 64]);
        pool2.crash_with(CrashStyle::RandomEviction { survive_permille: 0, seed: 42 });
        assert_eq!(read_byte(&pool2, 0), 0, "p=0 behaves like strict");
    }

    #[test]
    fn save_and_load_round_trip() {
        let dir = std::env::temp_dir().join(format!("nvm-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("pool.img");
        {
            let pool = PmemPool::new(4096, Mode::Direct);
            write_bytes(&pool, 100, b"hello");
            pool.save(&file).unwrap();
        }
        let pool = PmemPool::load(&file, Mode::Tracked).unwrap();
        assert_eq!(read_byte(&pool, 100), b'h');
        // Loaded image counts as persistent.
        pool.crash();
        assert_eq!(read_byte(&pool, 100), b'h');
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_image_differs_from_clean_image() {
        let dir = std::env::temp_dir().join(format!("nvm-test2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let clean = dir.join("clean.img");
        let crashy = dir.join("crash.img");
        let pool = PmemPool::new(4096, Mode::Tracked);
        write_bytes(&pool, 0, &[1; 8]);
        pool.persist(0, 8);
        write_bytes(&pool, 512, &[2; 8]); // unflushed
        pool.save(&clean).unwrap();
        pool.save_crash_image(&crashy).unwrap();
        let c = std::fs::read(&clean).unwrap();
        let k = std::fs::read(&crashy).unwrap();
        assert_eq!(c[512], 2);
        assert_eq!(k[512], 0);
        assert_eq!(k[0], 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn from_image_maps_at_new_base() {
        let pool = PmemPool::new(4096, Mode::Direct);
        write_bytes(&pool, 8, &[0xAB; 8]);
        let img = pool.persistent_image();
        let pool2 = PmemPool::from_image(&img, Mode::Direct);
        assert_eq!(read_byte(&pool2, 8), 0xAB);
    }

    #[test]
    fn injector_fires_through_pool() {
        let inj = CrashInjector::new();
        let pool = PmemPool::with_options(4096, Mode::Tracked, FlushModel::free(), Some(inj.clone()));
        inj.arm(1);
        pool.flush(0, 8); // event 1: budget 1 -> 0
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| pool.fence()));
        assert!(r.is_err());
        assert!(crate::CrashPoint::is(&*r.unwrap_err()));
    }

    #[test]
    fn atomic_view_reads_plain_writes() {
        let pool = PmemPool::new(4096, Mode::Direct);
        unsafe {
            pool.write_u64(16, 0xDEADBEEF);
            assert_eq!(pool.atomic_u64(16).load(Ordering::Relaxed), 0xDEADBEEF);
            assert_eq!(pool.read_u64(16), 0xDEADBEEF);
        }
    }

    #[test]
    fn stats_count_flushes_and_fences() {
        let pool = PmemPool::new(4096, Mode::Direct);
        pool.flush(0, 1);
        pool.flush(0, 65);
        pool.fence();
        let s = pool.stats().snapshot();
        assert_eq!(s.flush_calls, 2);
        assert_eq!(s.flush_lines, 1 + 2);
        assert_eq!(s.fences, 1);
    }

    #[test]
    fn adjacent_lines_in_one_persist_charged_once_per_run() {
        // CLWB pipelining: one persist of 4 adjacent lines is charged as
        // ONE full flush plus 3 cheap pipelined followers + one fence —
        // not 4 independent full flushes.
        let m = FlushModel::optane();
        let pool = PmemPool::with_options(4096, Mode::Direct, m, None);
        let before = pool.stats().snapshot();
        pool.persist(0, 4 * CACHE_LINE);
        let d = pool.stats().snapshot().since(&before);
        assert_eq!(d.flush_lines, 4, "all four lines flushed");
        assert_eq!(d.flush_calls, 1, "one contiguous run");
        let run = m.flush_ns + 3 * m.pipelined_line_ns;
        assert!(run < 4 * m.flush_ns, "pipelined run must beat per-line charging");
        assert_eq!(
            d.modeled_ns,
            run + m.fence_ns,
            "a 4-line run must cost one full charge + pipelined followers"
        );
        // A *separate* persist is a new run and pays the full charge again.
        pool.persist(0, CACHE_LINE);
        let d2 = pool.stats().snapshot().since(&before);
        assert_eq!(d2.modeled_ns, run + m.flush_ns + 2 * m.fence_ns);
    }
}
