//! The simulated persistent-memory pool.

use std::alloc::{alloc_zeroed, dealloc, Layout};
use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::crash::CrashInjector;
use crate::flush::FlushModel;
use crate::stats::PmemStats;
use crate::{line_down, line_up, sys, CACHE_LINE};

/// OS page size assumed for file mappings (x86_64 Linux).
const PAGE: usize = 4096;

#[inline]
const fn page_up(n: usize) -> usize {
    (n + PAGE - 1) & !(PAGE - 1)
}

/// How the pool simulates persistence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Loads/stores go straight to memory; flush/fence are compiler fences
    /// plus the [`FlushModel`] latency. No crash simulation. This is the
    /// performance-measurement configuration.
    Direct,
    /// The pool maintains a shadow *persistent image*. A cache line enters
    /// the shadow only when flushed and then fenced. [`PmemPool::crash`]
    /// reverts the volatile image to the shadow. This is the
    /// crash-semantics-testing configuration.
    Tracked,
}

/// What survives a simulated power failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashStyle {
    /// Only lines that were explicitly flushed and fenced survive — the
    /// strict pmemcheck/Yat model and the worst case for recovery code.
    StrictFlushOnly,
    /// In addition, each dirty-but-unflushed line survives with probability
    /// `survive_permille`/1000, modelling spontaneous cache eviction on
    /// real hardware. Deterministic given `seed`.
    RandomEviction {
        /// Per-line survival probability in permille (0..=1000).
        survive_permille: u32,
        /// RNG seed (xorshift) so failures reproduce.
        seed: u64,
    },
}

struct TrackState {
    /// The persistent image: what NVM would contain after power loss.
    shadow: Box<[u8]>,
    /// Lines flushed (content captured at flush time) but not yet fenced.
    pending: HashMap<usize, [u8; CACHE_LINE]>,
}

/// A caller-defined sub-span of the pool for [`PmemPool::define_regions`]:
/// `[start, end)` with its own initial committed frontier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionSpec {
    /// First byte of the region (inclusive).
    pub start: usize,
    /// One past the last byte of the region (exclusive).
    pub end: usize,
    /// Initial committed frontier, `start <= committed <= end`.
    pub committed: usize,
}

/// A live region: a fixed sub-span with an independently movable
/// committed frontier. The *physical* pool prefix (file length / backed
/// pages) is the maximum committed end across regions; because regions
/// are ordered, an interior region's frontier is pure accounting over
/// already-backed bytes, while the last region's frontier drives the
/// physical prefix.
struct Region {
    start: usize,
    end: usize,
    committed: AtomicUsize,
}

#[cfg(unix)]
fn raw_fd(f: &fs::File) -> i32 {
    use std::os::fd::AsRawFd;
    f.as_raw_fd()
}

#[cfg(not(unix))]
fn raw_fd(_f: &fs::File) -> i32 {
    -1
}

/// Advisory exclusive lock on a pool file (`flock(LOCK_EX)`), preventing
/// two live processes from mapping (or load/saving) the same pool — a
/// silent-corruption hazard the fork-based crash harness would otherwise
/// trip constantly. The kernel releases the lock automatically when the
/// holder dies (including by `SIGKILL`), which is exactly what lets the
/// harness's parent reopen a pool right after killing the child.
pub struct PoolGuard {
    file: fs::File,
    path: PathBuf,
}

impl PoolGuard {
    /// Open (creating if absent) and exclusively lock `path`. A pool held
    /// by another live process yields [`io::ErrorKind::WouldBlock`] with a
    /// "pool busy" message.
    pub fn acquire(path: &Path) -> io::Result<PoolGuard> {
        let file = fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        sys::flock(raw_fd(&file), sys::LOCK_EX | sys::LOCK_NB).map_err(|e| {
            if e.kind() == io::ErrorKind::WouldBlock {
                io::Error::new(
                    io::ErrorKind::WouldBlock,
                    format!("pool busy: {} is locked by another process", path.display()),
                )
            } else {
                e
            }
        })?;
        Ok(PoolGuard { file, path: path.to_path_buf() })
    }

    /// Open `path` read-only under a *shared* advisory lock
    /// (`flock(LOCK_SH)`) — the inspector's open path. Any number of
    /// readers coexist, but a pool mapped live by a writer (which holds
    /// `LOCK_EX`) yields [`io::ErrorKind::WouldBlock`]; the caller can
    /// then degrade to an unlocked racy snapshot read. While the shared
    /// lock is held, no writer can acquire the pool — a dead pool under
    /// inspection stays dead.
    pub fn acquire_shared(path: &Path) -> io::Result<PoolGuard> {
        let file = fs::OpenOptions::new().read(true).open(path)?;
        sys::flock(raw_fd(&file), sys::LOCK_SH | sys::LOCK_NB).map_err(|e| {
            if e.kind() == io::ErrorKind::WouldBlock {
                io::Error::new(
                    io::ErrorKind::WouldBlock,
                    format!("pool live: {} is exclusively locked by a writer", path.display()),
                )
            } else {
                e
            }
        })?;
        Ok(PoolGuard { file, path: path.to_path_buf() })
    }

    /// The locked file.
    pub fn file(&self) -> &fs::File {
        &self.file
    }

    /// The locked path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl std::fmt::Debug for PoolGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolGuard").field("path", &self.path).finish()
    }
}

/// What holds the pool's bytes.
enum Backing {
    /// Anonymous zeroed allocation — the simulated-NVM configuration.
    /// Durability across process death is *modelled* (shadow images,
    /// explicit `save`), not real.
    Heap(Layout),
    /// A `MAP_SHARED` mapping of a real file over a `PROT_NONE`
    /// reservation. Stores land in the OS page cache, which survives the
    /// death of the process — the property the SIGKILL harness tests
    /// against. The invariant maintained throughout: **file length ==
    /// committed frontier** (`commit_to` extends the file before
    /// publishing, `decommit_to` truncates after unmapping), so a reopen
    /// can equate the two exactly as the load path always has.
    File {
        file: fs::File,
        /// Serializes file-length + mapping changes against each other
        /// (the frontier word itself stays lock-free for readers).
        remap: Mutex<()>,
    },
}

/// A region of simulated NVM.
///
/// The region is a single allocation, 4 KiB aligned, zero-initialized
/// (matching fresh DAX pages). All offsets are relative to [`PmemPool::base`];
/// persistent data structures must store *offsets* (or self-relative
/// pointers), never absolute addresses, because a reload maps the image at
/// a different base — exactly the position-independence discipline the
/// paper's `pptr` enforces.
///
/// ## Reserve/commit capacity model
///
/// The pool distinguishes its **reserved** span ([`PmemPool::len`], the
/// fixed virtual extent the allocation was created with — cheap, because
/// zero pages are materialized lazily by the OS, exactly like a large
/// `PROT_NONE`/`mmap` reservation over a DAX file) from its **committed**
/// frontier ([`PmemPool::committed_len`], the prefix that is actually
/// backed and usable). All access checks, flushes, crash semantics, and
/// image save/load are confined to the committed prefix;
/// [`PmemPool::commit_to`] grows the frontier monotonically, never past
/// the reserved span. Pools built through the plain constructors are
/// fully committed, which is the historical one-fixed-pool behavior.
pub struct PmemPool {
    base: *mut u8,
    len: usize,
    /// *Physical* committed frontier in bytes (monotone online,
    /// `<= len`): the prefix that is backed (file length for mapped
    /// pools). With regions defined this is always the maximum committed
    /// end across regions.
    committed: AtomicUsize,
    /// Optional multi-region partition of the span, set once by
    /// [`PmemPool::define_regions`]. When present, per-region frontiers
    /// gate fine-grained access ([`PmemPool::check_range`]) and the
    /// region commit/decommit entry points replace the whole-pool ones.
    regions: std::sync::OnceLock<Box<[Region]>>,
    backing: Backing,
    /// Advisory lock on the pool file, held for the pool's lifetime when
    /// the pool was opened from a path (mapped or load/save style).
    guard: Mutex<Option<PoolGuard>>,
    mode: Mode,
    flush_model: FlushModel,
    stats: PmemStats,
    injector: Option<Arc<CrashInjector>>,
    tracked: Option<Mutex<TrackState>>,
    /// Number of simulated crashes survived (diagnostics).
    crashes: AtomicU32,
}

// SAFETY: the pool hands out raw pointers and the collaborating allocator
// performs all concurrent access through atomics; the pool's own mutable
// state is behind a Mutex. `crash` and `load` require external quiescence,
// which the allocator layer guarantees (recovery is offline, paper §3).
unsafe impl Send for PmemPool {}
unsafe impl Sync for PmemPool {}

impl PmemPool {
    /// Create a zeroed pool of `len` bytes (rounded up to a cache line).
    pub fn new(len: usize, mode: Mode) -> Self {
        Self::with_options(len, mode, FlushModel::default(), None)
    }

    /// Create a pool with an explicit flush-latency model and optional
    /// crash injector. Fully committed.
    pub fn with_options(
        len: usize,
        mode: Mode,
        flush_model: FlushModel,
        injector: Option<Arc<CrashInjector>>,
    ) -> Self {
        Self::with_reserve(len, len, mode, flush_model, injector)
    }

    /// Create a pool with a `reserved` virtual span of which only the
    /// first `committed` bytes are initially usable. The reservation is
    /// cheap: the zeroed allocation materializes pages lazily, so an
    /// uncommitted tail costs address space, not memory. Grow the usable
    /// prefix later with [`PmemPool::commit_to`].
    pub fn with_reserve(
        reserved: usize,
        committed: usize,
        mode: Mode,
        flush_model: FlushModel,
        injector: Option<Arc<CrashInjector>>,
    ) -> Self {
        let len = line_up(reserved.max(CACHE_LINE));
        let committed = line_up(committed.max(CACHE_LINE));
        assert!(committed <= len, "committed {committed} exceeds reserved {len}");
        let layout = Layout::from_size_align(len, 4096).expect("pool layout");
        // SAFETY: layout has nonzero size.
        let base = unsafe { alloc_zeroed(layout) };
        assert!(!base.is_null(), "pmem pool allocation of {len} bytes failed");
        let tracked = match mode {
            Mode::Direct => None,
            // The shadow spans the whole reservation (lazy zero pages, same
            // trick as the volatile image); the committed frontier bounds
            // what flush/crash ever touch of it.
            Mode::Tracked => Some(Mutex::new(TrackState {
                shadow: vec![0u8; len].into_boxed_slice(),
                pending: HashMap::new(),
            })),
        };
        PmemPool {
            base,
            len,
            committed: AtomicUsize::new(committed),
            regions: std::sync::OnceLock::new(),
            backing: Backing::Heap(layout),
            guard: Mutex::new(None),
            mode,
            flush_model,
            stats: PmemStats::default(),
            injector,
            tracked,
            crashes: AtomicU32::new(0),
        }
    }

    /// Map a pool over a real file: a `PROT_NONE` reservation of
    /// `reserved` bytes with the file `MAP_SHARED`-mapped over the first
    /// `committed` bytes (the file is sized to `committed`; a fresh file
    /// grows to it, an adopted file must already be it). Stores become
    /// durable-across-process-death immediately via page-cache coherence —
    /// this is the configuration the fork/SIGKILL crash harness runs on,
    /// and the closest thing to DAX this host can do.
    ///
    /// Mapped pools are [`Mode::Direct`] only: `Tracked`'s shadow image
    /// models what a *power failure* keeps, but a mapped pool's survival
    /// story is the page cache (process crash), and mixing the two would
    /// claim strictness the mapping cannot deliver.
    ///
    /// The `guard`'s lock is held for the pool's lifetime; its file is the
    /// one mapped.
    pub fn map_file(
        guard: PoolGuard,
        reserved: usize,
        committed: usize,
        flush_model: FlushModel,
        injector: Option<Arc<CrashInjector>>,
    ) -> io::Result<Self> {
        let len = line_up(reserved.max(CACHE_LINE));
        let committed = line_up(committed.max(CACHE_LINE));
        assert!(committed <= len, "committed {committed} exceeds reserved {len}");
        // SAFETY: fresh anonymous PROT_NONE reservation; no aliasing.
        let base = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_NONE,
                sys::MAP_PRIVATE | sys::MAP_ANONYMOUS | sys::MAP_NORESERVE,
                -1,
                0,
            )?
        };
        guard.file.set_len(committed as u64)?;
        // SAFETY: MAP_FIXED over the prefix of the reservation we own.
        let mapped = unsafe {
            sys::mmap(
                base,
                page_up(committed),
                sys::PROT_READ | sys::PROT_WRITE,
                sys::MAP_SHARED | sys::MAP_FIXED,
                raw_fd(&guard.file),
                0,
            )
        };
        let file = match mapped {
            Ok(_) => guard.file.try_clone()?,
            Err(e) => {
                // SAFETY: tearing down the reservation we just created.
                unsafe { sys::munmap(base, len).ok() };
                return Err(e);
            }
        };
        Ok(PmemPool {
            base,
            len,
            committed: AtomicUsize::new(committed),
            regions: std::sync::OnceLock::new(),
            backing: Backing::File { file, remap: Mutex::new(()) },
            guard: Mutex::new(Some(guard)),
            mode: Mode::Direct,
            flush_model,
            stats: PmemStats::default(),
            injector,
            tracked: None,
            crashes: AtomicU32::new(0),
        })
    }

    /// True when the pool is a live `MAP_SHARED` file mapping (stores are
    /// durable across process death without an explicit save).
    pub fn is_mapped(&self) -> bool {
        matches!(self.backing, Backing::File { .. })
    }

    /// Hold an advisory lock for the pool's lifetime (the mapped
    /// constructor does this implicitly; the load/save open path attaches
    /// its guard here).
    pub fn hold_guard(&self, guard: PoolGuard) {
        *self.guard.lock() = Some(guard);
    }

    /// Write a mapped pool's dirty pages back to its file (`msync`). A
    /// no-op for heap-backed pools (their durability is the explicit
    /// [`PmemPool::save`]). Process-crash durability never needs this —
    /// the page cache already has the stores — but a clean close syncs so
    /// even an OS-level crash keeps the closed image.
    pub fn sync(&self) -> io::Result<()> {
        if self.is_mapped() {
            // SAFETY: committed prefix of a live mapping.
            unsafe { sys::msync(self.base, page_up(self.committed_len()), sys::MS_SYNC)? };
        }
        Ok(())
    }

    /// Base address of the mapping. Valid until the pool is dropped.
    #[inline]
    pub fn base(&self) -> *mut u8 {
        self.base
    }

    /// Size of the *reserved* region in bytes (the fixed virtual span;
    /// geometry is a pure function of this).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the pool has zero capacity (never true in practice).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The *physical* committed frontier: bytes `0..committed_len()` are
    /// backed; flushes, crash imaging, and save/load are confined to
    /// them. With regions defined this is the maximum committed end
    /// across regions; fine-grained usability is further gated by the
    /// per-region frontiers (see [`PmemPool::check_range`]).
    #[inline]
    pub fn committed_len(&self) -> usize {
        self.committed.load(Ordering::Acquire)
    }

    // ---- multi-region partition ----

    /// Partition the reserved span into independently committed regions.
    ///
    /// Regions must be ordered, contiguous, and tile the whole span;
    /// each initial frontier must lie within its region, and the *last*
    /// region's frontier must equal the current physical frontier (the
    /// physical prefix is the maximum committed end and regions are
    /// ordered, so the last region carries it; interior regions are
    /// physically backed by virtue of lying under that prefix, and their
    /// frontiers are access-gating accounting with the same grow/shrink
    /// protocol obligations).
    ///
    /// Callable at most once, before concurrent use of the pool.
    pub fn define_regions(&self, specs: &[RegionSpec]) {
        assert!(!specs.is_empty(), "empty region partition");
        let mut prev_end = 0usize;
        for s in specs {
            assert_eq!(s.start, prev_end, "regions must tile the span without gaps");
            assert!(s.end > s.start, "empty region {s:?}");
            assert!(s.end <= self.len, "region {s:?} exceeds reserved span {}", self.len);
            assert!(
                s.committed >= s.start && s.committed <= s.end,
                "region frontier out of bounds: {s:?}"
            );
            prev_end = s.end;
        }
        assert_eq!(prev_end, self.len, "regions must cover the reserved span");
        let last = specs.last().unwrap();
        assert_eq!(
            line_up(last.committed.max(CACHE_LINE)),
            self.committed_len(),
            "last region's frontier must equal the physical prefix"
        );
        let regions: Box<[Region]> = specs
            .iter()
            .map(|s| Region {
                start: s.start,
                end: s.end,
                committed: AtomicUsize::new(line_up(s.committed).min(s.end)),
            })
            .collect();
        assert!(self.regions.set(regions).is_ok(), "pool regions already defined");
    }

    /// Number of defined regions (0 when the pool is unpartitioned).
    pub fn region_count(&self) -> usize {
        self.regions.get().map_or(0, |r| r.len())
    }

    /// Region `idx`'s committed frontier (absolute bytes).
    pub fn region_committed(&self, idx: usize) -> usize {
        let regions = self.regions.get().expect("no regions defined");
        regions[idx].committed.load(Ordering::Acquire)
    }

    /// Region `idx`'s fixed `[start, end)` bounds.
    pub fn region_bounds(&self, idx: usize) -> (usize, usize) {
        let regions = self.regions.get().expect("no regions defined");
        (regions[idx].start, regions[idx].end)
    }

    /// Grow region `idx`'s committed frontier to at least `new_len`
    /// (absolute bytes, rounded up to a cache line). Monotonic, never
    /// past the region's end. The physical prefix is raised first when
    /// the target outruns it (only possible for the last region), so the
    /// accounting frontier never exposes unbacked bytes. Returns the
    /// resulting frontier.
    pub fn commit_region_to(&self, idx: usize, new_len: usize) -> usize {
        let regions = self.regions.get().expect("no regions defined");
        let r = &regions[idx];
        let new_len = line_up(new_len);
        assert!(
            new_len >= r.start && new_len <= r.end,
            "commit_region_to({idx}, {new_len}) outside region [{}, {})",
            r.start,
            r.end
        );
        if new_len > self.committed.load(Ordering::Acquire) {
            self.physical_commit_to(new_len);
        }
        r.committed.fetch_max(new_len, Ordering::AcqRel).max(new_len)
    }

    /// Shrink region `idx`'s committed frontier to `new_len` (absolute
    /// bytes), releasing the region's tail. For the last region this is
    /// a physical release (pages returned, file truncated) exactly like
    /// [`PmemPool::decommit_to`]; for an interior region the bytes stay
    /// physically backed (they are interior to the pool prefix) but the
    /// released range is zeroed — volatile image, pending flushes, and
    /// shadow — so a later re-commit observes fresh zero pages and no
    /// stale data can resurrect through a crash. Growing requests are
    /// no-ops. Quiescence contract as for [`PmemPool::decommit_to`].
    pub fn decommit_region_to(&self, idx: usize, new_len: usize) -> usize {
        let regions = self.regions.get().expect("no regions defined");
        let r = &regions[idx];
        let new_len = line_up(new_len.max(r.start).max(CACHE_LINE));
        if idx == regions.len() - 1 {
            // CAS-min the accounting frontier, then release physically.
            let mut cur = r.committed.load(Ordering::Acquire);
            loop {
                if new_len >= cur {
                    return cur;
                }
                match r.committed.compare_exchange(
                    cur,
                    new_len,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => break,
                    Err(c) => cur = c,
                }
            }
            return self.physical_decommit_to(new_len);
        }
        if let Some(inj) = &self.injector {
            inj.on_event();
        }
        let mut cur = r.committed.load(Ordering::Acquire);
        loop {
            if new_len >= cur {
                return cur;
            }
            match r.committed.compare_exchange(cur, new_len, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => break,
                Err(c) => cur = c,
            }
        }
        // SAFETY: new_len..cur is interior to the physically backed
        // prefix; quiescence is the caller's contract.
        unsafe { std::ptr::write_bytes(self.base.add(new_len), 0, cur - new_len) };
        if let Some(t) = &self.tracked {
            let mut st = t.lock();
            st.pending.retain(|line, _| line + CACHE_LINE <= new_len || *line >= cur);
            st.shadow[new_len..cur].fill(0);
        }
        new_len
    }

    /// Grow the committed frontier to cover at least `new_len` bytes
    /// (rounded up to a cache line). Monotonic — a smaller request is a
    /// no-op — and never shrinks. Returns the resulting frontier.
    ///
    /// Committing only makes memory *usable*; durability of any state
    /// that records the frontier is the caller's business (the allocator
    /// persists its frontier word before relying on the new space).
    ///
    /// # Panics
    /// If `new_len` exceeds the reserved span, or if the pool has been
    /// partitioned with [`PmemPool::define_regions`] (use
    /// [`PmemPool::commit_region_to`] then).
    pub fn commit_to(&self, new_len: usize) -> usize {
        assert!(
            self.regions.get().is_none(),
            "pool has regions defined: use commit_region_to"
        );
        self.physical_commit_to(new_len)
    }

    fn physical_commit_to(&self, new_len: usize) -> usize {
        let new_len = line_up(new_len);
        assert!(
            new_len <= self.len,
            "commit_to({new_len}) exceeds reserved span {}",
            self.len
        );
        if let Backing::File { file, remap } = &self.backing {
            // Extend the file and the shared mapping *before* publishing
            // the frontier, so no store can target pages that aren't
            // file-backed yet. The remap lock serializes concurrent grows
            // (and the shrink path); the file-length invariant means a
            // kill anywhere in here leaves file_len >= every published
            // frontier, which reopen heals from the durable word.
            let _g = remap.lock();
            let cur = self.committed.load(Ordering::Acquire);
            if new_len > cur {
                file.set_len(new_len as u64).expect("pool file grow failed");
                let mapped = page_up(cur);
                let target = page_up(new_len);
                if target > mapped {
                    // SAFETY: MAP_FIXED within our own reservation, page
                    // offsets aligned; the extended range was PROT_NONE.
                    unsafe {
                        sys::mmap(
                            self.base.add(mapped),
                            target - mapped,
                            sys::PROT_READ | sys::PROT_WRITE,
                            sys::MAP_SHARED | sys::MAP_FIXED,
                            raw_fd(file),
                            mapped,
                        )
                        .expect("pool file map extension failed");
                    }
                }
            }
        }
        self.committed.fetch_max(new_len, Ordering::AcqRel).max(new_len)
    }

    /// Shrink the committed frontier to `new_len` bytes (rounded up to a
    /// cache line), releasing the tail back to the OS — the
    /// `madvise(MADV_DONTNEED)` analogue for the reserve/commit model.
    /// The reserved span and all geometry derived from it are untouched;
    /// a later [`PmemPool::commit_to`] over the released range reads
    /// fresh zero pages, exactly like never-committed reservation. A
    /// growing request is a no-op (mirroring `commit_to`'s monotonicity
    /// in the other direction). Returns the resulting frontier.
    ///
    /// In [`Mode::Tracked`] the released tail is also dropped from the
    /// persistent image: pending (flushed-unfenced) lines beyond the new
    /// frontier are discarded and the shadow is zeroed, so no stale data
    /// can resurrect through a crash after a re-grow.
    ///
    /// The caller must be quiescent (no concurrent access to the released
    /// range): decommit is a close/recovery-time operation, never an
    /// online one. Durability of whatever records the new frontier is the
    /// caller's business — the allocator persists its frontier word
    /// *before* decommitting, so a crash at any point leaves a frontier
    /// at least as large as every persisted use of the space.
    ///
    /// # Panics
    /// If the pool has been partitioned with
    /// [`PmemPool::define_regions`] (use
    /// [`PmemPool::decommit_region_to`] then).
    pub fn decommit_to(&self, new_len: usize) -> usize {
        assert!(
            self.regions.get().is_none(),
            "pool has regions defined: use decommit_region_to"
        );
        self.physical_decommit_to(new_len)
    }

    fn physical_decommit_to(&self, new_len: usize) -> usize {
        let new_len = line_up(new_len.max(CACHE_LINE));
        if let Some(inj) = &self.injector {
            inj.on_event();
        }
        let mut cur = self.committed.load(Ordering::Acquire);
        loop {
            if new_len >= cur {
                return cur; // monotone in the shrink direction: no-op
            }
            match self.committed.compare_exchange(
                cur,
                new_len,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break,
                Err(c) => cur = c,
            }
        }
        match &self.backing {
            Backing::Heap(_) => {
                // Zero the released tail of the volatile image:
                // recommitting must observe lazily-materialized zero
                // pages, not stale content.
                // SAFETY: new_len..cur is in the reserved allocation;
                // quiescence is the caller's contract.
                unsafe { std::ptr::write_bytes(self.base.add(new_len), 0, cur - new_len) };
            }
            Backing::File { file, remap } => {
                // Return the tail pages to PROT_NONE reservation, then
                // truncate the file to keep file length == frontier. A
                // kill between the two leaves the file long with the
                // durable frontier word already lowered — reopen heals
                // the word up over (stale, unreferenced) committed space
                // and the dirty rebuild reclaims it. Truncation zeroes
                // the partial page's tail in the page cache, and a later
                // re-extension reads zeros, matching the Heap backing's
                // fresh-zero-pages contract.
                let _g = remap.lock();
                let lo = page_up(new_len);
                let hi = page_up(cur);
                if hi > lo {
                    // SAFETY: MAP_FIXED re-reservation of our own range;
                    // quiescence per the caller's contract.
                    unsafe {
                        sys::mmap(
                            self.base.add(lo),
                            hi - lo,
                            sys::PROT_NONE,
                            sys::MAP_PRIVATE
                                | sys::MAP_ANONYMOUS
                                | sys::MAP_NORESERVE
                                | sys::MAP_FIXED,
                            -1,
                            0,
                        )
                        .expect("pool file unmap failed");
                    }
                }
                file.set_len(new_len as u64).expect("pool file shrink failed");
            }
        }
        if let Some(t) = &self.tracked {
            let mut st = t.lock();
            st.pending.retain(|line, _| line + CACHE_LINE <= new_len);
            st.shadow[new_len..cur].fill(0);
        }
        new_len
    }

    /// The persistence mode.
    #[inline]
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Persistence-operation counters.
    #[inline]
    pub fn stats(&self) -> &PmemStats {
        &self.stats
    }

    /// Number of simulated crashes this pool has been through.
    pub fn crash_count(&self) -> u32 {
        self.crashes.load(Ordering::Relaxed)
    }

    /// True if `off..off+len` lies within *committed* space. Always
    /// bounded by the physical prefix; with regions defined, a range
    /// falling inside a single region is further gated by that region's
    /// own frontier (uncommitted region tail is out of range even though
    /// it may be physically backed under the prefix), while a range
    /// spanning regions is a bulk operation — wholesale write-back,
    /// image save — gated by the physical prefix alone.
    #[inline]
    pub fn check_range(&self, off: usize, len: usize) -> bool {
        let committed = self.committed.load(Ordering::Acquire);
        if off > committed || len > committed - off {
            return false;
        }
        if let Some(regions) = self.regions.get() {
            for r in regions.iter() {
                if off >= r.start && off < r.end {
                    if off + len <= r.end {
                        return off + len <= r.committed.load(Ordering::Acquire);
                    }
                    break;
                }
            }
        }
        true
    }

    /// Raw pointer to offset `off`.
    ///
    /// # Safety
    /// `off + size_of::<T>()` must be in bounds and `off` must satisfy
    /// `T`'s alignment relative to the (4 KiB-aligned) base. All access
    /// through the pointer must follow the usual aliasing rules (shared
    /// mutation only through atomics).
    #[inline]
    pub unsafe fn at<T>(&self, off: usize) -> *mut T {
        debug_assert!(self.check_range(off, std::mem::size_of::<T>()));
        debug_assert_eq!(off % std::mem::align_of::<T>(), 0);
        self.base.add(off) as *mut T
    }

    /// An atomic u64 view of the 8 bytes at offset `off`.
    ///
    /// # Safety
    /// `off` must be 8-aligned and in bounds; the location must only be
    /// accessed as an atomic u64 while shared.
    #[inline]
    pub unsafe fn atomic_u64(&self, off: usize) -> &AtomicU64 {
        debug_assert!(self.check_range(off, 8));
        debug_assert_eq!(off % 8, 0);
        &*(self.base.add(off) as *const AtomicU64)
    }

    /// Read a u64 at `off` with a plain (non-atomic) load.
    ///
    /// # Safety
    /// `off` must be 8-aligned, in bounds, and not concurrently written.
    #[inline]
    pub unsafe fn read_u64(&self, off: usize) -> u64 {
        std::ptr::read(self.at::<u64>(off))
    }

    /// Write a u64 at `off` with a plain (non-atomic) store.
    ///
    /// # Safety
    /// As for [`PmemPool::read_u64`], plus exclusivity of the write.
    #[inline]
    pub unsafe fn write_u64(&self, off: usize, v: u64) {
        std::ptr::write(self.at::<u64>(off), v)
    }

    /// `clwb`-equivalent: request write-back of every cache line covering
    /// `off..off+len`. Not persistent until the next [`PmemPool::fence`].
    pub fn flush(&self, off: usize, len: usize) {
        assert!(self.check_range(off, len), "flush out of range");
        if len == 0 {
            return;
        }
        let first = line_down(off);
        let last = line_up(off + len);
        let lines = (last - first) / CACHE_LINE;
        if let Some(inj) = &self.injector {
            inj.on_event();
        }
        // One flush call covers one contiguous line run; adjacent CLWBs
        // pipeline, so the model charges once per run, not per line.
        let charged = match self.mode {
            Mode::Direct => {
                // The data already lives in (cache-coherent) DRAM; charge
                // the modelled latency and compile-time order the stores.
                std::sync::atomic::compiler_fence(Ordering::SeqCst);
                self.flush_model.charge_flush_run(lines)
            }
            Mode::Tracked => {
                let mut st = self.tracked.as_ref().unwrap().lock();
                for line in (first..last).step_by(CACHE_LINE) {
                    let mut buf = [0u8; CACHE_LINE];
                    // SAFETY: line..line+64 is in bounds; racing reads of
                    // bytes being concurrently stored yield *some* byte
                    // values, which is exactly the nondeterminism a real
                    // asynchronous write-back has.
                    unsafe {
                        std::ptr::copy_nonoverlapping(
                            self.base.add(line),
                            buf.as_mut_ptr(),
                            CACHE_LINE,
                        );
                    }
                    st.pending.insert(line, buf);
                }
                self.flush_model.charge_flush_run(lines)
            }
        };
        self.stats.record_flush(lines, charged);
    }

    /// `sfence`-equivalent: all previously flushed lines become persistent.
    pub fn fence(&self) {
        if let Some(inj) = &self.injector {
            inj.on_event();
        }
        let charged = match self.mode {
            Mode::Direct => {
                std::sync::atomic::fence(Ordering::SeqCst);
                self.flush_model.charge_fence()
            }
            Mode::Tracked => {
                let mut st = self.tracked.as_ref().unwrap().lock();
                let pending = std::mem::take(&mut st.pending);
                for (line, buf) in pending {
                    st.shadow[line..line + CACHE_LINE].copy_from_slice(&buf);
                }
                self.flush_model.charge_fence()
            }
        };
        self.stats.record_fence(charged);
    }

    /// Flush + fence in one call (the common "persist" idiom).
    pub fn persist(&self, off: usize, len: usize) {
        self.flush(off, len);
        self.fence();
    }

    /// Simulate a full-system power failure with the strict model: the
    /// volatile image is replaced by the persistent image; everything not
    /// explicitly flushed-and-fenced is lost.
    ///
    /// The caller must guarantee quiescence (no thread touching the pool),
    /// mirroring the paper's fail-stop model in which a crash halts all
    /// threads. Panics in [`Mode::Direct`].
    pub fn crash(&self) {
        self.crash_with(CrashStyle::StrictFlushOnly)
    }

    /// Simulate a crash with a chosen [`CrashStyle`].
    pub fn crash_with(&self, style: CrashStyle) {
        let tracked = self
            .tracked
            .as_ref()
            .expect("crash simulation requires Mode::Tracked");
        let mut st = tracked.lock();
        // Un-fenced flushes are lost.
        st.pending.clear();
        let committed = self.committed_len();
        if let CrashStyle::RandomEviction { survive_permille, seed } = style {
            // Some dirty lines persist anyway (spontaneous eviction).
            let mut rng = seed | 1;
            let mut xorshift = move || {
                rng ^= rng << 13;
                rng ^= rng >> 7;
                rng ^= rng << 17;
                rng
            };
            for line in (0..committed).step_by(CACHE_LINE) {
                // SAFETY: in-bounds; quiescent per contract.
                let volatile =
                    unsafe { std::slice::from_raw_parts(self.base.add(line), CACHE_LINE) };
                if volatile != &st.shadow[line..line + CACHE_LINE]
                    && (xorshift() % 1000) < survive_permille as u64
                {
                    st.shadow[line..line + CACHE_LINE].copy_from_slice(volatile);
                }
            }
        }
        // The committed prefix is everything ever writable, so reverting
        // it reverts every line that could have diverged from the shadow.
        // SAFETY: quiescent per contract; copies shadow over volatile.
        unsafe {
            std::ptr::copy_nonoverlapping(st.shadow.as_ptr(), self.base, committed);
        }
        self.crashes.fetch_add(1, Ordering::Relaxed);
    }

    /// A copy of the image that would survive a crash right now — the
    /// committed prefix only; uncommitted reservation is not part of any
    /// image (in [`Mode::Direct`] this is the volatile image, i.e. assume
    /// clean shutdown).
    pub fn persistent_image(&self) -> Vec<u8> {
        let committed = self.committed_len();
        match &self.tracked {
            Some(t) => t.lock().shadow[..committed].to_vec(),
            // SAFETY: reading the committed prefix; caller tolerance for
            // racing bytes as with flush.
            None => unsafe { std::slice::from_raw_parts(self.base, committed).to_vec() },
        }
    }

    /// Write the current volatile image (committed prefix) to a file —
    /// what a clean shutdown (full write-back) leaves in the DAX segment.
    /// The file length *is* the committed frontier; the reserved span is
    /// re-derived from pool metadata on reopen.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        if self.is_mapped() {
            // A mapped pool *is* its file: saving to its own path is a
            // sync (never rewrite a live mapping's file under itself);
            // any other path gets a plain copy of the committed prefix.
            self.sync()?;
            if self.guard.lock().as_ref().is_some_and(|g| g.path() == path) {
                return Ok(());
            }
        }
        // SAFETY: committed-prefix read, caller quiescent.
        let data = unsafe { std::slice::from_raw_parts(self.base, self.committed_len()) };
        fs::write(path, data)
    }

    /// Write the *persistent* image to a file — what NVM would contain if
    /// the machine lost power now.
    pub fn save_crash_image(&self, path: &Path) -> io::Result<()> {
        fs::write(path, self.persistent_image())
    }

    /// Recreate a pool from a file produced by [`PmemPool::save`] or
    /// [`PmemPool::save_crash_image`]. The new pool's base address will,
    /// in general, differ from the original — position-independent data
    /// must still be readable, which the tests verify.
    pub fn load(path: &Path, mode: Mode) -> io::Result<Self> {
        Self::load_with(path, mode, FlushModel::default(), None)
    }

    /// [`PmemPool::load`] with explicit model/injector. The pool's
    /// reserved span equals the file length (fully committed).
    pub fn load_with(
        path: &Path,
        mode: Mode,
        flush_model: FlushModel,
        injector: Option<Arc<CrashInjector>>,
    ) -> io::Result<Self> {
        let data = fs::read(path)?;
        Ok(Self::adopt_image(&data, data.len(), mode, flush_model, injector))
    }

    /// Load a file into a pool whose reserved span is `reserved` bytes
    /// (at least the file length). The file content becomes the committed
    /// prefix; the tail is uncommitted reservation, ready for
    /// [`PmemPool::commit_to`]. This is how a growable heap reopens an
    /// image that was saved before it reached full size.
    pub fn load_reserving(
        path: &Path,
        reserved: usize,
        mode: Mode,
        flush_model: FlushModel,
        injector: Option<Arc<CrashInjector>>,
    ) -> io::Result<Self> {
        let data = fs::read(path)?;
        Ok(Self::adopt_image(&data, reserved, mode, flush_model, injector))
    }

    /// Adopt an in-memory image (used to simulate a remap at a new base
    /// address without touching the filesystem). Fully committed.
    pub fn from_image(image: &[u8], mode: Mode) -> Self {
        Self::adopt_image(image, image.len(), mode, FlushModel::default(), None)
    }

    /// [`PmemPool::from_image`] with a larger reserved span (the image
    /// becomes the committed prefix).
    pub fn from_image_reserving(image: &[u8], reserved: usize, mode: Mode) -> Self {
        Self::adopt_image(image, reserved, mode, FlushModel::default(), None)
    }

    fn adopt_image(
        data: &[u8],
        reserved: usize,
        mode: Mode,
        flush_model: FlushModel,
        injector: Option<Arc<CrashInjector>>,
    ) -> Self {
        let reserved = reserved.max(data.len());
        let pool = Self::with_reserve(reserved, data.len(), mode, flush_model, injector);
        assert!(pool.committed_len() >= data.len());
        // SAFETY: fresh pool, no other users yet.
        unsafe {
            std::ptr::copy_nonoverlapping(data.as_ptr(), pool.base, data.len());
        }
        // The on-file image *is* persistent: seed the shadow with it.
        if let Some(t) = &pool.tracked {
            let mut st = t.lock();
            st.shadow[..data.len()].copy_from_slice(data);
        }
        pool
    }
}

impl Drop for PmemPool {
    fn drop(&mut self) {
        match &self.backing {
            // SAFETY: allocated in `with_reserve` with this layout.
            Backing::Heap(layout) => unsafe { dealloc(self.base, *layout) },
            // SAFETY: the whole reservation (file prefix + PROT_NONE
            // tail) came from `map_file`'s mmap calls.
            Backing::File { .. } => unsafe {
                sys::munmap(self.base, self.len).ok();
            },
        }
    }
}

impl std::fmt::Debug for PmemPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PmemPool")
            .field("len", &self.len)
            .field("committed", &self.committed_len())
            .field("mode", &self.mode)
            .field("crashes", &self.crash_count())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_bytes(pool: &PmemPool, off: usize, bytes: &[u8]) {
        unsafe {
            std::ptr::copy_nonoverlapping(bytes.as_ptr(), pool.base().add(off), bytes.len());
        }
    }

    fn read_byte(pool: &PmemPool, off: usize) -> u8 {
        unsafe { *pool.base().add(off) }
    }

    #[test]
    fn new_pool_is_zeroed_and_aligned() {
        let pool = PmemPool::new(1 << 16, Mode::Direct);
        assert_eq!(pool.base() as usize % 4096, 0);
        for off in [0usize, 1, 4095, (1 << 16) - 1] {
            assert_eq!(read_byte(&pool, off), 0);
        }
    }

    #[test]
    fn unflushed_writes_lost_on_crash() {
        let pool = PmemPool::new(4096, Mode::Tracked);
        write_bytes(&pool, 128, &[7; 8]);
        pool.crash();
        assert_eq!(read_byte(&pool, 128), 0, "unflushed line must not survive");
    }

    #[test]
    fn flushed_and_fenced_writes_survive() {
        let pool = PmemPool::new(4096, Mode::Tracked);
        write_bytes(&pool, 128, &[7; 8]);
        pool.flush(128, 8);
        pool.fence();
        write_bytes(&pool, 256, &[9; 8]); // dirty, unflushed
        pool.crash();
        assert_eq!(read_byte(&pool, 128), 7);
        assert_eq!(read_byte(&pool, 256), 0);
    }

    #[test]
    fn flush_without_fence_is_lost() {
        let pool = PmemPool::new(4096, Mode::Tracked);
        write_bytes(&pool, 64, &[3; 4]);
        pool.flush(64, 4);
        // no fence
        pool.crash();
        assert_eq!(read_byte(&pool, 64), 0);
    }

    #[test]
    fn flush_captures_content_at_flush_time() {
        let pool = PmemPool::new(4096, Mode::Tracked);
        write_bytes(&pool, 64, &[1; 4]);
        pool.flush(64, 4);
        write_bytes(&pool, 64, &[2; 4]); // after clwb, before sfence
        pool.fence();
        pool.crash();
        // Strict model: the flush-time value persisted.
        assert_eq!(read_byte(&pool, 64), 1);
    }

    #[test]
    fn flush_spans_multiple_lines() {
        let pool = PmemPool::new(4096, Mode::Tracked);
        write_bytes(&pool, 60, &[5; 8]); // straddles line 0 and line 64
        pool.persist(60, 8);
        pool.crash();
        assert_eq!(read_byte(&pool, 60), 5);
        assert_eq!(read_byte(&pool, 67), 5);
        assert_eq!(pool.stats().snapshot().flush_lines, 2);
    }

    #[test]
    fn crash_is_line_granular_not_torn() {
        let pool = PmemPool::new(4096, Mode::Tracked);
        write_bytes(&pool, 0, &[1; 64]);
        pool.persist(0, 64);
        write_bytes(&pool, 0, &[2; 64]); // dirty whole line again
        pool.crash();
        // Whole line reverts to the persisted value — no partial line.
        for i in 0..64 {
            assert_eq!(read_byte(&pool, i), 1);
        }
    }

    #[test]
    fn random_eviction_can_persist_unflushed() {
        let pool = PmemPool::new(4096, Mode::Tracked);
        write_bytes(&pool, 0, &[9; 64]);
        pool.crash_with(CrashStyle::RandomEviction { survive_permille: 1000, seed: 42 });
        assert_eq!(read_byte(&pool, 0), 9, "p=1.0 eviction must persist the line");
        let pool2 = PmemPool::new(4096, Mode::Tracked);
        write_bytes(&pool2, 0, &[9; 64]);
        pool2.crash_with(CrashStyle::RandomEviction { survive_permille: 0, seed: 42 });
        assert_eq!(read_byte(&pool2, 0), 0, "p=0 behaves like strict");
    }

    #[test]
    fn save_and_load_round_trip() {
        let dir = std::env::temp_dir().join(format!("nvm-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("pool.img");
        {
            let pool = PmemPool::new(4096, Mode::Direct);
            write_bytes(&pool, 100, b"hello");
            pool.save(&file).unwrap();
        }
        let pool = PmemPool::load(&file, Mode::Tracked).unwrap();
        assert_eq!(read_byte(&pool, 100), b'h');
        // Loaded image counts as persistent.
        pool.crash();
        assert_eq!(read_byte(&pool, 100), b'h');
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_image_differs_from_clean_image() {
        let dir = std::env::temp_dir().join(format!("nvm-test2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let clean = dir.join("clean.img");
        let crashy = dir.join("crash.img");
        let pool = PmemPool::new(4096, Mode::Tracked);
        write_bytes(&pool, 0, &[1; 8]);
        pool.persist(0, 8);
        write_bytes(&pool, 512, &[2; 8]); // unflushed
        pool.save(&clean).unwrap();
        pool.save_crash_image(&crashy).unwrap();
        let c = std::fs::read(&clean).unwrap();
        let k = std::fs::read(&crashy).unwrap();
        assert_eq!(c[512], 2);
        assert_eq!(k[512], 0);
        assert_eq!(k[0], 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn from_image_maps_at_new_base() {
        let pool = PmemPool::new(4096, Mode::Direct);
        write_bytes(&pool, 8, &[0xAB; 8]);
        let img = pool.persistent_image();
        let pool2 = PmemPool::from_image(&img, Mode::Direct);
        assert_eq!(read_byte(&pool2, 8), 0xAB);
    }

    #[test]
    fn injector_fires_through_pool() {
        let inj = CrashInjector::new();
        let pool = PmemPool::with_options(4096, Mode::Tracked, FlushModel::free(), Some(inj.clone()));
        inj.arm(1);
        pool.flush(0, 8); // event 1: budget 1 -> 0
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| pool.fence()));
        assert!(r.is_err());
        assert!(crate::CrashPoint::is(&*r.unwrap_err()));
    }

    #[test]
    fn atomic_view_reads_plain_writes() {
        let pool = PmemPool::new(4096, Mode::Direct);
        unsafe {
            pool.write_u64(16, 0xDEADBEEF);
            assert_eq!(pool.atomic_u64(16).load(Ordering::Relaxed), 0xDEADBEEF);
            assert_eq!(pool.read_u64(16), 0xDEADBEEF);
        }
    }

    #[test]
    fn stats_count_flushes_and_fences() {
        let pool = PmemPool::new(4096, Mode::Direct);
        pool.flush(0, 1);
        pool.flush(0, 65);
        pool.fence();
        let s = pool.stats().snapshot();
        assert_eq!(s.flush_calls, 2);
        assert_eq!(s.flush_lines, 1 + 2);
        assert_eq!(s.fences, 1);
    }

    #[test]
    fn reserve_starts_uncommitted_and_commit_grows_monotonically() {
        let pool = PmemPool::with_reserve(1 << 20, 4096, Mode::Direct, FlushModel::free(), None);
        assert_eq!(pool.len(), 1 << 20);
        assert_eq!(pool.committed_len(), 4096);
        assert!(pool.check_range(0, 4096));
        assert!(!pool.check_range(4096, 1), "uncommitted tail must be out of range");
        assert_eq!(pool.commit_to(8192), 8192);
        assert!(pool.check_range(4096, 4096));
        // Shrinking requests are no-ops (frontier is monotone).
        assert_eq!(pool.commit_to(4096), 8192);
        assert_eq!(pool.committed_len(), 8192);
        // Committed space is zeroed like the rest of the pool.
        assert_eq!(read_byte(&pool, 8191), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds reserved span")]
    fn commit_beyond_reserved_panics() {
        let pool = PmemPool::with_reserve(1 << 16, 4096, Mode::Direct, FlushModel::free(), None);
        pool.commit_to((1 << 16) + 64);
    }

    #[test]
    #[should_panic(expected = "flush out of range")]
    fn flush_beyond_frontier_is_rejected() {
        let pool = PmemPool::with_reserve(1 << 16, 4096, Mode::Direct, FlushModel::free(), None);
        pool.flush(4096, 64);
    }

    #[test]
    fn crash_and_images_are_confined_to_the_committed_prefix() {
        let pool = PmemPool::with_reserve(1 << 16, 4096, Mode::Tracked, FlushModel::free(), None);
        write_bytes(&pool, 128, &[7; 8]);
        pool.persist(128, 8);
        assert_eq!(pool.persistent_image().len(), 4096, "image = committed prefix");
        pool.commit_to(8192);
        write_bytes(&pool, 4096, &[9; 8]); // committed but never flushed
        pool.crash();
        assert_eq!(read_byte(&pool, 128), 7, "persisted line survives");
        assert_eq!(read_byte(&pool, 4096), 0, "unflushed line past the old frontier is lost");
        // The frontier itself is volatile pool state and survives the
        // in-process crash monotonically.
        assert_eq!(pool.committed_len(), 8192);
        assert_eq!(pool.persistent_image().len(), 8192);
    }

    #[test]
    fn grown_pool_round_trips_through_file_with_reservation() {
        let dir = std::env::temp_dir().join(format!("nvm-grow-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("grown.img");
        {
            let pool =
                PmemPool::with_reserve(1 << 20, 4096, Mode::Direct, FlushModel::free(), None);
            pool.commit_to(12288);
            write_bytes(&pool, 8192, b"tail");
            pool.save(&file).unwrap();
        }
        assert_eq!(std::fs::metadata(&file).unwrap().len(), 12288, "file = frontier");
        let pool =
            PmemPool::load_reserving(&file, 1 << 20, Mode::Tracked, FlushModel::free(), None)
                .unwrap();
        assert_eq!(pool.len(), 1 << 20, "reservation re-established");
        assert_eq!(pool.committed_len(), 12288, "frontier = file length");
        assert_eq!(read_byte(&pool, 8192), b't');
        // Loaded content counts as persistent; the tail stays growable.
        pool.crash();
        assert_eq!(read_byte(&pool, 8192), b't');
        pool.commit_to(1 << 20);
        assert!(pool.check_range(0, 1 << 20));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn decommit_releases_tail_and_regrow_reads_zero_pages() {
        let pool = PmemPool::with_reserve(1 << 20, 4096, Mode::Tracked, FlushModel::free(), None);
        pool.commit_to(16384);
        write_bytes(&pool, 8192, &[0xAA; 64]);
        pool.persist(8192, 64);
        assert_eq!(pool.committed_len(), 16384);
        // Shrink back below the persisted data.
        assert_eq!(pool.decommit_to(4096), 4096);
        assert_eq!(pool.committed_len(), 4096);
        assert!(!pool.check_range(4096, 1), "released tail must be out of range");
        assert_eq!(pool.persistent_image().len(), 4096, "image = shrunken prefix");
        // Growing requests through decommit_to are no-ops.
        assert_eq!(pool.decommit_to(1 << 20), 4096);
        // Recommit: the released range reads as fresh zero pages, in both
        // the volatile image and the persistent shadow.
        pool.commit_to(16384);
        assert_eq!(read_byte(&pool, 8192), 0, "stale volatile data resurrected");
        pool.crash();
        assert_eq!(read_byte(&pool, 8192), 0, "stale shadow data resurrected");
    }

    #[test]
    fn decommit_discards_pending_flushes_beyond_the_new_frontier() {
        let pool = PmemPool::with_reserve(1 << 16, 8192, Mode::Tracked, FlushModel::free(), None);
        write_bytes(&pool, 4096, &[7; 8]);
        pool.flush(4096, 8); // flushed but NOT fenced
        pool.decommit_to(4096);
        pool.commit_to(8192);
        pool.fence(); // must not resurrect the dropped pending line
        pool.crash();
        assert_eq!(read_byte(&pool, 4096), 0);
    }

    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    #[test]
    fn shared_guard_coexists_with_readers_but_not_writers() {
        let dir = std::env::temp_dir().join(format!("nvm-shguard-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pool");
        std::fs::write(&path, b"x").unwrap();
        // Two shared readers coexist.
        let r1 = PoolGuard::acquire_shared(&path).expect("first shared lock");
        let _r2 = PoolGuard::acquire_shared(&path).expect("second shared lock");
        // A writer is excluded while any reader holds the pool.
        let err = PoolGuard::acquire(&path).expect_err("writer must be excluded");
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        drop(r1);
        drop(_r2);
        // And a live writer excludes shared readers.
        let w = PoolGuard::acquire(&path).expect("writer after readers left");
        let err = PoolGuard::acquire_shared(&path).expect_err("reader vs live writer");
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        drop(w);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn adjacent_lines_in_one_persist_charged_once_per_run() {
        // CLWB pipelining: one persist of 4 adjacent lines is charged as
        // ONE full flush plus 3 cheap pipelined followers + one fence —
        // not 4 independent full flushes.
        let m = FlushModel::optane();
        let pool = PmemPool::with_options(4096, Mode::Direct, m, None);
        let before = pool.stats().snapshot();
        pool.persist(0, 4 * CACHE_LINE);
        let d = pool.stats().snapshot().since(&before);
        assert_eq!(d.flush_lines, 4, "all four lines flushed");
        assert_eq!(d.flush_calls, 1, "one contiguous run");
        let run = m.flush_ns + 3 * m.pipelined_line_ns;
        assert!(run < 4 * m.flush_ns, "pipelined run must beat per-line charging");
        assert_eq!(
            d.modeled_ns,
            run + m.fence_ns,
            "a 4-line run must cost one full charge + pipelined followers"
        );
        // A *separate* persist is a new run and pays the full charge again.
        pool.persist(0, CACHE_LINE);
        let d2 = pool.stats().snapshot().since(&before);
        assert_eq!(d2.modeled_ns, run + m.flush_ns + 2 * m.fence_ns);
    }
}
