//! Latency model for persistence instructions.
//!
//! On real hardware a `clwb` + `sfence` pair costs on the order of 100 ns
//! when the line must travel to an Optane DIMM (Izraelevitz et al., "Basic
//! Performance Measurements of the Intel Optane DC Persistent Memory
//! Module"). In our simulation the pool's memory is ordinary DRAM, so the
//! cost of persistence would otherwise be invisible and allocators that
//! flush eagerly (Makalu, PMDK) would not pay their real-world price. The
//! [`FlushModel`] injects that cost as a calibrated busy-wait.

use std::time::{Duration, Instant};

/// Latency charged for flush and fence events, in nanoseconds.
///
/// `FlushModel::default()` charges nothing (appropriate for unit tests and
/// crash-semantics testing, where wall-clock cost is irrelevant).
/// [`FlushModel::optane`] charges costs representative of an Optane DIMM
/// and is used by the benchmark harness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlushModel {
    /// Cost of the first `clwb` of a contiguous run of cache lines.
    pub flush_ns: u64,
    /// Cost of each *additional* adjacent line in the same run: CLWB
    /// pipelining hides most of the per-line latency, but write-back is
    /// ultimately bandwidth-bound, so long runs (whole-pool flushes,
    /// large-object persists) must not be free.
    pub pipelined_line_ns: u64,
    /// Cost of an `sfence` that must wait for outstanding write-backs.
    pub fence_ns: u64,
}

impl FlushModel {
    /// A model with zero cost; persistence bookkeeping only.
    pub const fn free() -> Self {
        FlushModel { flush_ns: 0, pipelined_line_ns: 0, fence_ns: 0 }
    }

    /// Latency representative of a fenced write-back to an Optane DIMM.
    ///
    /// `clwb` itself retires quickly (the write-back is asynchronous), so
    /// most of the cost lands on the fence that waits for it. The split
    /// here (20 ns for the first line + 2 ns per pipelined follower +
    /// 80 ns per fence) reproduces the ~100 ns cost of a typical one-line
    /// persist, lets adjacent-line runs pipeline, and keeps long runs
    /// bandwidth-bound (2 ns/64 B ≈ 30 GB/s), matching published Optane
    /// microbenchmarks.
    pub const fn optane() -> Self {
        FlushModel { flush_ns: 20, pipelined_line_ns: 2, fence_ns: 80 }
    }

    /// Busy-wait for `ns` nanoseconds. Precise enough for tens of
    /// nanoseconds and monotone in `ns`, which is all the benchmarks need.
    #[inline]
    pub(crate) fn spin(ns: u64) {
        if ns == 0 {
            return;
        }
        let target = Duration::from_nanos(ns);
        let start = Instant::now();
        while start.elapsed() < target {
            std::hint::spin_loop();
        }
    }

    /// Charge the cost of flushing one **contiguous run** of `lines`
    /// cache lines.
    ///
    /// Real `clwb`s of adjacent lines pipeline: the instructions retire
    /// back-to-back and their write-backs overlap, so a run of N adjacent
    /// lines costs one full line latency plus a small bandwidth-bound
    /// per-follower term — not N independent round trips. A single
    /// `flush` call always covers one contiguous range, so the charge is
    /// `flush_ns + (lines-1) * pipelined_line_ns`; the following fence
    /// still charges its full drain cost. Returns the nanoseconds charged
    /// so the pool can account them ([`crate::PmemStats`] `modeled_ns`).
    #[inline]
    pub(crate) fn charge_flush_run(&self, lines: usize) -> u64 {
        if lines == 0 {
            return 0;
        }
        let ns = self.flush_ns + self.pipelined_line_ns * (lines - 1) as u64;
        if ns != 0 {
            Self::spin(ns);
        }
        ns
    }

    /// Charge the cost of one fence. Returns the nanoseconds charged.
    #[inline]
    pub(crate) fn charge_fence(&self) -> u64 {
        if self.fence_ns != 0 {
            Self::spin(self.fence_ns);
        }
        self.fence_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_free() {
        assert_eq!(FlushModel::default(), FlushModel::free());
    }

    #[test]
    fn spin_is_monotone() {
        let t0 = Instant::now();
        FlushModel::spin(0);
        let zero = t0.elapsed();
        let t1 = Instant::now();
        FlushModel::spin(200_000); // 200us: measurable
        let some = t1.elapsed();
        assert!(some >= Duration::from_micros(150), "spin too short: {some:?}");
        assert!(zero < Duration::from_micros(150));
    }

    #[test]
    fn optane_charges_more_than_free() {
        let m = FlushModel::optane();
        assert!(m.flush_ns > 0 && m.fence_ns > 0);
    }
}
