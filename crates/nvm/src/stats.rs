//! Persistence-operation counters.
//!
//! One of the paper's headline claims is that Ralloc "pays almost nothing
//! for persistence during normal operation": the typical `malloc` issues
//! *zero* flushes. These counters let tests and the ablation benchmarks
//! verify that claim quantitatively (flushes-per-operation for each
//! allocator) instead of inferring it from wall-clock time alone.
//!
//! The counters live in a [`telemetry::Registry`] (one per pool), so the
//! JSON/Prometheus exporters and the soak sampler enumerate them by name
//! (`flush_lines`, `flush_calls`, `fences`, `modeled_ns`) alongside the
//! heap's metrics. [`PmemStats`] is a thin typed view over that registry:
//! its snapshot API is unchanged, and writes go to sharded lock-free
//! counters (see [`telemetry::Counter`]).

use telemetry::{Counter, Registry};

/// Monotonic counters of persistence activity on a pool. A view over the
/// pool's metric [`Registry`] — see module docs.
pub struct PmemStats {
    registry: Registry,
    flush_lines: Counter,
    flush_calls: Counter,
    fences: Counter,
    modeled_ns: Counter,
}

impl Default for PmemStats {
    fn default() -> Self {
        let registry = Registry::new();
        PmemStats {
            flush_lines: registry.counter("flush_lines"),
            flush_calls: registry.counter("flush_calls"),
            fences: registry.counter("fences"),
            modeled_ns: registry.counter("modeled_ns"),
            registry,
        }
    }
}

impl std::fmt::Debug for PmemStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PmemStats")
            .field("flush_lines", &self.flush_lines.get())
            .field("flush_calls", &self.flush_calls.get())
            .field("fences", &self.fences.get())
            .field("modeled_ns", &self.modeled_ns.get())
            .finish()
    }
}

/// A point-in-time copy of [`PmemStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PmemStatsSnapshot {
    /// Total cache lines flushed.
    pub flush_lines: u64,
    /// Total flush calls. Each call covers one contiguous line run, and
    /// the latency model charges per *run*, not per line (CLWB
    /// pipelining), so this is also the number of flush charges.
    pub flush_calls: u64,
    /// Total fences issued.
    pub fences: u64,
    /// Total nanoseconds the [`crate::FlushModel`] charged (flushes +
    /// fences). Lets tests assert charging policy without timing races.
    pub modeled_ns: u64,
}

impl PmemStats {
    pub(crate) fn record_flush(&self, lines: usize, charged_ns: u64) {
        self.flush_lines.add(lines as u64);
        self.flush_calls.inc();
        self.modeled_ns.add(charged_ns);
    }

    pub(crate) fn record_fence(&self, charged_ns: u64) {
        self.fences.inc();
        self.modeled_ns.add(charged_ns);
    }

    /// The pool's metric registry, for exporters (`pmem` scope in
    /// [`telemetry::export::to_json`] dumps).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Read all counters.
    pub fn snapshot(&self) -> PmemStatsSnapshot {
        PmemStatsSnapshot {
            flush_lines: self.flush_lines.get(),
            flush_calls: self.flush_calls.get(),
            fences: self.fences.get(),
            modeled_ns: self.modeled_ns.get(),
        }
    }

    /// Total cache lines flushed so far.
    pub fn flush_lines(&self) -> u64 {
        self.flush_lines.get()
    }

    /// Total fences so far.
    pub fn fences(&self) -> u64 {
        self.fences.get()
    }
}

impl PmemStatsSnapshot {
    /// Difference of two snapshots (self - earlier).
    pub fn since(&self, earlier: &PmemStatsSnapshot) -> PmemStatsSnapshot {
        PmemStatsSnapshot {
            flush_lines: self.flush_lines - earlier.flush_lines,
            flush_calls: self.flush_calls - earlier.flush_calls,
            fences: self.fences - earlier.fences,
            modeled_ns: self.modeled_ns - earlier.modeled_ns,
        }
    }
}

#[cfg(test)]
#[cfg(not(feature = "telemetry-off"))]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = PmemStats::default();
        s.record_flush(3, 20);
        s.record_flush(1, 20);
        s.record_fence(80);
        let snap = s.snapshot();
        assert_eq!(snap.flush_lines, 4);
        assert_eq!(snap.flush_calls, 2);
        assert_eq!(snap.fences, 1);
        assert_eq!(snap.modeled_ns, 120);
    }

    #[test]
    fn snapshot_since() {
        let s = PmemStats::default();
        s.record_flush(2, 20);
        let a = s.snapshot();
        s.record_flush(5, 20);
        s.record_fence(80);
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.flush_lines, 5);
        assert_eq!(d.flush_calls, 1);
        assert_eq!(d.fences, 1);
        assert_eq!(d.modeled_ns, 100);
    }

    #[test]
    fn registry_enumerates_the_counters() {
        let s = PmemStats::default();
        s.record_flush(3, 20);
        assert_eq!(s.registry().counter_value("flush_lines"), Some(3));
        assert_eq!(s.registry().counter_value("flush_calls"), Some(1));
        assert_eq!(s.registry().counter_value("fences"), Some(0));
    }
}
