//! Persistence-operation counters.
//!
//! One of the paper's headline claims is that Ralloc "pays almost nothing
//! for persistence during normal operation": the typical `malloc` issues
//! *zero* flushes. These counters let tests and the ablation benchmarks
//! verify that claim quantitatively (flushes-per-operation for each
//! allocator) instead of inferring it from wall-clock time alone.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters of persistence activity on a pool.
#[derive(Debug, Default)]
pub struct PmemStats {
    flush_lines: AtomicU64,
    flush_calls: AtomicU64,
    fences: AtomicU64,
    modeled_ns: AtomicU64,
}

/// A point-in-time copy of [`PmemStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PmemStatsSnapshot {
    /// Total cache lines flushed.
    pub flush_lines: u64,
    /// Total flush calls. Each call covers one contiguous line run, and
    /// the latency model charges per *run*, not per line (CLWB
    /// pipelining), so this is also the number of flush charges.
    pub flush_calls: u64,
    /// Total fences issued.
    pub fences: u64,
    /// Total nanoseconds the [`crate::FlushModel`] charged (flushes +
    /// fences). Lets tests assert charging policy without timing races.
    pub modeled_ns: u64,
}

impl PmemStats {
    pub(crate) fn record_flush(&self, lines: usize, charged_ns: u64) {
        self.flush_lines.fetch_add(lines as u64, Ordering::Relaxed);
        self.flush_calls.fetch_add(1, Ordering::Relaxed);
        self.modeled_ns.fetch_add(charged_ns, Ordering::Relaxed);
    }

    pub(crate) fn record_fence(&self, charged_ns: u64) {
        self.fences.fetch_add(1, Ordering::Relaxed);
        self.modeled_ns.fetch_add(charged_ns, Ordering::Relaxed);
    }

    /// Read all counters.
    pub fn snapshot(&self) -> PmemStatsSnapshot {
        PmemStatsSnapshot {
            flush_lines: self.flush_lines.load(Ordering::Relaxed),
            flush_calls: self.flush_calls.load(Ordering::Relaxed),
            fences: self.fences.load(Ordering::Relaxed),
            modeled_ns: self.modeled_ns.load(Ordering::Relaxed),
        }
    }

    /// Total cache lines flushed so far.
    pub fn flush_lines(&self) -> u64 {
        self.flush_lines.load(Ordering::Relaxed)
    }

    /// Total fences so far.
    pub fn fences(&self) -> u64 {
        self.fences.load(Ordering::Relaxed)
    }
}

impl PmemStatsSnapshot {
    /// Difference of two snapshots (self - earlier).
    pub fn since(&self, earlier: &PmemStatsSnapshot) -> PmemStatsSnapshot {
        PmemStatsSnapshot {
            flush_lines: self.flush_lines - earlier.flush_lines,
            flush_calls: self.flush_calls - earlier.flush_calls,
            fences: self.fences - earlier.fences,
            modeled_ns: self.modeled_ns - earlier.modeled_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = PmemStats::default();
        s.record_flush(3, 20);
        s.record_flush(1, 20);
        s.record_fence(80);
        let snap = s.snapshot();
        assert_eq!(snap.flush_lines, 4);
        assert_eq!(snap.flush_calls, 2);
        assert_eq!(snap.fences, 1);
        assert_eq!(snap.modeled_ns, 120);
    }

    #[test]
    fn snapshot_since() {
        let s = PmemStats::default();
        s.record_flush(2, 20);
        let a = s.snapshot();
        s.record_flush(5, 20);
        s.record_fence(80);
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.flush_lines, 5);
        assert_eq!(d.flush_calls, 1);
        assert_eq!(d.fences, 1);
        assert_eq!(d.modeled_ns, 100);
    }
}
