//! Minimal raw-syscall layer for the OS facilities the crash-testing
//! substrate needs and `std` does not expose: shared file mappings
//! (`mmap`/`munmap`/`msync`), advisory file locks (`flock`), and
//! process control for the fork/SIGKILL harness (`fork`/`kill`/`wait4`).
//!
//! The workspace builds offline with no `libc` crate, so these are
//! direct `syscall` instructions on x86_64 Linux. Every wrapper returns
//! `io::Result`, translating the kernel's negative-errno convention into
//! `io::Error::from_raw_os_error`. On any other target the module still
//! compiles but every call returns [`io::ErrorKind::Unsupported`], so
//! portable callers can degrade gracefully (the simulated in-memory pool
//! never needs these).

use std::io;

// ------------------------------------------------------------ constants

pub const PROT_NONE: usize = 0x0;
pub const PROT_READ: usize = 0x1;
pub const PROT_WRITE: usize = 0x2;

pub const MAP_SHARED: usize = 0x01;
pub const MAP_PRIVATE: usize = 0x02;
pub const MAP_FIXED: usize = 0x10;
pub const MAP_ANONYMOUS: usize = 0x20;
/// Don't reserve swap for the mapping (cheap large reservations).
pub const MAP_NORESERVE: usize = 0x4000;

pub const MS_SYNC: usize = 4;

pub const LOCK_SH: usize = 1;
pub const LOCK_EX: usize = 2;
pub const LOCK_NB: usize = 4;
pub const LOCK_UN: usize = 8;

pub const SIGKILL: i32 = 9;

/// `wait4` option: return immediately when no child has exited yet.
pub const WNOHANG: usize = 1;

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod imp {
    use super::*;

    mod nr {
        pub const MMAP: usize = 9;
        pub const MUNMAP: usize = 11;
        pub const MSYNC: usize = 26;
        pub const GETPID: usize = 39;
        pub const FORK: usize = 57;
        pub const EXIT_GROUP: usize = 231;
        pub const WAIT4: usize = 61;
        pub const KILL: usize = 62;
        pub const FLOCK: usize = 73;
    }

    /// Raw 6-argument syscall. Returns the kernel's raw result (negative
    /// errno on failure).
    ///
    /// # Safety
    /// The caller is responsible for the semantics of the specific
    /// syscall: pointer arguments must be valid for the kernel's access,
    /// and calls with process-global effects (`fork`, `exit_group`) have
    /// the usual caveats.
    unsafe fn syscall6(
        n: usize,
        a1: usize,
        a2: usize,
        a3: usize,
        a4: usize,
        a5: usize,
        a6: usize,
    ) -> isize {
        let ret: isize;
        // SAFETY: the `syscall` instruction clobbers rcx/r11; all
        // argument registers follow the x86_64 Linux ABI.
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") n as isize => ret,
                in("rdi") a1,
                in("rsi") a2,
                in("rdx") a3,
                in("r10") a4,
                in("r8") a5,
                in("r9") a6,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        ret
    }

    fn check(ret: isize) -> io::Result<usize> {
        if ret < 0 {
            Err(io::Error::from_raw_os_error(-ret as i32))
        } else {
            Ok(ret as usize)
        }
    }

    /// `mmap(addr, len, prot, flags, fd, offset)`.
    ///
    /// # Safety
    /// With `MAP_FIXED` the caller must own the target address range;
    /// the returned mapping aliases the file (or fresh anonymous pages)
    /// and all access must respect the usual aliasing discipline.
    pub unsafe fn mmap(
        addr: *mut u8,
        len: usize,
        prot: usize,
        flags: usize,
        fd: i32,
        offset: usize,
    ) -> io::Result<*mut u8> {
        // SAFETY: forwarded to the kernel; contract per fn docs.
        let r = unsafe {
            syscall6(nr::MMAP, addr as usize, len, prot, flags, fd as isize as usize, offset)
        };
        check(r).map(|p| p as *mut u8)
    }

    /// `munmap(addr, len)`.
    ///
    /// # Safety
    /// The range must be a mapping this process owns and no longer uses.
    pub unsafe fn munmap(addr: *mut u8, len: usize) -> io::Result<()> {
        // SAFETY: per fn contract.
        let r = unsafe { syscall6(nr::MUNMAP, addr as usize, len, 0, 0, 0, 0) };
        check(r).map(|_| ())
    }

    /// `msync(addr, len, flags)` — write a shared mapping's dirty pages
    /// back to the file.
    ///
    /// # Safety
    /// The range must lie within a live mapping.
    pub unsafe fn msync(addr: *mut u8, len: usize, flags: usize) -> io::Result<()> {
        // SAFETY: per fn contract.
        let r = unsafe { syscall6(nr::MSYNC, addr as usize, len, flags, 0, 0, 0) };
        check(r).map(|_| ())
    }

    /// `flock(fd, op)` — advisory whole-file lock. With `LOCK_NB` a held
    /// lock surfaces as `EWOULDBLOCK`.
    pub fn flock(fd: i32, op: usize) -> io::Result<()> {
        // SAFETY: no memory arguments.
        let r = unsafe { syscall6(nr::FLOCK, fd as usize, op, 0, 0, 0, 0) };
        check(r).map(|_| ())
    }

    /// `fork()` — returns the child pid in the parent, 0 in the child.
    ///
    /// # Safety
    /// Must only be called while the process is single-threaded (a
    /// forked child inherits only the calling thread, so locks held by
    /// other threads stay locked forever in the child).
    pub unsafe fn fork() -> io::Result<i32> {
        // SAFETY: per fn contract.
        let r = unsafe { syscall6(nr::FORK, 0, 0, 0, 0, 0, 0) };
        check(r).map(|pid| pid as i32)
    }

    /// `kill(pid, sig)`.
    pub fn kill(pid: i32, sig: i32) -> io::Result<()> {
        // SAFETY: no memory arguments.
        let r = unsafe { syscall6(nr::KILL, pid as usize, sig as usize, 0, 0, 0, 0) };
        check(r).map(|_| ())
    }

    /// `getpid()`.
    pub fn getpid() -> i32 {
        // SAFETY: no arguments, cannot fail.
        unsafe { syscall6(nr::GETPID, 0, 0, 0, 0, 0, 0) as i32 }
    }

    /// `wait4(pid, &status, options, NULL)` — returns `(pid, status)`;
    /// pid 0 when `WNOHANG` was set and the child is still running.
    pub fn wait4(pid: i32, options: usize) -> io::Result<(i32, i32)> {
        let mut status: i32 = 0;
        // SAFETY: status points at a live i32.
        let r = unsafe {
            syscall6(
                nr::WAIT4,
                pid as isize as usize,
                &mut status as *mut i32 as usize,
                options,
                0,
                0,
                0,
            )
        };
        check(r).map(|p| (p as i32, status))
    }

    /// `exit_group(code)` — terminate the whole process immediately,
    /// without running libc atexit handlers or Rust destructors. The
    /// fork harness's child exits through this so it never flushes
    /// stdio buffers inherited (duplicated) from the parent.
    pub fn exit_group(code: i32) -> ! {
        // SAFETY: terminates the process; no return.
        unsafe {
            syscall6(nr::EXIT_GROUP, code as usize, 0, 0, 0, 0, 0);
        }
        unreachable!("exit_group returned");
    }
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
mod imp {
    use super::*;

    fn unsupported<T>() -> io::Result<T> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "nvm::sys requires x86_64 Linux",
        ))
    }

    /// # Safety
    /// See the x86_64 implementation; this stub never dereferences.
    pub unsafe fn mmap(
        _addr: *mut u8,
        _len: usize,
        _prot: usize,
        _flags: usize,
        _fd: i32,
        _offset: usize,
    ) -> io::Result<*mut u8> {
        unsupported()
    }

    /// # Safety
    /// See the x86_64 implementation; this stub never dereferences.
    pub unsafe fn munmap(_addr: *mut u8, _len: usize) -> io::Result<()> {
        unsupported()
    }

    /// # Safety
    /// See the x86_64 implementation; this stub never dereferences.
    pub unsafe fn msync(_addr: *mut u8, _len: usize, _flags: usize) -> io::Result<()> {
        unsupported()
    }

    pub fn flock(_fd: i32, _op: usize) -> io::Result<()> {
        // Advisory locking degrades to a no-op rather than an error:
        // single-process use (the only kind possible without fork) is
        // still correct, and open paths stay usable on other hosts.
        Ok(())
    }

    /// # Safety
    /// See the x86_64 implementation; this stub never forks.
    pub unsafe fn fork() -> io::Result<i32> {
        unsupported()
    }

    pub fn kill(_pid: i32, _sig: i32) -> io::Result<()> {
        unsupported()
    }

    pub fn getpid() -> i32 {
        std::process::id() as i32
    }

    pub fn wait4(_pid: i32, _options: usize) -> io::Result<(i32, i32)> {
        unsupported()
    }

    pub fn exit_group(code: i32) -> ! {
        std::process::exit(code)
    }
}

pub use imp::{exit_group, flock, fork, getpid, kill, mmap, msync, munmap, wait4};

/// True when the raw-syscall layer is the real thing (fork/mmap harness
/// available), false on the stubbed fallback.
pub const fn available() -> bool {
    cfg!(all(target_os = "linux", target_arch = "x86_64"))
}

/// Decode a `wait4` status word: `Some(sig)` if the child was terminated
/// by signal `sig`.
pub fn term_signal(status: i32) -> Option<i32> {
    let sig = status & 0x7f;
    if sig != 0 && sig != 0x7f {
        Some(sig)
    } else {
        None
    }
}

/// Decode a `wait4` status word: `Some(code)` if the child exited
/// normally with `code`.
pub fn exit_code(status: i32) -> Option<i32> {
    if status & 0x7f == 0 {
        Some((status >> 8) & 0xff)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn getpid_matches_std() {
        assert_eq!(getpid() as u32, std::process::id());
    }

    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    #[test]
    fn anonymous_map_round_trip() {
        // SAFETY: fresh anonymous mapping, unmapped at the end.
        unsafe {
            let p = mmap(
                std::ptr::null_mut(),
                8192,
                PROT_READ | PROT_WRITE,
                MAP_PRIVATE | MAP_ANONYMOUS,
                -1,
                0,
            )
            .expect("anon mmap");
            assert_eq!(p as usize % 4096, 0);
            std::ptr::write(p, 0xAB);
            assert_eq!(std::ptr::read(p), 0xAB);
            munmap(p, 8192).expect("munmap");
        }
    }

    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    #[test]
    fn flock_excludes_second_descriptor() {
        use std::os::fd::AsRawFd;
        let dir = std::env::temp_dir().join(format!("nvm-sys-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("lock");
        let f1 = std::fs::File::create(&path).unwrap();
        let f2 = std::fs::File::open(&path).unwrap();
        flock(f1.as_raw_fd(), LOCK_EX | LOCK_NB).expect("first lock");
        let err = flock(f2.as_raw_fd(), LOCK_EX | LOCK_NB).expect_err("second lock must fail");
        assert_eq!(err.kind(), std::io::ErrorKind::WouldBlock);
        flock(f1.as_raw_fd(), LOCK_UN).unwrap();
        flock(f2.as_raw_fd(), LOCK_EX | LOCK_NB).expect("lock after unlock");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    #[test]
    fn wait_status_decoders() {
        // 0x0900 = exited with code 9; 0x0009 = killed by SIGKILL.
        assert_eq!(exit_code(0x0900), Some(9));
        assert_eq!(term_signal(0x0900), None);
        assert_eq!(term_signal(0x0009), Some(SIGKILL));
        assert_eq!(exit_code(0x0009), None);
    }
}
