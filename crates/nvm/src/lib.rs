//! # nvm — simulated byte-addressable persistent memory
//!
//! This crate is the hardware substrate for the Ralloc reproduction. The
//! paper (Cai et al., *Understanding and Optimizing Persistent Memory
//! Allocation*, 2020) runs on Intel Optane DIMMs exposed through DAX
//! `mmap`; we do not have that hardware, so this crate provides the closest
//! synthetic equivalent that exercises the same code paths:
//!
//! * [`PmemPool`] — a large, cache-line-aligned region of byte-addressable
//!   memory with explicit [`PmemPool::flush`] (`clwb`) and
//!   [`PmemPool::fence`] (`sfence`) operations.
//! * **Direct mode** — flush/fence are compiler fences plus an optional
//!   calibrated delay ([`FlushModel`]) that models the latency of a fenced
//!   write-back to Optane. Used for performance experiments.
//! * **Tracked mode** — the pool keeps a *shadow persistent image*; a cache
//!   line reaches the shadow only when it has been explicitly flushed *and*
//!   fenced (the strict pmemcheck/Yat model). [`PmemPool::crash`] replaces
//!   the volatile image with the shadow, simulating a power failure in
//!   which every non-written-back line is lost (never torn). Used for
//!   crash-recovery testing.
//! * [`CrashInjector`] — aborts execution (via panic) after a configured
//!   number of flush/fence events so tests can explore mid-operation crash
//!   points exhaustively or randomly.
//!
//! The volatile image can be saved to / loaded from a file, standing in for
//! a DAX file system segment: a *clean* shutdown writes the full image,
//! while [`PmemPool::save_crash_image`] writes the shadow image (what real
//! NVM would contain after a power failure).
//!
//! ## Memory model caveats (documented deviations)
//!
//! * A fence applies **all** pending flushes, not only the fencing
//!   thread's. This is slightly more optimistic than `sfence` (which only
//!   orders the issuing CPU's write-backs), but it never persists a line
//!   that was not flushed, which is the property recoverability depends on.
//! * Real caches may write back dirty lines spontaneously (eviction), so a
//!   crash can persist *more* than what was flushed. [`CrashStyle::RandomEviction`]
//!   models this for adversarial testing.

mod crash;
mod flush;
mod pool;
mod stats;
pub mod sys;

pub use crash::{CrashAction, CrashInjector, CrashPoint, CRASH_POINT_MSG};
pub use flush::FlushModel;
pub use pool::{CrashStyle, Mode, PmemPool, PoolGuard, RegionSpec};
pub use stats::PmemStats;

/// Cache line size assumed throughout: flush granularity, descriptor
/// padding, and the unit of atomicity for crash simulation (writes-back at
/// cache-line granularity are never torn; see paper §2.1).
pub const CACHE_LINE: usize = 64;

/// Round `n` down to a cache-line boundary.
#[inline]
pub const fn line_down(n: usize) -> usize {
    n & !(CACHE_LINE - 1)
}

/// Round `n` up to a cache-line boundary.
#[inline]
pub const fn line_up(n: usize) -> usize {
    (n + CACHE_LINE - 1) & !(CACHE_LINE - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_rounding() {
        assert_eq!(line_down(0), 0);
        assert_eq!(line_down(63), 0);
        assert_eq!(line_down(64), 64);
        assert_eq!(line_down(127), 64);
        assert_eq!(line_up(0), 0);
        assert_eq!(line_up(1), 64);
        assert_eq!(line_up(64), 64);
        assert_eq!(line_up(65), 128);
    }
}
