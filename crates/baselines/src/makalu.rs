//! Makalu-like lock-based persistent allocator (Bhandari et al.,
//! OOPSLA'16), simulated per DESIGN.md.
//!
//! Cost model reproduced from the original design:
//!
//! * every alloc and free **eagerly persists** a per-block allocation
//!   header (one store + flush + fence) — Ralloc's §6.2 explanation for
//!   the ~10× gap on allocation-heavy workloads;
//! * a central pool per size class behind a mutex, accessed whenever a
//!   thread-local buffer runs dry or over-fills;
//! * over-full thread buffers return only **half** their blocks (§6.3),
//!   trading some balance for locality (the memcached edge).
//!
//! Recovery rebuilds the central pools from the persisted chunk headers
//! and allocation bytes; unlike Ralloc there is no GC here (the real
//! Makalu has an offline collector too, but the paper's experiments
//! exercise only its allocation paths, so the simulation keeps recovery
//! minimal: persisted allocation state is authoritative).

use std::sync::Arc;

use parking_lot::Mutex;

use nvm::{FlushModel, Mode, PmemPool};
use ralloc::PersistentAllocator;

use crate::chunked::{
    self, alloc_state, carve, chunk_class, class_block_size, class_max_count, locate,
    set_alloc_state, set_chunk_class, size_class_of, used_chunks, ChunkGeo, CHUNK_SIZE,
    NUM_CLASSES,
};
use crate::tls::{self, CacheOwner};

pub(crate) struct MakaluInner {
    pool: PmemPool,
    geo: ChunkGeo,
    id: u64,
    /// Central block pools (absolute addresses), one mutex per class.
    central: Vec<Mutex<Vec<usize>>>,
    /// Free chunk spans for large allocations: (first chunk, length).
    large_free: Mutex<Vec<(usize, usize)>>,
}

impl CacheOwner for MakaluInner {
    fn drain(&self, caches: &mut [Vec<usize>]) {
        for (class, cache) in caches.iter_mut().enumerate().skip(1) {
            if !cache.is_empty() {
                self.central[class].lock().append(cache);
            }
        }
    }

    fn cache_id(&self) -> u64 {
        self.id
    }
}

/// The Makalu-like baseline allocator.
pub struct MakaluSim {
    inner: Arc<MakaluInner>,
}

impl MakaluSim {
    /// Create a heap with at least `capacity` bytes of chunk area.
    pub fn create(capacity: usize, mode: Mode, flush_model: FlushModel) -> MakaluSim {
        let pool = PmemPool::with_options(
            ChunkGeo::pool_len_for_capacity(capacity),
            mode,
            flush_model,
            None,
        );
        let geo = ChunkGeo::new(pool.len());
        MakaluSim {
            inner: Arc::new(MakaluInner {
                pool,
                geo,
                id: tls::next_id(),
                central: (0..NUM_CLASSES).map(|_| Mutex::new(Vec::new())).collect(),
                large_free: Mutex::new(Vec::new()),
            }),
        }
    }

    /// The underlying pool (statistics, crash simulation).
    pub fn pool(&self) -> &PmemPool {
        &self.inner.pool
    }

    /// Rebuild the central pools from persisted state (post-crash). The
    /// persisted allocation bytes are authoritative: allocated blocks stay
    /// allocated, everything else returns to the pools.
    pub fn recover(&self) {
        let inner = &*self.inner;
        for c in inner.central.iter() {
            c.lock().clear();
        }
        inner.large_free.lock().clear();
        let used = used_chunks(&inner.pool);
        let mut i = 0usize;
        while i < used {
            let (class, bsize) = chunk_class(&inner.pool, &inner.geo, i);
            if class == 0 && bsize > 0 {
                // Large span.
                let span = (bsize as usize).div_ceil(CHUNK_SIZE).min(used - i);
                if !alloc_state(&inner.pool, &inner.geo, i, 0) {
                    inner.large_free.lock().push((i, span));
                }
                i += span;
                continue;
            }
            if chunked::is_small_class(class) && bsize == class_block_size(class) as u64 {
                let mc = class_max_count(class);
                let base = inner.pool.base() as usize + inner.geo.chunk(i);
                let mut central = inner.central[class as usize].lock();
                for blk in 0..mc {
                    if !alloc_state(&inner.pool, &inner.geo, i, blk) {
                        central.push(base + blk as usize * bsize as usize);
                    }
                }
            }
            // Uninitialized chunk headers (carved but never classed) are
            // unreachable: conservatively skip (they leak until reuse,
            // as in the real system without GC).
            i += 1;
        }
    }

    fn alloc_small(&self, class: u32) -> *mut u8 {
        let inner = &*self.inner;
        tls::with_caches(&self.inner, NUM_CLASSES, |caches| {
            let cache = &mut caches[class as usize];
            if cache.is_empty() && !self.refill(class, cache) {
                return std::ptr::null_mut();
            }
            let addr = cache.pop().unwrap();
            // Eager persistence: the per-block allocation header.
            let (chunk, blk, _, _) = locate(&inner.pool, &inner.geo, addr as *mut u8);
            set_alloc_state(&inner.pool, &inner.geo, chunk, blk, true);
            addr as *mut u8
        })
    }

    fn refill(&self, class: u32, cache: &mut Vec<usize>) -> bool {
        let inner = &*self.inner;
        let mc = class_max_count(class) as usize;
        let refill = (mc / 2).max(1);
        let mut central = inner.central[class as usize].lock();
        if central.len() < refill {
            // Carve and split a fresh chunk inside the lock (Makalu's
            // central pool growth is serialized).
            match carve(&inner.pool, &inner.geo, 1) {
                Some(i) => {
                    let bsize = class_block_size(class) as u64;
                    set_chunk_class(&inner.pool, &inner.geo, i, class, bsize);
                    let base = inner.pool.base() as usize + inner.geo.chunk(i);
                    for blk in 0..mc {
                        central.push(base + blk * bsize as usize);
                    }
                }
                None => {
                    if central.is_empty() {
                        return false;
                    }
                }
            }
        }
        let take = refill.min(central.len());
        let at = central.len() - take;
        cache.extend(central.drain(at..));
        true
    }

    fn alloc_large(&self, size: usize) -> *mut u8 {
        let inner = &*self.inner;
        let span = size.div_ceil(CHUNK_SIZE);
        let mut free = inner.large_free.lock();
        let pos = free.iter().position(|&(_, n)| n >= span);
        let head = match pos {
            Some(p) => {
                let (start, n) = free[p];
                if n == span {
                    free.swap_remove(p);
                } else {
                    free[p] = (start + span, n - span);
                }
                start
            }
            None => match carve(&inner.pool, &inner.geo, span) {
                Some(i) => i,
                None => return std::ptr::null_mut(),
            },
        };
        drop(free);
        set_chunk_class(&inner.pool, &inner.geo, head, 0, size as u64);
        set_alloc_state(&inner.pool, &inner.geo, head, 0, true);
        (inner.pool.base() as usize + inner.geo.chunk(head)) as *mut u8
    }
}

impl PersistentAllocator for MakaluSim {
    fn malloc(&self, size: usize) -> *mut u8 {
        match size_class_of(size) {
            Some(class) => self.alloc_small(class),
            None => self.alloc_large(size),
        }
    }

    fn free(&self, ptr: *mut u8) {
        assert!(!ptr.is_null(), "free(null)");
        let inner = &*self.inner;
        let (chunk, blk, bsize, class) = locate(&inner.pool, &inner.geo, ptr);
        if class == 0 {
            let span = (bsize as usize).div_ceil(CHUNK_SIZE);
            set_alloc_state(&inner.pool, &inner.geo, chunk, 0, false);
            inner.large_free.lock().push((chunk, span));
            return;
        }
        // Eager persistence of the freed state.
        set_alloc_state(&inner.pool, &inner.geo, chunk, blk, false);
        tls::with_caches(&self.inner, NUM_CLASSES, |caches| {
            let cache = &mut caches[class as usize];
            cache.push(ptr as usize);
            let cap = class_max_count(class) as usize;
            if cache.len() > cap {
                // Return HALF, keep half (Makalu's locality-friendly
                // policy, paper §6.3).
                let keep = cache.len() / 2;
                let mut central = inner.central[class as usize].lock();
                central.extend(cache.drain(keep..));
            }
        })
    }

    fn name(&self) -> &'static str {
        "makalu"
    }

    fn persist(&self, ptr: *const u8, len: usize) {
        let off = ptr as usize - self.inner.pool.base() as usize;
        self.inner.pool.persist(off, len);
    }
}

impl std::fmt::Debug for MakaluSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MakaluSim")
            .field("used_chunks", &used_chunks(&self.inner.pool))
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn heap() -> MakaluSim {
        MakaluSim::create(16 << 20, Mode::Direct, FlushModel::free())
    }

    #[test]
    fn alloc_free_roundtrip() {
        let m = heap();
        let p = m.malloc(64);
        assert!(!p.is_null());
        unsafe { std::ptr::write_bytes(p, 1, 64) };
        m.free(p);
    }

    #[test]
    fn blocks_distinct() {
        let m = heap();
        let mut seen = HashSet::new();
        for _ in 0..5000 {
            let p = m.malloc(48);
            assert!(!p.is_null());
            assert!(seen.insert(p as usize));
        }
    }

    #[test]
    fn every_op_persists() {
        let m = MakaluSim::create(4 << 20, Mode::Direct, FlushModel::free());
        let p1 = m.malloc(64); // may carve (extra persists)
        let before = m.pool().stats().snapshot();
        let p2 = m.malloc(64);
        m.free(p2);
        m.free(p1);
        let d = m.pool().stats().snapshot().since(&before);
        assert!(d.fences >= 3, "Makalu must persist every op, saw {} fences", d.fences);
    }

    #[test]
    fn large_roundtrip_and_reuse() {
        let m = heap();
        let p = m.malloc(200_000);
        assert!(!p.is_null());
        m.free(p);
        let q = m.malloc(150_000);
        assert!(!q.is_null());
        assert_eq!(p, q, "freed span should be reused first-fit");
    }

    #[test]
    fn allocation_state_survives_crash_and_recover() {
        let m = MakaluSim::create(4 << 20, Mode::Tracked, FlushModel::free());
        let live: Vec<usize> = (0..100).map(|_| m.malloc(64) as usize).collect();
        let freed = m.malloc(64);
        m.free(freed);
        m.pool().crash();
        m.recover();
        // Live blocks stay allocated: nothing handed out may alias them.
        let live_set: HashSet<usize> = live.into_iter().collect();
        for _ in 0..10_000 {
            let p = m.malloc(64);
            if p.is_null() {
                break;
            }
            assert!(!live_set.contains(&(p as usize)), "live block re-issued after recovery");
        }
    }

    #[test]
    fn concurrent_stress() {
        let m = Arc::new(heap());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = m.clone();
                s.spawn(move || {
                    let mut held = Vec::new();
                    for i in 0..3000 {
                        let p = m.malloc(8 + (i % 32) * 8);
                        assert!(!p.is_null());
                        unsafe { std::ptr::write(p as *mut u64, p as u64) };
                        held.push(p);
                        if held.len() > 64 {
                            let q = held.swap_remove(i % held.len());
                            assert_eq!(unsafe { std::ptr::read(q as *const u64) }, q as u64);
                            m.free(q);
                        }
                    }
                    for p in held {
                        m.free(p);
                    }
                });
            }
        });
    }
}
