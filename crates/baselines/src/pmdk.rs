//! PMDK-libpmemobj-like allocator simulation (Rudoff & Slusarz).
//!
//! PMDK exposes a `malloc_to`/`free_from` interface: an allocation is
//! atomically bound to a destination pointer *inside the pool* through a
//! persisted redo log, so a crash can never leak the block — at the price
//! of several fenced flushes and lock acquisition on **every** operation.
//! This simulation reproduces that cost profile:
//!
//! 1. write + persist a redo-log record (intent),
//! 2. pop the class's **persistent** free list (head word persisted),
//! 3. persist the per-block allocation byte,
//! 4. write + persist the destination pointer,
//! 5. retire + persist the log.
//!
//! That is 4–5 fenced flushes per operation versus Ralloc's ~0, matching
//! the shape of the paper's Figure 5 (PMDK slowest, flat scaling). A
//! per-class mutex serializes the metadata updates, as libpmemobj's
//! arena locks do under contention.
//!
//! The plain `malloc`/`free` trait methods bind to a per-class scratch
//! destination inside the pool — exactly the "local dummy variable"
//! shim the paper used to run malloc/free benchmarks against PMDK (§6.1).

use std::sync::atomic::Ordering;
use std::sync::Arc;

use parking_lot::Mutex;

use nvm::{CrashInjector, FlushModel, Mode, PmemPool};
use ralloc::PersistentAllocator;

use crate::chunked::{
    self, alloc_state, carve, chunk_class, class_block_size, class_max_count, locate,
    set_alloc_state, set_chunk_class, size_class_of, used_chunks, ChunkGeo, CHUNK_SIZE,
    CUSTOM_OFF, NUM_CLASSES,
};

// Persistent layout inside the header's custom area:
//   CUSTOM_OFF + 16*class      : free-list head (block pool-offset + 1)
//   CUSTOM_OFF + 16*class + 8  : scratch destination word for this class
//   LOG_OFF .. LOG_OFF+40      : redo log {op, class, block_off+1, dest_off, size}
const HEADS_OFF: usize = CUSTOM_OFF;
const LOG_OFF: usize = CUSTOM_OFF + 16 * NUM_CLASSES;
const LOG_LEN: usize = 40;

const OP_NONE: u64 = 0;
const OP_ALLOC: u64 = 1;
const OP_FREE: u64 = 2;

struct PmdkInner {
    pool: PmemPool,
    geo: ChunkGeo,
    class_locks: Vec<Mutex<()>>,
    large_lock: Mutex<Vec<(usize, usize)>>,
}

/// The PMDK-like baseline allocator.
pub struct PmdkSim {
    inner: Arc<PmdkInner>,
}

impl PmdkSim {
    /// Create a heap with at least `capacity` bytes of chunk area.
    pub fn create(capacity: usize, mode: Mode, flush_model: FlushModel) -> PmdkSim {
        Self::create_with(capacity, mode, flush_model, None)
    }

    /// [`PmdkSim::create`] with a crash injector for recovery tests.
    pub fn create_with(
        capacity: usize,
        mode: Mode,
        flush_model: FlushModel,
        injector: Option<Arc<CrashInjector>>,
    ) -> PmdkSim {
        let pool = PmemPool::with_options(
            ChunkGeo::pool_len_for_capacity(capacity),
            mode,
            flush_model,
            injector,
        );
        let geo = ChunkGeo::new(pool.len());
        PmdkSim {
            inner: Arc::new(PmdkInner {
                pool,
                geo,
                class_locks: (0..NUM_CLASSES).map(|_| Mutex::new(())).collect(),
                large_lock: Mutex::new(Vec::new()),
            }),
        }
    }

    /// The underlying pool.
    pub fn pool(&self) -> &PmemPool {
        &self.inner.pool
    }

    fn head_off(class: u32) -> usize {
        HEADS_OFF + 16 * class as usize
    }

    fn scratch_off(class: u32) -> usize {
        HEADS_OFF + 16 * class as usize + 8
    }

    fn word(&self, off: usize) -> u64 {
        // SAFETY: header words, 8-aligned.
        unsafe { self.inner.pool.atomic_u64(off) }.load(Ordering::Acquire)
    }

    fn set_word(&self, off: usize, v: u64) {
        // SAFETY: header words, 8-aligned.
        unsafe { self.inner.pool.atomic_u64(off) }.store(v, Ordering::Release);
        self.inner.pool.persist(off, 8);
    }

    fn write_log(&self, op: u64, class: u64, block: u64, dest: u64, size: u64) {
        let pool = &self.inner.pool;
        // SAFETY: log words in the header, 8-aligned.
        unsafe {
            pool.atomic_u64(LOG_OFF).store(op, Ordering::Relaxed);
            pool.atomic_u64(LOG_OFF + 8).store(class, Ordering::Relaxed);
            pool.atomic_u64(LOG_OFF + 16).store(block, Ordering::Relaxed);
            pool.atomic_u64(LOG_OFF + 24).store(dest, Ordering::Relaxed);
            pool.atomic_u64(LOG_OFF + 32).store(size, Ordering::Release);
        }
        pool.persist(LOG_OFF, LOG_LEN);
    }

    /// Pop the persistent free list of `class`; refills by carving a
    /// chunk when empty. Caller holds the class lock.
    fn pop_free(&self, class: u32) -> Option<usize> {
        let inner = &*self.inner;
        let head_off = Self::head_off(class);
        loop {
            let head = self.word(head_off);
            if let Some(block_off) = head.checked_sub(1) {
                // SAFETY: block first word, 8-aligned (class sizes are).
                let next = unsafe { inner.pool.atomic_u64(block_off as usize) }
                    .load(Ordering::Acquire);
                self.set_word(head_off, next);
                return Some(block_off as usize);
            }
            // Refill: carve a chunk, build its persistent chain.
            let i = carve(&inner.pool, &inner.geo, 1)?;
            let bsize = class_block_size(class) as usize;
            let mc = class_max_count(class) as usize;
            set_chunk_class(&inner.pool, &inner.geo, i, class, bsize as u64);
            let chunk_off = inner.geo.chunk(i);
            for blk in 0..mc {
                let boff = chunk_off + blk * bsize;
                let next = if blk + 1 < mc { (chunk_off + (blk + 1) * bsize) as u64 + 1 } else { 0 };
                // SAFETY: block first words.
                unsafe { inner.pool.atomic_u64(boff) }.store(next, Ordering::Relaxed);
            }
            inner.pool.persist(chunk_off, mc * bsize);
            self.set_word(head_off, chunk_off as u64 + 1);
        }
    }

    /// The PMDK-style primitive: allocate and atomically bind the block's
    /// pool offset (+1) to the destination word at pool offset `dest_off`.
    /// Returns the block address, or null on exhaustion.
    pub fn malloc_to(&self, size: usize, dest_off: usize) -> *mut u8 {
        let class = match size_class_of(size) {
            Some(c) => c,
            None => return self.malloc_large_to(size, dest_off),
        };
        let inner = &*self.inner;
        let _g = inner.class_locks[class as usize].lock();
        // 1. intent
        self.write_log(OP_ALLOC, class as u64, 0, dest_off as u64, size as u64);
        // 2. pop persistent free list
        let Some(block_off) = self.pop_free(class) else {
            self.write_log(OP_NONE, 0, 0, 0, 0);
            return std::ptr::null_mut();
        };
        // Record the popped block in the log so recovery can roll back.
        // SAFETY: log word.
        unsafe { inner.pool.atomic_u64(LOG_OFF + 16) }
            .store(block_off as u64 + 1, Ordering::Release);
        inner.pool.persist(LOG_OFF + 16, 8);
        // 3. allocation byte
        let chunk = inner.geo.chunk_index_of(block_off).unwrap();
        let bsize = class_block_size(class) as usize;
        let blk = ((block_off - inner.geo.chunk(chunk)) / bsize) as u32;
        set_alloc_state(&inner.pool, &inner.geo, chunk, blk, true);
        // 4. publish to destination
        self.set_word(dest_off, block_off as u64 + 1);
        // 5. retire log
        self.write_log(OP_NONE, 0, 0, 0, 0);
        (inner.pool.base() as usize + block_off) as *mut u8
    }

    /// The matching primitive: atomically unbind the destination word and
    /// return its block to the free list.
    pub fn free_from(&self, dest_off: usize) {
        let inner = &*self.inner;
        let bound = self.word(dest_off);
        let Some(block_off) = bound.checked_sub(1) else {
            return;
        };
        let (_, _, _, class) = locate(
            &inner.pool,
            &inner.geo,
            (inner.pool.base() as usize + block_off as usize) as *mut u8,
        );
        if class == 0 {
            self.free_from_locked(dest_off);
            return;
        }
        let _g = inner.class_locks[class as usize].lock();
        self.free_from_locked(dest_off);
    }

    /// Body of `free_from`; the caller holds the class lock (or the block
    /// is large, whose path synchronizes on `large_lock` internally).
    fn free_from_locked(&self, dest_off: usize) {
        let inner = &*self.inner;
        let bound = self.word(dest_off);
        let Some(block_off) = bound.checked_sub(1) else {
            return;
        };
        let (chunk, blk, bsize, class) = locate(
            &inner.pool,
            &inner.geo,
            (inner.pool.base() as usize + block_off as usize) as *mut u8,
        );
        if class == 0 {
            let span = (bsize as usize).div_ceil(CHUNK_SIZE);
            set_alloc_state(&inner.pool, &inner.geo, chunk, 0, false);
            self.set_word(dest_off, 0);
            inner.large_lock.lock().push((chunk, span));
            return;
        }
        self.write_log(OP_FREE, class as u64, block_off + 1, dest_off as u64, bsize);
        set_alloc_state(&inner.pool, &inner.geo, chunk, blk, false);
        let head_off = Self::head_off(class);
        let head = self.word(head_off);
        // SAFETY: block first word.
        unsafe { inner.pool.atomic_u64(block_off as usize) }.store(head, Ordering::Relaxed);
        inner.pool.persist(block_off as usize, 8);
        self.set_word(head_off, block_off + 1);
        self.set_word(dest_off, 0);
        self.write_log(OP_NONE, 0, 0, 0, 0);
    }

    fn malloc_large_to(&self, size: usize, dest_off: usize) -> *mut u8 {
        let inner = &*self.inner;
        let span = size.div_ceil(CHUNK_SIZE);
        let mut free = inner.large_lock.lock();
        let pos = free.iter().position(|&(_, n)| n >= span);
        let head = match pos {
            Some(p) => {
                let (start, n) = free[p];
                if n == span {
                    free.swap_remove(p);
                } else {
                    free[p] = (start + span, n - span);
                }
                start
            }
            None => match carve(&inner.pool, &inner.geo, span) {
                Some(i) => i,
                None => return std::ptr::null_mut(),
            },
        };
        drop(free);
        set_chunk_class(&inner.pool, &inner.geo, head, 0, size as u64);
        set_alloc_state(&inner.pool, &inner.geo, head, 0, true);
        let off = inner.geo.chunk(head);
        self.set_word(dest_off, off as u64 + 1);
        (inner.pool.base() as usize + off) as *mut u8
    }

    /// Post-crash recovery: complete or roll back the in-flight logged
    /// operation so no block is leaked or double-allocated, then trust
    /// the persisted allocation bytes (free lists are rebuilt from them).
    pub fn recover(&self) {
        let inner = &*self.inner;
        let op = self.word(LOG_OFF);
        if op == OP_ALLOC {
            // Roll back a half-applied allocation: if the destination was
            // never published, the block (if popped) must return to the
            // free state.
            let block = self.word(LOG_OFF + 16);
            let dest = self.word(LOG_OFF + 24) as usize;
            if let Some(block_off) = block.checked_sub(1) {
                if self.word(dest) != block {
                    if let Some(chunk) = inner.geo.chunk_index_of(block_off as usize) {
                        let (_, bsize) = chunk_class(&inner.pool, &inner.geo, chunk);
                        if bsize > 0 {
                            let blk =
                                ((block_off as usize - inner.geo.chunk(chunk)) / bsize as usize) as u32;
                            set_alloc_state(&inner.pool, &inner.geo, chunk, blk, false);
                        }
                    }
                }
            }
        }
        // OP_FREE half-applied: the allocation byte decides (cleared =>
        // free). Either way the rebuild below restores consistency.
        self.write_log(OP_NONE, 0, 0, 0, 0);

        // Rebuild persistent free lists from the allocation bytes.
        for class in 1..NUM_CLASSES as u32 {
            self.set_word(Self::head_off(class), 0);
        }
        inner.large_lock.lock().clear();
        let used = used_chunks(&inner.pool);
        let mut i = 0usize;
        while i < used {
            let (class, bsize) = chunk_class(&inner.pool, &inner.geo, i);
            if class == 0 && bsize > 0 {
                let span = (bsize as usize).div_ceil(CHUNK_SIZE).min(used - i);
                if !alloc_state(&inner.pool, &inner.geo, i, 0) {
                    inner.large_lock.lock().push((i, span));
                }
                i += span;
                continue;
            }
            if chunked::is_small_class(class) && bsize == class_block_size(class) as u64 {
                let mc = class_max_count(class);
                let head_off = Self::head_off(class);
                for blk in 0..mc {
                    if !alloc_state(&inner.pool, &inner.geo, i, blk) {
                        let boff = inner.geo.chunk(i) + blk as usize * bsize as usize;
                        let head = self.word(head_off);
                        // SAFETY: block first word.
                        unsafe { inner.pool.atomic_u64(boff) }.store(head, Ordering::Relaxed);
                        inner.pool.persist(boff, 8);
                        self.set_word(head_off, boff as u64 + 1);
                    }
                }
            }
            i += 1;
        }
    }
}

impl PersistentAllocator for PmdkSim {
    fn malloc(&self, size: usize) -> *mut u8 {
        // Bind to the class scratch slot — the paper's "local dummy
        // variable" integration shim (§6.1).
        let class = size_class_of(size).unwrap_or(0);
        self.malloc_to(size, Self::scratch_off(class))
    }

    fn free(&self, ptr: *mut u8) {
        assert!(!ptr.is_null(), "free(null)");
        let inner = &*self.inner;
        let (_, _, _, class) = locate(&inner.pool, &inner.geo, ptr);
        // Rebind the scratch slot to this block, then free through it.
        // The rebind must happen under the class lock so concurrent frees
        // of the same class cannot clobber each other's scratch binding.
        let dest = Self::scratch_off(class);
        let block_off = ptr as usize - inner.pool.base() as usize;
        if class == 0 {
            self.set_word(dest, block_off as u64 + 1);
            self.free_from_locked(dest);
        } else {
            let _g = inner.class_locks[class as usize].lock();
            self.set_word(dest, block_off as u64 + 1);
            self.free_from_locked(dest);
        }
    }

    fn name(&self) -> &'static str {
        "pmdk"
    }

    fn persist(&self, ptr: *const u8, len: usize) {
        let off = ptr as usize - self.inner.pool.base() as usize;
        self.inner.pool.persist(off, len);
    }
}

impl std::fmt::Debug for PmdkSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PmdkSim")
            .field("used_chunks", &used_chunks(&self.inner.pool))
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn heap() -> PmdkSim {
        PmdkSim::create(16 << 20, Mode::Direct, FlushModel::free())
    }

    #[test]
    fn alloc_free_roundtrip() {
        let p = heap();
        let a = p.malloc(64);
        assert!(!a.is_null());
        unsafe { std::ptr::write_bytes(a, 0x5A, 64) };
        p.free(a);
        let b = p.malloc(64);
        assert_eq!(a, b, "LIFO free list should reuse immediately");
    }

    #[test]
    fn blocks_distinct() {
        let p = heap();
        let mut seen = HashSet::new();
        for _ in 0..3000 {
            let a = p.malloc(128);
            assert!(!a.is_null());
            assert!(seen.insert(a as usize));
        }
    }

    #[test]
    fn malloc_to_binds_destination() {
        let p = heap();
        let dest = LOG_OFF + LOG_LEN + 8; // spare header word past the log
        let a = p.malloc_to(100, dest);
        assert!(!a.is_null());
        let bound = p.word(dest);
        assert_eq!(bound as usize - 1 + p.pool().base() as usize, a as usize);
        p.free_from(dest);
        assert_eq!(p.word(dest), 0);
    }

    #[test]
    fn ops_cost_several_persists() {
        let p = heap();
        let warm = p.malloc(64); // absorb carving
        let before = p.pool().stats().snapshot();
        let a = p.malloc(64);
        let d = p.pool().stats().snapshot().since(&before);
        assert!(d.fences >= 4, "PMDK-style alloc must persist repeatedly, saw {}", d.fences);
        p.free(a);
        p.free(warm);
    }

    #[test]
    fn large_roundtrip() {
        let p = heap();
        let a = p.malloc(300_000);
        assert!(!a.is_null());
        p.free(a);
        let b = p.malloc(300_000);
        assert_eq!(a, b);
    }

    #[test]
    fn crash_mid_alloc_never_double_allocates() {
        use nvm::{CrashInjector, CrashPoint};
        // Sweep crash points through a malloc; after recovery the heap
        // must never hand out a block that a pre-crash survivor owns.
        for budget in 0..12 {
            let inj = CrashInjector::new();
            let p = PmdkSim::create_with(
                4 << 20,
                Mode::Tracked,
                FlushModel::free(),
                Some(inj.clone()),
            );
            let survivors: Vec<usize> = (0..50).map(|_| p.malloc(64) as usize).collect();
            inj.arm(budget);
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| p.malloc(64)));
            inj.disarm();
            let crashed = r.is_err();
            if crashed {
                assert!(CrashPoint::is(&*r.unwrap_err()));
                p.pool().crash();
                p.recover();
            }
            let survivor_set: HashSet<usize> = survivors.into_iter().collect();
            let mut handed = HashSet::new();
            for _ in 0..500 {
                let q = p.malloc(64);
                if q.is_null() {
                    break;
                }
                assert!(
                    !survivor_set.contains(&(q as usize)),
                    "budget {budget}: survivor re-allocated after crash"
                );
                assert!(handed.insert(q as usize), "budget {budget}: double allocation");
            }
        }
    }

    #[test]
    fn concurrent_stress() {
        let p = Arc::new(heap());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let p = p.clone();
                s.spawn(move || {
                    let mut held = Vec::new();
                    for i in 0..1000 {
                        let a = p.malloc(8 + (i % 16) * 24);
                        assert!(!a.is_null());
                        unsafe { std::ptr::write(a as *mut u64, a as u64) };
                        held.push(a);
                        if held.len() > 32 {
                            let q = held.swap_remove(i % held.len());
                            assert_eq!(unsafe { std::ptr::read(q as *const u64) }, q as u64);
                            p.free(q);
                        }
                    }
                    for a in held {
                        p.free(a);
                    }
                });
            }
        });
    }
}
