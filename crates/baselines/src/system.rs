//! The transient system allocator, standing in for JEMalloc as the
//! well-tuned non-persistent reference point of the paper's Figure 5.
//!
//! A small size header precedes each block so `free` can reconstruct the
//! layout (the C `malloc` interface does this bookkeeping internally).

use std::alloc::{alloc, dealloc, Layout};

use ralloc::PersistentAllocator;

const HEADER: usize = 16; // keeps payload 16-aligned

/// Transient allocator baseline (JEMalloc's role in the paper).
#[derive(Debug, Default)]
pub struct SystemAlloc;

impl SystemAlloc {
    /// A new handle (stateless).
    pub fn new() -> SystemAlloc {
        SystemAlloc
    }
}

impl PersistentAllocator for SystemAlloc {
    fn malloc(&self, size: usize) -> *mut u8 {
        let total = size.max(1) + HEADER;
        let layout = Layout::from_size_align(total, 16).expect("layout");
        // SAFETY: non-zero size.
        let raw = unsafe { alloc(layout) };
        if raw.is_null() {
            return std::ptr::null_mut();
        }
        // SAFETY: header fits before the payload.
        unsafe {
            std::ptr::write(raw as *mut usize, total);
            raw.add(HEADER)
        }
    }

    // The trait mirrors C `free`: the pointer's provenance is the caller's
    // contract (as for every allocator in this workspace).
    #[allow(clippy::not_unsafe_ptr_arg_deref)]
    fn free(&self, ptr: *mut u8) {
        assert!(!ptr.is_null(), "free(null)");
        // SAFETY: `ptr` came from `malloc` above, so the header precedes it.
        unsafe {
            let raw = ptr.sub(HEADER);
            let total = std::ptr::read(raw as *const usize);
            dealloc(raw, Layout::from_size_align(total, 16).expect("layout"));
        }
    }

    fn name(&self) -> &'static str {
        "system"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let a = SystemAlloc::new();
        let p = a.malloc(100);
        assert!(!p.is_null());
        assert_eq!(p as usize % 16, 0);
        unsafe { std::ptr::write_bytes(p, 0x77, 100) };
        a.free(p);
    }

    #[test]
    fn zero_size_ok() {
        let a = SystemAlloc::new();
        let p = a.malloc(0);
        assert!(!p.is_null());
        a.free(p);
    }

    #[test]
    fn many_sizes() {
        let a = SystemAlloc::new();
        let ptrs: Vec<_> = (0..1000).map(|i| a.malloc(1 + i % 5000)).collect();
        for p in ptrs {
            assert!(!p.is_null());
            a.free(p);
        }
    }
}
