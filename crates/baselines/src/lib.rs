//! # baselines — comparison allocators for the evaluation (paper §6.1)
//!
//! The paper compares Ralloc against four allocators. Two of them are
//! reproduced faithfully by construction elsewhere:
//!
//! * **LRMalloc** = `Ralloc` in transient mode (`RallocConfig::transient()`),
//!   exactly the paper's "Ralloc without flush and fence".
//! * **JEMalloc** → [`SystemAlloc`], the process allocator, standing in as
//!   the well-tuned transient reference point.
//!
//! The other two are closed or C-bound systems that we re-implement as
//! *cost-faithful simulations* on the same [`nvm::PmemPool`] substrate:
//!
//! * [`MakaluSim`] models HPE's Makalu (Bhandari et al., OOPSLA'16): a
//!   lock-based persistent allocator derived from the Boehm GC heap.
//!   Its defining costs, which the paper's §6.2 attributes the ~10× gap
//!   to, are (a) an eagerly persisted per-block allocation header on
//!   **every** alloc/free (flush + fence), and (b) a central,
//!   mutex-protected pool per size class refilled/drained by thread-local
//!   buffers that return only **half** their contents when over-full
//!   (§6.3 credits this policy for Makalu's memcached locality edge).
//! * [`PmdkSim`] models Intel PMDK's `libpmemobj` allocator: a
//!   `malloc_to`/`free_from` interface where every operation writes a
//!   redo-log entry, persists it, applies the allocation (persistent free
//!   list + per-block header + destination pointer, each persisted), and
//!   retires the log — several fenced flushes plus a per-class lock on
//!   *every* operation.
//!
//! Both simulations allocate from the same 64 KiB-chunk geometry as
//! Ralloc so that fragmentation behaviour is comparable, and both are
//! exercised through the shared [`ralloc::PersistentAllocator`] trait.

mod chunked;
mod makalu;
mod pmdk;
mod system;
mod tls;

pub use chunked::CHUNK_SIZE;
pub use makalu::MakaluSim;
pub use pmdk::PmdkSim;
pub use system::SystemAlloc;
