//! Shared chunked-pool geometry for the Makalu and PMDK simulations.
//!
//! Both baselines manage a [`nvm::PmemPool`] split into a header, a
//! metadata area (one record + one allocation byte per block, per chunk),
//! and a chunk area of 64 KiB chunks. The allocation byte per block is
//! the *eagerly persisted* state that distinguishes these designs from
//! Ralloc: every alloc/free writes it back immediately, which is where
//! their persistence overhead comes from.

use nvm::PmemPool;
use std::sync::atomic::Ordering;

/// Chunk size; matches Ralloc's superblock so fragmentation behaviour is
/// comparable.
pub const CHUNK_SIZE: usize = 64 * 1024;

/// Per-chunk metadata stride: 64 B header {class, block_size} + one
/// allocation byte per possible block (64 KiB / 8 B = 8192).
pub const CHUNK_META: usize = 64 + 8192;

/// Pool header size.
pub const HDR: usize = 4096;

/// Offset of the used-chunks watermark.
pub const USED_OFF: usize = 0;
/// First byte available for allocator-specific persistent state
/// (e.g. PMDK's redo log and free-list heads).
pub const CUSTOM_OFF: usize = 64;

/// Size classes shared with Ralloc (reuse keeps comparisons apples-to-
/// apples); index 0 is large.
pub use ralloc::size_class::{
    class_block_size, class_max_count, is_small_class, size_class_of, NUM_CLASSES,
};

/// Chunk-area geometry derived from a pool.
#[derive(Debug, Clone, Copy)]
pub struct ChunkGeo {
    /// Total chunks available.
    pub max_chunks: usize,
    /// Offset of chunk-metadata record 0.
    pub meta_off: usize,
    /// Offset of chunk 0.
    pub chunks_off: usize,
}

impl ChunkGeo {
    /// Compute geometry for a pool of `pool_len` bytes.
    pub fn new(pool_len: usize) -> ChunkGeo {
        let mut max_chunks = (pool_len - HDR) / (CHUNK_META + CHUNK_SIZE);
        loop {
            let chunks_off = (HDR + max_chunks * CHUNK_META).next_multiple_of(CHUNK_SIZE);
            if chunks_off + max_chunks * CHUNK_SIZE <= pool_len {
                return ChunkGeo { max_chunks, meta_off: HDR, chunks_off };
            }
            max_chunks -= 1;
        }
    }

    /// Pool length that provides at least `capacity` bytes of chunks.
    pub fn pool_len_for_capacity(capacity: usize) -> usize {
        let chunks = capacity.div_ceil(CHUNK_SIZE).max(2);
        let chunks_off = (HDR + chunks * CHUNK_META).next_multiple_of(CHUNK_SIZE);
        chunks_off + chunks * CHUNK_SIZE
    }

    /// Offset of chunk `i`'s metadata record.
    #[inline]
    pub fn meta(&self, i: usize) -> usize {
        self.meta_off + i * CHUNK_META
    }

    /// Offset of chunk `i`'s allocation byte for block `blk`.
    #[inline]
    pub fn alloc_byte(&self, i: usize, blk: u32) -> usize {
        self.meta(i) + 64 + blk as usize
    }

    /// Offset of chunk `i`.
    #[inline]
    pub fn chunk(&self, i: usize) -> usize {
        self.chunks_off + i * CHUNK_SIZE
    }

    /// Chunk index containing pool offset `off`, if in the chunk area.
    #[inline]
    pub fn chunk_index_of(&self, off: usize) -> Option<usize> {
        if off < self.chunks_off || off >= self.chunks_off + self.max_chunks * CHUNK_SIZE {
            return None;
        }
        Some((off - self.chunks_off) / CHUNK_SIZE)
    }
}

/// Carve `n` fresh chunks by bumping the persistent watermark.
pub fn carve(pool: &PmemPool, geo: &ChunkGeo, n: usize) -> Option<usize> {
    // SAFETY: header word, 8-aligned.
    let used = unsafe { pool.atomic_u64(USED_OFF) };
    loop {
        let u = used.load(Ordering::Acquire);
        if u as usize + n > geo.max_chunks {
            return None;
        }
        if used
            .compare_exchange(u, u + n as u64, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            pool.persist(USED_OFF, 8);
            return Some(u as usize);
        }
    }
}

/// Read the watermark.
pub fn used_chunks(pool: &PmemPool) -> usize {
    // SAFETY: header word.
    unsafe { pool.atomic_u64(USED_OFF) }.load(Ordering::Acquire) as usize
}

/// Set a chunk's class/block-size header and persist it.
pub fn set_chunk_class(pool: &PmemPool, geo: &ChunkGeo, i: usize, class: u32, bsize: u64) {
    let off = geo.meta(i);
    // SAFETY: metadata words, 8-aligned.
    unsafe {
        pool.atomic_u64(off).store(class as u64, Ordering::Relaxed);
        pool.atomic_u64(off + 8).store(bsize, Ordering::Release);
    }
    pool.persist(off, 16);
}

/// Read a chunk's (class, block size).
pub fn chunk_class(pool: &PmemPool, geo: &ChunkGeo, i: usize) -> (u32, u64) {
    let off = geo.meta(i);
    // SAFETY: metadata words.
    unsafe {
        (
            pool.atomic_u64(off).load(Ordering::Relaxed) as u32,
            pool.atomic_u64(off + 8).load(Ordering::Relaxed),
        )
    }
}

/// The eagerly persisted per-block allocation state write that defines
/// these baselines' cost profile: one byte store + flush + fence.
pub fn set_alloc_state(pool: &PmemPool, geo: &ChunkGeo, chunk: usize, blk: u32, allocated: bool) {
    let off = geo.alloc_byte(chunk, blk);
    // SAFETY: in-bounds byte in the metadata area; racing writers target
    // distinct blocks (each block's state is owned by its alloc/freer).
    unsafe { std::ptr::write_volatile(pool.base().add(off), allocated as u8) };
    pool.persist(off, 1);
}

/// Read a block's persisted allocation state.
pub fn alloc_state(pool: &PmemPool, geo: &ChunkGeo, chunk: usize, blk: u32) -> bool {
    // SAFETY: in-bounds.
    unsafe { std::ptr::read_volatile(pool.base().add(geo.alloc_byte(chunk, blk))) != 0 }
}

/// Helper used by both baselines to locate a freed pointer.
pub fn locate(pool: &PmemPool, geo: &ChunkGeo, ptr: *mut u8) -> (usize, u32, u64, u32) {
    let off = (ptr as usize)
        .checked_sub(pool.base() as usize)
        .expect("free: pointer below pool");
    let chunk = geo.chunk_index_of(off).expect("free: pointer outside chunk area");
    let (class, bsize) = chunk_class(pool, geo, chunk);
    let blk = ((off - geo.chunk(chunk)) / bsize.max(1) as usize) as u32;
    (chunk, blk, bsize, class)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm::Mode;

    #[test]
    fn geometry_fits_pool() {
        let len = ChunkGeo::pool_len_for_capacity(8 << 20);
        let g = ChunkGeo::new(len);
        assert!(g.max_chunks >= 128);
        assert!(g.chunk(g.max_chunks - 1) + CHUNK_SIZE <= len);
        assert!(g.meta(g.max_chunks - 1) + CHUNK_META <= g.chunks_off);
    }

    #[test]
    fn carve_respects_capacity() {
        let pool = PmemPool::new(ChunkGeo::pool_len_for_capacity(256 * 1024), Mode::Direct);
        let g = ChunkGeo::new(pool.len());
        let mut got = 0;
        while carve(&pool, &g, 1).is_some() {
            got += 1;
        }
        assert_eq!(got, g.max_chunks);
        assert_eq!(used_chunks(&pool), g.max_chunks);
    }

    #[test]
    fn alloc_state_roundtrip_and_persists() {
        let pool = PmemPool::new(ChunkGeo::pool_len_for_capacity(1 << 20), Mode::Tracked);
        let g = ChunkGeo::new(pool.len());
        set_alloc_state(&pool, &g, 0, 7, true);
        assert!(alloc_state(&pool, &g, 0, 7));
        pool.crash();
        assert!(alloc_state(&pool, &g, 0, 7), "allocation byte must survive crash");
    }

    #[test]
    fn chunk_class_persists() {
        let pool = PmemPool::new(ChunkGeo::pool_len_for_capacity(1 << 20), Mode::Tracked);
        let g = ChunkGeo::new(pool.len());
        set_chunk_class(&pool, &g, 3, 8, 64);
        pool.crash();
        assert_eq!(chunk_class(&pool, &g, 3), (8, 64));
    }
}
