//! Thread-local buffer plumbing shared by the baseline allocators.
//!
//! Mirrors the core crate's cache registry: per-thread, per-allocator
//! vectors of cached block addresses, drained back to the owner when the
//! thread exits so repeatedly spawned threads (the Larson workload) do
//! not strand memory.

use std::cell::RefCell;
use std::sync::{Arc, Weak};

/// Implemented by allocators that own thread-local buffers.
pub(crate) trait CacheOwner: Send + Sync + 'static {
    /// Return every cached block to the central structures.
    fn drain(&self, caches: &mut [Vec<usize>]);
    /// Unique id of this allocator instance.
    fn cache_id(&self) -> u64;
}

struct Entry {
    id: u64,
    owner: Weak<dyn CacheOwner>,
    caches: Vec<Vec<usize>>,
}

struct Store {
    entries: Vec<Entry>,
}

impl Drop for Store {
    fn drop(&mut self) {
        for e in &mut self.entries {
            if let Some(owner) = e.owner.upgrade() {
                owner.drain(&mut e.caches);
            }
        }
    }
}

thread_local! {
    static TLS: RefCell<Store> = const { RefCell::new(Store { entries: Vec::new() }) };
}

/// Run `f` on the calling thread's cache vector for `owner`.
pub(crate) fn with_caches<R>(
    owner: &Arc<impl CacheOwner + Sized>,
    nclasses: usize,
    f: impl FnOnce(&mut [Vec<usize>]) -> R,
) -> R {
    let id = owner.cache_id();
    TLS.with(|tls| {
        let mut store = tls.borrow_mut();
        let pos = store.entries.iter().position(|e| e.id == id);
        let entry = match pos {
            Some(p) => &mut store.entries[p],
            None => {
                let owner_dyn: Arc<dyn CacheOwner> = owner.clone();
                store.entries.push(Entry {
                    id,
                    owner: Arc::downgrade(&owner_dyn),
                    caches: (0..nclasses).map(|_| Vec::new()).collect(),
                });
                store.entries.last_mut().unwrap()
            }
        };
        f(&mut entry.caches)
    })
}

/// Allocate a fresh allocator id.
pub(crate) fn next_id() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}
