//! Recovery-latency scaling: 1-worker vs N-worker offline recovery on a
//! multi-GB-class pool (paper Figure 6 territory, plus the §6.4 "future
//! work" parallelization this repo implements).
//!
//! The pool is populated with ≥ 10k carved superblocks: a root-reachable
//! layer of linked lists (real mark-phase work, precise filters) over a
//! large leaked bulk (real sweep-phase work — every unmarked block must
//! be re-chained, every descriptor re-anchored, every partial superblock
//! placed on its deterministic shard). Each worker count runs several
//! repetitions of `recover_parallel`; recovery is idempotent, so the
//! repetitions rebuild identical state and the minimum is a fair
//! latency figure.
//!
//! Emits `BENCH_recovery.json` at the workspace root. `host_cores` is
//! recorded because sweep parallelism is CPU-bound: on a single-core
//! host the N-worker points measure only the coordination overhead, and
//! the scaling is visible only with real cores. Set
//! `RECOVERY_SCALE_SBS` to change the superblock target (default
//! 10_500) and `RECOVERY_SCALE_REPS` the repetitions (default 3).

use std::path::PathBuf;

use ralloc::{Pptr, Ralloc, RallocConfig, ShrinkPolicy, Trace, Tracer};

#[repr(C)]
struct Node {
    value: u64,
    next: Pptr<Node>,
}

unsafe impl Trace for Node {
    fn trace(&self, t: &mut Tracer<'_>) {
        t.visit_pptr(&self.next);
    }
}

const ROOTS: usize = 32;
const NODES_PER_ROOT: usize = 2000;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn main() {
    let target_sbs = env_usize("RECOVERY_SCALE_SBS", 10_500);
    let reps = env_usize("RECOVERY_SCALE_REPS", 3).max(1);

    // The end-of-recovery shrink hook would release the (mostly free)
    // populated span on the first repetition, leaving later repetitions a
    // tiny heap to sweep — disable it so every recover call rebuilds the
    // same `target_sbs`-superblock state and the minimum is meaningful.
    let heap = Ralloc::create(
        (target_sbs + 64) * ralloc::SB_SIZE,
        RallocConfig { shrink_policy: ShrinkPolicy::Off, ..Default::default() },
    );

    // Populate from a worker thread that exits before recovery runs:
    // thread exit drains its cache bins, so the recover calls below see
    // the quiescent, cache-free heap the offline-recovery contract
    // requires (a live cache would alias the rebuilt free chains).
    std::thread::scope(|s| {
        let heap = &heap;
        s.spawn(move || {
            // Mark-phase work: ROOTS precisely-traced linked lists.
            for r in 0..ROOTS {
                let mut head: *mut Node = std::ptr::null_mut();
                for i in 0..NODES_PER_ROOT as u64 {
                    let p = heap.malloc(std::mem::size_of::<Node>()) as *mut Node;
                    assert!(!p.is_null());
                    // SAFETY: fresh block.
                    unsafe {
                        (*p).value = i;
                        (*p).next.set(head);
                    }
                    head = p;
                }
                heap.set_root::<Node>(r, head);
            }

            // Sweep-phase work: leak 4 KiB blocks (16 per superblock)
            // until the pool holds the target superblock count, freeing
            // every third one so the sweep rebuilds a mix of full,
            // partial, and empty superblocks.
            let mut i = 0u64;
            while heap.used_superblocks() < target_sbs {
                let p = heap.malloc(4096);
                assert!(!p.is_null(), "raise the pool capacity");
                if i.is_multiple_of(3) {
                    heap.free(p);
                }
                i += 1;
            }
        });
    });
    println!(
        "pool populated: {} superblocks, {} rooted nodes",
        heap.used_superblocks(),
        ROOTS * NODES_PER_ROOT
    );

    let mut entries = Vec::new();
    for &workers in &[1usize, 2, 4, 8] {
        let mut best_ms = f64::INFINITY;
        let mut reachable = 0u64;
        for _ in 0..reps {
            let stats = heap.recover_parallel(workers);
            assert_eq!(
                stats.reachable_blocks as usize,
                ROOTS * NODES_PER_ROOT,
                "recovery lost rooted nodes"
            );
            reachable = stats.reachable_blocks;
            best_ms = best_ms.min(stats.duration.as_secs_f64() * 1e3);
        }
        println!("recover x{workers}: {best_ms:.1} ms (best of {reps})");
        entries.push(format!(
            "    {{\"workers\": {workers}, \"ms\": {best_ms:.2}, \"reachable_blocks\": {reachable}}}"
        ));
    }
    // Every recover_parallel call above also observed its duration into
    // the heap registry's recovery_duration_ns histogram — dump the
    // all-runs distribution alongside the per-worker bests.
    let all_runs = heap.telemetry().histogram("recovery_duration_ns").snapshot();
    let json = format!(
        "{{\n  \"bench\": \"recovery_scale\",\n  \"unit\": \"ms wall-clock offline recovery (best of {reps})\",\n  \"meta\": {},\n  \"superblocks\": {},\n  \"recovery_latency_ns\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
        bench::meta_with(&[("reps", reps.to_string())]),
        heap.used_superblocks(),
        all_runs.to_json(),
        entries.join(",\n")
    );
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = root.join("BENCH_recovery.json");
    std::fs::write(&path, json).expect("write BENCH_recovery.json");
    println!("wrote {}", path.display());
}
