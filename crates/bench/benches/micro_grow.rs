//! Growth-path microbenchmark for the reserve/commit capacity model.
//!
//! A heap committed at a tiny initial capacity is driven through its full
//! reserved span by a leak-everything allocation sweep, measuring
//!
//! * **time per grow** — the latency of the mallocs that performed a
//!   frontier grow (commit + persisted frontier word), vs. the ordinary
//!   slow-path mallocs around them, and
//! * **alloc throughput while growing** — the same sweep against a
//!   fully-precommitted control heap of the same final size, so the cost
//!   of growth shows up as a throughput ratio (≈1.0 means growth is
//!   genuinely cold-path only).
//!
//! Two further datapoints ride along so the full bidirectional-frontier
//! protocol has contention-ready numbers for a multi-core host:
//!
//! * **grow storm** — N threads hammering a heap committed at a *single*
//!   superblock, so nearly every early slow path races the same frontier
//!   word (the ROADMAP "growth under real parallelism" point; on a 1-CPU
//!   host this measures CAS-interleaving only, `host_cores` says so);
//! * **shrink** — the latency of a quiescent-point shrink releasing the
//!   whole span back, and the superblocks it released.
//!
//! Emits `BENCH_grow.json` at the workspace root (`host_cores` tagged,
//! like the other bench artifacts). Env knobs: `MICRO_GROW_MAX_MB`
//! (default 256), `MICRO_GROW_INIT_MB` (default 4), `MICRO_GROW_REPS`
//! (default 3; the JSON keeps the best rep of each configuration),
//! `MICRO_GROW_STORM_THREADS` (default: all host cores, max 8).

use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::time::Instant;

use ralloc::{Ralloc, RallocConfig};
use telemetry::{HistSnapshot, Histogram};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

struct SweepResult {
    mops: f64,
    grows: u64,
    mean_grow_us: f64,
    max_grow_us: f64,
    /// Latency distribution over *every* timed malloc of the sweep (the
    /// grows are its extreme tail — a free byproduct of the per-malloc
    /// timing the grow attribution already needs).
    malloc_ns: HistSnapshot,
}

/// Allocate (and leak) 4 KiB blocks until the heap refuses, timing each
/// malloc and attributing the ones that moved the grow counter.
fn sweep(heap: &Ralloc) -> SweepResult {
    let slow = heap.slow_stats();
    let hist = Histogram::new();
    let mut grow_ns: Vec<u64> = Vec::new();
    let mut grows_before = slow.heap_grows.load(Ordering::Relaxed);
    let mut allocs = 0u64;
    let t0 = Instant::now();
    loop {
        let m0 = Instant::now();
        let p = heap.malloc(4096);
        let dt = m0.elapsed().as_nanos() as u64;
        if p.is_null() {
            break;
        }
        hist.observe(dt);
        allocs += 1;
        let grows_now = slow.heap_grows.load(Ordering::Relaxed);
        if grows_now != grows_before {
            grows_before = grows_now;
            grow_ns.push(dt);
        }
    }
    let total = t0.elapsed().as_secs_f64();
    let grows = grow_ns.len() as u64;
    let sum: u64 = grow_ns.iter().sum();
    SweepResult {
        mops: allocs as f64 / total / 1e6,
        grows,
        mean_grow_us: if grows == 0 { 0.0 } else { sum as f64 / grows as f64 / 1e3 },
        max_grow_us: grow_ns.iter().max().copied().unwrap_or(0) as f64 / 1e3,
        malloc_ns: hist.snapshot(),
    }
}

struct StormResult {
    threads: usize,
    mops: f64,
    grows: u64,
    wall_ms: f64,
}

/// N threads leak-allocating 4 KiB from a 1-superblock-committed heap
/// until the reserve is exhausted: the grow cold path under maximal
/// competition (every thread's early fills race the same frontier word).
fn grow_storm(threads: usize, max_mb: usize) -> StormResult {
    use ralloc::SB_SIZE;
    let heap = Ralloc::create(
        SB_SIZE, // a single superblock of initial commitment
        RallocConfig {
            initial_capacity: Some(SB_SIZE),
            max_capacity: Some(max_mb << 20),
            ..Default::default()
        },
    );
    let total = std::sync::atomic::AtomicU64::new(0);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..threads {
            let heap = heap.clone();
            let total = &total;
            s.spawn(move || {
                let mut n = 0u64;
                while !heap.malloc(4096).is_null() {
                    n += 1;
                }
                total.fetch_add(n, std::sync::atomic::Ordering::Relaxed);
            });
        }
    });
    let wall = t0.elapsed().as_secs_f64();
    StormResult {
        threads,
        mops: total.load(std::sync::atomic::Ordering::Relaxed) as f64 / wall / 1e6,
        grows: heap.slow_stats().heap_grows.load(Ordering::Relaxed),
        wall_ms: wall * 1e3,
    }
}

struct ShrinkResult {
    released_sb: usize,
    shrink_us: f64,
}

/// Fill the reserve with large blocks, free them all, and time the
/// quiescent-point shrink that hands the whole span back.
fn shrink_point(max_mb: usize) -> ShrinkResult {
    use ralloc::SB_SIZE;
    let heap = Ralloc::create(
        SB_SIZE,
        RallocConfig {
            initial_capacity: Some(SB_SIZE),
            max_capacity: Some(max_mb << 20),
            ..Default::default()
        },
    );
    let mut held = Vec::new();
    loop {
        let p = heap.malloc(SB_SIZE / 2 + 1);
        if p.is_null() {
            break;
        }
        held.push(p);
    }
    for p in held {
        heap.free(p);
    }
    let t0 = Instant::now();
    let released_sb = heap.shrink();
    ShrinkResult { released_sb, shrink_us: t0.elapsed().as_secs_f64() * 1e6 }
}

fn main() {
    let max_mb = env_usize("MICRO_GROW_MAX_MB", 256);
    let init_mb = env_usize("MICRO_GROW_INIT_MB", 4);
    let reps = env_usize("MICRO_GROW_REPS", 3).max(1);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut best_grow: Option<SweepResult> = None;
    let mut best_pre = 0.0f64;
    for _ in 0..reps {
        let growing = Ralloc::create(
            init_mb << 20,
            RallocConfig {
                initial_capacity: Some(init_mb << 20),
                max_capacity: Some(max_mb << 20),
                ..Default::default()
            },
        );
        let r = sweep(&growing);
        assert!(r.grows > 0, "sweep must actually grow the heap");
        if best_grow.as_ref().is_none_or(|b| r.mops > b.mops) {
            best_grow = Some(r);
        }
        // Control: same reserved span, fully committed upfront.
        let pre = Ralloc::create(max_mb << 20, RallocConfig::default());
        best_pre = best_pre.max(sweep(&pre).mops);
    }
    let g = best_grow.unwrap();
    let ratio = g.mops / best_pre;
    println!(
        "grow sweep {init_mb}M->{max_mb}M: {:.2} Mops/s over {} grows \
         (mean {:.1} us/grow, max {:.1} us); precommitted control {:.2} Mops/s (ratio {:.3})",
        g.mops, g.grows, g.mean_grow_us, g.max_grow_us, best_pre, ratio
    );

    // Grow-storm + shrink datapoints (best of reps each).
    let storm_threads = env_usize("MICRO_GROW_STORM_THREADS", cores.min(8)).max(1);
    let storm_mb = max_mb.min(64); // storms a smaller span: many tiny grows
    let mut storm: Option<StormResult> = None;
    let mut shrink: Option<ShrinkResult> = None;
    for _ in 0..reps {
        let st = grow_storm(storm_threads, storm_mb);
        if storm.as_ref().is_none_or(|b| st.mops > b.mops) {
            storm = Some(st);
        }
        let sh = shrink_point(storm_mb);
        assert!(sh.released_sb > 0, "shrink point must release the span");
        if shrink.as_ref().is_none_or(|b| sh.shrink_us < b.shrink_us) {
            shrink = Some(sh);
        }
    }
    let st = storm.unwrap();
    let sh = shrink.unwrap();
    println!(
        "grow storm x{}: {:.2} Mops/s, {} grows from 1 sb in {:.1} ms; \
         shrink: {} sbs released in {:.1} us",
        st.threads, st.mops, st.grows, st.wall_ms, sh.released_sb, sh.shrink_us
    );

    let json = format!(
        "{{\n  \"bench\": \"micro_grow\",\n  \"unit\": \"Mops/s 4 KiB leak-sweep mallocs\",\n  \
         \"meta\": {},\n  \"init_mb\": {init_mb},\n  \"max_mb\": {max_mb},\n  \
         \"results\": {{\n    \"grows\": {},\n    \"mean_grow_us\": {:.2},\n    \
         \"max_grow_us\": {:.2},\n    \"mops_growing\": {:.3},\n    \
         \"mops_precommitted\": {:.3},\n    \"growing_vs_precommitted\": {:.4},\n    \
         \"malloc_latency_ns\": {}\n  }},\n  \
         \"storm\": {{\n    \"threads\": {},\n    \"span_mb\": {storm_mb},\n    \
         \"mops\": {:.3},\n    \"grows\": {},\n    \"wall_ms\": {:.2}\n  }},\n  \
         \"shrink\": {{\n    \"released_sb\": {},\n    \"shrink_us\": {:.1}\n  }}\n}}\n",
        bench::meta(),
        g.grows,
        g.mean_grow_us,
        g.max_grow_us,
        g.mops,
        best_pre,
        ratio,
        g.malloc_ns.to_json(),
        st.threads,
        st.mops,
        st.grows,
        st.wall_ms,
        sh.released_sb,
        sh.shrink_us
    );
    // `CARGO_MANIFEST_DIR` is crates/bench; the JSON lives at the root.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = root.join("BENCH_grow.json");
    std::fs::write(&path, json).expect("write BENCH_grow.json");
    println!("wrote {}", path.display());
}
