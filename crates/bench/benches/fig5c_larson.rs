//! Figure 5c: Larson — bleeding (cross-thread frees, thread turnover).
//! The paper reports throughput (higher is better); criterion measures
//! the wall time of a fixed-op run, so *lower* here means *higher*
//! paper-throughput. Expected: Ralloc up to ~37x faster than Makalu.

use std::time::{Duration, Instant};

use bench::{bench_threads, BENCH_CAPACITY, BENCH_SCALE};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nvm::FlushModel;
use workloads::{larson, make_allocator, AllocKind};

fn fig5c(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5c_larson");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    for kind in AllocKind::all() {
        for &t in &bench_threads() {
            g.bench_with_input(BenchmarkId::new(kind.name(), t), &t, |b, &t| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        let a = make_allocator(kind, BENCH_CAPACITY, FlushModel::optane());
                        let start = Instant::now();
                        let _tput = larson::run(&a, larson::Params::scaled(t, BENCH_SCALE));
                        total += start.elapsed();
                    }
                    total
                });
            });
        }
    }
    g.finish();
}

criterion_group!(benches, fig5c);
criterion_main!(benches);
