//! Figure 5f: memcached/YCSB-A (50/50 read/update) over the library KV
//! store, plus the §6.3 workload-B variant. Criterion times a fixed-op
//! run (lower = higher paper-throughput). Expected: Ralloc above Makalu
//! and PMDK until cross-socket effects (not reproducible on one socket).

use std::time::{Duration, Instant};

use bench::{bench_threads, BENCH_CAPACITY, BENCH_SCALE};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nvm::FlushModel;
use workloads::{make_allocator, ycsb, AllocKind};

fn fig5f(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5f_memcached");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    type ParamFn = fn(usize, f64) -> ycsb::Params;
    let variants: [(&str, ParamFn); 2] = [
        ("ycsb_a", ycsb::Params::workload_a),
        ("ycsb_b", ycsb::Params::workload_b),
    ];
    for (wl, params) in variants {
        for kind in AllocKind::all() {
            for &t in &bench_threads() {
                let id = format!("{}/{}", wl, kind.name());
                g.bench_with_input(BenchmarkId::new(id, t), &t, |b, &t| {
                    b.iter_custom(|iters| {
                        let mut total = Duration::ZERO;
                        for _ in 0..iters {
                            let a = make_allocator(kind, BENCH_CAPACITY, FlushModel::optane());
                            let start = Instant::now();
                            let _ = ycsb::run(&a, params(t, BENCH_SCALE * 2.0));
                            total += start.elapsed();
                        }
                        total
                    });
                });
            }
        }
    }
    g.finish();
}

criterion_group!(benches, fig5f);
criterion_main!(benches);
