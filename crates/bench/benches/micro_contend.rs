//! Contention microbenchmark for the sharded partial lists.
//!
//! `micro_malloc` measures the fast path, which never touches a shared
//! list; this target measures the **slow paths** under thread contention,
//! where the per-class partial-list head CAS is the bottleneck the
//! sharding subsystem (`ralloc::shard`) exists to remove. The workload
//! maximizes slow-path frequency: each thread churns a private working
//! set of blocks from the largest small class (14336 B, 4 blocks per
//! superblock, cache-bin capacity 4), so roughly every fourth `malloc` is
//! a Fill popping a partial shard and every fourth `free` overflows the
//! bin into a Flush pushing superblocks back. The same binary runs the
//! sweep with different `partial_shards` configs — no env tricks, no
//! rebuilds — and reports pair throughput plus the observed steal rate.
//!
//! A second shape, `prodcon`, splits allocation from deallocation:
//! producer threads malloc and hand blocks over a bounded channel,
//! consumer threads free them — every free is **remote** (the freeing
//! thread never owns the block's superblock), the shape the remote-free
//! rings (`ralloc::remote`) exist for. It runs ring-on and ring-off on
//! otherwise identical heaps and reports anchor CASes per remote free
//! from the allocator's own counters; on a single-CPU host wall-clock
//! barely moves, so the CAS collapse is the measured effect and the
//! bench hard-asserts the ≥10× reduction.
//!
//! Emits `BENCH_contend.json` at the workspace root:
//! `{shape, threads, shards, mops, ...}` per point. Set
//! `MICRO_CONTEND_WINDOW_MS` to change the per-point window (default
//! 300 ms; noisy below ~150 ms). `host_cores` is recorded because
//! oversubscribed single-core hosts compress the shard effect: with one
//! runnable thread at a time there is no cache-line ping-pong, only CAS
//! interleaving, so multi-core hosts show a substantially larger spread.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

use ralloc::{Ralloc, RallocConfig};
use telemetry::Histogram;

/// Block size under test: the largest small class (4 blocks/superblock),
/// chosen to maximize the slow-path fraction of the op stream.
const BLOCK: usize = 14336;
/// Per-thread working-set slots. Large enough that flush batches span
/// many superblocks (each costing an anchor CAS + a partial-list push).
const SLOTS: usize = 64;

/// Run `threads` workers churning private working sets for `window`;
/// returns (malloc+free pairs)/s in Mops. When `lat` is given, thread 0
/// additionally times each of its ops into the histogram — one timing
/// thread out of N keeps the clock-read overhead off the aggregate
/// throughput while still sampling the contended latency distribution.
fn churn_throughput(
    heap: &Ralloc,
    threads: usize,
    window: Duration,
    lat: Option<&Histogram>,
) -> f64 {
    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(threads + 1));
    let total: u64 = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let heap = heap.clone();
                let stop = stop.clone();
                let barrier = barrier.clone();
                let lat = if t == 0 { lat.cloned() } else { None };
                s.spawn(move || {
                    let mut slots: Vec<usize> = vec![0; SLOTS];
                    let mut x = 0x9E37_79B9u64.wrapping_mul(t as u64 + 1) | 1;
                    let mut rand = move || {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        x
                    };
                    barrier.wait();
                    let mut pairs = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        for _ in 0..256 {
                            let i = rand() as usize % SLOTS;
                            let t0 = lat.as_ref().map(|_| std::time::Instant::now());
                            if slots[i] == 0 {
                                let p = heap.malloc(BLOCK);
                                assert!(!p.is_null(), "bench pool exhausted");
                                slots[i] = p as usize;
                            } else {
                                heap.free(slots[i] as *mut u8);
                                slots[i] = 0;
                                pairs += 1;
                            }
                            if let (Some(h), Some(t0)) = (&lat, t0) {
                                h.observe_since(t0);
                            }
                        }
                    }
                    for &p in slots.iter().filter(|&&p| p != 0) {
                        heap.free(p as *mut u8);
                    }
                    pairs
                })
            })
            .collect();
        barrier.wait();
        std::thread::sleep(window);
        stop.store(true, Ordering::Relaxed);
        handles.into_iter().map(|h| h.join().expect("contend worker")).sum()
    });
    total as f64 / window.as_secs_f64() / 1e6
}

/// Run `pairs` producer/consumer couples for `window`; returns freed
/// blocks/s in Mops. Producers allocate and push through a bounded
/// channel (backpressure keeps the in-flight set small); consumers free
/// blocks they never allocated, so the entire free stream is remote.
fn prodcon_throughput(heap: &Ralloc, pairs: usize, window: Duration) -> f64 {
    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(2 * pairs + 1));
    let total: u64 = std::thread::scope(|s| {
        let mut consumers = Vec::new();
        for _ in 0..pairs {
            let (tx, rx) = std::sync::mpsc::sync_channel::<usize>(256);
            let heap_p = heap.clone();
            let stop = stop.clone();
            let b = barrier.clone();
            s.spawn(move || {
                b.wait();
                'produce: while !stop.load(Ordering::Relaxed) {
                    for _ in 0..64 {
                        let p = heap_p.malloc(BLOCK);
                        assert!(!p.is_null(), "bench pool exhausted");
                        if tx.send(p as usize).is_err() {
                            heap_p.free(p);
                            break 'produce;
                        }
                    }
                }
            });
            let heap_c = heap.clone();
            let b = barrier.clone();
            consumers.push(s.spawn(move || {
                b.wait();
                let mut freed = 0u64;
                for p in rx {
                    heap_c.free(p as *mut u8);
                    freed += 1;
                }
                freed
            }));
        }
        barrier.wait();
        std::thread::sleep(window);
        stop.store(true, Ordering::Relaxed);
        consumers.into_iter().map(|h| h.join().expect("prodcon consumer")).sum()
    });
    total as f64 / window.as_secs_f64() / 1e6
}

fn main() {
    let window = Duration::from_millis(
        std::env::var("MICRO_CONTEND_WINDOW_MS").ok().and_then(|v| v.parse().ok()).unwrap_or(300),
    );
    let mut entries = Vec::new();
    for &threads in &[1usize, 8] {
        for &shards in &[1usize, 4, 16] {
            // Fresh heap per point so carve state and list population do
            // not bleed across configurations.
            let heap = Ralloc::create(
                512 << 20,
                RallocConfig { partial_shards: shards, ..Default::default() },
            );
            let _ = churn_throughput(&heap, threads, window / 4, None); // warmup
            // Steal rate over the measured window only — warmup pops
            // (taken while carve state is still populating) would skew it.
            let stats = heap.slow_stats();
            let home0 = stats.partial_pops_home.load(Ordering::Relaxed);
            let steal0 = stats.partial_steals.load(Ordering::Relaxed);
            let lat = Histogram::new();
            let mops = churn_throughput(&heap, threads, window, Some(&lat));
            let lat = lat.snapshot();
            let home = stats.partial_pops_home.load(Ordering::Relaxed) - home0;
            let stolen = stats.partial_steals.load(Ordering::Relaxed) - steal0;
            let steal = if home + stolen == 0 { 0.0 } else { stolen as f64 / (home + stolen) as f64 };
            assert_eq!(heap.partial_shards() as usize, shards, "RALLOC_SHARDS override set?");
            println!(
                "contend x{threads} S={shards}: {mops:.3} Mops/s (steal rate {steal:.3}, \
                 op ns p50<={} p99<={} p999<={})",
                lat.p50(),
                lat.p99(),
                lat.p999()
            );
            entries.push(format!(
                "    {{\"shape\": \"churn\", \"threads\": {threads}, \"shards\": {shards}, \
                 \"mops\": {mops:.3}, \"steal_rate\": {steal:.4}, \"op_latency_ns\": {}}}",
                lat.to_json()
            ));
        }
    }
    // Producer/consumer split: 100 % remote frees. The acceptance metric
    // is anchor CASes per remote free, ring-off vs ring-on — counters,
    // not wall-clock, because a single-CPU host serializes the threads
    // and hides the cache-line transfer the rings eliminate.
    for &pairs in &[1usize, 4] {
        let mut cas_per_free = [0.0f64; 2]; // [ring-off, ring-on]
        for ring in [false, true] {
            let heap =
                Ralloc::create(512 << 20, RallocConfig { remote_ring: ring, ..Default::default() });
            assert_eq!(heap.remote_rings_enabled(), ring, "RALLOC_REMOTE_RING override set?");
            let _ = prodcon_throughput(&heap, pairs, window / 4); // warmup
            let stats = heap.slow_stats();
            let blocks0 = stats.remote_free_blocks.load(Ordering::Relaxed);
            let cas0 = stats.remote_anchor_cas.load(Ordering::Relaxed);
            let mops = prodcon_throughput(&heap, pairs, window);
            let blocks = stats.remote_free_blocks.load(Ordering::Relaxed) - blocks0;
            let cas = stats.remote_anchor_cas.load(Ordering::Relaxed) - cas0;
            assert!(blocks > 0, "prodcon produced no remote frees");
            let ratio = cas as f64 / blocks as f64;
            cas_per_free[ring as usize] = ratio;
            println!(
                "prodcon x{pairs} pairs ring={}: {mops:.3} Mops/s \
                 ({cas} anchor CASes / {blocks} remote frees = {ratio:.5})",
                if ring { "on" } else { "off" }
            );
            entries.push(format!(
                "    {{\"shape\": \"prodcon\", \"pairs\": {pairs}, \"threads\": {}, \
                 \"shards\": {}, \"ring\": {ring}, \"mops\": {mops:.3}, \
                 \"remote_free_blocks\": {blocks}, \"remote_anchor_cas\": {cas}, \
                 \"remote_cas_per_free\": {ratio:.6}}}",
                2 * pairs,
                heap.partial_shards()
            ));
        }
        let [off, on] = cas_per_free;
        assert!(
            on * 10.0 <= off,
            "remote rings must cut anchor CASes per remote free >=10x at {pairs} pairs: \
             off {off:.6} vs on {on:.6}"
        );
        println!(
            "prodcon x{pairs} pairs: ring-off/ring-on CAS ratio = {:.1}x",
            if on == 0.0 { f64::INFINITY } else { off / on }
        );
    }
    let json = format!(
        "{{\n  \"bench\": \"micro_contend\",\n  \"unit\": \"Mops/s malloc+free pairs, 14336 B (slow-path-heavy churn)\",\n  \"meta\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
        bench::meta_with(&[("window_ms", window.as_millis().to_string())]),
        entries.join(",\n")
    );
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = root.join("BENCH_contend.json");
    std::fs::write(&path, json).expect("write BENCH_contend.json");
    println!("wrote {}", path.display());
}
