//! Figure 5b: Shbench — mixed-size stress, all five allocators.
//! Expected shape as 5a: transient allocators and Ralloc cluster
//! together, Makalu/PMDK ~10x slower under the Optane flush model.

use std::time::Duration;

use bench::{bench_threads, BENCH_CAPACITY, BENCH_SCALE};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nvm::FlushModel;
use workloads::{make_allocator, shbench, AllocKind};

fn fig5b(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5b_shbench");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    for kind in AllocKind::all() {
        for &t in &bench_threads() {
            g.bench_with_input(BenchmarkId::new(kind.name(), t), &t, |b, &t| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        let a = make_allocator(kind, BENCH_CAPACITY, FlushModel::optane());
                        total += shbench::run(&a, shbench::Params::scaled(t, BENCH_SCALE));
                    }
                    total
                });
            });
        }
    }
    g.finish();
}

criterion_group!(benches, fig5b);
criterion_main!(benches);
