//! Figure 5a: Threadtest — time per run, all five allocators, thread
//! sweep. Expected shape: Ralloc ≈ LRMalloc ≈ system allocator, roughly
//! an order of magnitude faster than Makalu and PMDK (paper §6.2).

use std::time::Duration;

use bench::{bench_threads, BENCH_CAPACITY, BENCH_SCALE};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nvm::FlushModel;
use workloads::{make_allocator, threadtest, AllocKind};

fn fig5a(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5a_threadtest");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    for kind in AllocKind::all() {
        for &t in &bench_threads() {
            g.bench_with_input(BenchmarkId::new(kind.name(), t), &t, |b, &t| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        let a = make_allocator(kind, BENCH_CAPACITY, FlushModel::optane());
                        total += threadtest::run(&a, threadtest::Params::scaled(t, BENCH_SCALE));
                    }
                    total
                });
            });
        }
    }
    g.finish();
}

criterion_group!(benches, fig5a);
criterion_main!(benches);
