//! Figure 5e: Vacation — STAMP-style OLTP over red-black trees,
//! persistent allocators only (as in the paper). Expected: Ralloc
//! fastest at every thread count; Makalu/PMDK pay eager persistence.

use std::time::Duration;

use bench::{bench_threads, BENCH_CAPACITY, BENCH_SCALE};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nvm::FlushModel;
use workloads::{make_allocator, vacation, AllocKind};

fn fig5e(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5e_vacation");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    for kind in AllocKind::persistent() {
        for &t in &bench_threads() {
            g.bench_with_input(BenchmarkId::new(kind.name(), t), &t, |b, &t| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        let a = make_allocator(kind, BENCH_CAPACITY, FlushModel::optane());
                        total += vacation::run(&a, vacation::Params::scaled(t, BENCH_SCALE));
                    }
                    total
                });
            });
        }
    }
    g.finish();
}

criterion_group!(benches, fig5e);
criterion_main!(benches);
