//! Ablation: filter functions versus conservative tracing (paper §4.5.1).
//!
//! The structure under recovery is a Pptr-linked list whose nodes carry
//! several words of non-pointer payload, so *both* modes discover every
//! node (tagged off-holders are visible to the conservative scanner),
//! and the comparison isolates the scan cost: the filter visits exactly
//! one field per node, the conservative scan examines every 64-bit word
//! of every block. A payload-heavy node (64 B, one pointer) makes the
//! difference visible, as in real data structures.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ralloc::{Pptr, Ralloc, RallocConfig, Trace, Tracer};

#[repr(C)]
struct FatNode {
    payload: [u64; 7],
    next: Pptr<FatNode>,
}

unsafe impl Trace for FatNode {
    fn trace(&self, t: &mut Tracer<'_>) {
        t.visit_pptr(&self.next);
    }
}

fn build(nodes: usize) -> Ralloc {
    let heap = Ralloc::create(64 << 20, RallocConfig::default());
    let mut head: *mut FatNode = std::ptr::null_mut();
    for i in 0..nodes as u64 {
        let p = heap.malloc(std::mem::size_of::<FatNode>()) as *mut FatNode;
        assert!(!p.is_null());
        // SAFETY: fresh block.
        unsafe {
            (*p).payload = [i; 7];
            (*p).next.set(head);
        }
        head = p;
    }
    heap.set_root::<FatNode>(0, head);
    heap
}

fn ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_filter_gc");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    for nodes in [50_000usize, 100_000] {
        g.bench_with_input(BenchmarkId::new("filter", nodes), &nodes, |b, &n| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let heap = build(n);
                    let stats = heap.recover();
                    assert_eq!(stats.reachable_blocks, n as u64);
                    assert_eq!(stats.conservative_words_scanned, 0);
                    total += stats.duration;
                }
                total
            });
        });
        g.bench_with_input(BenchmarkId::new("conservative", nodes), &nodes, |b, &n| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let heap = build(n);
                    heap.clear_root_filter(0);
                    let stats = heap.recover();
                    assert_eq!(stats.reachable_blocks, n as u64, "tagged pptrs must be found");
                    assert!(stats.conservative_words_scanned >= (n * 8) as u64);
                    total += stats.duration;
                }
                total
            });
        });
    }
    g.finish();
}

criterion_group!(benches, ablation);
criterion_main!(benches);
