//! Figure 6: recovery (GC) time versus number of reachable blocks, for
//! the Treiber stack (6a) and the Natarajan-Mittal tree (6b). Expected
//! shape: linear in reachable blocks, with a larger per-node constant
//! for the tree (poorer locality) — paper §6.4.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use workloads::gcbench::{self, Structure};

fn fig6(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_gc");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    for (name, structure) in [("6a_stack", Structure::Stack), ("6b_tree", Structure::Tree)] {
        for nodes in [20_000usize, 40_000, 80_000] {
            g.bench_with_input(BenchmarkId::new(name, nodes), &nodes, |b, &n| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        total += gcbench::run(structure, n).recovery_time;
                    }
                    total
                });
            });
        }
    }
    g.finish();
}

criterion_group!(benches, fig6);
criterion_main!(benches);
