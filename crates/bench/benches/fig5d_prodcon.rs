//! Figure 5d: Prod-con — producer/consumer pairs over M&S queues.
//! Expected: allocators converge at low thread counts (queue
//! synchronization dominates), Ralloc scales past Makalu/PMDK beyond.

use std::time::Duration;

use bench::{bench_threads, BENCH_CAPACITY, BENCH_SCALE};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nvm::FlushModel;
use workloads::{make_allocator, prodcon, AllocKind};

fn fig5d(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5d_prodcon");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    for kind in AllocKind::all() {
        for &t in &bench_threads() {
            g.bench_with_input(BenchmarkId::new(kind.name(), t), &t, |b, &t| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        let a = make_allocator(kind, BENCH_CAPACITY, FlushModel::optane());
                        total += prodcon::run(&a, prodcon::Params::scaled(t, BENCH_SCALE));
                    }
                    total
                });
            });
        }
    }
    g.finish();
}

criterion_group!(benches, fig5d);
criterion_main!(benches);
