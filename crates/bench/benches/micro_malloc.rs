//! Microbenchmark: the malloc/free fast path per allocator, plus the
//! flushes-per-operation count that substantiates the paper's "pays
//! almost nothing for persistence" claim (§1, §6.2).
//!
//! Besides the criterion groups, this target emits a machine-readable
//! `BENCH_fastpath.json` at the workspace root: malloc/free pair
//! throughput (Mops/s) for 1 and 4 threads, persistent vs. transient
//! configuration, plus a per-pair latency histogram (p50/p99/p999 ns,
//! measured in a separate timed pass so the clock reads never touch the
//! throughput loop). Future PRs compare against it to track the
//! fast-path trajectory. Set `MICRO_MALLOC_JSON_ONLY=1` to skip the
//! criterion groups and only refresh the JSON.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

use bench::BENCH_CAPACITY;
use criterion::{criterion_group, BenchmarkId, Criterion};
use nvm::FlushModel;
use ralloc::PersistentAllocator;
use telemetry::{HistSnapshot, Histogram};
use workloads::{make_allocator, AllocKind, DynAlloc};

fn micro(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro_malloc_free");
    g.sample_size(20).measurement_time(Duration::from_secs(2));
    for kind in AllocKind::all() {
        for size in [64usize, 400, 4096] {
            let a = make_allocator(kind, BENCH_CAPACITY, FlushModel::optane());
            // Warm the thread cache so we measure the steady state.
            let warm = a.malloc(size);
            a.free(warm);
            g.bench_with_input(
                BenchmarkId::new(format!("{}/{}B", kind.name(), size), size),
                &size,
                |b, &sz| {
                    b.iter(|| {
                        let p = a.malloc(sz);
                        std::hint::black_box(p);
                        a.free(p);
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, micro);

/// Measure malloc/free pair throughput in Mops/s: `threads` workers each
/// running 64 B pairs against a shared allocator for `window`.
fn pair_throughput(alloc: &DynAlloc, threads: usize, window: Duration) -> f64 {
    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(threads + 1));
    let total: u64 = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let alloc = alloc.clone();
                let stop = stop.clone();
                let barrier = barrier.clone();
                s.spawn(move || {
                    // Warm this thread's cache off the clock.
                    let w = alloc.malloc(64);
                    alloc.free(w);
                    barrier.wait();
                    let mut ops = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        // Batch between stop-flag checks.
                        for _ in 0..512 {
                            let p = alloc.malloc(64);
                            std::hint::black_box(p);
                            alloc.free(p);
                        }
                        ops += 512;
                    }
                    ops
                })
            })
            .collect();
        barrier.wait();
        std::thread::sleep(window);
        stop.store(true, Ordering::Relaxed);
        handles.into_iter().map(|h| h.join().expect("bench worker")).sum()
    });
    total as f64 / window.as_secs_f64() / 1e6
}

/// Per-pair latency distribution: `threads` workers each timing
/// `pairs`-many individual malloc/free pairs into a shared log2
/// histogram. Kept separate from `pair_throughput` so the `Instant`
/// reads around every pair never pollute the throughput number.
fn pair_latency(alloc: &DynAlloc, threads: usize, pairs: u64) -> HistSnapshot {
    let hist = Histogram::new();
    let barrier = Arc::new(Barrier::new(threads));
    std::thread::scope(|s| {
        for _ in 0..threads {
            let alloc = alloc.clone();
            let hist = hist.clone();
            let barrier = barrier.clone();
            s.spawn(move || {
                let w = alloc.malloc(64);
                alloc.free(w);
                barrier.wait();
                for _ in 0..pairs {
                    let t0 = std::time::Instant::now();
                    let p = alloc.malloc(64);
                    std::hint::black_box(p);
                    alloc.free(p);
                    hist.observe_since(t0);
                }
            });
        }
    });
    hist.snapshot()
}

/// The same 64 B pair loop as [`pair_throughput`], but over an
/// arbitrary allocation surface: the handle API, the
/// `#[global_allocator]` facade ([`galloc::RallocGlobal`]), or the
/// system allocator — the apples-to-apples comparison for the drop-in
/// surface's overhead (routing, layout translation, re-entrancy flag).
fn surface_throughput(pair: &(impl Fn() + Sync), threads: usize, window: Duration) -> f64 {
    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(threads + 1));
    let total: u64 = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let stop = stop.clone();
                let barrier = barrier.clone();
                s.spawn(move || {
                    pair(); // warm this thread's cache off the clock
                    barrier.wait();
                    let mut ops = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        for _ in 0..512 {
                            pair();
                        }
                        ops += 512;
                    }
                    ops
                })
            })
            .collect();
        barrier.wait();
        std::thread::sleep(window);
        stop.store(true, Ordering::Relaxed);
        handles.into_iter().map(|h| h.join().expect("bench worker")).sum()
    });
    total as f64 / window.as_secs_f64() / 1e6
}

/// Surface sweep entries: 64 B pairs through the Ralloc handle, through
/// `RallocGlobal`, and through the system allocator — all on the same
/// shape, tagged `"surface"` in the JSON.
fn surface_entries(window: Duration, entries: &mut Vec<String>) {
    use std::alloc::{GlobalAlloc, Layout, System};

    let heap = galloc::heap().expect("galloc pool");
    let global = galloc::RallocGlobal;
    for threads in [1usize, 4] {
        let handle_pair = || {
            let p = heap.malloc(64);
            std::hint::black_box(p);
            heap.free(p);
        };
        let global_pair = || {
            // Layout is built inside the closure: at a real call site the
            // layout is a compile-time constant, and keeping it in the
            // closure environment would force a reload + size round-up
            // per op that no real caller pays.
            let layout = Layout::from_size_align(64, 8).unwrap();
            // SAFETY: valid layout; dealloc gets alloc's result.
            unsafe {
                let p = global.alloc(layout);
                std::hint::black_box(p);
                global.dealloc(p, layout);
            }
        };
        let system_pair = || {
            let layout = Layout::from_size_align(64, 8).unwrap();
            // SAFETY: as above.
            unsafe {
                let p = System.alloc(layout);
                std::hint::black_box(p);
                System.dealloc(p, layout);
            }
        };
        // Interleave the surfaces round-robin and keep each surface's
        // best window: interference on a shared box only ever *slows* a
        // window, and interleaving keeps a burst from sinking one
        // surface's whole measurement while sparing the others. Every
        // surface gets the same warmup and the same number of windows.
        let mut best = [0.0f64; 3];
        let _ = surface_throughput(&handle_pair, threads, window / 4);
        let _ = surface_throughput(&global_pair, threads, window / 4);
        let _ = surface_throughput(&system_pair, threads, window / 4);
        for _ in 0..6 {
            best[0] = best[0].max(surface_throughput(&handle_pair, threads, window / 2));
            best[1] = best[1].max(surface_throughput(&global_pair, threads, window / 2));
            best[2] = best[2].max(surface_throughput(&system_pair, threads, window / 2));
        }
        let points: [(&str, &str, f64); 3] = [
            ("galloc", "handle", best[0]),
            ("galloc", "global", best[1]),
            ("system", "system", best[2]),
        ];
        for (alloc, surface, mops) in points {
            println!("fastpath {alloc}/{surface} x{threads}: {mops:.2} Mops/s");
            entries.push(format!(
                "    {{\"alloc\": \"{alloc}\", \"surface\": \"{surface}\", \
                 \"threads\": {threads}, \"mops\": {mops:.3}}}"
            ));
        }
        let ratio = points[1].2 / points[0].2;
        println!("fastpath global/handle ratio x{threads}: {ratio:.3}");
    }
}

fn emit_fastpath_json() {
    let window = Duration::from_millis(
        std::env::var("MICRO_MALLOC_WINDOW_MS").ok().and_then(|v| v.parse().ok()).unwrap_or(400),
    );
    let configs = [("ralloc", AllocKind::Ralloc), ("lrmalloc", AllocKind::LrMalloc)];
    let mut entries = Vec::new();
    for (name, kind) in configs {
        for threads in [1usize, 4] {
            // Fresh heap per point so carve state does not bleed across.
            let a = make_allocator(kind, BENCH_CAPACITY, FlushModel::optane());
            // One throwaway round to reach steady state.
            let _ = pair_throughput(&a, threads, window / 4);
            let mops = pair_throughput(&a, threads, window);
            let lat = pair_latency(&a, threads, 200_000);
            println!(
                "fastpath {name} x{threads}: {mops:.2} Mops/s \
                 (pair ns p50<={} p99<={} p999<={})",
                lat.p50(),
                lat.p99(),
                lat.p999()
            );
            entries.push(format!(
                "    {{\"alloc\": \"{name}\", \"surface\": \"handle\", \"threads\": {threads}, \
                 \"mops\": {mops:.3}, \"pair_latency_ns\": {}}}",
                lat.to_json()
            ));
        }
    }
    surface_entries(window, &mut entries);
    // Seed baseline, measured in the PR that introduced the batched
    // fast path (same machine discipline: fresh heap, warmup round,
    // 400 ms window). Kept in the JSON so the trajectory is one file.
    let baseline = concat!(
        "    {\"alloc\": \"ralloc\", \"threads\": 1, \"mops\": 65.121},\n",
        "    {\"alloc\": \"ralloc\", \"threads\": 4, \"mops\": 64.140},\n",
        "    {\"alloc\": \"lrmalloc\", \"threads\": 1, \"mops\": 65.915},\n",
        "    {\"alloc\": \"lrmalloc\", \"threads\": 4, \"mops\": 66.387}"
    );
    let json = format!(
        "{{\n  \"bench\": \"micro_malloc_fastpath\",\n  \"unit\": \"Mops/s malloc+free pairs, 64 B\",\n  \"meta\": {},\n  \"results\": [\n{}\n  ],\n  \"baseline_pre_batched_bins\": [\n{}\n  ]\n}}\n",
        bench::meta_with(&[("window_ms", window.as_millis().to_string())]),
        entries.join(",\n"),
        baseline
    );
    // `CARGO_MANIFEST_DIR` is crates/bench; the JSON lives at the root.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = root.join("BENCH_fastpath.json");
    std::fs::write(&path, json).expect("write BENCH_fastpath.json");
    println!("wrote {}", path.display());
}

fn main() {
    if std::env::var("MICRO_MALLOC_JSON_ONLY").is_err() {
        benches();
    }
    emit_fastpath_json();
}
