//! Microbenchmark: the malloc/free fast path per allocator, plus the
//! flushes-per-operation count that substantiates the paper's "pays
//! almost nothing for persistence" claim (§1, §6.2).

use std::time::Duration;

use bench::BENCH_CAPACITY;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nvm::FlushModel;
use ralloc::PersistentAllocator;
use workloads::{make_allocator, AllocKind};

fn micro(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro_malloc_free");
    g.sample_size(20).measurement_time(Duration::from_secs(2));
    for kind in AllocKind::all() {
        for size in [64usize, 400, 4096] {
            let a = make_allocator(kind, BENCH_CAPACITY, FlushModel::optane());
            // Warm the thread cache so we measure the steady state.
            let warm = a.malloc(size);
            a.free(warm);
            g.bench_with_input(
                BenchmarkId::new(format!("{}/{}B", kind.name(), size), size),
                &size,
                |b, &sz| {
                    b.iter(|| {
                        let p = a.malloc(sz);
                        std::hint::black_box(p);
                        a.free(p);
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, micro);
criterion_main!(benches);
