//! Ablation: how the modelled flush latency drives the Ralloc-vs-baseline
//! gap. At zero flush cost the allocators differ only in locking and
//! bookkeeping; at Optane-like cost, eager-persistence designs (Makalu,
//! PMDK) fall off the cliff while Ralloc barely moves — the quantitative
//! core of the paper's argument (§6.2).

use std::time::Duration;

use bench::{BENCH_CAPACITY, BENCH_SCALE};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nvm::FlushModel;
use workloads::{make_allocator, threadtest, AllocKind};

fn ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_flush_cost");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    let models = [
        ("free", FlushModel::free()),
        ("optane", FlushModel::optane()),
        ("slow_nvm", FlushModel { flush_ns: 100, pipelined_line_ns: 10, fence_ns: 400 }),
    ];
    for kind in [AllocKind::Ralloc, AllocKind::Makalu, AllocKind::Pmdk] {
        for (mname, model) in models {
            let id = format!("{}/{}", kind.name(), mname);
            g.bench_function(BenchmarkId::new(id, 2), |b| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        let a = make_allocator(kind, BENCH_CAPACITY, model);
                        total += threadtest::run(&a, threadtest::Params::scaled(2, BENCH_SCALE));
                    }
                    total
                });
            });
        }
    }
    g.finish();
}

criterion_group!(benches, ablation);
criterion_main!(benches);
