//! # bench — criterion harness shell
//!
//! The benchmark logic lives in the `workloads` crate; this crate hosts
//! one criterion bench target per paper figure plus ablation studies.
//! Run `cargo bench -p bench` for everything or `cargo bench -p bench
//! --bench fig5a_threadtest` for one figure. The `repro` binary in
//! `workloads` produces the same data as CSV without criterion's
//! statistics when raw figure points are wanted.

/// Default heap capacity handed to each allocator under test.
pub const BENCH_CAPACITY: usize = 256 << 20;

/// Workload scale used by the criterion benches (small enough for
/// statistical iteration, large enough to exercise the slow paths).
pub const BENCH_SCALE: f64 = 0.02;

/// Thread ladder for the criterion benches (kept short; use `repro` for
/// full sweeps).
pub fn bench_threads() -> Vec<usize> {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores >= 8 {
        vec![1, 4, 8]
    } else if cores >= 4 {
        vec![1, 2, 4]
    } else {
        vec![1, 2]
    }
}

/// The shared `"meta"` object every `BENCH_*.json` artifact embeds:
/// host core count, unix timestamp, and the git revision the numbers
/// were measured at, so artifacts from different checkouts stay
/// comparable. Formerly each bench binary pasted its own `host_cores`
/// line; this is the one copy.
pub fn meta() -> String {
    meta_with(&[])
}

/// [`meta`] plus bench-specific config knobs, each rendered as an extra
/// `"key": value` field (values are embedded verbatim — pass pre-quoted
/// strings for non-numeric values).
pub fn meta_with(knobs: &[(&str, String)]) -> String {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let timestamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let mut s = format!(
        "{{\"host_cores\": {cores}, \"timestamp_unix\": {timestamp}, \"git_rev\": \"{}\"",
        git_rev()
    );
    for (k, v) in knobs {
        s.push_str(&format!(", \"{k}\": {v}"));
    }
    s.push('}');
    s
}

/// Short git revision of the working tree, `"unknown"` outside a git
/// checkout (e.g. an exported source tarball).
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty() && s.chars().all(|c| c.is_ascii_hexdigit()))
        .unwrap_or_else(|| "unknown".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_is_valid_json_with_mandatory_fields() {
        let m = meta_with(&[("window_ms", "300".into())]);
        let v = telemetry::json::parse(&m).expect("meta must be valid JSON");
        assert!(v.get("host_cores").and_then(|x| x.as_u64()).unwrap() >= 1);
        assert!(v.get("timestamp_unix").and_then(|x| x.as_u64()).unwrap() > 0);
        assert!(v.get("git_rev").and_then(|x| x.as_str()).is_some());
        assert_eq!(v.get("window_ms").and_then(|x| x.as_u64()), Some(300));
    }
}
