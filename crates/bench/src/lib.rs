//! # bench — criterion harness shell
//!
//! The benchmark logic lives in the `workloads` crate; this crate hosts
//! one criterion bench target per paper figure plus ablation studies.
//! Run `cargo bench -p bench` for everything or `cargo bench -p bench
//! --bench fig5a_threadtest` for one figure. The `repro` binary in
//! `workloads` produces the same data as CSV without criterion's
//! statistics when raw figure points are wanted.

/// Default heap capacity handed to each allocator under test.
pub const BENCH_CAPACITY: usize = 256 << 20;

/// Workload scale used by the criterion benches (small enough for
/// statistical iteration, large enough to exercise the slow paths).
pub const BENCH_SCALE: f64 = 0.02;

/// Thread ladder for the criterion benches (kept short; use `repro` for
/// full sweeps).
pub fn bench_threads() -> Vec<usize> {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores >= 8 {
        vec![1, 4, 8]
    } else if cores >= 4 {
        vec![1, 2, 4]
    } else {
        vec![1, 2]
    }
}
