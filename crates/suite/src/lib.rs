//! Umbrella crate for the Ralloc reproduction workspace.
//!
//! The real code lives in the `crates/` members; this package exists to
//! host the cross-crate integration tests (`tests/`) and the runnable
//! `examples/`. It re-exports the workspace crates so examples and docs
//! have one import root.

pub use baselines;
pub use nvm;
pub use pds;
pub use pptr;
pub use ralloc;
pub use workloads;
