//! # pds — persistent data structures for the evaluation
//!
//! The paper's experiments run data structures *on top of* the allocators
//! under test (§6.2–§6.4). This crate implements each of them from
//! scratch:
//!
//! | structure | used by | paper reference |
//! |---|---|---|
//! | [`MsQueue`] | Prod-con (Fig. 5d) | Michael & Scott, PODC'96 |
//! | [`PStack`] | recovery experiment (Fig. 6a) | Treiber stack |
//! | [`NmTree`] | recovery experiment (Fig. 6b) | Natarajan & Mittal, PPoPP'14 |
//! | [`RbTree`] | Vacation OLTP (Fig. 5e) | STAMP's red-black trees |
//! | [`KvStore`] | memcached/YCSB (Fig. 5f) | library-mode memcached |
//!
//! `MsQueue`, `RbTree` and `KvStore` are generic over any
//! [`ralloc::PersistentAllocator`], because the corresponding figures
//! compare allocators. `PStack` and `NmTree` are **recoverable**
//! structures bound to a Ralloc heap: their data lives entirely inside
//! the persistent region, reachable from a registered root, with filter
//! functions ([`ralloc::Trace`] impls) so the recovery GC traces them
//! precisely. Their node links are superblock-region offsets packed with
//! ABA counters or mark bits — position-independent by construction.

mod kvstore;
mod nmtree;
mod queue;
mod rbtree;
mod stack;

pub use kvstore::KvStore;
pub use nmtree::NmTree;
pub use queue::MsQueue;
pub use rbtree::RbTree;
pub use stack::PStack;
