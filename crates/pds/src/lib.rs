//! # pds — persistent data structures for the evaluation
//!
//! The paper's experiments run data structures *on top of* the allocators
//! under test (§6.2–§6.4). This crate implements each of them from
//! scratch:
//!
//! | structure | used by | paper reference |
//! |---|---|---|
//! | [`MsQueue`] | Prod-con (Fig. 5d) | Michael & Scott, PODC'96 |
//! | [`PStack`] | recovery experiment (Fig. 6a) | Treiber stack |
//! | [`NmTree`] | recovery experiment (Fig. 6b) | Natarajan & Mittal, PPoPP'14 |
//! | [`RbTree`] | Vacation OLTP (Fig. 5e) | STAMP's red-black trees |
//! | [`KvStore`] | memcached/YCSB (Fig. 5f) | library-mode memcached |
//!
//! `MsQueue`, `RbTree` and `KvStore` are generic over any
//! [`ralloc::PersistentAllocator`], because the corresponding figures
//! compare allocators. `PStack` and `NmTree` are **recoverable**
//! structures bound to a Ralloc heap: their data lives entirely inside
//! the persistent region, reachable from a registered root, with filter
//! functions ([`ralloc::Trace`] impls) so the recovery GC traces them
//! precisely. Their node links are superblock-region offsets packed with
//! ABA counters or mark bits — position-independent by construction.
//!
//! The kill-based crash harness (`crates/crashtest`) needs a recoverable
//! variant of every workload structure, so three more live here:
//! [`PQueue`] (recoverable MS queue), [`PKv`] (recoverable chained hash
//! map) and [`PRbTree`] (persistent op-log + transient red-black index).

mod kvstore;
mod nmtree;
mod pkv;
mod pqueue;
mod prbtree;
mod queue;
mod rbtree;
mod stack;

pub use kvstore::KvStore;
pub use nmtree::{NmNode, NmTree};
pub use pkv::{KvHead, PKv};
pub use pqueue::{PQueue, QueueHead};
pub use prbtree::{PRbTree, TreeLogHead};
pub use queue::MsQueue;
pub use rbtree::RbTree;
pub use stack::{PStack, StackHead};
