//! A recoverable Michael–Scott queue.
//!
//! [`MsQueue`] is the *transient* MS queue the allocator-comparison
//! figures run on (absolute pointers, DRAM free list). This is its
//! **recoverable** counterpart, built exactly like [`crate::PStack`]:
//! head/tail cell and nodes all live in a Ralloc heap, every link is a
//! superblock-region offset packed with a 16-bit ABA counter, and a
//! [`ralloc::Trace`] filter makes recovery tracing precise. The structure
//! is position-independent and survives crash + GC recovery.
//!
//! Persistence discipline (durable linearizability, the app-side
//! obligation of paper §2.2): an enqueue persists the node, links it with
//! a CAS on the predecessor's `next`, persists that link, and only then
//! swings (and persists) the tail hint; a dequeue persists the head after
//! swinging it. The tail is a *hint* exactly as in the volatile MS queue
//! — [`PQueue::attach`] re-derives it from the (authoritative) chain, so
//! a crash between link and tail-swing loses nothing.

use std::sync::atomic::{AtomicU64, Ordering};

use ralloc::{PersistentAllocator, Ralloc, Trace, Tracer};

const OFF_BITS: u32 = 48;
const OFF_MASK: u64 = (1u64 << OFF_BITS) - 1;

#[inline]
fn pack(off1: u64, ctr: u64) -> u64 {
    debug_assert!(off1 <= OFF_MASK);
    (ctr << OFF_BITS) | off1
}

#[inline]
fn unpack(word: u64) -> (u64, u64) {
    (word & OFF_MASK, word >> OFF_BITS)
}

/// Queue anchor cell: lives in the heap, registered as a persistent root.
/// All three words are {counter:16 | node region-offset + 1:48}; the head
/// always points at the current dummy node.
///
/// `free` is the queue's private node free list (a counted Treiber
/// stack). Retired dummies go here instead of back to `heap.free`,
/// keeping every node **type-stable**: a concurrent enqueuer racing a
/// dequeue may still CAS the retired node's `next`, which is only safe
/// because the memory remains a `QueueNode` whose counters keep
/// advancing (the standard MS-queue reclamation discipline, same as the
/// transient [`crate::MsQueue`]).
///
/// The free chain is **transient**: its two-word publish (node link +
/// list head) cannot be made crash-atomic, so it is deliberately not
/// traced and [`PQueue::attach`] resets it. After a crash, recovery
/// reclaims the retired nodes as unreachable; after a clean restart they
/// leak only until the next recovery sweeps them.
#[repr(C)]
pub struct QueueHead {
    head: AtomicU64,
    tail: AtomicU64,
    free: AtomicU64,
}

/// A queue node. `next` is CAS-able ({ctr:16 | off+1:48}); `value` is
/// immutable once the node is published.
#[repr(C)]
pub struct QueueNode {
    value: u64,
    next: AtomicU64,
}

unsafe impl Trace for QueueHead {
    fn trace(&self, t: &mut Tracer<'_>) {
        // The chain from the dummy (head) covers every live node,
        // including everything the tail hint could reference. The free
        // chain is intentionally NOT traced: its links are never
        // persisted, so after a crash they are garbage — recovery
        // reclaims retirees instead, and `attach` resets the list.
        let (off1, _) = unpack(self.head.load(Ordering::Relaxed));
        if let Some(off) = off1.checked_sub(1) {
            t.visit_region_offset::<QueueNode>(off);
        }
    }
}

unsafe impl Trace for QueueNode {
    fn trace(&self, t: &mut Tracer<'_>) {
        let (off1, _) = unpack(self.next.load(Ordering::Relaxed));
        if let Some(off) = off1.checked_sub(1) {
            t.visit_region_offset::<QueueNode>(off);
        }
    }
}

/// A persistent, recoverable, lock-free FIFO queue of `u64`s on a Ralloc
/// heap.
pub struct PQueue {
    heap: Ralloc,
    anchor: *mut QueueHead,
}

// SAFETY: all shared mutation goes through atomics in the heap.
unsafe impl Send for PQueue {}
unsafe impl Sync for PQueue {}

impl PQueue {
    /// Create a fresh queue whose anchor is registered as root `root`.
    pub fn create(heap: &Ralloc, root: usize) -> PQueue {
        let dummy = heap.malloc(std::mem::size_of::<QueueNode>()) as *mut QueueNode;
        assert!(!dummy.is_null(), "heap exhausted creating queue dummy");
        let anchor = heap.malloc(std::mem::size_of::<QueueHead>()) as *mut QueueHead;
        assert!(!anchor.is_null(), "heap exhausted creating queue anchor");
        let dummy_off1 = (dummy as usize - heap.region_base()) as u64 + 1;
        // SAFETY: fresh blocks, exclusively owned.
        unsafe {
            (*dummy).value = 0;
            (*dummy).next = AtomicU64::new(pack(0, 0));
            (*anchor).head = AtomicU64::new(pack(dummy_off1, 0));
            (*anchor).tail = AtomicU64::new(pack(dummy_off1, 0));
            (*anchor).free = AtomicU64::new(pack(0, 0));
        }
        heap.persist(dummy as *const u8, std::mem::size_of::<QueueNode>());
        heap.persist(anchor as *const u8, std::mem::size_of::<QueueHead>());
        heap.set_root::<QueueHead>(root, anchor);
        PQueue { heap: heap.clone(), anchor }
    }

    /// Re-attach to a queue persisted at root `root`, healing the tail
    /// hint from the chain (offline — the caller owns the quiescent
    /// post-recovery heap).
    pub fn attach(heap: &Ralloc, root: usize) -> Option<PQueue> {
        let anchor = heap.get_root::<QueueHead>(root);
        if anchor.is_null() {
            return None;
        }
        let q = PQueue { heap: heap.clone(), anchor };
        // Walk from head to the last node and point the tail at it: a
        // crash may have left the hint arbitrarily stale (never ahead of
        // the chain, because a tail CAS only installs an already-linked
        // node).
        let (mut cur1, _) = unpack(q.head_word().load(Ordering::Acquire));
        let mut last1 = cur1;
        while let Some(off) = cur1.checked_sub(1) {
            last1 = cur1;
            // SAFETY: offline traversal of a quiescent queue.
            cur1 = unpack(unsafe {
                (*(q.to_addr(off) as *const QueueNode)).next.load(Ordering::Acquire)
            })
            .0;
        }
        let (t_off1, t_ctr) = unpack(q.tail_word().load(Ordering::Acquire));
        if t_off1 != last1 {
            q.tail_word().store(pack(last1, (t_ctr + 1) & 0xFFFF), Ordering::Release);
            heap.persist(
                unsafe { std::ptr::addr_of!((*q.anchor).tail) } as *const u8,
                8,
            );
        }
        // The free list is transient (see `QueueHead`): whatever the
        // word says now is a stale snapshot whose chain recovery has
        // already reclaimed. Reset, preserving the counter.
        let (_, f_ctr) = unpack(q.free_word().load(Ordering::Acquire));
        q.free_word().store(pack(0, (f_ctr + 1) & 0xFFFF), Ordering::Release);
        Some(q)
    }

    #[inline]
    fn head_word(&self) -> &AtomicU64 {
        // SAFETY: anchor cell is live for the queue's lifetime.
        unsafe { &(*self.anchor).head }
    }

    #[inline]
    fn tail_word(&self) -> &AtomicU64 {
        // SAFETY: as above.
        unsafe { &(*self.anchor).tail }
    }

    #[inline]
    fn free_word(&self) -> &AtomicU64 {
        // SAFETY: as above.
        unsafe { &(*self.anchor).free }
    }

    #[inline]
    fn to_addr(&self, off: u64) -> usize {
        self.heap.region_base() + off as usize
    }

    /// Pop a retired node off the free list, or malloc a fresh one. A
    /// recycled node's `next` counter keeps advancing (never resets), so
    /// stale CASes from the node's previous life fail.
    fn alloc_node(&self) -> *mut QueueNode {
        loop {
            let f = self.free_word().load(Ordering::Acquire);
            let (f_off1, f_ctr) = unpack(f);
            let Some(off) = f_off1.checked_sub(1) else {
                return self.heap.malloc(std::mem::size_of::<QueueNode>()) as *mut QueueNode;
            };
            let node = self.to_addr(off) as *mut QueueNode;
            // SAFETY: type-stable node; the counter invalidates stale pops.
            let next = unsafe { (*node).next.load(Ordering::Acquire) };
            let (next_off1, next_ctr) = unpack(next);
            if self
                .free_word()
                .compare_exchange_weak(
                    f,
                    pack(next_off1, (f_ctr + 1) & 0xFFFF),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                // Detach: advance the counter past the free-link value so
                // CASes expecting either the old live or free-link word
                // fail.
                // SAFETY: we own the popped node.
                unsafe {
                    (*node).next.store(pack(0, (next_ctr + 1) & 0xFFFF), Ordering::Release)
                };
                return node;
            }
        }
    }

    /// Push a retired dummy onto the free list (type-stable reclamation).
    fn retire_node(&self, node: *mut QueueNode) {
        loop {
            let f = self.free_word().load(Ordering::Acquire);
            let (f_off1, f_ctr) = unpack(f);
            // SAFETY: we own the retired node (we won the head CAS).
            let ctr = unsafe { unpack((*node).next.load(Ordering::Acquire)).1 };
            unsafe {
                (*node).next.store(pack(f_off1, (ctr + 1) & 0xFFFF), Ordering::Release)
            };
            let node_off1 = (node as usize - self.heap.region_base()) as u64 + 1;
            if self
                .free_word()
                .compare_exchange_weak(
                    f,
                    pack(node_off1, (f_ctr + 1) & 0xFFFF),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                return;
            }
        }
    }

    /// Enqueue a value at the tail. Lock-free.
    pub fn enqueue(&self, value: u64) -> bool {
        let node = self.alloc_node();
        if node.is_null() {
            return false;
        }
        // SAFETY: we own the unpublished node (its `next` counter is
        // preserved from any previous life; see `alloc_node`).
        unsafe {
            (*node).value = value;
            let ctr = unpack((*node).next.load(Ordering::Acquire)).1;
            (*node).next.store(pack(0, ctr), Ordering::Release);
        }
        self.heap.persist(node as *const u8, std::mem::size_of::<QueueNode>());
        let node_off1 = (node as usize - self.heap.region_base()) as u64 + 1;
        loop {
            let t = self.tail_word().load(Ordering::Acquire);
            let (t_off1, t_ctr) = unpack(t);
            let t_off = t_off1 - 1; // tail always points at a node
            let tail_node = self.to_addr(t_off) as *mut QueueNode;
            // SAFETY: node memory stays mapped; counters invalidate stale
            // CASes.
            let next_ref = unsafe { &(*tail_node).next };
            let n = next_ref.load(Ordering::Acquire);
            if self.tail_word().load(Ordering::Acquire) != t {
                continue;
            }
            let (n_off1, n_ctr) = unpack(n);
            if n_off1 == 0 {
                // Tail is last: link our node.
                let linked = pack(node_off1, (n_ctr + 1) & 0xFFFF);
                if next_ref
                    .compare_exchange_weak(n, linked, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    // The link is the linearization point; make it
                    // durable before publishing the tail hint over it.
                    self.heap.persist(next_ref as *const AtomicU64 as *const u8, 8);
                    let _ = self.tail_word().compare_exchange(
                        t,
                        pack(node_off1, (t_ctr + 1) & 0xFFFF),
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    );
                    self.heap.persist(
                        self.tail_word() as *const AtomicU64 as *const u8,
                        8,
                    );
                    return true;
                }
            } else {
                // Tail lags: persist the link we're about to publish past
                // (it may be another thread's un-persisted CAS), then
                // help the hint forward.
                self.heap.persist(next_ref as *const AtomicU64 as *const u8, 8);
                let _ = self.tail_word().compare_exchange(
                    t,
                    pack(n_off1, (t_ctr + 1) & 0xFFFF),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                );
            }
        }
    }

    /// Dequeue the oldest value, freeing the retired dummy node.
    pub fn dequeue(&self) -> Option<u64> {
        loop {
            let h = self.head_word().load(Ordering::Acquire);
            let (h_off1, h_ctr) = unpack(h);
            let dummy = self.to_addr(h_off1 - 1) as *mut QueueNode;
            // SAFETY: pool memory stays mapped; the head counter
            // invalidates our CAS if the dummy was recycled.
            let n = unsafe { (*dummy).next.load(Ordering::Acquire) };
            if self.head_word().load(Ordering::Acquire) != h {
                continue;
            }
            let (n_off1, _) = unpack(n);
            let n_off = n_off1.checked_sub(1)?; // next == 0: empty
            let next_node = self.to_addr(n_off) as *mut QueueNode;
            // SAFETY: as above.
            let value = unsafe { (*next_node).value };
            let t = self.tail_word().load(Ordering::Acquire);
            let (t_off1, t_ctr) = unpack(t);
            if t_off1 == h_off1 {
                // Tail still on the dummy we're about to retire: help it
                // past first so it can never point at a freed node.
                let _ = self.tail_word().compare_exchange(
                    t,
                    pack(n_off1, (t_ctr + 1) & 0xFFFF),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                );
                continue;
            }
            if self
                .head_word()
                .compare_exchange_weak(
                    h,
                    pack(n_off1, (h_ctr + 1) & 0xFFFF),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                self.heap
                    .persist(self.head_word() as *const AtomicU64 as *const u8, 8);
                self.retire_node(dummy);
                return Some(value);
            }
        }
    }

    /// Number of queued values (O(n); offline use).
    pub fn len(&self) -> usize {
        self.snapshot().len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        let (h_off1, _) = unpack(self.head_word().load(Ordering::Acquire));
        // SAFETY: offline read of the dummy's link.
        let n = unsafe {
            (*(self.to_addr(h_off1 - 1) as *const QueueNode)).next.load(Ordering::Acquire)
        };
        unpack(n).0 == 0
    }

    /// Snapshot the values front-to-back (offline use).
    pub fn snapshot(&self) -> Vec<u64> {
        let mut out = Vec::new();
        let (h_off1, _) = unpack(self.head_word().load(Ordering::Acquire));
        // Skip the dummy; its value is retired.
        // SAFETY: offline traversal of a quiescent queue.
        let mut cur1 = unsafe {
            unpack(
                (*(self.to_addr(h_off1 - 1) as *const QueueNode)).next.load(Ordering::Acquire),
            )
            .0
        };
        while let Some(off) = cur1.checked_sub(1) {
            // SAFETY: as above.
            let node = unsafe { &*(self.to_addr(off) as *const QueueNode) };
            out.push(node.value);
            cur1 = unpack(node.next.load(Ordering::Acquire)).0;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ralloc::RallocConfig;

    fn heap() -> Ralloc {
        Ralloc::create(16 << 20, RallocConfig::tracked())
    }

    #[test]
    fn fifo_semantics() {
        let h = heap();
        let q = PQueue::create(&h, 0);
        assert!(q.is_empty());
        assert_eq!(q.dequeue(), None);
        q.enqueue(1);
        q.enqueue(2);
        q.enqueue(3);
        assert_eq!(q.snapshot(), vec![1, 2, 3]);
        assert_eq!(q.dequeue(), Some(1));
        assert_eq!(q.dequeue(), Some(2));
        assert_eq!(q.dequeue(), Some(3));
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn concurrent_mpmc_conserves_elements() {
        let h = Ralloc::create(64 << 20, RallocConfig::default());
        let q = PQueue::create(&h, 0);
        let n_threads = 4u64;
        let per = 4000u64;
        let done = std::sync::atomic::AtomicBool::new(false);
        let popped: Vec<u64> = std::thread::scope(|sc| {
            let producers: Vec<_> = (0..n_threads)
                .map(|t| {
                    let q = &q;
                    sc.spawn(move || {
                        for i in 0..per {
                            assert!(q.enqueue(t * per + i));
                        }
                    })
                })
                .collect();
            let consumers: Vec<_> = (0..n_threads)
                .map(|_| {
                    let q = &q;
                    let done = &done;
                    sc.spawn(move || {
                        let mut got = Vec::new();
                        loop {
                            match q.dequeue() {
                                Some(v) => got.push(v),
                                None if done.load(Ordering::Acquire) => break,
                                None => std::hint::spin_loop(),
                            }
                        }
                        got
                    })
                })
                .collect();
            for p in producers {
                p.join().unwrap();
            }
            done.store(true, Ordering::Release);
            consumers.into_iter().flat_map(|h| h.join().unwrap()).collect()
        });
        let mut popped = popped;
        popped.sort_unstable();
        let expect: Vec<u64> = (0..n_threads * per).collect();
        assert_eq!(popped, expect, "every enqueued element dequeues exactly once");
    }

    #[test]
    fn per_producer_order_is_fifo() {
        let h = Ralloc::create(64 << 20, RallocConfig::default());
        let q = PQueue::create(&h, 0);
        std::thread::scope(|sc| {
            for t in 0..4u64 {
                let q = &q;
                sc.spawn(move || {
                    for i in 0..2000 {
                        q.enqueue((t << 32) | i);
                    }
                });
            }
        });
        let mut last = [None::<u64>; 4];
        for v in q.snapshot() {
            let t = (v >> 32) as usize;
            let seq = v & 0xFFFF_FFFF;
            assert!(last[t].is_none_or(|p| p < seq), "producer {t} out of order");
            last[t] = Some(seq);
        }
    }

    #[test]
    fn survives_crash_and_recovery() {
        let h = heap();
        let q = PQueue::create(&h, 0);
        for i in 0..300 {
            q.enqueue(i);
        }
        for _ in 0..100 {
            q.dequeue();
        }
        h.crash_simulated();
        let stats = h.recover();
        // 200 live nodes + 1 dummy + 1 anchor; the 100 free-listed
        // retirees are unreachable by design and reclaimed here.
        assert_eq!(stats.reachable_blocks, 202);
        let q = PQueue::attach(&h, 0).unwrap();
        assert_eq!(q.snapshot(), (100..300).collect::<Vec<u64>>());
        // Still operational.
        q.enqueue(999);
        assert_eq!(q.dequeue(), Some(100));
    }

    #[test]
    fn attach_heals_stale_tail() {
        let h = heap();
        let q = PQueue::create(&h, 0);
        for i in 0..10 {
            q.enqueue(i);
        }
        // Sabotage the tail hint back to the dummy (simulating a crash
        // right after a link, before the tail swing persisted).
        let (h_word, _) = (q.head_word().load(Ordering::Acquire), ());
        q.tail_word().store(h_word, Ordering::Release);
        drop(q);
        let q = PQueue::attach(&h, 0).unwrap();
        q.enqueue(10);
        assert_eq!(q.snapshot(), (0..=10).collect::<Vec<u64>>());
    }

    #[test]
    fn position_independent_across_remap() {
        let h = heap();
        let q = PQueue::create(&h, 0);
        for i in 0..64 {
            q.enqueue(i * 3);
        }
        let image = h.pool().persistent_image();
        drop((q, h));
        let (h2, dirty) = Ralloc::from_image(&image, RallocConfig::tracked());
        assert!(dirty);
        let _ = h2.get_root::<QueueHead>(0);
        h2.recover();
        let q2 = PQueue::attach(&h2, 0).unwrap();
        assert_eq!(q2.len(), 64);
        assert_eq!(q2.dequeue(), Some(0));
    }
}
