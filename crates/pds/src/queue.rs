//! The Michael & Scott lock-free FIFO queue (PODC'96), used by the
//! Prod-con benchmark (paper Fig. 5d) exactly as the paper does: one
//! queue per producer/consumer thread pair, carrying pointers to blocks
//! allocated from the allocator under test.
//!
//! Implementation notes:
//!
//! * Head/tail/links are counted pointers — {16-bit ABA counter | 48-bit
//!   address} — as in the original algorithm, so no wide CAS is needed.
//! * Dequeued nodes go to an internal lock-free free list and are only
//!   returned to the allocator when the queue is dropped, the original
//!   paper's node-reuse discipline. This makes the unavoidable
//!   read-after-dequeue of `next` safe for *any* allocator (the node is
//!   never unmapped or reused for another type while the queue lives).
//! * The queue handle itself is transient; the *workload's objects* are
//!   what exercise the persistent allocator.

use std::sync::atomic::{AtomicU64, Ordering};

use ralloc::PersistentAllocator;

const ADDR_BITS: u32 = 48;
const ADDR_MASK: u64 = (1u64 << ADDR_BITS) - 1;

#[inline]
fn pack(addr: usize, ctr: u64) -> u64 {
    debug_assert_eq!(addr as u64 & !ADDR_MASK, 0, "address exceeds 48 bits");
    (ctr << ADDR_BITS) | addr as u64
}

#[inline]
fn unpack(word: u64) -> (usize, u64) {
    ((word & ADDR_MASK) as usize, word >> ADDR_BITS)
}

#[repr(C)]
struct Node {
    value: u64,
    /// Counted pointer to the next node (address 0 = none).
    next: AtomicU64,
}

/// A Michael–Scott queue of `u64` values over allocator `A`.
pub struct MsQueue<A: PersistentAllocator> {
    alloc: A,
    head: AtomicU64,
    tail: AtomicU64,
    /// Treiber free list of retired nodes (counted head).
    free: AtomicU64,
}

// SAFETY: all shared state is atomic; nodes are plain memory.
unsafe impl<A: PersistentAllocator> Send for MsQueue<A> {}
unsafe impl<A: PersistentAllocator> Sync for MsQueue<A> {}

impl<A: PersistentAllocator> MsQueue<A> {
    /// Create a queue with its dummy node drawn from `alloc`.
    pub fn new(alloc: A) -> MsQueue<A> {
        let dummy = alloc.malloc(std::mem::size_of::<Node>()) as *mut Node;
        assert!(!dummy.is_null(), "allocator exhausted creating queue dummy");
        // SAFETY: fresh block.
        unsafe {
            (*dummy).value = 0;
            (*dummy).next = AtomicU64::new(pack(0, 0));
        }
        MsQueue {
            alloc,
            head: AtomicU64::new(pack(dummy as usize, 0)),
            tail: AtomicU64::new(pack(dummy as usize, 0)),
            free: AtomicU64::new(pack(0, 0)),
        }
    }

    /// Grab a node from the internal free list or the allocator.
    fn new_node(&self, value: u64) -> *mut Node {
        loop {
            let f = self.free.load(Ordering::Acquire);
            let (addr, ctr) = unpack(f);
            if addr == 0 {
                let n = self.alloc.malloc(std::mem::size_of::<Node>()) as *mut Node;
                if n.is_null() {
                    return std::ptr::null_mut();
                }
                // SAFETY: fresh block.
                unsafe {
                    (*n).value = value;
                    (*n).next = AtomicU64::new(pack(0, 0));
                }
                return n;
            }
            let node = addr as *mut Node;
            // SAFETY: free-list nodes stay allocated until Drop.
            let next = unsafe { (*node).next.load(Ordering::Acquire) };
            let (next_addr, _) = unpack(next);
            if self
                .free
                .compare_exchange_weak(
                    f,
                    pack(next_addr, (ctr + 1) & 0xFFFF),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                // SAFETY: we own the popped node.
                unsafe {
                    (*node).value = value;
                    (*node).next.store(pack(0, 0), Ordering::Relaxed);
                }
                return node;
            }
        }
    }

    /// Retire a dequeued node to the free list.
    fn retire(&self, node: *mut Node) {
        loop {
            let f = self.free.load(Ordering::Acquire);
            let (addr, ctr) = unpack(f);
            // SAFETY: we own the retired node.
            unsafe { (*node).next.store(pack(addr, 0), Ordering::Relaxed) };
            if self
                .free
                .compare_exchange_weak(
                    f,
                    pack(node as usize, (ctr + 1) & 0xFFFF),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                return;
            }
        }
    }

    /// Enqueue a value (lock-free). Returns false on allocator exhaustion.
    pub fn enqueue(&self, value: u64) -> bool {
        let node = self.new_node(value);
        if node.is_null() {
            return false;
        }
        loop {
            let t = self.tail.load(Ordering::Acquire);
            let (tail_addr, tail_ctr) = unpack(t);
            let tail = tail_addr as *mut Node;
            // SAFETY: tail nodes stay mapped (free-list discipline).
            let next = unsafe { (*tail).next.load(Ordering::Acquire) };
            let (next_addr, next_ctr) = unpack(next);
            if t != self.tail.load(Ordering::Acquire) {
                continue;
            }
            if next_addr == 0 {
                // SAFETY: CAS on the live tail's next.
                if unsafe {
                    (*tail)
                        .next
                        .compare_exchange_weak(
                            next,
                            pack(node as usize, (next_ctr + 1) & 0xFFFF),
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                        .is_ok()
                } {
                    // Swing tail (best effort).
                    let _ = self.tail.compare_exchange(
                        t,
                        pack(node as usize, (tail_ctr + 1) & 0xFFFF),
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    );
                    return true;
                }
            } else {
                // Help swing the lagging tail.
                let _ = self.tail.compare_exchange(
                    t,
                    pack(next_addr, (tail_ctr + 1) & 0xFFFF),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                );
            }
        }
    }

    /// Dequeue a value (lock-free); `None` when empty.
    pub fn dequeue(&self) -> Option<u64> {
        loop {
            let h = self.head.load(Ordering::Acquire);
            let (head_addr, head_ctr) = unpack(h);
            let t = self.tail.load(Ordering::Acquire);
            let (tail_addr, tail_ctr) = unpack(t);
            let head = head_addr as *mut Node;
            // SAFETY: head stays mapped.
            let next = unsafe { (*head).next.load(Ordering::Acquire) };
            let (next_addr, _) = unpack(next);
            if h != self.head.load(Ordering::Acquire) {
                continue;
            }
            if head_addr == tail_addr {
                if next_addr == 0 {
                    return None;
                }
                // Tail is lagging: help.
                let _ = self.tail.compare_exchange(
                    t,
                    pack(next_addr, (tail_ctr + 1) & 0xFFFF),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                );
                continue;
            }
            // Read the value before CAS (original M&S ordering).
            // SAFETY: next stays mapped.
            let value = unsafe { (*(next_addr as *const Node)).value };
            if self
                .head
                .compare_exchange_weak(
                    h,
                    pack(next_addr, (head_ctr + 1) & 0xFFFF),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                self.retire(head);
                return Some(value);
            }
        }
    }

    /// Borrow the allocator.
    pub fn allocator(&self) -> &A {
        &self.alloc
    }
}

impl<A: PersistentAllocator> Drop for MsQueue<A> {
    fn drop(&mut self) {
        // Return queue nodes and free-list nodes to the allocator.
        let (mut cur, _) = unpack(*self.head.get_mut());
        while cur != 0 {
            // SAFETY: exclusive access during drop.
            let next = unsafe { unpack((*(cur as *mut Node)).next.load(Ordering::Relaxed)).0 };
            self.alloc.free(cur as *mut u8);
            cur = next;
        }
        let (mut cur, _) = unpack(*self.free.get_mut());
        while cur != 0 {
            // SAFETY: exclusive access during drop.
            let next = unsafe { unpack((*(cur as *mut Node)).next.load(Ordering::Relaxed)).0 };
            self.alloc.free(cur as *mut u8);
            cur = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baselines::SystemAlloc;
    use ralloc::{Ralloc, RallocConfig};

    #[test]
    fn fifo_semantics() {
        let q = MsQueue::new(SystemAlloc::new());
        assert_eq!(q.dequeue(), None);
        q.enqueue(1);
        q.enqueue(2);
        q.enqueue(3);
        assert_eq!(q.dequeue(), Some(1));
        assert_eq!(q.dequeue(), Some(2));
        q.enqueue(4);
        assert_eq!(q.dequeue(), Some(3));
        assert_eq!(q.dequeue(), Some(4));
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn works_over_ralloc() {
        let q = MsQueue::new(Ralloc::create(8 << 20, RallocConfig::default()));
        for i in 0..10_000 {
            assert!(q.enqueue(i));
        }
        for i in 0..10_000 {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn nodes_recycled_through_free_list() {
        let q = MsQueue::new(Ralloc::create(1 << 20, RallocConfig::default()));
        // Far more operations than the pool could hold without reuse.
        for round in 0..10_000u64 {
            q.enqueue(round);
            assert_eq!(q.dequeue(), Some(round));
        }
    }

    #[test]
    fn spsc_transfers_all_values() {
        let q = std::sync::Arc::new(MsQueue::new(SystemAlloc::new()));
        let n = 100_000u64;
        let producer = {
            let q = q.clone();
            std::thread::spawn(move || {
                for i in 0..n {
                    q.enqueue(i);
                }
            })
        };
        let mut got = Vec::with_capacity(n as usize);
        while got.len() < n as usize {
            if let Some(v) = q.dequeue() {
                got.push(v);
            }
        }
        producer.join().unwrap();
        // FIFO per producer: strictly increasing.
        assert!(got.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(got.len(), n as usize);
    }

    #[test]
    fn mpmc_conserves_elements() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let q = std::sync::Arc::new(MsQueue::new(SystemAlloc::new()));
        let producers = 4u64;
        let per = 20_000u64;
        let total = (producers * per) as usize;
        let popped = AtomicUsize::new(0);
        let consumed: Vec<Vec<u64>> = std::thread::scope(|s| {
            for p in 0..producers {
                let q = q.clone();
                s.spawn(move || {
                    for i in 0..per {
                        q.enqueue(p * per + i);
                    }
                });
            }
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let q = q.clone();
                    let popped = &popped;
                    s.spawn(move || {
                        let mut got = Vec::new();
                        // Shared progress counter: consumers stop when the
                        // group has drained everything, regardless of how
                        // the elements were distributed among them.
                        while popped.load(Ordering::Relaxed) < total {
                            if let Some(v) = q.dequeue() {
                                popped.fetch_add(1, Ordering::Relaxed);
                                got.push(v);
                            }
                        }
                        got
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut all: Vec<u64> = consumed.into_iter().flatten().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), total, "duplicate or lost element");
    }
}
