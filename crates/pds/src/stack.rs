//! A recoverable Treiber stack (paper §6.4, Figure 6a).
//!
//! The stack is a lock-free LIFO whose head cell and nodes all live in a
//! Ralloc heap. The head packs a 16-bit ABA counter with a 48-bit
//! superblock-region offset, CAS-able in one word; node `next` links are
//! plain region offsets (immutable once the node is published). A
//! [`ralloc::Trace`] filter makes recovery tracing precise, and because
//! every stored link is an offset, the structure is position-independent
//! (it survives remapping at a different base address).
//!
//! Durable linearizability (paper §2.2 responsibility of the app): a push
//! persists the node before swinging the head, then persists the head;
//! a pop persists the head after swinging it. (Strictly a pop's
//! linearization is the CAS; the trailing persist gives buffered-durable
//! behaviour, which the paper's model permits.)

use std::sync::atomic::{AtomicU64, Ordering};

use ralloc::{PersistentAllocator, Ralloc, Trace, Tracer};

const OFF_BITS: u32 = 48;
const OFF_MASK: u64 = (1u64 << OFF_BITS) - 1;

#[inline]
fn pack(off1: u64, ctr: u64) -> u64 {
    debug_assert!(off1 <= OFF_MASK);
    (ctr << OFF_BITS) | off1
}

#[inline]
fn unpack(word: u64) -> (u64, u64) {
    (word & OFF_MASK, word >> OFF_BITS)
}

/// Head cell: lives in the heap, registered as a persistent root.
#[repr(C)]
pub struct StackHead {
    /// {counter:16 | node region-offset + 1:48}; 0 offset = empty.
    head: AtomicU64,
}

/// A stack node: 64-bit value plus an offset link.
#[repr(C)]
pub struct StackNode {
    value: u64,
    /// Region offset + 1 of the next node (0 = end). Immutable after
    /// publication.
    next: u64,
}

unsafe impl Trace for StackHead {
    fn trace(&self, t: &mut Tracer<'_>) {
        let (off1, _) = unpack(self.head.load(Ordering::Relaxed));
        if let Some(off) = off1.checked_sub(1) {
            t.visit_region_offset::<StackNode>(off);
        }
    }
}

unsafe impl Trace for StackNode {
    fn trace(&self, t: &mut Tracer<'_>) {
        if let Some(off) = self.next.checked_sub(1) {
            t.visit_region_offset::<StackNode>(off);
        }
    }
}

/// A persistent, recoverable, lock-free stack of `u64`s on a Ralloc heap.
pub struct PStack {
    heap: Ralloc,
    head: *mut StackHead,
}

// SAFETY: all shared mutation goes through atomics in the heap.
unsafe impl Send for PStack {}
unsafe impl Sync for PStack {}

impl PStack {
    /// Create a fresh stack whose head is registered as root `root`.
    pub fn create(heap: &Ralloc, root: usize) -> PStack {
        let head = heap.malloc(std::mem::size_of::<StackHead>()) as *mut StackHead;
        assert!(!head.is_null(), "heap exhausted creating stack head");
        // SAFETY: fresh block, exclusively owned.
        unsafe { (*head).head = AtomicU64::new(pack(0, 0)) };
        heap.persist(head as *const u8, std::mem::size_of::<StackHead>());
        heap.set_root::<StackHead>(root, head);
        PStack { heap: heap.clone(), head }
    }

    /// Re-attach to a stack persisted at root `root` (after a clean
    /// restart or a recovery). Registers the filter functions.
    pub fn attach(heap: &Ralloc, root: usize) -> Option<PStack> {
        let head = heap.get_root::<StackHead>(root);
        if head.is_null() {
            return None;
        }
        Some(PStack { heap: heap.clone(), head })
    }

    #[inline]
    fn head_word(&self) -> &AtomicU64 {
        // SAFETY: head cell is live for the stack's lifetime.
        unsafe { &(*self.head).head }
    }

    #[inline]
    fn to_addr(&self, off: u64) -> usize {
        self.heap.region_base() + off as usize
    }

    #[inline]
    fn to_off(&self, addr: usize) -> u64 {
        (addr - self.heap.region_base()) as u64
    }

    /// Push a value. Lock-free; persists the node, then the head.
    pub fn push(&self, value: u64) -> bool {
        let node = self.heap.malloc(std::mem::size_of::<StackNode>()) as *mut StackNode;
        if node.is_null() {
            return false;
        }
        let node_off1 = self.to_off(node as usize) + 1;
        loop {
            let h = self.head_word().load(Ordering::Acquire);
            let (top1, ctr) = unpack(h);
            // SAFETY: we own the unpublished node.
            unsafe {
                (*node).value = value;
                (*node).next = top1;
            }
            self.heap
                .persist(node as *const u8, std::mem::size_of::<StackNode>());
            let nh = pack(node_off1, (ctr + 1) & 0xFFFF);
            if self
                .head_word()
                .compare_exchange_weak(h, nh, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                self.heap
                    .persist(self.head as *const u8, std::mem::size_of::<StackHead>());
                return true;
            }
        }
    }

    /// Pop the most recently pushed value, freeing its node.
    pub fn pop(&self) -> Option<u64> {
        loop {
            let h = self.head_word().load(Ordering::Acquire);
            let (top1, ctr) = unpack(h);
            let top_off = top1.checked_sub(1)?;
            let node = self.to_addr(top_off) as *mut StackNode;
            // SAFETY: node memory stays mapped (pool-backed); the ABA
            // counter invalidates our CAS if the node was recycled.
            let (value, next1) = unsafe { ((*node).value, (*node).next) };
            let nh = pack(next1, (ctr + 1) & 0xFFFF);
            if self
                .head_word()
                .compare_exchange_weak(h, nh, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                self.heap
                    .persist(self.head as *const u8, std::mem::size_of::<StackHead>());
                self.heap.free(node as *mut u8);
                return Some(value);
            }
        }
    }

    /// Number of nodes (O(n), offline use: tests and recovery checks).
    pub fn len(&self) -> usize {
        let mut n = 0;
        let (mut cur1, _) = unpack(self.head_word().load(Ordering::Acquire));
        while let Some(off) = cur1.checked_sub(1) {
            n += 1;
            // SAFETY: offline traversal of a quiescent stack.
            cur1 = unsafe { (*(self.to_addr(off) as *const StackNode)).next };
        }
        n
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        unpack(self.head_word().load(Ordering::Acquire)).0 == 0
    }

    /// Snapshot the values top-to-bottom (offline use).
    pub fn snapshot(&self) -> Vec<u64> {
        let mut out = Vec::new();
        let (mut cur1, _) = unpack(self.head_word().load(Ordering::Acquire));
        while let Some(off) = cur1.checked_sub(1) {
            // SAFETY: offline traversal.
            let node = unsafe { &*(self.to_addr(off) as *const StackNode) };
            out.push(node.value);
            cur1 = node.next;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ralloc::RallocConfig;

    fn heap() -> Ralloc {
        Ralloc::create(16 << 20, RallocConfig::tracked())
    }

    #[test]
    fn lifo_semantics() {
        let h = heap();
        let s = PStack::create(&h, 0);
        assert!(s.is_empty());
        assert_eq!(s.pop(), None);
        s.push(1);
        s.push(2);
        s.push(3);
        assert_eq!(s.len(), 3);
        assert_eq!(s.pop(), Some(3));
        assert_eq!(s.pop(), Some(2));
        assert_eq!(s.pop(), Some(1));
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn attach_finds_existing() {
        let h = heap();
        {
            let s = PStack::create(&h, 5);
            s.push(42);
        }
        let s = PStack::attach(&h, 5).expect("root set");
        assert_eq!(s.snapshot(), vec![42]);
        assert!(PStack::attach(&h, 6).is_none());
    }

    #[test]
    fn concurrent_push_pop_conserves_elements() {
        let h = Ralloc::create(64 << 20, RallocConfig::default());
        let s = PStack::create(&h, 0);
        let n_threads = 8u64;
        let per = 5000u64;
        std::thread::scope(|sc| {
            for t in 0..n_threads {
                let s = &s;
                sc.spawn(move || {
                    for i in 0..per {
                        assert!(s.push(t * per + i));
                    }
                });
            }
        });
        let mut popped: Vec<u64> = std::thread::scope(|sc| {
            let handles: Vec<_> = (0..n_threads)
                .map(|_| {
                    let s = &s;
                    sc.spawn(move || {
                        let mut got = Vec::new();
                        while let Some(v) = s.pop() {
                            got.push(v);
                        }
                        got
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
        });
        popped.sort_unstable();
        let expect: Vec<u64> = (0..n_threads * per).collect();
        assert_eq!(popped, expect, "every pushed element pops exactly once");
    }

    #[test]
    fn survives_crash_and_recovery() {
        let h = heap();
        let s = PStack::create(&h, 0);
        for i in 0..500 {
            s.push(i);
        }
        h.crash_simulated();
        let stats = h.recover();
        // 500 nodes + 1 head cell reachable.
        assert_eq!(stats.reachable_blocks, 501);
        let s = PStack::attach(&h, 0).unwrap();
        assert_eq!(s.len(), 500);
        let vals = s.snapshot();
        assert_eq!(vals[0], 499);
        assert_eq!(vals[499], 0);
        // Still operational.
        s.push(1000);
        assert_eq!(s.pop(), Some(1000));
    }

    #[test]
    fn popped_nodes_are_collected_not_resurrected() {
        let h = heap();
        let s = PStack::create(&h, 0);
        for i in 0..100 {
            s.push(i);
        }
        for _ in 0..60 {
            s.pop();
        }
        h.crash_simulated();
        let stats = h.recover();
        assert_eq!(stats.reachable_blocks, 41, "40 nodes + head");
        let s = PStack::attach(&h, 0).unwrap();
        assert_eq!(s.len(), 40);
    }

    #[test]
    fn position_independent_across_remap() {
        let h = heap();
        let s = PStack::create(&h, 0);
        for i in 0..64 {
            s.push(i * 7);
        }
        let image = h.pool().persistent_image();
        drop((s, h));
        // Reopen at a (virtually certain) different base address.
        let (h2, dirty) = Ralloc::from_image(&image, RallocConfig::tracked());
        assert!(dirty);
        let _ = h2.get_root::<StackHead>(0); // register filter, paper-style
        h2.recover();
        let s2 = PStack::attach(&h2, 0).unwrap();
        assert_eq!(s2.len(), 64);
        assert_eq!(s2.snapshot()[0], 63 * 7);
    }
}
