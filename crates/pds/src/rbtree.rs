//! A red-black tree over a pluggable allocator — the "relation" structure
//! of the Vacation OLTP workload (paper §6.3; STAMP implements its
//! simulated database as a set of red-black trees).
//!
//! Classic CLRS implementation with an allocated NIL sentinel. The tree
//! is sequential; Vacation wraps each relation in a lock, as the
//! lock-based STAMP port does. What the benchmark measures is the
//! allocator underneath: every insert/remove allocates/frees a node.

use ralloc::PersistentAllocator;

const RED: u8 = 0;
const BLACK: u8 = 1;

#[repr(C)]
struct Node {
    key: u64,
    value: u64,
    left: *mut Node,
    right: *mut Node,
    parent: *mut Node,
    color: u8,
}

/// A sequential red-black tree of `u64 -> u64` over allocator `A`.
pub struct RbTree<A: PersistentAllocator> {
    alloc: A,
    nil: *mut Node,
    root: *mut Node,
    len: usize,
}

// SAFETY: the tree is externally synchronized (callers lock); raw node
// pointers never escape.
unsafe impl<A: PersistentAllocator> Send for RbTree<A> {}

impl<A: PersistentAllocator> RbTree<A> {
    /// Create an empty tree.
    pub fn new(alloc: A) -> RbTree<A> {
        let nil = alloc.malloc(std::mem::size_of::<Node>()) as *mut Node;
        assert!(!nil.is_null(), "allocator exhausted creating RB sentinel");
        // SAFETY: fresh block.
        unsafe {
            (*nil).color = BLACK;
            (*nil).left = nil;
            (*nil).right = nil;
            (*nil).parent = nil;
            (*nil).key = 0;
            (*nil).value = 0;
        }
        RbTree { alloc, nil, root: nil, len: 0 }
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the tree holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Borrow the allocator.
    pub fn allocator(&self) -> &A {
        &self.alloc
    }

    fn find(&self, key: u64) -> *mut Node {
        let mut cur = self.root;
        // SAFETY: tree-internal pointers are valid or nil.
        unsafe {
            while cur != self.nil {
                if key == (*cur).key {
                    return cur;
                }
                cur = if key < (*cur).key { (*cur).left } else { (*cur).right };
            }
        }
        self.nil
    }

    /// Look up a key.
    pub fn get(&self, key: u64) -> Option<u64> {
        let n = self.find(key);
        if n == self.nil {
            None
        } else {
            // SAFETY: found node is live.
            Some(unsafe { (*n).value })
        }
    }

    /// True if `key` is present.
    pub fn contains(&self, key: u64) -> bool {
        self.find(key) != self.nil
    }

    unsafe fn rotate_left(&mut self, x: *mut Node) {
        unsafe {
            let y = (*x).right;
            (*x).right = (*y).left;
            if (*y).left != self.nil {
                (*(*y).left).parent = x;
            }
            (*y).parent = (*x).parent;
            if (*x).parent == self.nil {
                self.root = y;
            } else if x == (*(*x).parent).left {
                (*(*x).parent).left = y;
            } else {
                (*(*x).parent).right = y;
            }
            (*y).left = x;
            (*x).parent = y;
        }
    }

    unsafe fn rotate_right(&mut self, x: *mut Node) {
        unsafe {
            let y = (*x).left;
            (*x).left = (*y).right;
            if (*y).right != self.nil {
                (*(*y).right).parent = x;
            }
            (*y).parent = (*x).parent;
            if (*x).parent == self.nil {
                self.root = y;
            } else if x == (*(*x).parent).right {
                (*(*x).parent).right = y;
            } else {
                (*(*x).parent).left = y;
            }
            (*y).right = x;
            (*x).parent = y;
        }
    }

    /// Insert or update; returns the previous value if the key existed.
    /// Allocates exactly one node per new key.
    pub fn insert(&mut self, key: u64, value: u64) -> Option<u64> {
        // SAFETY: standard CLRS insertion over tree-internal pointers.
        unsafe {
            let mut parent = self.nil;
            let mut cur = self.root;
            while cur != self.nil {
                parent = cur;
                if key == (*cur).key {
                    let old = (*cur).value;
                    (*cur).value = value;
                    self.alloc.persist(&(*cur).value as *const u64 as *const u8, 8);
                    return Some(old);
                }
                cur = if key < (*cur).key { (*cur).left } else { (*cur).right };
            }
            let z = self.alloc.malloc(std::mem::size_of::<Node>()) as *mut Node;
            assert!(!z.is_null(), "allocator exhausted in RbTree::insert");
            (*z).key = key;
            (*z).value = value;
            (*z).left = self.nil;
            (*z).right = self.nil;
            (*z).parent = parent;
            (*z).color = RED;
            self.alloc.persist(z as *const u8, std::mem::size_of::<Node>());
            if parent == self.nil {
                self.root = z;
            } else if key < (*parent).key {
                (*parent).left = z;
            } else {
                (*parent).right = z;
            }
            self.len += 1;
            self.insert_fixup(z);
            None
        }
    }

    unsafe fn insert_fixup(&mut self, mut z: *mut Node) {
        unsafe {
            while (*(*z).parent).color == RED {
                let gp = (*(*z).parent).parent;
                if (*z).parent == (*gp).left {
                    let uncle = (*gp).right;
                    if (*uncle).color == RED {
                        (*(*z).parent).color = BLACK;
                        (*uncle).color = BLACK;
                        (*gp).color = RED;
                        z = gp;
                    } else {
                        if z == (*(*z).parent).right {
                            z = (*z).parent;
                            self.rotate_left(z);
                        }
                        (*(*z).parent).color = BLACK;
                        (*(*(*z).parent).parent).color = RED;
                        self.rotate_right((*(*z).parent).parent);
                    }
                } else {
                    let uncle = (*gp).left;
                    if (*uncle).color == RED {
                        (*(*z).parent).color = BLACK;
                        (*uncle).color = BLACK;
                        (*gp).color = RED;
                        z = gp;
                    } else {
                        if z == (*(*z).parent).left {
                            z = (*z).parent;
                            self.rotate_right(z);
                        }
                        (*(*z).parent).color = BLACK;
                        (*(*(*z).parent).parent).color = RED;
                        self.rotate_left((*(*z).parent).parent);
                    }
                }
            }
            (*self.root).color = BLACK;
        }
    }

    unsafe fn transplant(&mut self, u: *mut Node, v: *mut Node) {
        unsafe {
            if (*u).parent == self.nil {
                self.root = v;
            } else if u == (*(*u).parent).left {
                (*(*u).parent).left = v;
            } else {
                (*(*u).parent).right = v;
            }
            (*v).parent = (*u).parent;
        }
    }

    /// Remove a key; returns its value if present. Frees the node.
    pub fn remove(&mut self, key: u64) -> Option<u64> {
        let z = self.find(key);
        if z == self.nil {
            return None;
        }
        // SAFETY: standard CLRS deletion.
        unsafe {
            let value = (*z).value;
            let mut y = z;
            let mut y_color = (*y).color;
            let x;
            if (*z).left == self.nil {
                x = (*z).right;
                self.transplant(z, (*z).right);
            } else if (*z).right == self.nil {
                x = (*z).left;
                self.transplant(z, (*z).left);
            } else {
                y = (*z).right;
                while (*y).left != self.nil {
                    y = (*y).left;
                }
                y_color = (*y).color;
                x = (*y).right;
                if (*y).parent == z {
                    (*x).parent = y;
                } else {
                    self.transplant(y, (*y).right);
                    (*y).right = (*z).right;
                    (*(*y).right).parent = y;
                }
                self.transplant(z, y);
                (*y).left = (*z).left;
                (*(*y).left).parent = y;
                (*y).color = (*z).color;
            }
            if y_color == BLACK {
                self.remove_fixup(x);
            }
            self.alloc.free(z as *mut u8);
            self.len -= 1;
            Some(value)
        }
    }

    unsafe fn remove_fixup(&mut self, mut x: *mut Node) {
        unsafe {
            while x != self.root && (*x).color == BLACK {
                if x == (*(*x).parent).left {
                    let mut w = (*(*x).parent).right;
                    if (*w).color == RED {
                        (*w).color = BLACK;
                        (*(*x).parent).color = RED;
                        self.rotate_left((*x).parent);
                        w = (*(*x).parent).right;
                    }
                    if (*(*w).left).color == BLACK && (*(*w).right).color == BLACK {
                        (*w).color = RED;
                        x = (*x).parent;
                    } else {
                        if (*(*w).right).color == BLACK {
                            (*(*w).left).color = BLACK;
                            (*w).color = RED;
                            self.rotate_right(w);
                            w = (*(*x).parent).right;
                        }
                        (*w).color = (*(*x).parent).color;
                        (*(*x).parent).color = BLACK;
                        (*(*w).right).color = BLACK;
                        self.rotate_left((*x).parent);
                        x = self.root;
                    }
                } else {
                    let mut w = (*(*x).parent).left;
                    if (*w).color == RED {
                        (*w).color = BLACK;
                        (*(*x).parent).color = RED;
                        self.rotate_right((*x).parent);
                        w = (*(*x).parent).left;
                    }
                    if (*(*w).right).color == BLACK && (*(*w).left).color == BLACK {
                        (*w).color = RED;
                        x = (*x).parent;
                    } else {
                        if (*(*w).left).color == BLACK {
                            (*(*w).right).color = BLACK;
                            (*w).color = RED;
                            self.rotate_left(w);
                            w = (*(*x).parent).left;
                        }
                        (*w).color = (*(*x).parent).color;
                        (*(*x).parent).color = BLACK;
                        (*(*w).left).color = BLACK;
                        self.rotate_right((*x).parent);
                        x = self.root;
                    }
                }
            }
            (*x).color = BLACK;
        }
    }

    /// In-order key walk (tests).
    pub fn keys(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.len);
        let mut stack = Vec::new();
        let mut cur = self.root;
        // SAFETY: offline traversal.
        unsafe {
            while cur != self.nil || !stack.is_empty() {
                while cur != self.nil {
                    stack.push(cur);
                    cur = (*cur).left;
                }
                let n = stack.pop().unwrap();
                out.push((*n).key);
                cur = (*n).right;
            }
        }
        out
    }

    /// Check the red-black invariants; panics with a description on
    /// violation. Returns the tree's black height.
    pub fn validate(&self) -> usize {
        // SAFETY: offline traversal.
        unsafe {
            assert_eq!((*self.root).color, BLACK, "root must be black");
            self.validate_node(self.root, u64::MIN, u64::MAX)
        }
    }

    unsafe fn validate_node(&self, n: *mut Node, lo: u64, hi: u64) -> usize {
        unsafe {
            if n == self.nil {
                return 1;
            }
            let k = (*n).key;
            assert!(k >= lo && k <= hi, "BST order violated at {k}");
            if (*n).color == RED {
                assert_eq!((*(*n).left).color, BLACK, "red-red at {k}");
                assert_eq!((*(*n).right).color, BLACK, "red-red at {k}");
            }
            let lh = self.validate_node((*n).left, lo, k.saturating_sub(1));
            let rh = self.validate_node((*n).right, k.saturating_add(1), hi);
            assert_eq!(lh, rh, "black height differs under {k}");
            lh + ((*n).color == BLACK) as usize
        }
    }
}

impl<A: PersistentAllocator> Drop for RbTree<A> {
    fn drop(&mut self) {
        // Free all nodes iteratively (post-order via stack).
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            if n == self.nil {
                continue;
            }
            // SAFETY: exclusive access during drop.
            unsafe {
                stack.push((*n).left);
                stack.push((*n).right);
            }
            self.alloc.free(n as *mut u8);
        }
        self.alloc.free(self.nil as *mut u8);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baselines::SystemAlloc;
    use ralloc::{Ralloc, RallocConfig};
    use rand::prelude::*;

    #[test]
    fn insert_get_remove() {
        let mut t = RbTree::new(SystemAlloc::new());
        assert_eq!(t.get(5), None);
        assert_eq!(t.insert(5, 50), None);
        assert_eq!(t.insert(5, 51), Some(50));
        assert_eq!(t.get(5), Some(51));
        assert_eq!(t.remove(5), Some(51));
        assert_eq!(t.remove(5), None);
        assert!(t.is_empty());
    }

    #[test]
    fn sorted_iteration() {
        let mut t = RbTree::new(SystemAlloc::new());
        let mut keys: Vec<u64> = (0..500).collect();
        keys.shuffle(&mut StdRng::seed_from_u64(7));
        for &k in &keys {
            t.insert(k, k * 2);
        }
        assert_eq!(t.keys(), (0..500).collect::<Vec<_>>());
        t.validate();
    }

    #[test]
    fn invariants_under_random_ops() {
        let mut t = RbTree::new(SystemAlloc::new());
        let mut model = std::collections::BTreeMap::new();
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..5000 {
            let k = rng.gen_range(0..600u64);
            if rng.gen_bool(0.6) {
                assert_eq!(t.insert(k, k), model.insert(k, k));
            } else {
                assert_eq!(t.remove(k), model.remove(&k));
            }
        }
        t.validate();
        assert_eq!(t.len(), model.len());
        assert_eq!(t.keys(), model.keys().copied().collect::<Vec<_>>());
    }

    #[test]
    fn works_over_ralloc() {
        let mut t = RbTree::new(Ralloc::create(8 << 20, RallocConfig::default()));
        for k in 0..2000u64 {
            t.insert(k.wrapping_mul(2654435761) % 10000, k);
        }
        t.validate();
        // Churn: delete and reinsert.
        let keys = t.keys();
        for &k in keys.iter().step_by(2) {
            t.remove(k);
        }
        t.validate();
        for &k in keys.iter().step_by(2) {
            t.insert(k, 1);
        }
        t.validate();
        assert_eq!(t.keys(), keys);
    }
}
